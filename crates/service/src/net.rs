//! TCP front-end for the service engine: threaded server, admission
//! control, and the socket replay client.
//!
//! # Topology
//!
//! ```text
//! clients ──► acceptor ──► connection threads (one per socket)
//!                              │ try_send            ╲ full → typed Busy
//!                              ▼
//!                    bounded admission queue
//!                              │ recv (FIFO)
//!                              ▼
//!                         dispatcher ──────────────► barrier ops:
//!                              │ route under            drain shards,
//!                              │ engine read lock       engine write lock
//!                              ▼
//!                  bounded per-shard queues
//!                              │
//!                              ▼
//!                 shard workers (engine read lock)
//! ```
//!
//! # Why answers stay bit-identical to the in-process replay
//!
//! The batch engine's contract is: shardable ops (probes and preference
//! queries) may execute in any order between *barriers* (open, churn,
//! epoch, close), which serialize. The socket path preserves exactly
//! that contract with OS threads instead of batch buckets:
//!
//! * Shardable ops are validated and routed by the single dispatcher
//!   thread using [`ServiceEngine::route_shardable`] — the same
//!   validation order and group-graph shard key as a batch flush — and
//!   then executed on per-shard worker threads under a shared lock.
//!   Probe side effects commute (memoized oracle, same-value board
//!   claims) and queries are pure reads, so worker interleaving is
//!   unobservable.
//! * A barrier op makes the dispatcher first drain every shard queue
//!   (an outstanding-job counter on a condvar), then run
//!   [`ServiceEngine`]'s barrier path under the exclusive lock. Every
//!   op admitted before the barrier is therefore fully applied before
//!   the world transition, exactly like the batch flush.
//! * Overload is refused *at admission*: a full queue answers a typed
//!   [`Response::Busy`] and executes nothing. An op that was accepted
//!   is never dropped — queue hand-offs past admission block instead
//!   of failing, so backpressure propagates to the client.
//!
//! The [`replay_over_socket`] client adds the client-side half of the
//! ordering argument: all ops of a session ride one connection, opens
//! are globally serialized (session ids are assigned in open order),
//! and a session's barrier is only sent after all its earlier ops have
//! been answered. Busy retries therefore reorder shardable ops only
//! within a barrier-free window, where order does not matter.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Condvar, Mutex, RwLock};
use std::thread;
use std::time::{Duration, Instant};

use crate::engine::{merge_preferences, probe_response, query_part, Routed, ServiceEngine};
use crate::request::{Request, Response, ServiceError};
use crate::wire::{read_frame, write_frame, ClientFrame, ServerFrame, StatsSnapshot, WIRE_VERSION};
use crate::workload::{format_op, parse_op};

/// Tuning knobs for [`Server`]. The defaults match the batch engine's
/// shard count and keep the admission queue small enough that overload
/// surfaces as `Busy` quickly instead of as latency.
#[derive(Clone, Copy, Debug)]
pub struct NetConfig {
    /// Shard worker threads (and engine shard count).
    pub shards: usize,
    /// Capacity of the admission queue and of each per-shard queue.
    pub queue_depth: usize,
    /// Retry delay suggested in `Busy` answers.
    pub retry_after_ms: u32,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            shards: crate::engine::DEFAULT_SHARDS,
            queue_depth: 256,
            retry_after_ms: 2,
        }
    }
}

/// A bound TCP front-end around a fresh [`ServiceEngine`]. Construct
/// with [`Server::bind`], then call [`Server::run`] (blocking) — it
/// returns the final [`StatsSnapshot`] once a client sends a
/// `shutdown` frame.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    config: NetConfig,
}

impl Server {
    /// Bind the listener. Pass port 0 to let the OS choose (read it
    /// back with [`Server::local_addr`]).
    pub fn bind(addr: impl ToSocketAddrs, config: NetConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        Ok(Server {
            listener,
            local_addr,
            config,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Serve until a client sends a `shutdown` frame, then drain all
    /// queues and return the lifetime counters.
    pub fn run(self) -> StatsSnapshot {
        let config = self.config;
        let engine = Arc::new(RwLock::new(ServiceEngine::with_shards(config.shards)));
        let stats = Arc::new(StatsInner::new());
        let outstanding = Arc::new(ShardDrain::default());

        // Per-shard worker threads: execute probe/query-part jobs under
        // the shared engine lock.
        let mut shard_txs = Vec::with_capacity(config.shards);
        let mut workers = Vec::with_capacity(config.shards);
        for _ in 0..config.shards {
            let (tx, rx) = mpsc::sync_channel::<ShardJob>(config.queue_depth);
            shard_txs.push(tx);
            let engine = engine.clone();
            let outstanding = outstanding.clone();
            workers.push(thread::spawn(move || shard_worker(rx, engine, outstanding)));
        }

        // The dispatcher: the only thread that submits shard jobs or
        // runs barriers, which is what makes drain-before-barrier a
        // local argument instead of a distributed one.
        let (admission_tx, admission_rx) = mpsc::sync_channel::<Job>(config.queue_depth);
        let dispatcher = {
            let engine = engine.clone();
            let stats = stats.clone();
            let outstanding = outstanding.clone();
            thread::spawn(move || dispatch(admission_rx, shard_txs, engine, stats, outstanding))
        };

        // Accept loop. Connection threads are joined before the
        // admission sender drops so the dispatcher drains completely.
        let ctx = Arc::new(ConnCtx {
            engine: engine.clone(),
            stats: stats.clone(),
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            local_addr: self.local_addr,
            retry_after_ms: config.retry_after_ms,
        });
        let mut conn_threads = Vec::new();
        let mut next_conn_id = 0u64;
        for stream in self.listener.incoming() {
            if ctx.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            let id = next_conn_id;
            next_conn_id += 1;
            let ctx = ctx.clone();
            let tx = admission_tx.clone();
            conn_threads.push(thread::spawn(move || serve_connection(stream, tx, ctx, id)));
        }
        for t in conn_threads {
            let _ = t.join();
        }
        drop(admission_tx);
        let _ = dispatcher.join();
        for w in workers {
            let _ = w.join();
        }

        let open_sessions = engine.read().unwrap().open_sessions() as u64;
        stats.snapshot(open_sessions)
    }
}

/// One admitted op waiting for the dispatcher.
struct Job {
    req: Request,
    reply: ReplyTo,
}

/// One unit of shard work.
enum ShardJob {
    /// A whole probe op, owned by one shard.
    Probe {
        session: u64,
        player: u32,
        objects: Vec<u32>,
        reply: ReplyTo,
    },
    /// One shard's slice of a preference query.
    Query {
        members: Vec<(usize, u32)>,
        objects: Arc<Option<Vec<u32>>>,
        cell: Arc<MergeCell>,
    },
}

/// Per-player query partial: `(ones, digest)` for one queried member,
/// `None` until its shard fills the slot. Paired with a countdown of
/// unfilled slots so the last shard knows to fold and answer.
type QuerySlots = (Vec<Option<(u64, u64)>>, usize);

/// Merge buffer for a cross-shard query: the last shard to fill its
/// slice folds the partials (in original request order) and answers.
struct MergeCell {
    session: u64,
    slots: Mutex<QuerySlots>,
    reply: ReplyTo,
}

/// Where and how to answer an admitted op.
struct ReplyTo {
    conn: Arc<Mutex<TcpStream>>,
    seq: u64,
    admitted: Instant,
    stats: Arc<StatsInner>,
}

impl ReplyTo {
    /// Write the final answer, count it, and record its latency. Write
    /// errors are ignored: the op has executed either way, and a client
    /// that hung up simply misses its answer.
    fn answer(&self, resp: &Response) {
        self.stats.completed.fetch_add(1, Ordering::Relaxed);
        self.stats
            .record_latency(self.admitted.elapsed().as_micros() as u64);
        let frame = ServerFrame::Resp {
            seq: self.seq,
            response: resp.clone(),
        };
        let mut conn = self.conn.lock().unwrap();
        let _ = write_frame(&mut *conn, frame.encode().as_bytes());
    }
}

/// Outstanding shard-job counter: barriers wait on it to drain.
#[derive(Default)]
struct ShardDrain {
    count: Mutex<usize>,
    idle: Condvar,
}

impl ShardDrain {
    fn add(&self, n: usize) {
        *self.count.lock().unwrap() += n;
    }

    fn done_one(&self) {
        let mut count = self.count.lock().unwrap();
        *count -= 1;
        if *count == 0 {
            self.idle.notify_all();
        }
    }

    fn wait_idle(&self) {
        let mut count = self.count.lock().unwrap();
        while *count > 0 {
            count = self.idle.wait(count).unwrap();
        }
    }
}

fn shard_worker(
    rx: Receiver<ShardJob>,
    engine: Arc<RwLock<ServiceEngine>>,
    drain: Arc<ShardDrain>,
) {
    while let Ok(job) = rx.recv() {
        {
            let engine = engine.read().unwrap();
            match job {
                ShardJob::Probe {
                    session,
                    player,
                    objects,
                    reply,
                } => {
                    // The dispatcher validated the session while routing
                    // and no barrier (the only thing that closes one)
                    // can run until this job drains.
                    let state = engine
                        .session(session)
                        .expect("routed probe outlives its session");
                    let resp = probe_response(engine.board(), state, session, player, &objects);
                    reply.answer(&resp);
                }
                ShardJob::Query {
                    members,
                    objects,
                    cell,
                } => {
                    let state = engine
                        .session(cell.session)
                        .expect("routed query outlives its session");
                    let part = query_part(state, &members, objects.as_deref());
                    let mut slots = cell.slots.lock().unwrap();
                    for (pos, ones, digest) in part {
                        slots.0[pos] = Some((ones, digest));
                    }
                    slots.1 -= 1;
                    if slots.1 == 0 {
                        let resp = merge_preferences(cell.session, &slots.0);
                        cell.reply.answer(&resp);
                    }
                }
            }
        }
        drain.done_one();
    }
}

fn dispatch(
    admission_rx: Receiver<Job>,
    shard_txs: Vec<SyncSender<ShardJob>>,
    engine: Arc<RwLock<ServiceEngine>>,
    stats: Arc<StatsInner>,
    drain: Arc<ShardDrain>,
) {
    while let Ok(Job { req, reply }) = admission_rx.recv() {
        stats.depth.fetch_sub(1, Ordering::Relaxed);
        if req.is_shardable() {
            let routed = engine.read().unwrap().route_shardable(&req);
            match routed {
                Routed::Reject(resp) => reply.answer(&resp),
                Routed::Probe { shard } => {
                    let Request::SubmitProbes {
                        session,
                        player,
                        objects,
                    } = req
                    else {
                        unreachable!("probe routing for a non-probe op");
                    };
                    drain.add(1);
                    // Blocking send: an accepted op is never dropped;
                    // a full shard queue backs pressure up to admission.
                    shard_txs[shard]
                        .send(ShardJob::Probe {
                            session,
                            player,
                            objects,
                            reply,
                        })
                        .expect("shard worker outlives the dispatcher");
                }
                Routed::Query { width, parts } => {
                    let Request::QueryPreferences {
                        session, objects, ..
                    } = req
                    else {
                        unreachable!("query routing for a non-query op");
                    };
                    let objects = Arc::new(objects);
                    let cell = Arc::new(MergeCell {
                        session,
                        slots: Mutex::new((vec![None; width], parts.len())),
                        reply,
                    });
                    drain.add(parts.len());
                    for (shard, members) in parts {
                        shard_txs[shard]
                            .send(ShardJob::Query {
                                members,
                                objects: objects.clone(),
                                cell: cell.clone(),
                            })
                            .expect("shard worker outlives the dispatcher");
                    }
                }
            }
        } else {
            // Barrier: every admitted shardable op finishes first, so
            // the world transition sees exactly the ops admitted before
            // it — the batch flush contract, verbatim.
            drain.wait_idle();
            let resp = engine.write().unwrap().barrier(&req);
            reply.answer(&resp);
        }
    }
}

/// Shared state the connection threads need.
struct ConnCtx {
    engine: Arc<RwLock<ServiceEngine>>,
    stats: Arc<StatsInner>,
    shutdown: AtomicBool,
    conns: Mutex<Vec<(u64, TcpStream)>>,
    local_addr: SocketAddr,
    retry_after_ms: u32,
}

impl ConnCtx {
    /// Flip the shutdown flag, poke the acceptor awake, and unblock
    /// every connection thread's pending read.
    fn trigger_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.local_addr);
        for (_, conn) in self.conns.lock().unwrap().iter() {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }
}

fn serve_connection(stream: TcpStream, admission_tx: SyncSender<Job>, ctx: Arc<ConnCtx>, id: u64) {
    if let Ok(clone) = stream.try_clone() {
        ctx.conns.lock().unwrap().push((id, clone));
    }
    connection_loop(&stream, admission_tx, &ctx);
    // Sever the socket itself, not just this handle: the registry clone
    // (and any straggler reply handle) keeps the fd alive, and without
    // an explicit shutdown the peer would never see EOF.
    let _ = stream.shutdown(Shutdown::Both);
    ctx.conns.lock().unwrap().retain(|(cid, _)| *cid != id);
}

fn connection_loop(stream: &TcpStream, admission_tx: SyncSender<Job>, ctx: &Arc<ConnCtx>) {
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let mut reader = stream;
    let send = |frame: &ServerFrame| {
        let mut w = writer.lock().unwrap();
        write_frame(&mut *w, frame.encode().as_bytes())
    };
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(p)) => p,
            // Clean EOF, a lying length prefix (no way to resync), or a
            // shutdown-severed socket: either way this stream is done.
            Ok(None) => return,
            Err(e) => {
                let _ = send(&ServerFrame::Err {
                    seq: 0,
                    message: e.to_string(),
                });
                return;
            }
        };
        let Ok(text) = std::str::from_utf8(&payload) else {
            // Framing is still intact (the length prefix was honest),
            // so answer typed and keep the connection alive.
            let _ = send(&ServerFrame::Err {
                seq: 0,
                message: "frame payload is not UTF-8".to_string(),
            });
            continue;
        };
        let frame = match ClientFrame::decode(text) {
            Ok(f) => f,
            Err(message) => {
                let _ = send(&ServerFrame::Err { seq: 0, message });
                continue;
            }
        };
        match frame {
            ClientFrame::Hello => {
                if send(&ServerFrame::Hello).is_err() {
                    return;
                }
            }
            ClientFrame::Op { seq, line } => match parse_op(&line) {
                Err(message) => {
                    // The satellite bugfix, shared with the stdin loop:
                    // a malformed op line is a typed rejection, not a
                    // dead session.
                    ctx.stats.malformed.fetch_add(1, Ordering::Relaxed);
                    let _ = send(&ServerFrame::Resp {
                        seq,
                        response: Response::Rejected(ServiceError::Malformed { message }),
                    });
                }
                Ok(req) => {
                    let job = Job {
                        req,
                        reply: ReplyTo {
                            conn: writer.clone(),
                            seq,
                            admitted: Instant::now(),
                            stats: ctx.stats.clone(),
                        },
                    };
                    ctx.stats.depth_enter();
                    match admission_tx.try_send(job) {
                        Ok(()) => {
                            ctx.stats.admitted.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(TrySendError::Full(_)) => {
                            ctx.stats.depth_leave();
                            ctx.stats.busy.fetch_add(1, Ordering::Relaxed);
                            let _ = send(&ServerFrame::Resp {
                                seq,
                                response: Response::Busy {
                                    retry_after_ms: ctx.retry_after_ms,
                                },
                            });
                        }
                        Err(TrySendError::Disconnected(_)) => {
                            ctx.stats.depth_leave();
                            return;
                        }
                    }
                }
            },
            ClientFrame::Stats { seq } => {
                let open_sessions = ctx.engine.read().unwrap().open_sessions() as u64;
                let _ = send(&ServerFrame::Stats {
                    seq,
                    stats: ctx.stats.snapshot(open_sessions),
                });
            }
            ClientFrame::Shutdown { seq } => {
                let _ = send(&ServerFrame::Bye { seq });
                ctx.trigger_shutdown();
                return;
            }
        }
    }
}

/// Lock-free lifetime counters plus a log₂ latency histogram.
struct StatsInner {
    admitted: AtomicU64,
    busy: AtomicU64,
    malformed: AtomicU64,
    completed: AtomicU64,
    depth: AtomicU64,
    depth_peak: AtomicU64,
    latency_us: [AtomicU64; 64],
}

impl StatsInner {
    fn new() -> StatsInner {
        StatsInner {
            admitted: AtomicU64::new(0),
            busy: AtomicU64::new(0),
            malformed: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            depth: AtomicU64::new(0),
            depth_peak: AtomicU64::new(0),
            latency_us: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Count a queue slot *before* the `try_send` that fills it — the
    /// dispatcher may drain the job (and decrement the gauge) before
    /// the admitting thread runs another instruction, so incrementing
    /// after the send would race the gauge below zero.
    fn depth_enter(&self) {
        let depth = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.depth_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// Undo [`StatsInner::depth_enter`] when admission failed.
    fn depth_leave(&self) {
        self.depth.fetch_sub(1, Ordering::Relaxed);
    }

    fn record_latency(&self, micros: u64) {
        let bucket = if micros == 0 {
            0
        } else {
            (64 - micros.leading_zeros() as usize).min(63)
        };
        self.latency_us[bucket].fetch_add(1, Ordering::Relaxed);
    }

    fn percentile(&self, counts: &[u64; 64], total: u64, numer: u64, denom: u64) -> u64 {
        if total == 0 {
            return 0;
        }
        let rank = (total * numer).div_ceil(denom).max(1);
        let mut seen = 0;
        for (bucket, &n) in counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if bucket == 0 { 0 } else { 1u64 << (bucket - 1) };
            }
        }
        1u64 << 62
    }

    fn snapshot(&self, open_sessions: u64) -> StatsSnapshot {
        let counts: [u64; 64] = std::array::from_fn(|i| self.latency_us[i].load(Ordering::Relaxed));
        let total: u64 = counts.iter().sum();
        StatsSnapshot {
            admitted: self.admitted.load(Ordering::Relaxed),
            busy_rejected: self.busy.load(Ordering::Relaxed),
            malformed: self.malformed.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            open_sessions,
            queue_depth_peak: self.depth_peak.load(Ordering::Relaxed),
            p50_us: self.percentile(&counts, total, 1, 2),
            p99_us: self.percentile(&counts, total, 99, 100),
        }
    }
}

// ---------------------------------------------------------------------------
// Client side
// ---------------------------------------------------------------------------

/// What [`replay_over_socket`] brings back.
#[derive(Clone, Debug)]
pub struct SocketReplay {
    /// Final answer per trace op, in trace order — digests over this
    /// vector are comparable to `ServiceEngine::execute` output.
    pub responses: Vec<Response>,
    /// How many `Busy` answers were retried along the way (overload
    /// evidence; zero information content for the digest).
    pub busy_retries: u64,
}

/// Max in-flight shardable ops per connection before the client reaps
/// answers.
const PIPELINE_WINDOW: usize = 64;

/// Cap on the honored `Busy` retry delay.
const MAX_RETRY_MS: u64 = 50;

/// Replay a trace over TCP across `connections` sockets and collect
/// the final answers in trace order.
///
/// Ordering contract (see the module docs): every op of a session uses
/// the connection `session_id % connections`; an `Open` drains all
/// connections and is awaited (ids are assigned in open order, so the
/// k-th open of a fresh server gets id k); any other barrier drains and
/// is awaited on its session's connection; shardable ops pipeline up to
/// [`PIPELINE_WINDOW`] deep. `Busy` answers are retried after the
/// suggested delay and never appear in `responses`.
pub fn replay_over_socket(
    addr: impl ToSocketAddrs,
    ops: &[Request],
    connections: usize,
) -> io::Result<SocketReplay> {
    let connections = connections.max(1);
    let addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address to connect to"))?;
    let mut client = ReplayClient::connect(addr, connections)?;
    let mut opens_sent = 0usize;
    for (index, op) in ops.iter().enumerate() {
        let seq = index as u64;
        match op {
            Request::Open(_) => {
                let conn = opens_sent % connections;
                opens_sent += 1;
                client.drain_all()?;
                client.send_op(conn, seq, op)?;
                client.await_answer(seq)?;
            }
            _ if !op.is_shardable() => {
                let conn = op.session().expect("non-open op has a session") as usize % connections;
                client.drain_conn(conn)?;
                client.send_op(conn, seq, op)?;
                client.await_answer(seq)?;
            }
            _ => {
                let conn = op.session().expect("shardable op has a session") as usize % connections;
                while client.in_flight[conn] >= PIPELINE_WINDOW {
                    client.pump_one()?;
                }
                client.send_op(conn, seq, op)?;
            }
        }
    }
    client.drain_all()?;
    let responses = client
        .responses
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|| panic!("op {i} finished the replay unanswered")))
        .collect();
    Ok(SocketReplay {
        responses,
        busy_retries: client.busy_retries,
    })
}

/// An answered-or-dead message from one reader thread.
enum Event {
    Frame(ServerFrame),
    Closed(usize),
}

struct ReplayClient {
    writers: Vec<TcpStream>,
    events: mpsc::Receiver<Event>,
    /// `seq → (connection, op line)` for everything not yet answered —
    /// the line is kept so a `Busy` answer can resend verbatim.
    pending: HashMap<u64, (usize, String)>,
    in_flight: Vec<usize>,
    responses: Vec<Option<Response>>,
    busy_retries: u64,
}

impl ReplayClient {
    fn connect(addr: SocketAddr, connections: usize) -> io::Result<ReplayClient> {
        let (event_tx, events) = mpsc::channel::<Event>();
        let mut writers = Vec::with_capacity(connections);
        for conn in 0..connections {
            let mut stream = TcpStream::connect(addr)?;
            stream.set_nodelay(true)?;
            handshake(&mut stream)?;
            let mut reader = stream.try_clone()?;
            writers.push(stream);
            let event_tx = event_tx.clone();
            thread::spawn(move || {
                while let Ok(Some(payload)) = read_frame(&mut reader) {
                    let frame = std::str::from_utf8(&payload)
                        .ok()
                        .and_then(|t| ServerFrame::decode(t).ok());
                    match frame {
                        Some(f) => {
                            if event_tx.send(Event::Frame(f)).is_err() {
                                return;
                            }
                        }
                        // An undecodable server frame means the stream
                        // is unusable; report the close.
                        None => break,
                    }
                }
                let _ = event_tx.send(Event::Closed(conn));
            });
        }
        Ok(ReplayClient {
            writers,
            events,
            pending: HashMap::new(),
            in_flight: vec![0; connections],
            responses: Vec::new(),
            busy_retries: 0,
        })
    }

    fn send_op(&mut self, conn: usize, seq: u64, op: &Request) -> io::Result<()> {
        let line = format_op(op);
        self.send_line(conn, seq, &line)?;
        self.pending.insert(seq, (conn, line));
        self.in_flight[conn] += 1;
        if self.responses.len() <= seq as usize {
            self.responses.resize(seq as usize + 1, None);
        }
        Ok(())
    }

    fn send_line(&mut self, conn: usize, seq: u64, line: &str) -> io::Result<()> {
        let frame = ClientFrame::Op {
            seq,
            line: line.to_string(),
        };
        write_frame(&mut self.writers[conn], frame.encode().as_bytes())
    }

    /// Receive and apply one event: record an answer, or resend on
    /// `Busy` after the suggested delay.
    fn pump_one(&mut self) -> io::Result<()> {
        let event = self
            .events
            .recv()
            .map_err(|_| broken("every reader thread died mid-replay"))?;
        match event {
            Event::Closed(conn) => {
                if self.in_flight[conn] > 0 {
                    return Err(broken("server closed a connection with ops in flight"));
                }
                Ok(())
            }
            Event::Frame(ServerFrame::Resp { seq, response }) => {
                if let Response::Busy { retry_after_ms } = response {
                    self.busy_retries += 1;
                    let (conn, line) = self
                        .pending
                        .get(&seq)
                        .cloned()
                        .ok_or_else(|| broken("Busy answer for an unknown sequence number"))?;
                    thread::sleep(Duration::from_millis(
                        u64::from(retry_after_ms).min(MAX_RETRY_MS),
                    ));
                    self.send_line(conn, seq, &line)
                } else {
                    let (conn, _) = self
                        .pending
                        .remove(&seq)
                        .ok_or_else(|| broken("answer for an unknown sequence number"))?;
                    self.in_flight[conn] -= 1;
                    self.responses[seq as usize] = Some(response);
                    Ok(())
                }
            }
            Event::Frame(ServerFrame::Err { message, .. }) => {
                Err(broken(&format!("server protocol error: {message}")))
            }
            Event::Frame(_) => Ok(()),
        }
    }

    fn drain_conn(&mut self, conn: usize) -> io::Result<()> {
        while self.in_flight[conn] > 0 {
            self.pump_one()?;
        }
        Ok(())
    }

    fn drain_all(&mut self) -> io::Result<()> {
        while self.in_flight.iter().sum::<usize>() > 0 {
            self.pump_one()?;
        }
        Ok(())
    }

    fn await_answer(&mut self, seq: u64) -> io::Result<()> {
        while self.responses[seq as usize].is_none() {
            self.pump_one()?;
        }
        Ok(())
    }
}

fn broken(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.to_string())
}

/// Exchange `hello` frames on a fresh connection.
fn handshake(stream: &mut (impl Read + Write)) -> io::Result<()> {
    write_frame(stream, ClientFrame::Hello.encode().as_bytes())?;
    let payload = read_frame(stream)?
        .ok_or_else(|| broken("server closed before answering the handshake"))?;
    let text = std::str::from_utf8(&payload).map_err(|_| broken("handshake is not UTF-8"))?;
    match ServerFrame::decode(text) {
        Ok(ServerFrame::Hello) => Ok(()),
        Ok(other) => Err(broken(&format!(
            "expected a {WIRE_VERSION} hello, got {other:?}"
        ))),
        Err(message) => Err(broken(&message)),
    }
}

/// Ask a running server for its counters over a fresh connection.
pub fn request_stats(addr: impl ToSocketAddrs) -> io::Result<StatsSnapshot> {
    let mut stream = TcpStream::connect(addr)?;
    handshake(&mut stream)?;
    write_frame(
        &mut stream,
        ClientFrame::Stats { seq: 1 }.encode().as_bytes(),
    )?;
    loop {
        let payload =
            read_frame(&mut stream)?.ok_or_else(|| broken("server closed before the stats"))?;
        let text = std::str::from_utf8(&payload).map_err(|_| broken("stats frame is not UTF-8"))?;
        match ServerFrame::decode(text).map_err(|m| broken(&m))? {
            ServerFrame::Stats { stats, .. } => return Ok(stats),
            ServerFrame::Err { message, .. } => {
                return Err(broken(&format!("server protocol error: {message}")))
            }
            _ => continue,
        }
    }
}

/// Ask a running server to drain and exit; returns once the `bye` is
/// acknowledged.
pub fn request_shutdown(addr: impl ToSocketAddrs) -> io::Result<()> {
    let mut stream = TcpStream::connect(addr)?;
    handshake(&mut stream)?;
    write_frame(
        &mut stream,
        ClientFrame::Shutdown { seq: 1 }.encode().as_bytes(),
    )?;
    loop {
        let payload = read_frame(&mut stream)?
            .ok_or_else(|| broken("server closed before acknowledging shutdown"))?;
        let text = std::str::from_utf8(&payload).map_err(|_| broken("bye frame is not UTF-8"))?;
        match ServerFrame::decode(text).map_err(|m| broken(&m))? {
            ServerFrame::Bye { .. } => return Ok(()),
            ServerFrame::Err { message, .. } => {
                return Err(broken(&format!("server protocol error: {message}")))
            }
            _ => continue,
        }
    }
}
