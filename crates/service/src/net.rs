//! TCP front-end for the service engine: threaded server, admission
//! control, and the socket replay client.
//!
//! # Topology
//!
//! ```text
//! clients ──► acceptor ──► connection threads (one per socket)
//!                              │ try_send            ╲ full → typed Busy
//!                              ▼
//!                    bounded admission queue
//!                              │ recv (FIFO)
//!                              ▼
//!                         dispatcher ──────────────► barrier ops:
//!                              │ route under            drain shards,
//!                              │ engine read lock       engine write lock
//!                              ▼
//!                  bounded per-shard queues
//!                              │
//!                              ▼
//!                 shard workers (engine read lock)
//! ```
//!
//! # Why answers stay bit-identical to the in-process replay
//!
//! The batch engine's contract is: shardable ops (probes and preference
//! queries) may execute in any order between *barriers* (open, churn,
//! epoch, close), which serialize. The socket path preserves exactly
//! that contract with OS threads instead of batch buckets:
//!
//! * Shardable ops are validated and routed by the single dispatcher
//!   thread using [`ServiceEngine::route_shardable`] — the same
//!   validation order and group-graph shard key as a batch flush — and
//!   then executed on per-shard worker threads under a shared lock.
//!   Probe side effects commute (memoized oracle, same-value board
//!   claims) and queries are pure reads, so worker interleaving is
//!   unobservable.
//! * A barrier op makes the dispatcher first drain every shard queue
//!   (an outstanding-job counter on a condvar), then run
//!   [`ServiceEngine`]'s barrier path under the exclusive lock. Every
//!   op admitted before the barrier is therefore fully applied before
//!   the world transition, exactly like the batch flush.
//! * Overload is refused *at admission*: a full queue answers a typed
//!   [`Response::Busy`] and executes nothing. An op that was accepted
//!   is never dropped — queue hand-offs past admission block instead
//!   of failing, so backpressure propagates to the client.
//!
//! The [`replay_over_socket`] client adds the client-side half of the
//! ordering argument: all ops of a session ride one connection, opens
//! are globally serialized (session ids are assigned in open order),
//! and a session's barrier is only sent after all its earlier ops have
//! been answered. Busy retries therefore reorder shardable ops only
//! within a barrier-free window, where order does not matter.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard};
use std::thread;
use std::time::{Duration, Instant};

use crate::checkpoint::{self, RecoverySource};
use crate::engine::{merge_preferences, probe_response, query_part, Routed, ServiceEngine};
#[cfg(feature = "fault-inject")]
use crate::fault::FaultPlan;
use crate::journal::{self, op_key, CompactionPolicy, DedupeWindow, Journal};
use crate::request::{mix, Request, Response, ServiceError};
use crate::wire::{read_frame, write_frame, ClientFrame, ServerFrame, StatsSnapshot, WIRE_VERSION};
use crate::workload::{format_op, parse_op};

/// Poison-tolerant engine read: a panicked *writer* poisons the lock,
/// but readers here only ever observe either pre-panic state (the
/// injected panics fire before any mutation) or the post-rebuild
/// engine, both structurally sound — and the dispatcher rebuilds from
/// the journal before answering anything after a poisoning.
fn read_engine(lock: &RwLock<ServiceEngine>) -> RwLockReadGuard<'_, ServiceEngine> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

/// Poison-tolerant mutex lock (a writer panicking mid-`write_frame`
/// must not cascade into every later answer on the connection).
fn lock_ok<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Tuning knobs for [`Server`]. The defaults match the batch engine's
/// shard count and keep the admission queue small enough that overload
/// surfaces as `Busy` quickly instead of as latency.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Shard worker threads (and engine shard count).
    pub shards: usize,
    /// Capacity of the admission queue and of each per-shard queue.
    pub queue_depth: usize,
    /// Retry delay suggested in `Busy` answers.
    pub retry_after_ms: u32,
    /// Per-connection socket read timeout in milliseconds (`0`
    /// disables): a stalled client (slow-loris) gets its connection
    /// closed instead of pinning a thread forever.
    pub read_timeout_ms: u64,
    /// Per-connection socket write timeout in milliseconds (`0`
    /// disables): a client that stops reading cannot wedge answer
    /// writes indefinitely.
    pub write_timeout_ms: u64,
    /// Write-ahead journal path. When set, every admitted mutating op
    /// is appended and fsynced *before* it executes, so a killed server
    /// can resume from the journal with bit-identical answers.
    pub journal: Option<PathBuf>,
    /// Rebuild the engine and dedupe window from `journal` before
    /// serving (requires `journal`); the file keeps growing afterwards.
    pub recover: bool,
    /// Checkpoint + truncate the journal once this many mutating ops
    /// accumulate past the last checkpoint (`--compact-every`).
    pub compact_every: Option<u64>,
    /// Checkpoint + truncate the journal once this many bytes
    /// accumulate past the last checkpoint (`--compact-bytes`).
    pub compact_bytes: Option<u64>,
    /// Deterministic fault schedule (test builds only; the default
    /// empty plan makes every hook a no-op).
    #[cfg(feature = "fault-inject")]
    pub fault: Arc<FaultPlan>,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            shards: crate::engine::DEFAULT_SHARDS,
            queue_depth: 256,
            retry_after_ms: 2,
            read_timeout_ms: 30_000,
            write_timeout_ms: 30_000,
            journal: None,
            recover: false,
            compact_every: None,
            compact_bytes: None,
            #[cfg(feature = "fault-inject")]
            fault: Arc::new(FaultPlan::none()),
        }
    }
}

/// A bound TCP front-end around a fresh [`ServiceEngine`]. Construct
/// with [`Server::bind`], then call [`Server::run`] (blocking) — it
/// returns the final [`StatsSnapshot`] once a client sends a
/// `shutdown` frame.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    config: NetConfig,
    engine: ServiceEngine,
    dedupe: DedupeWindow,
    journal: Option<Journal>,
    /// Ops replayed from the journal at bind time (0 without
    /// `recover`).
    recovered_ops: usize,
    /// Where the recovered state came from (`None` without `recover`).
    recovery_source: Option<RecoverySource>,
    /// Mutating ops across the full recovered history (checkpoint +
    /// tail); the dispatcher's op counter starts here.
    history_ops: u64,
    /// Ops already covered by a checkpoint at bind time; the journal
    /// tail starts past this base.
    journal_base: u64,
}

impl Server {
    /// Bind the listener and, when [`NetConfig::recover`] is set,
    /// rebuild the engine from the journal before accepting anything.
    /// Pass port 0 to let the OS choose (read it back with
    /// [`Server::local_addr`]).
    pub fn bind(addr: impl ToSocketAddrs, config: NetConfig) -> io::Result<Server> {
        let (engine, dedupe, journal, recovered_ops, recovery) =
            match (&config.journal, config.recover) {
                (Some(path), true) => {
                    let rec = journal::recover(path, config.shards)?;
                    let journal = Journal::open_append(path)?;
                    let recovery = (rec.source, rec.history_ops, rec.journal_base);
                    (
                        rec.engine,
                        rec.dedupe,
                        Some(journal),
                        rec.replayed,
                        Some(recovery),
                    )
                }
                (Some(path), false) => (
                    ServiceEngine::with_shards(config.shards),
                    DedupeWindow::new(),
                    Some(Journal::create(path)?),
                    0,
                    None,
                ),
                (None, true) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        "recover requires a journal path",
                    ))
                }
                (None, false) => (
                    ServiceEngine::with_shards(config.shards),
                    DedupeWindow::new(),
                    None,
                    0,
                    None,
                ),
            };
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let (recovery_source, history_ops, journal_base) = match recovery {
            Some((source, ops, base)) => (Some(source), ops, base),
            None => (None, 0, 0),
        };
        Ok(Server {
            listener,
            local_addr,
            config,
            engine,
            dedupe,
            journal,
            recovered_ops,
            recovery_source,
            history_ops,
            journal_base,
        })
    }

    /// Ops replayed from the journal at bind time (0 unless
    /// [`NetConfig::recover`] was set).
    pub fn recovered_ops(&self) -> usize {
        self.recovered_ops
    }

    /// Where the recovered state came from: a checkpoint (plus the
    /// journal tail) or the full journal. `None` without
    /// [`NetConfig::recover`].
    pub fn recovery_source(&self) -> Option<RecoverySource> {
        self.recovery_source
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Serve until a client sends a `shutdown` frame, then drain all
    /// queues and return the lifetime counters.
    pub fn run(self) -> StatsSnapshot {
        let Server {
            listener,
            local_addr,
            config,
            engine,
            dedupe,
            journal,
            recovered_ops: _,
            recovery_source: _,
            history_ops,
            journal_base,
        } = self;
        let engine = Arc::new(RwLock::new(engine));
        let stats = Arc::new(StatsInner::new());
        let outstanding = Arc::new(ShardDrain::default());

        // Per-shard worker threads: execute probe/query-part jobs under
        // the shared engine lock.
        let mut shard_txs = Vec::with_capacity(config.shards);
        let mut workers = Vec::with_capacity(config.shards);
        for _ in 0..config.shards {
            let (tx, rx) = mpsc::sync_channel::<ShardJob>(config.queue_depth);
            shard_txs.push(tx);
            let engine = engine.clone();
            let outstanding = outstanding.clone();
            let stats = stats.clone();
            workers.push(thread::spawn(move || {
                shard_worker(rx, engine, outstanding, stats)
            }));
        }

        // The dispatcher: the only thread that submits shard jobs or
        // runs barriers, which is what makes drain-before-barrier a
        // local argument instead of a distributed one.
        let (admission_tx, admission_rx) = mpsc::sync_channel::<Job>(config.queue_depth);
        let dispatcher = {
            // The recovered tail's on-disk size primes the byte
            // threshold so a restart does not reset byte-based
            // compaction progress.
            let tail_bytes = config
                .journal
                .as_deref()
                .and_then(|p| std::fs::metadata(p).ok())
                .map_or(0, |m| m.len());
            stats
                .tail_len
                .store(history_ops - journal_base, Ordering::Relaxed);
            let state = Dispatcher {
                shard_txs,
                engine: engine.clone(),
                stats: stats.clone(),
                drain: outstanding.clone(),
                journal,
                dedupe,
                journal_path: config.journal.clone(),
                shards: config.shards,
                dispatched: 0,
                policy: CompactionPolicy {
                    every: config.compact_every,
                    bytes: config.compact_bytes,
                },
                ops_applied: history_ops,
                base: journal_base,
                tail_bytes,
                cycles: 0,
                #[cfg(feature = "fault-inject")]
                fault: config.fault.clone(),
            };
            thread::spawn(move || dispatch(admission_rx, state))
        };

        // Accept loop. Connection threads are joined before the
        // admission sender drops so the dispatcher drains completely.
        let ctx = Arc::new(ConnCtx {
            engine: engine.clone(),
            stats: stats.clone(),
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            local_addr,
            retry_after_ms: config.retry_after_ms,
            #[cfg(feature = "fault-inject")]
            fault: config.fault.clone(),
        });
        let mut conn_threads = Vec::new();
        let mut next_conn_id = 0u64;
        for stream in listener.incoming() {
            if ctx.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            // Socket timeouts apply to the whole fd (reads in the
            // connection loop, answer writes from workers sharing the
            // writer clone), so a stalled peer bounds every wait.
            if config.read_timeout_ms > 0 {
                let _ =
                    stream.set_read_timeout(Some(Duration::from_millis(config.read_timeout_ms)));
            }
            if config.write_timeout_ms > 0 {
                let _ =
                    stream.set_write_timeout(Some(Duration::from_millis(config.write_timeout_ms)));
            }
            let id = next_conn_id;
            next_conn_id += 1;
            let ctx = ctx.clone();
            let tx = admission_tx.clone();
            conn_threads.push(thread::spawn(move || serve_connection(stream, tx, ctx, id)));
        }
        for t in conn_threads {
            let _ = t.join();
        }
        drop(admission_tx);
        let _ = dispatcher.join();
        for w in workers {
            let _ = w.join();
        }

        let open_sessions = read_engine(&engine).open_sessions() as u64;
        stats.snapshot(open_sessions)
    }
}

/// One admitted op waiting for the dispatcher.
struct Job {
    req: Request,
    reply: ReplyTo,
}

/// One unit of shard work.
enum ShardJob {
    /// A whole probe op, owned by one shard.
    Probe {
        session: u64,
        player: u32,
        objects: Vec<u32>,
        reply: ReplyTo,
        /// Fault-injection: panic before touching any state.
        #[cfg(feature = "fault-inject")]
        inject_panic: bool,
    },
    /// One shard's slice of a preference query.
    Query {
        members: Vec<(usize, u32)>,
        objects: Arc<Option<Vec<u32>>>,
        cell: Arc<MergeCell>,
        /// Fault-injection: panic before touching any state.
        #[cfg(feature = "fault-inject")]
        inject_panic: bool,
    },
}

/// Per-player query partials: `(ones, digest)` per queried member,
/// `None` until its shard fills the slot; a countdown of unfilled
/// slices tells the last shard to fold and answer; `failed` latches
/// once a slice's worker panicked, so the query answers `Retryable`
/// exactly once and never merges partial state.
struct QuerySlots {
    parts: Vec<Option<(u64, u64)>>,
    remaining: usize,
    failed: bool,
}

/// Merge buffer for a cross-shard query: the last shard to fill its
/// slice folds the partials (in original request order) and answers.
struct MergeCell {
    session: u64,
    slots: Mutex<QuerySlots>,
    reply: ReplyTo,
}

impl MergeCell {
    /// Latch the failure and answer once; later slices (filled or
    /// failed) see the latch and stay silent.
    fn fail(&self, resp: &Response) {
        let mut slots = lock_ok(&self.slots);
        if !slots.failed {
            slots.failed = true;
            self.reply.answer(resp);
        }
    }
}

/// Where and how to answer an admitted op.
#[derive(Clone)]
struct ReplyTo {
    conn: Arc<Mutex<TcpStream>>,
    seq: u64,
    admitted: Instant,
    stats: Arc<StatsInner>,
}

impl ReplyTo {
    /// Write the final answer, count it, and record its latency. Write
    /// errors are ignored: the op has executed either way, and a client
    /// that hung up simply misses its answer.
    fn answer(&self, resp: &Response) {
        if matches!(resp, Response::Retryable { .. }) {
            self.stats.retryable.fetch_add(1, Ordering::Relaxed);
        }
        self.stats.completed.fetch_add(1, Ordering::Relaxed);
        self.stats
            .record_latency(self.admitted.elapsed().as_micros() as u64);
        let frame = ServerFrame::Resp {
            seq: self.seq,
            response: resp.clone(),
        };
        let mut conn = lock_ok(&self.conn);
        let _ = write_frame(&mut *conn, frame.encode().as_bytes());
    }

    /// Sever the underlying socket (drop-connection fault injection).
    #[cfg(feature = "fault-inject")]
    fn sever(&self) {
        let conn = lock_ok(&self.conn);
        let _ = conn.shutdown(Shutdown::Both);
    }
}

/// Outstanding shard-job counter: barriers wait on it to drain.
#[derive(Default)]
struct ShardDrain {
    count: Mutex<usize>,
    idle: Condvar,
}

impl ShardDrain {
    fn add(&self, n: usize) {
        *self.count.lock().unwrap() += n;
    }

    fn done_one(&self) {
        let mut count = self.count.lock().unwrap();
        *count -= 1;
        if *count == 0 {
            self.idle.notify_all();
        }
    }

    fn wait_idle(&self) {
        let mut count = self.count.lock().unwrap();
        while *count > 0 {
            count = self.idle.wait(count).unwrap();
        }
    }
}

/// Where a panicked shard job's `Retryable` answer goes.
enum FaultHandle {
    Reply(ReplyTo),
    Cell(Arc<MergeCell>),
}

/// Supervised shard worker: a panicking job answers a typed
/// [`Response::Retryable`] instead of tearing the thread (and with it
/// the whole server) down. Probe jobs panic before any board or oracle
/// mutation, and a query slice writes nothing on failure, so the
/// surviving state stays exactly what the journal describes and a
/// client resend re-executes cleanly.
fn shard_worker(
    rx: Receiver<ShardJob>,
    engine: Arc<RwLock<ServiceEngine>>,
    drain: Arc<ShardDrain>,
    stats: Arc<StatsInner>,
) {
    while let Ok(job) = rx.recv() {
        let handle = match &job {
            ShardJob::Probe { reply, .. } => FaultHandle::Reply(reply.clone()),
            ShardJob::Query { cell, .. } => FaultHandle::Cell(cell.clone()),
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| run_shard_job(&engine, job)));
        if outcome.is_err() {
            stats.worker_panics.fetch_add(1, Ordering::Relaxed);
            let resp = Response::Retryable {
                reason: "shard worker panicked; resend the op".to_string(),
            };
            match handle {
                FaultHandle::Reply(reply) => reply.answer(&resp),
                FaultHandle::Cell(cell) => cell.fail(&resp),
            }
        }
        // Always drain, success or panic: a barrier waiting on
        // `wait_idle` must not deadlock on a dead job.
        drain.done_one();
    }
}

fn run_shard_job(engine: &RwLock<ServiceEngine>, job: ShardJob) {
    let engine = read_engine(engine);
    match job {
        ShardJob::Probe {
            session,
            player,
            objects,
            reply,
            #[cfg(feature = "fault-inject")]
            inject_panic,
        } => {
            #[cfg(feature = "fault-inject")]
            if inject_panic {
                panic!("fault-inject: worker panic before probe execution");
            }
            // The dispatcher validated the session while routing
            // and no barrier (the only thing that closes one)
            // can run until this job drains.
            let state = engine
                .session(session)
                .expect("routed probe outlives its session");
            let resp = probe_response(engine.board(), state, session, player, &objects);
            reply.answer(&resp);
        }
        ShardJob::Query {
            members,
            objects,
            cell,
            #[cfg(feature = "fault-inject")]
            inject_panic,
        } => {
            #[cfg(feature = "fault-inject")]
            if inject_panic {
                panic!("fault-inject: worker panic before query slice");
            }
            let state = engine
                .session(cell.session)
                .expect("routed query outlives its session");
            let part = query_part(state, &members, objects.as_deref());
            let mut slots = lock_ok(&cell.slots);
            if slots.failed {
                // A sibling slice already answered Retryable; merging a
                // partial result now would answer the seq twice.
                return;
            }
            for (pos, ones, digest) in part {
                slots.parts[pos] = Some((ones, digest));
            }
            slots.remaining -= 1;
            if slots.remaining == 0 {
                let resp = merge_preferences(cell.session, &slots.parts);
                cell.reply.answer(&resp);
            }
        }
    }
}

/// Everything the dispatcher thread owns: the shard queues, the shared
/// engine, and the durability state (journal + dedupe window) that only
/// this thread touches — which is what makes "append before execute"
/// a straight-line argument instead of a concurrent one.
struct Dispatcher {
    shard_txs: Vec<SyncSender<ShardJob>>,
    engine: Arc<RwLock<ServiceEngine>>,
    stats: Arc<StatsInner>,
    drain: Arc<ShardDrain>,
    journal: Option<Journal>,
    dedupe: DedupeWindow,
    journal_path: Option<PathBuf>,
    shards: usize,
    dispatched: u64,
    /// Checkpoint/truncate thresholds (disabled when both are `None`).
    policy: CompactionPolicy,
    /// Mutating ops journaled across the full history (checkpoint +
    /// tail) — what a checkpoint written now would cover.
    ops_applied: u64,
    /// Ops covered by the last checkpoint; `ops_applied - base` is the
    /// replayable tail length.
    base: u64,
    /// Bytes appended to the journal since the last truncation.
    tail_bytes: u64,
    /// Completed compaction cycles this process (keys checkpoint
    /// faults; the lifetime stat lives in `stats.checkpoints`).
    cycles: u64,
    #[cfg(feature = "fault-inject")]
    fault: Arc<FaultPlan>,
}

fn dispatch(admission_rx: Receiver<Job>, mut d: Dispatcher) {
    while let Ok(Job { req, reply }) = admission_rx.recv() {
        d.stats.depth.fetch_sub(1, Ordering::Relaxed);
        let index = d.dispatched;
        d.dispatched += 1;
        d.handle(index, req, reply);
    }
}

impl Dispatcher {
    #[cfg_attr(not(feature = "fault-inject"), allow(unused_variables))]
    fn handle(&mut self, index: u64, req: Request, reply: ReplyTo) {
        #[cfg(feature = "fault-inject")]
        {
            self.fault.kill_at(index);
            if self.fault.drop_conn_at(index) {
                // Sever the client's socket; the op still executes and
                // its answer write fails silently — exactly what a mid-
                // flight network partition looks like to the server.
                reply.sever();
            }
        }
        // Dedupe barriers before journaling: a resend of an already-
        // executed barrier must answer the recorded response, not
        // re-apply the world transition. Shardable ops skip the window
        // — probes are idempotent (same-value board claims) and queries
        // are pure reads — so re-execution is already exact.
        let key = op_key(&req);
        if !req.is_shardable() {
            if let Some(resp) = self.dedupe.lookup(req.session(), reply.seq, key) {
                self.stats.deduped.fetch_add(1, Ordering::Relaxed);
                reply.answer(resp);
                return;
            }
        }
        // Durability point: an admitted mutating op hits the fsynced
        // journal *before* it executes. Crash after the append and the
        // recovery replay applies it; crash before and the client's
        // resend runs it fresh — either way exactly once.
        if req.is_mutating() {
            if let Some(journal) = &mut self.journal {
                match journal.append(reply.seq, &req) {
                    Err(_) => {
                        // A journal we cannot write is a durability
                        // promise we cannot keep: refuse the op, keep
                        // serving.
                        reply.answer(&Response::Retryable {
                            reason: "journal append failed; resend the op".to_string(),
                        });
                        return;
                    }
                    Ok(bytes) => {
                        self.stats.journaled.fetch_add(1, Ordering::Relaxed);
                        self.ops_applied += 1;
                        self.tail_bytes += bytes as u64;
                        self.stats
                            .tail_len
                            .store(self.ops_applied - self.base, Ordering::Relaxed);
                    }
                }
            }
        }
        if req.is_shardable() {
            #[cfg(feature = "fault-inject")]
            let inject_panic = self.fault.worker_panic_at(index);
            let routed = read_engine(&self.engine).route_shardable(&req);
            match routed {
                Routed::Reject(resp) => reply.answer(&resp),
                Routed::Probe { shard } => {
                    let Request::SubmitProbes {
                        session,
                        player,
                        objects,
                    } = req
                    else {
                        unreachable!("probe routing for a non-probe op");
                    };
                    self.drain.add(1);
                    // Blocking send: an accepted op is never dropped;
                    // a full shard queue backs pressure up to admission.
                    self.shard_txs[shard]
                        .send(ShardJob::Probe {
                            session,
                            player,
                            objects,
                            reply,
                            #[cfg(feature = "fault-inject")]
                            inject_panic,
                        })
                        .expect("shard worker outlives the dispatcher");
                }
                Routed::Query { width, parts } => {
                    let Request::QueryPreferences {
                        session, objects, ..
                    } = req
                    else {
                        unreachable!("query routing for a non-query op");
                    };
                    let objects = Arc::new(objects);
                    let cell = Arc::new(MergeCell {
                        session,
                        slots: Mutex::new(QuerySlots {
                            parts: vec![None; width],
                            remaining: parts.len(),
                            failed: false,
                        }),
                        reply,
                    });
                    self.drain.add(parts.len());
                    for (shard, members) in parts {
                        self.shard_txs[shard]
                            .send(ShardJob::Query {
                                members,
                                objects: objects.clone(),
                                cell: cell.clone(),
                                #[cfg(feature = "fault-inject")]
                                inject_panic,
                            })
                            .expect("shard worker outlives the dispatcher");
                    }
                }
            }
        } else {
            // Barrier: every admitted shardable op finishes first, so
            // the world transition sees exactly the ops admitted before
            // it — the batch flush contract, verbatim. The barrier runs
            // supervised: a panic mid-transition leaves the engine in
            // an unknown (and lock-poisoned) state, so it is never
            // trusted again — the dispatcher rebuilds from the journal,
            // which recorded this very op, before answering anything.
            self.drain.wait_idle();
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let mut guard = self.engine.write().unwrap_or_else(PoisonError::into_inner);
                #[cfg(feature = "fault-inject")]
                if self.fault.barrier_panic_at(index) {
                    guard.inject_barrier_panic();
                }
                guard.barrier(&req)
            }));
            match outcome {
                Ok(resp) => {
                    self.dedupe
                        .record(req.session(), reply.seq, key, resp.clone());
                    reply.answer(&resp);
                    // Compaction rides the barrier path because this is
                    // the one place the engine is known quiescent: the
                    // drain above emptied every shard queue and only
                    // this thread submits new jobs, so a read lock sees
                    // a consistent, fully-applied state to snapshot.
                    self.maybe_compact();
                }
                Err(_) => {
                    self.stats.rebuilds.fetch_add(1, Ordering::Relaxed);
                    self.rebuild();
                    // The failed barrier is in the rebuilt state (it was
                    // journaled before execution), so the client's
                    // resend hits the dedupe window — exactly once.
                    reply.answer(&Response::Retryable {
                        reason: "barrier interrupted; state rebuilt from the journal".to_string(),
                    });
                }
            }
        }
    }

    /// Run a compaction cycle when a threshold is crossed. A failed
    /// cycle is logged and absorbed: the journal tail still covers
    /// everything, so serving (and durability) continue unharmed.
    fn maybe_compact(&mut self) {
        if self.journal.is_none()
            || !self
                .policy
                .due(self.ops_applied - self.base, self.tail_bytes)
        {
            return;
        }
        if let Err(e) = self.compact() {
            eprintln!("compaction failed (serving continues): {e}");
        }
    }

    /// One compaction cycle: write + fsync a checkpoint at
    /// `ops_applied`, then atomically truncate the journal to an empty
    /// tail based at the same count. Ordering is the crash-safety
    /// argument — the checkpoint is durable before the tail it
    /// replaces is dropped, so every kill window leaves a recoverable
    /// (checkpoint, tail) pair.
    #[cfg_attr(not(feature = "fault-inject"), allow(unused_variables))]
    fn compact(&mut self) -> io::Result<()> {
        let path = self
            .journal_path
            .clone()
            .expect("an open journal implies a journal path");
        let cycle = self.cycles;
        {
            let engine = read_engine(&self.engine);
            #[cfg(feature = "fault-inject")]
            if self.fault.torn_checkpoint_at(cycle) {
                checkpoint::save_torn_checkpoint(&path, &engine, &self.dedupe, self.ops_applied)?;
                eprintln!(
                    "fault-inject: torn checkpoint at cycle {cycle}; aborting before truncation"
                );
                std::process::abort();
            }
            checkpoint::save_checkpoint(&path, &engine, &self.dedupe, self.ops_applied)?;
        }
        // The old append handle points at the renamed-away inode; adopt
        // the handle on the fresh tail.
        self.journal = Some(Journal::truncate_to_base(&path, self.ops_applied)?);
        let truncated = self.ops_applied - self.base;
        self.base = self.ops_applied;
        self.tail_bytes = 0;
        self.cycles += 1;
        self.stats.checkpoints.fetch_add(1, Ordering::Relaxed);
        self.stats
            .truncated_ops
            .fetch_add(truncated, Ordering::Relaxed);
        self.stats.tail_len.store(0, Ordering::Relaxed);
        #[cfg(feature = "fault-inject")]
        self.fault.kill_checkpoint_at(cycle);
        Ok(())
    }

    /// Replace the (possibly poisoned, never-again-trusted) engine with
    /// one rebuilt from the journal — or a fresh one when the server
    /// runs without durability, which is still sound: an unjournaled
    /// server makes no replay promise, and a fresh engine beats a
    /// corrupt one.
    fn rebuild(&mut self) {
        let (engine, dedupe) = match &self.journal_path {
            Some(path) => match journal::recover(path, self.shards) {
                Ok(rec) => {
                    // Re-derive the compaction counters from what the
                    // recovery actually saw — the authoritative history
                    // after any checkpoint + truncation.
                    self.ops_applied = rec.history_ops;
                    self.base = rec.journal_base;
                    self.tail_bytes = std::fs::metadata(path).map_or(0, |m| m.len());
                    self.stats
                        .tail_len
                        .store(self.ops_applied - self.base, Ordering::Relaxed);
                    (rec.engine, rec.dedupe)
                }
                Err(_) => (ServiceEngine::with_shards(self.shards), DedupeWindow::new()),
            },
            None => (ServiceEngine::with_shards(self.shards), DedupeWindow::new()),
        };
        *self.engine.write().unwrap_or_else(PoisonError::into_inner) = engine;
        self.engine.clear_poison();
        self.dedupe = dedupe;
    }
}

/// Shared state the connection threads need.
struct ConnCtx {
    engine: Arc<RwLock<ServiceEngine>>,
    stats: Arc<StatsInner>,
    shutdown: AtomicBool,
    conns: Mutex<Vec<(u64, TcpStream)>>,
    local_addr: SocketAddr,
    retry_after_ms: u32,
    #[cfg(feature = "fault-inject")]
    fault: Arc<FaultPlan>,
}

impl ConnCtx {
    /// Flip the shutdown flag, poke the acceptor awake, and unblock
    /// every connection thread's pending read.
    fn trigger_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.local_addr);
        for (_, conn) in self.conns.lock().unwrap().iter() {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }
}

fn serve_connection(stream: TcpStream, admission_tx: SyncSender<Job>, ctx: Arc<ConnCtx>, id: u64) {
    if let Ok(clone) = stream.try_clone() {
        ctx.conns.lock().unwrap().push((id, clone));
    }
    connection_loop(&stream, admission_tx, &ctx);
    // Sever the socket itself, not just this handle: the registry clone
    // (and any straggler reply handle) keeps the fd alive, and without
    // an explicit shutdown the peer would never see EOF.
    let _ = stream.shutdown(Shutdown::Both);
    ctx.conns.lock().unwrap().retain(|(cid, _)| *cid != id);
}

fn connection_loop(stream: &TcpStream, admission_tx: SyncSender<Job>, ctx: &Arc<ConnCtx>) {
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let mut reader = stream;
    let send = |frame: &ServerFrame| {
        let mut w = writer.lock().unwrap();
        write_frame(&mut *w, frame.encode().as_bytes())
    };
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(p)) => p,
            // Clean EOF, a lying length prefix (no way to resync), or a
            // shutdown-severed socket: either way this stream is done.
            Ok(None) => return,
            // The socket read timeout fired: the peer stalled mid-frame
            // (or went silent past the idle bound). Name the cause in
            // the goodbye so a live-but-slow client knows what happened.
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                let _ = send(&ServerFrame::Err {
                    seq: 0,
                    message: "connection idle past the read timeout".to_string(),
                });
                return;
            }
            Err(e) => {
                let _ = send(&ServerFrame::Err {
                    seq: 0,
                    message: e.to_string(),
                });
                return;
            }
        };
        let Ok(text) = std::str::from_utf8(&payload) else {
            // Framing is still intact (the length prefix was honest),
            // so answer typed and keep the connection alive.
            let _ = send(&ServerFrame::Err {
                seq: 0,
                message: "frame payload is not UTF-8".to_string(),
            });
            continue;
        };
        let frame = match ClientFrame::decode(text) {
            Ok(f) => f,
            Err(message) => {
                let _ = send(&ServerFrame::Err { seq: 0, message });
                continue;
            }
        };
        match frame {
            ClientFrame::Hello => {
                if send(&ServerFrame::Hello).is_err() {
                    return;
                }
            }
            ClientFrame::Op { seq, line } => match parse_op(&line) {
                Err(message) => {
                    // The satellite bugfix, shared with the stdin loop:
                    // a malformed op line is a typed rejection, not a
                    // dead session.
                    ctx.stats.malformed.fetch_add(1, Ordering::Relaxed);
                    let _ = send(&ServerFrame::Resp {
                        seq,
                        response: Response::Rejected(ServiceError::Malformed { message }),
                    });
                }
                Ok(req) => {
                    // Fault-injection: wedge this connection thread for
                    // a while before admission, as if the server ground
                    // to a halt — the client's deadline should fire.
                    #[cfg(feature = "fault-inject")]
                    if let Some(stall) = ctx
                        .fault
                        .stall_at(ctx.stats.admitted.load(Ordering::Relaxed))
                    {
                        thread::sleep(stall);
                    }
                    let job = Job {
                        req,
                        reply: ReplyTo {
                            conn: writer.clone(),
                            seq,
                            admitted: Instant::now(),
                            stats: ctx.stats.clone(),
                        },
                    };
                    ctx.stats.depth_enter();
                    match admission_tx.try_send(job) {
                        Ok(()) => {
                            ctx.stats.admitted.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(TrySendError::Full(_)) => {
                            ctx.stats.depth_leave();
                            ctx.stats.busy.fetch_add(1, Ordering::Relaxed);
                            let _ = send(&ServerFrame::Resp {
                                seq,
                                response: Response::Busy {
                                    retry_after_ms: ctx.retry_after_ms,
                                },
                            });
                        }
                        Err(TrySendError::Disconnected(_)) => {
                            ctx.stats.depth_leave();
                            return;
                        }
                    }
                }
            },
            ClientFrame::Stats { seq } => {
                let open_sessions = ctx.engine.read().unwrap().open_sessions() as u64;
                let _ = send(&ServerFrame::Stats {
                    seq,
                    stats: ctx.stats.snapshot(open_sessions),
                });
            }
            ClientFrame::Shutdown { seq } => {
                let _ = send(&ServerFrame::Bye { seq });
                ctx.trigger_shutdown();
                return;
            }
        }
    }
}

/// Lock-free lifetime counters plus a log₂ latency histogram.
struct StatsInner {
    admitted: AtomicU64,
    busy: AtomicU64,
    malformed: AtomicU64,
    completed: AtomicU64,
    retryable: AtomicU64,
    journaled: AtomicU64,
    deduped: AtomicU64,
    worker_panics: AtomicU64,
    rebuilds: AtomicU64,
    checkpoints: AtomicU64,
    truncated_ops: AtomicU64,
    /// Gauge, not a counter: the current replayable journal-tail
    /// length in ops.
    tail_len: AtomicU64,
    depth: AtomicU64,
    depth_peak: AtomicU64,
    latency_us: [AtomicU64; 64],
}

impl StatsInner {
    fn new() -> StatsInner {
        StatsInner {
            admitted: AtomicU64::new(0),
            busy: AtomicU64::new(0),
            malformed: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            retryable: AtomicU64::new(0),
            journaled: AtomicU64::new(0),
            deduped: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            rebuilds: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            truncated_ops: AtomicU64::new(0),
            tail_len: AtomicU64::new(0),
            depth: AtomicU64::new(0),
            depth_peak: AtomicU64::new(0),
            latency_us: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Count a queue slot *before* the `try_send` that fills it — the
    /// dispatcher may drain the job (and decrement the gauge) before
    /// the admitting thread runs another instruction, so incrementing
    /// after the send would race the gauge below zero.
    fn depth_enter(&self) {
        let depth = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.depth_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// Undo [`StatsInner::depth_enter`] when admission failed.
    fn depth_leave(&self) {
        self.depth.fetch_sub(1, Ordering::Relaxed);
    }

    fn record_latency(&self, micros: u64) {
        let bucket = if micros == 0 {
            0
        } else {
            (64 - micros.leading_zeros() as usize).min(63)
        };
        self.latency_us[bucket].fetch_add(1, Ordering::Relaxed);
    }

    fn percentile(&self, counts: &[u64; 64], total: u64, numer: u64, denom: u64) -> u64 {
        if total == 0 {
            return 0;
        }
        let rank = (total * numer).div_ceil(denom).max(1);
        let mut seen = 0;
        for (bucket, &n) in counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if bucket == 0 { 0 } else { 1u64 << (bucket - 1) };
            }
        }
        1u64 << 62
    }

    fn snapshot(&self, open_sessions: u64) -> StatsSnapshot {
        let counts: [u64; 64] = std::array::from_fn(|i| self.latency_us[i].load(Ordering::Relaxed));
        let total: u64 = counts.iter().sum();
        StatsSnapshot {
            admitted: self.admitted.load(Ordering::Relaxed),
            busy_rejected: self.busy.load(Ordering::Relaxed),
            malformed: self.malformed.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            open_sessions,
            queue_depth_peak: self.depth_peak.load(Ordering::Relaxed),
            p50_us: self.percentile(&counts, total, 1, 2),
            p99_us: self.percentile(&counts, total, 99, 100),
            queue_depth: self.depth.load(Ordering::Relaxed),
            retryable: self.retryable.load(Ordering::Relaxed),
            journaled: self.journaled.load(Ordering::Relaxed),
            deduped: self.deduped.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            rebuilds: self.rebuilds.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            truncated_ops: self.truncated_ops.load(Ordering::Relaxed),
            tail_len: self.tail_len.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------------
// Client side
// ---------------------------------------------------------------------------

/// What [`replay_over_socket`] brings back.
#[derive(Clone, Debug)]
pub struct SocketReplay {
    /// Final answer per trace op, in trace order — digests over this
    /// vector are comparable to `ServiceEngine::execute` output.
    pub responses: Vec<Response>,
    /// How many `Busy` answers were retried along the way (overload
    /// evidence; zero information content for the digest).
    pub busy_retries: u64,
    /// How many `Retryable` answers were retried (fault evidence; like
    /// `Busy`, never part of the digest).
    pub retryable_retries: u64,
    /// How many times a connection was re-established mid-replay.
    pub reconnects: u64,
}

/// Max in-flight shardable ops per connection before the client reaps
/// answers.
const PIPELINE_WINDOW: usize = 64;

/// Cap on the retry backoff window.
const MAX_RETRY_MS: u64 = 50;

/// Client-side resilience knobs for [`replay_with_options`].
#[derive(Clone, Debug)]
pub struct ReplayOptions {
    /// Sockets to spread sessions over (min 1).
    pub connections: usize,
    /// Per-request deadline: an op unanswered this long gets its
    /// connection torn down and every pending op on it resent. `None`
    /// waits forever (the pre-fault-tolerance behavior).
    pub deadline: Option<Duration>,
    /// Seed for the deterministic backoff jitter — fixed seed, fixed
    /// retry schedule, reproducible chaos runs.
    pub retry_seed: u64,
    /// Reconnect and resend when the server drops a connection with
    /// ops in flight (`false` restores the old hard-error behavior).
    pub reconnect: bool,
    /// Total time to keep re-dialing one reconnect before giving up.
    pub give_up_after: Duration,
    /// Optional pause before each op — spreads a replay out in time so
    /// an external fault (a `kill -9`) lands mid-trace instead of
    /// after the burst already finished.
    pub throttle: Option<Duration>,
}

impl Default for ReplayOptions {
    fn default() -> ReplayOptions {
        ReplayOptions {
            connections: 1,
            deadline: None,
            retry_seed: 0xb0ff_5eed,
            reconnect: true,
            give_up_after: Duration::from_secs(30),
            throttle: None,
        }
    }
}

/// Replay a trace over TCP across `connections` sockets and collect
/// the final answers in trace order, with default [`ReplayOptions`].
///
/// Ordering contract (see the module docs): every op of a session uses
/// the connection `session_id % connections`; an `Open` drains all
/// connections and is awaited (ids are assigned in open order, so the
/// k-th open of a fresh server gets id k); any other barrier drains and
/// is awaited on its session's connection; shardable ops pipeline up to
/// [`PIPELINE_WINDOW`] deep. `Busy` and `Retryable` answers are retried
/// with capped exponential backoff and never appear in `responses`.
pub fn replay_over_socket(
    addr: impl ToSocketAddrs,
    ops: &[Request],
    connections: usize,
) -> io::Result<SocketReplay> {
    replay_with_options(
        addr,
        ops,
        ReplayOptions {
            connections,
            ..ReplayOptions::default()
        },
    )
}

/// [`replay_over_socket`] with explicit resilience knobs: deadlines,
/// reconnect-and-resend, seeded backoff, and an inter-op throttle.
///
/// Resends are safe end to end: the server dedupes resent barriers by
/// `(session, seq, op)` and probe re-execution is idempotent, so a
/// retried mutation applies exactly once no matter how many times the
/// connection died under it.
pub fn replay_with_options(
    addr: impl ToSocketAddrs,
    ops: &[Request],
    options: ReplayOptions,
) -> io::Result<SocketReplay> {
    let connections = options.connections.max(1);
    let addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address to connect to"))?;
    let mut client = ReplayClient::connect(addr, connections, options)?;
    let mut opens_sent = 0usize;
    for (index, op) in ops.iter().enumerate() {
        let seq = index as u64;
        if let Some(pause) = client.options.throttle {
            thread::sleep(pause);
        }
        match op {
            Request::Open(_) => {
                let conn = opens_sent % connections;
                opens_sent += 1;
                client.drain_all()?;
                client.send_op(conn, seq, op)?;
                client.await_answer(seq)?;
            }
            _ if !op.is_shardable() => {
                let conn = op.session().expect("non-open op has a session") as usize % connections;
                client.drain_conn(conn)?;
                client.send_op(conn, seq, op)?;
                client.await_answer(seq)?;
            }
            _ => {
                let conn = op.session().expect("shardable op has a session") as usize % connections;
                while client.in_flight[conn] >= PIPELINE_WINDOW {
                    client.pump_one()?;
                }
                client.send_op(conn, seq, op)?;
            }
        }
    }
    client.drain_all()?;
    let responses = client
        .responses
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|| panic!("op {i} finished the replay unanswered")))
        .collect();
    Ok(SocketReplay {
        responses,
        busy_retries: client.busy_retries,
        retryable_retries: client.retryable_retries,
        reconnects: client.reconnects,
    })
}

/// An answered-or-dead message from one reader thread. `Closed` carries
/// the connection *generation* so a stale reader (its socket already
/// replaced by a reconnect) cannot retire the replacement.
enum Event {
    Frame(ServerFrame),
    Closed(usize, u64),
}

/// One sent-but-unanswered op: enough to resend it verbatim on the
/// right connection, plus the bookkeeping the deadline check needs.
struct PendingOp {
    conn: usize,
    line: String,
    attempts: u32,
    sent_at: Instant,
}

struct ReplayClient {
    addr: SocketAddr,
    options: ReplayOptions,
    writers: Vec<TcpStream>,
    /// Bumped on every reconnect; readers report their generation.
    generation: Vec<u64>,
    /// A connection known dead (reader reported `Closed`); the next op
    /// routed to it reconnects first.
    dead: Vec<bool>,
    /// Kept so reconnect-spawned readers share the original channel —
    /// and so `events.recv()` never spuriously disconnects.
    event_tx: mpsc::Sender<Event>,
    events: mpsc::Receiver<Event>,
    pending: HashMap<u64, PendingOp>,
    in_flight: Vec<usize>,
    responses: Vec<Option<Response>>,
    busy_retries: u64,
    retryable_retries: u64,
    reconnects: u64,
}

/// Dial, handshake, and disable Nagle on one connection.
fn connect_one(addr: SocketAddr) -> io::Result<TcpStream> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    handshake(&mut stream)?;
    Ok(stream)
}

/// Spawn the reader thread for one connection generation: forwards
/// decoded frames, reports `Closed(conn, generation)` when the socket
/// dies or turns to garbage.
fn spawn_reader(
    event_tx: mpsc::Sender<Event>,
    mut reader: TcpStream,
    conn: usize,
    generation: u64,
) {
    thread::spawn(move || {
        while let Ok(Some(payload)) = read_frame(&mut reader) {
            let frame = std::str::from_utf8(&payload)
                .ok()
                .and_then(|t| ServerFrame::decode(t).ok());
            match frame {
                Some(f) => {
                    if event_tx.send(Event::Frame(f)).is_err() {
                        return;
                    }
                }
                // An undecodable server frame means the stream is
                // unusable; report the close.
                None => break,
            }
        }
        let _ = event_tx.send(Event::Closed(conn, generation));
    });
}

impl ReplayClient {
    fn connect(
        addr: SocketAddr,
        connections: usize,
        options: ReplayOptions,
    ) -> io::Result<ReplayClient> {
        let (event_tx, events) = mpsc::channel::<Event>();
        let mut writers = Vec::with_capacity(connections);
        for conn in 0..connections {
            let stream = connect_one(addr)?;
            let reader = stream.try_clone()?;
            writers.push(stream);
            spawn_reader(event_tx.clone(), reader, conn, 0);
        }
        Ok(ReplayClient {
            addr,
            options,
            writers,
            generation: vec![0; connections],
            dead: vec![false; connections],
            event_tx,
            events,
            pending: HashMap::new(),
            in_flight: vec![0; connections],
            responses: Vec::new(),
            busy_retries: 0,
            retryable_retries: 0,
            reconnects: 0,
        })
    }

    /// Register the op as pending *before* the write: if the write
    /// fails into a reconnect, the reconnect's resend sweep already
    /// covers this op.
    fn send_op(&mut self, conn: usize, seq: u64, op: &Request) -> io::Result<()> {
        let line = format_op(op);
        if self.responses.len() <= seq as usize {
            self.responses.resize(seq as usize + 1, None);
        }
        self.pending.insert(
            seq,
            PendingOp {
                conn,
                line: line.clone(),
                attempts: 0,
                sent_at: Instant::now(),
            },
        );
        self.in_flight[conn] += 1;
        self.dispatch_line(conn, seq, &line)
    }

    /// Write one op frame, reconnecting first (which resends every
    /// pending op on the connection, including `seq`) when the
    /// connection is known dead or the write fails.
    fn dispatch_line(&mut self, conn: usize, seq: u64, line: &str) -> io::Result<()> {
        if self.dead[conn] {
            return self.reconnect(conn);
        }
        let frame = ClientFrame::Op {
            seq,
            line: line.to_string(),
        };
        match write_frame(&mut self.writers[conn], frame.encode().as_bytes()) {
            Ok(()) => Ok(()),
            Err(_) if self.options.reconnect => self.reconnect(conn),
            Err(e) => Err(e),
        }
    }

    /// Deterministic capped exponential backoff: attempt `a` draws from
    /// `[window/2, window]` where `window = min(2^a, MAX_RETRY_MS)` ms,
    /// jittered by a hash of `(seed, seq, attempt)` — no entropy, so a
    /// fixed seed replays the exact retry schedule.
    fn backoff_delay(&self, seq: u64, attempt: u32) -> Duration {
        let window = (1u64 << attempt.min(6)).min(MAX_RETRY_MS);
        let jitter = mix(mix(self.options.retry_seed, seq), u64::from(attempt)) % (window / 2 + 1);
        Duration::from_millis(window / 2 + jitter)
    }

    /// Tear down one connection, dial until it comes back (bounded by
    /// [`ReplayOptions::give_up_after`]), and resend its pending ops in
    /// sequence order. Server-side dedupe + probe idempotency make the
    /// resends exactly-once.
    fn reconnect(&mut self, conn: usize) -> io::Result<()> {
        self.reconnects += 1;
        let _ = self.writers[conn].shutdown(Shutdown::Both);
        self.generation[conn] += 1;
        let generation = self.generation[conn];
        let started = Instant::now();
        let mut attempt = 0u32;
        let stream = loop {
            match connect_one(self.addr) {
                Ok(s) => break s,
                Err(e) => {
                    if started.elapsed() >= self.options.give_up_after {
                        return Err(e);
                    }
                    thread::sleep(self.backoff_delay(conn as u64, attempt));
                    attempt = attempt.saturating_add(1);
                }
            }
        };
        let reader = stream.try_clone()?;
        spawn_reader(self.event_tx.clone(), reader, conn, generation);
        self.writers[conn] = stream;
        self.dead[conn] = false;
        let mut seqs: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| p.conn == conn)
            .map(|(&seq, _)| seq)
            .collect();
        seqs.sort_unstable();
        for seq in seqs {
            let line = {
                let p = self.pending.get_mut(&seq).expect("seq collected above");
                p.attempts += 1;
                p.sent_at = Instant::now();
                p.line.clone()
            };
            let frame = ClientFrame::Op { seq, line };
            if write_frame(&mut self.writers[conn], frame.encode().as_bytes()).is_err() {
                // Died again mid-resend: the fresh reader will report
                // `Closed` for this generation and the pump retries.
                self.dead[conn] = true;
                break;
            }
        }
        Ok(())
    }

    /// Resend one op after its typed retry answer (`Busy` or
    /// `Retryable`), honoring the seeded backoff.
    fn resend_after(&mut self, seq: u64, retryable: bool) -> io::Result<()> {
        let Some(p) = self.pending.get_mut(&seq) else {
            // A duplicate retry answer for an op that a reconnect
            // resend already got answered — nothing left to do.
            return Ok(());
        };
        p.attempts += 1;
        let (conn, attempts, line) = (p.conn, p.attempts, p.line.clone());
        if retryable {
            self.retryable_retries += 1;
        } else {
            self.busy_retries += 1;
        }
        thread::sleep(self.backoff_delay(seq, attempts));
        if let Some(p) = self.pending.get_mut(&seq) {
            p.sent_at = Instant::now();
        }
        self.dispatch_line(conn, seq, &line)
    }

    /// Tear down and resend every connection carrying an op that blew
    /// its deadline.
    fn enforce_deadlines(&mut self) -> io::Result<()> {
        let Some(deadline) = self.options.deadline else {
            return Ok(());
        };
        let mut conns: Vec<usize> = self
            .pending
            .values()
            .filter(|p| p.sent_at.elapsed() >= deadline)
            .map(|p| p.conn)
            .collect();
        conns.sort_unstable();
        conns.dedup();
        for conn in conns {
            self.reconnect(conn)?;
        }
        Ok(())
    }

    /// Receive and apply one event: record an answer, resend on a
    /// typed retry, or recover a closed connection. With a deadline
    /// set, blocks in short slices so expired ops are noticed even
    /// when the server goes completely silent.
    fn pump_one(&mut self) -> io::Result<()> {
        let event = match self.options.deadline {
            None => self
                .events
                .recv()
                .map_err(|_| broken("every reader thread died mid-replay"))?,
            Some(_) => loop {
                match self.events.recv_timeout(Duration::from_millis(10)) {
                    Ok(event) => break event,
                    Err(mpsc::RecvTimeoutError::Timeout) => self.enforce_deadlines()?,
                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                        return Err(broken("every reader thread died mid-replay"))
                    }
                }
            },
        };
        match event {
            Event::Closed(conn, generation) => {
                if generation != self.generation[conn] {
                    // A reader of a socket some reconnect already
                    // replaced; its report is stale.
                    return Ok(());
                }
                self.dead[conn] = true;
                if self.in_flight[conn] == 0 {
                    return Ok(());
                }
                if self.options.reconnect {
                    self.reconnect(conn)
                } else {
                    Err(broken("server closed a connection with ops in flight"))
                }
            }
            Event::Frame(ServerFrame::Resp { seq, response }) => match response {
                Response::Busy { .. } => self.resend_after(seq, false),
                Response::Retryable { .. } => self.resend_after(seq, true),
                response => match self.pending.remove(&seq) {
                    Some(p) => {
                        self.in_flight[p.conn] -= 1;
                        self.responses[seq as usize] = Some(response);
                        Ok(())
                    }
                    None => {
                        // A resend can race its original answer; the
                        // second copy (dedupe makes it identical) is
                        // dropped here.
                        if self
                            .responses
                            .get(seq as usize)
                            .is_some_and(|r| r.is_some())
                        {
                            Ok(())
                        } else {
                            Err(broken("answer for an unknown sequence number"))
                        }
                    }
                },
            },
            Event::Frame(ServerFrame::Err { message, .. }) => {
                Err(broken(&format!("server protocol error: {message}")))
            }
            Event::Frame(_) => Ok(()),
        }
    }

    fn drain_conn(&mut self, conn: usize) -> io::Result<()> {
        while self.in_flight[conn] > 0 {
            self.pump_one()?;
        }
        Ok(())
    }

    fn drain_all(&mut self) -> io::Result<()> {
        while self.in_flight.iter().sum::<usize>() > 0 {
            self.pump_one()?;
        }
        Ok(())
    }

    fn await_answer(&mut self, seq: u64) -> io::Result<()> {
        while self.responses[seq as usize].is_none() {
            self.pump_one()?;
        }
        Ok(())
    }
}

fn broken(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.to_string())
}

/// Exchange `hello` frames on a fresh connection.
fn handshake(stream: &mut (impl Read + Write)) -> io::Result<()> {
    write_frame(stream, ClientFrame::Hello.encode().as_bytes())?;
    let payload = read_frame(stream)?
        .ok_or_else(|| broken("server closed before answering the handshake"))?;
    let text = std::str::from_utf8(&payload).map_err(|_| broken("handshake is not UTF-8"))?;
    match ServerFrame::decode(text) {
        Ok(ServerFrame::Hello) => Ok(()),
        Ok(other) => Err(broken(&format!(
            "expected a {WIRE_VERSION} hello, got {other:?}"
        ))),
        Err(message) => Err(broken(&message)),
    }
}

/// Ask a running server for its counters over a fresh connection.
pub fn request_stats(addr: impl ToSocketAddrs) -> io::Result<StatsSnapshot> {
    let mut stream = TcpStream::connect(addr)?;
    handshake(&mut stream)?;
    write_frame(
        &mut stream,
        ClientFrame::Stats { seq: 1 }.encode().as_bytes(),
    )?;
    loop {
        let payload =
            read_frame(&mut stream)?.ok_or_else(|| broken("server closed before the stats"))?;
        let text = std::str::from_utf8(&payload).map_err(|_| broken("stats frame is not UTF-8"))?;
        match ServerFrame::decode(text).map_err(|m| broken(&m))? {
            ServerFrame::Stats { stats, .. } => return Ok(stats),
            ServerFrame::Err { message, .. } => {
                return Err(broken(&format!("server protocol error: {message}")))
            }
            _ => continue,
        }
    }
}

/// Ask a running server to drain and exit; returns once the `bye` is
/// acknowledged.
pub fn request_shutdown(addr: impl ToSocketAddrs) -> io::Result<()> {
    let mut stream = TcpStream::connect(addr)?;
    handshake(&mut stream)?;
    write_frame(
        &mut stream,
        ClientFrame::Shutdown { seq: 1 }.encode().as_bytes(),
    )?;
    loop {
        let payload = read_frame(&mut stream)?
            .ok_or_else(|| broken("server closed before acknowledging shutdown"))?;
        let text = std::str::from_utf8(&payload).map_err(|_| broken("bye frame is not UTF-8"))?;
        match ServerFrame::decode(text).map_err(|m| broken(&m))? {
            ServerFrame::Bye { .. } => return Ok(()),
            ServerFrame::Err { message, .. } => {
                return Err(broken(&format!("server protocol error: {message}")))
            }
            _ => continue,
        }
    }
}
