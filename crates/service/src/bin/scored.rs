//! `scored` — the scoring-service command line.
//!
//! ```text
//! scored gen <out.trace> [--sessions N] [--ops N] [--players N] [--objects N]
//!                        [--clusters N] [--diameter N] [--budget N] [--corrupt N]
//!                        [--drift-ppm N] [--algorithm naive|calculate|oracle|majority]
//!                        [--skew N] [--seed S]
//! scored replay <in.trace> [--threads T]
//! scored serve [--listen ADDR] [--shards N] [--queue-depth N] [--threads T]
//!              [--journal PATH | --recover PATH]
//!              [--compact-every N] [--compact-bytes N]
//!              [--read-timeout-ms N] [--write-timeout-ms N]
//! scored client <ADDR> <in.trace> [--connections N] [--shutdown]
//!              [--deadline-ms N] [--retry-seed S] [--throttle-ms N]
//! scored compact <journal> [--shards N]
//! ```
//!
//! `gen` writes a deterministic trace file; `replay` executes one and
//! prints the op count and combined digest (the digest is the cell CI
//! gates — it is identical at any `--threads`); `serve` without
//! `--listen` reads op lines from stdin and answers one line per op on
//! stdout, while `--listen` starts the `byzscore-wire/v1` TCP
//! front-end (per-shard worker threads, bounded admission) and prints
//! its stats counters at shutdown; `client` replays a trace file over
//! the socket and prints the same `digest` line as `replay`, so the
//! two are directly comparable — CI's `service-e2e` job gates exactly
//! that equality.
//!
//! Durability: `--journal PATH` write-ahead-journals every admitted
//! mutating op (fsync before execute); after a crash, `--recover PATH`
//! rebuilds the engine by replaying the journal and keeps appending to
//! it, and CI's `service-chaos` job gates that a `kill -9` mid-replay
//! plus `--recover` still lands the pinned digest. The journal is
//! itself a valid `byzscore-trace/v1` file: `scored replay wal.journal`
//! works. Fault-injected builds (`--features fault-inject`) add
//! `serve --fault SPEC` with deterministic kill/panic/drop/stall
//! schedules.
//!
//! Compaction: `--compact-every N` / `--compact-bytes B` bound the
//! journal tail — once the threshold is crossed, the server writes a
//! fsynced `byzscore-ckpt/v1` snapshot of the full engine state next to
//! the journal and atomically truncates the journal to an empty tail,
//! so recovery replays at most one threshold's worth of ops instead of
//! the whole history. `scored compact <journal>` runs one offline
//! cycle on an idle journal. The recovery print names its source
//! (checkpoint vs full journal); the post-truncation tail is still a
//! valid trace file.

use std::io::BufRead;

use byzscore_board::par::set_thread_limit;
use byzscore_service::{
    combined_digest, net, parse_op, CompactionPolicy, JournaledEngine, NetConfig, ReplayOptions,
    Response, Server, ServiceAlgorithm, ServiceEngine, ServiceError, Trace, TraceSpec,
    DEFAULT_SHARDS,
};

fn usage() -> ! {
    eprintln!(
        "usage: scored gen <out.trace> [--sessions N] [--ops N] [--players N] [--objects N]\n\
         \u{20}                        [--clusters N] [--diameter N] [--budget N] [--corrupt N]\n\
         \u{20}                        [--drift-ppm N] [--algorithm NAME] [--skew N] [--seed S]\n\
         \u{20}      scored replay <in.trace> [--threads T]\n\
         \u{20}      scored serve [--listen ADDR] [--shards N] [--queue-depth N] [--threads T]\n\
         \u{20}                   [--journal PATH | --recover PATH]\n\
         \u{20}                   [--compact-every N] [--compact-bytes N]\n\
         \u{20}                   [--read-timeout-ms N] [--write-timeout-ms N]\n\
         \u{20}      scored client <ADDR> <in.trace> [--connections N] [--shutdown]\n\
         \u{20}                   [--deadline-ms N] [--retry-seed S] [--throttle-ms N]\n\
         \u{20}      scored compact <journal> [--shards N]"
    );
    std::process::exit(2);
}

fn parse_num<T: std::str::FromStr>(args: &mut std::slice::Iter<'_, String>, flag: &str) -> T {
    match args.next().map(|v| v.parse::<T>()) {
        Some(Ok(v)) => v,
        _ => {
            eprintln!("scored: {flag} needs a numeric value");
            std::process::exit(2);
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("gen") => gen(&argv[1..]),
        Some("replay") => replay(&argv[1..]),
        Some("serve") => serve(&argv[1..]),
        Some("client") => client(&argv[1..]),
        Some("compact") => compact(&argv[1..]),
        _ => usage(),
    }
}

fn gen(args: &[String]) {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        usage();
    };
    let mut spec = TraceSpec::small(1);
    let rest: Vec<String> = args[1..].to_vec();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--sessions" => spec.sessions = parse_num(&mut it, flag),
            "--ops" => spec.ops = parse_num(&mut it, flag),
            "--players" => spec.players = parse_num(&mut it, flag),
            "--objects" => spec.objects = parse_num(&mut it, flag),
            "--clusters" => spec.clusters = parse_num(&mut it, flag),
            "--diameter" => spec.diameter = parse_num(&mut it, flag),
            "--budget" => spec.budget = parse_num(&mut it, flag),
            "--corrupt" => spec.corrupt = parse_num(&mut it, flag),
            "--drift-ppm" => spec.drift_ppm = parse_num(&mut it, flag),
            "--skew" => spec.skew = parse_num(&mut it, flag),
            "--seed" => spec.seed = parse_num(&mut it, flag),
            "--algorithm" => {
                let name = it.next().map(String::as_str).unwrap_or("");
                match ServiceAlgorithm::parse(name) {
                    Some(alg) => spec.algorithm = alg,
                    None => {
                        eprintln!("scored: unknown algorithm {name:?}");
                        std::process::exit(2);
                    }
                }
            }
            _ => usage(),
        }
    }
    let trace = Trace::generate(&spec);
    if let Err(e) = std::fs::write(path, trace.to_text()) {
        eprintln!("scored: cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {} ops to {path}", trace.ops.len());
}

fn read_trace(path: &str) -> Trace {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("scored: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    match Trace::from_text(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("scored: {e}");
            std::process::exit(1);
        }
    }
}

fn replay(args: &[String]) {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        usage();
    };
    let rest: Vec<String> = args[1..].to_vec();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--threads" => set_thread_limit(Some(parse_num(&mut it, flag))),
            _ => usage(),
        }
    }
    let trace = read_trace(path);
    let start = std::time::Instant::now();
    let responses = trace.replay();
    let elapsed = start.elapsed();
    let rejected = responses
        .iter()
        .filter(|r| matches!(r, Response::Rejected(_)))
        .count();
    println!(
        "replayed {} ops in {:.1} ms ({} rejected)",
        responses.len(),
        elapsed.as_secs_f64() * 1e3,
        rejected
    );
    println!("digest {:016x}", combined_digest(&responses));
}

fn serve(args: &[String]) {
    let mut listen: Option<String> = None;
    let mut config = NetConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--listen" => match it.next() {
                Some(addr) => listen = Some(addr.clone()),
                None => {
                    eprintln!("scored: --listen needs an address");
                    std::process::exit(2);
                }
            },
            "--shards" => config.shards = parse_num(&mut it, flag),
            "--queue-depth" => config.queue_depth = parse_num(&mut it, flag),
            "--threads" => set_thread_limit(Some(parse_num(&mut it, flag))),
            "--journal" | "--recover" => match it.next() {
                Some(path) => {
                    config.journal = Some(path.into());
                    config.recover = flag == "--recover";
                }
                None => {
                    eprintln!("scored: {flag} needs a journal path");
                    std::process::exit(2);
                }
            },
            "--compact-every" => config.compact_every = Some(parse_num(&mut it, flag)),
            "--compact-bytes" => config.compact_bytes = Some(parse_num(&mut it, flag)),
            "--read-timeout-ms" => config.read_timeout_ms = parse_num(&mut it, flag),
            "--write-timeout-ms" => config.write_timeout_ms = parse_num(&mut it, flag),
            #[cfg(feature = "fault-inject")]
            "--fault" => {
                let spec = it.next().map(String::as_str).unwrap_or("");
                match byzscore_service::FaultPlan::parse(spec) {
                    Ok(plan) => config.fault = std::sync::Arc::new(plan),
                    Err(e) => {
                        eprintln!("scored: {e}");
                        std::process::exit(2);
                    }
                }
            }
            _ => usage(),
        }
    }
    match listen {
        Some(addr) => serve_socket(&addr, config),
        None => serve_stdin(&config),
    }
}

fn serve_socket(addr: &str, config: NetConfig) {
    let server = match Server::bind(addr, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("scored: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    // The chaos harness greps `^recovered` — keep the "recovered N
    // ops" prefix; the trailing source names checkpoint vs full-journal
    // recovery.
    if let Some(source) = server.recovery_source() {
        println!(
            "recovered {} ops from {}",
            server.recovered_ops(),
            source.describe()
        );
    }
    // The e2e harness greps this line for the actual port (`--listen
    // 127.0.0.1:0` lets the OS choose).
    println!("listening on {}", server.local_addr());
    let stats = server.run();
    println!("shutdown: {}", stats.encode());
}

fn serve_stdin(config: &NetConfig) {
    let stdin = std::io::stdin();
    // With a journal path the stdin loop gets the same durability as
    // the socket server: append+fsync before execute, recovery replay
    // with `--recover`, per-seq dedupe (seq = input line index).
    let policy = CompactionPolicy {
        every: config.compact_every,
        bytes: config.compact_bytes,
    };
    let mut journaled = match &config.journal {
        Some(path) if config.recover => {
            match JournaledEngine::recover_with(path, config.shards, policy) {
                Ok((engine, report)) => {
                    println!(
                        "recovered {} ops from {}",
                        report.replayed,
                        report.source.describe()
                    );
                    Some(engine)
                }
                Err(e) => {
                    eprintln!("scored: cannot recover {}: {e}", path.display());
                    std::process::exit(1);
                }
            }
        }
        Some(path) => match JournaledEngine::create_with(path, config.shards, policy) {
            Ok(engine) => Some(engine),
            Err(e) => {
                eprintln!("scored: cannot create journal {}: {e}", path.display());
                std::process::exit(1);
            }
        },
        None => None,
    };
    let mut engine = ServiceEngine::with_shards(config.shards);
    for (index, line) in stdin.lock().lines().enumerate() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let resp = match parse_op(trimmed) {
            Ok(op) => match &mut journaled {
                Some(j) => match j.submit(index as u64, &op) {
                    Ok(resp) => resp,
                    Err(e) => {
                        eprintln!("scored: journal append failed: {e}");
                        std::process::exit(1);
                    }
                },
                None => engine.execute(std::slice::from_ref(&op)).remove(0),
            },
            // A malformed line answers typed like any other rejection
            // (and keeps serving) instead of a bare `err` string.
            Err(message) => Response::Rejected(ServiceError::Malformed { message }),
        };
        println!("{:016x} {resp:?}", resp.digest());
    }
}

fn client(args: &[String]) {
    let (Some(addr), Some(path)) = (args.first(), args.get(1)) else {
        usage();
    };
    let mut options = ReplayOptions::default();
    let mut shutdown = false;
    let mut it = args[2..].iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--connections" => options.connections = parse_num(&mut it, flag),
            "--shutdown" => shutdown = true,
            "--deadline-ms" => {
                options.deadline = Some(std::time::Duration::from_millis(parse_num(&mut it, flag)));
            }
            "--retry-seed" => options.retry_seed = parse_num(&mut it, flag),
            "--throttle-ms" => {
                options.throttle = Some(std::time::Duration::from_millis(parse_num(&mut it, flag)));
            }
            _ => usage(),
        }
    }
    let connections = options.connections.max(1);
    let trace = read_trace(path);
    let start = std::time::Instant::now();
    let replayed = match net::replay_with_options(addr.as_str(), &trace.ops, options) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("scored: socket replay failed: {e}");
            std::process::exit(1);
        }
    };
    let elapsed = start.elapsed();
    let rejected = replayed
        .responses
        .iter()
        .filter(|r| matches!(r, Response::Rejected(_)))
        .count();
    println!(
        "replayed {} ops in {:.1} ms over {} connection(s) \
         ({} rejected, {} busy retries, {} retryable retries, {} reconnects)",
        replayed.responses.len(),
        elapsed.as_secs_f64() * 1e3,
        connections,
        rejected,
        replayed.busy_retries,
        replayed.retryable_retries,
        replayed.reconnects
    );
    println!("digest {:016x}", combined_digest(&replayed.responses));
    if shutdown {
        if let Err(e) = net::request_shutdown(addr.as_str()) {
            eprintln!("scored: shutdown request failed: {e}");
            std::process::exit(1);
        }
    }
}

/// Offline compaction of an idle journal: recover (checkpoint-aware),
/// then run one checkpoint + truncate cycle so the next recovery
/// replays an empty tail. Only safe with no server appending.
fn compact(args: &[String]) {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        usage();
    };
    let mut shards = DEFAULT_SHARDS;
    let rest: Vec<String> = args[1..].to_vec();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--shards" => shards = parse_num(&mut it, flag),
            _ => usage(),
        }
    }
    let path = std::path::PathBuf::from(path);
    let (mut engine, report) =
        match JournaledEngine::recover_with(&path, shards, CompactionPolicy::default()) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("scored: cannot recover {}: {e}", path.display());
                std::process::exit(1);
            }
        };
    println!(
        "recovered {} ops from {}",
        report.replayed,
        report.source.describe()
    );
    if let Err(e) = engine.compact() {
        eprintln!("scored: compaction failed: {e}");
        std::process::exit(1);
    }
    println!(
        "checkpointed {} ops; journal truncated to an empty tail",
        engine.history_ops()
    );
}
