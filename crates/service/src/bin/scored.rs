//! `scored` — the scoring-service command line.
//!
//! ```text
//! scored gen <out.trace> [--sessions N] [--ops N] [--players N] [--objects N]
//!                        [--clusters N] [--diameter N] [--budget N] [--corrupt N]
//!                        [--drift-ppm N] [--algorithm naive|calculate|oracle|majority]
//!                        [--skew N] [--seed S]
//! scored replay <in.trace> [--threads T]
//! scored serve [--listen ADDR] [--shards N] [--queue-depth N] [--threads T]
//! scored client <ADDR> <in.trace> [--connections N] [--shutdown]
//! ```
//!
//! `gen` writes a deterministic trace file; `replay` executes one and
//! prints the op count and combined digest (the digest is the cell CI
//! gates — it is identical at any `--threads`); `serve` without
//! `--listen` reads op lines from stdin and answers one line per op on
//! stdout, while `--listen` starts the `byzscore-wire/v1` TCP
//! front-end (per-shard worker threads, bounded admission) and prints
//! its stats counters at shutdown; `client` replays a trace file over
//! the socket and prints the same `digest` line as `replay`, so the
//! two are directly comparable — CI's `service-e2e` job gates exactly
//! that equality.

use std::io::BufRead;

use byzscore_board::par::set_thread_limit;
use byzscore_service::{
    combined_digest, net, parse_op, NetConfig, Response, Server, ServiceAlgorithm, ServiceEngine,
    ServiceError, Trace, TraceSpec,
};

fn usage() -> ! {
    eprintln!(
        "usage: scored gen <out.trace> [--sessions N] [--ops N] [--players N] [--objects N]\n\
         \u{20}                        [--clusters N] [--diameter N] [--budget N] [--corrupt N]\n\
         \u{20}                        [--drift-ppm N] [--algorithm NAME] [--skew N] [--seed S]\n\
         \u{20}      scored replay <in.trace> [--threads T]\n\
         \u{20}      scored serve [--listen ADDR] [--shards N] [--queue-depth N] [--threads T]\n\
         \u{20}      scored client <ADDR> <in.trace> [--connections N] [--shutdown]"
    );
    std::process::exit(2);
}

fn parse_num<T: std::str::FromStr>(args: &mut std::slice::Iter<'_, String>, flag: &str) -> T {
    match args.next().map(|v| v.parse::<T>()) {
        Some(Ok(v)) => v,
        _ => {
            eprintln!("scored: {flag} needs a numeric value");
            std::process::exit(2);
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("gen") => gen(&argv[1..]),
        Some("replay") => replay(&argv[1..]),
        Some("serve") => serve(&argv[1..]),
        Some("client") => client(&argv[1..]),
        _ => usage(),
    }
}

fn gen(args: &[String]) {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        usage();
    };
    let mut spec = TraceSpec::small(1);
    let rest: Vec<String> = args[1..].to_vec();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--sessions" => spec.sessions = parse_num(&mut it, flag),
            "--ops" => spec.ops = parse_num(&mut it, flag),
            "--players" => spec.players = parse_num(&mut it, flag),
            "--objects" => spec.objects = parse_num(&mut it, flag),
            "--clusters" => spec.clusters = parse_num(&mut it, flag),
            "--diameter" => spec.diameter = parse_num(&mut it, flag),
            "--budget" => spec.budget = parse_num(&mut it, flag),
            "--corrupt" => spec.corrupt = parse_num(&mut it, flag),
            "--drift-ppm" => spec.drift_ppm = parse_num(&mut it, flag),
            "--skew" => spec.skew = parse_num(&mut it, flag),
            "--seed" => spec.seed = parse_num(&mut it, flag),
            "--algorithm" => {
                let name = it.next().map(String::as_str).unwrap_or("");
                match ServiceAlgorithm::parse(name) {
                    Some(alg) => spec.algorithm = alg,
                    None => {
                        eprintln!("scored: unknown algorithm {name:?}");
                        std::process::exit(2);
                    }
                }
            }
            _ => usage(),
        }
    }
    let trace = Trace::generate(&spec);
    if let Err(e) = std::fs::write(path, trace.to_text()) {
        eprintln!("scored: cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {} ops to {path}", trace.ops.len());
}

fn read_trace(path: &str) -> Trace {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("scored: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    match Trace::from_text(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("scored: {e}");
            std::process::exit(1);
        }
    }
}

fn replay(args: &[String]) {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        usage();
    };
    let rest: Vec<String> = args[1..].to_vec();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--threads" => set_thread_limit(Some(parse_num(&mut it, flag))),
            _ => usage(),
        }
    }
    let trace = read_trace(path);
    let start = std::time::Instant::now();
    let responses = trace.replay();
    let elapsed = start.elapsed();
    let rejected = responses
        .iter()
        .filter(|r| matches!(r, Response::Rejected(_)))
        .count();
    println!(
        "replayed {} ops in {:.1} ms ({} rejected)",
        responses.len(),
        elapsed.as_secs_f64() * 1e3,
        rejected
    );
    println!("digest {:016x}", combined_digest(&responses));
}

fn serve(args: &[String]) {
    let mut listen: Option<String> = None;
    let mut config = NetConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--listen" => match it.next() {
                Some(addr) => listen = Some(addr.clone()),
                None => {
                    eprintln!("scored: --listen needs an address");
                    std::process::exit(2);
                }
            },
            "--shards" => config.shards = parse_num(&mut it, flag),
            "--queue-depth" => config.queue_depth = parse_num(&mut it, flag),
            "--threads" => set_thread_limit(Some(parse_num(&mut it, flag))),
            _ => usage(),
        }
    }
    match listen {
        Some(addr) => serve_socket(&addr, config),
        None => serve_stdin(),
    }
}

fn serve_socket(addr: &str, config: NetConfig) {
    let server = match Server::bind(addr, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("scored: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    // The e2e harness greps this line for the actual port (`--listen
    // 127.0.0.1:0` lets the OS choose).
    println!("listening on {}", server.local_addr());
    let stats = server.run();
    println!("shutdown: {}", stats.encode());
}

fn serve_stdin() {
    let stdin = std::io::stdin();
    let mut engine = ServiceEngine::new();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let resp = match parse_op(trimmed) {
            Ok(op) => engine.execute(std::slice::from_ref(&op)).remove(0),
            // A malformed line answers typed like any other rejection
            // (and keeps serving) instead of a bare `err` string.
            Err(message) => Response::Rejected(ServiceError::Malformed { message }),
        };
        println!("{:016x} {resp:?}", resp.digest());
    }
}

fn client(args: &[String]) {
    let (Some(addr), Some(path)) = (args.first(), args.get(1)) else {
        usage();
    };
    let mut connections = 1usize;
    let mut shutdown = false;
    let mut it = args[2..].iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--connections" => connections = parse_num(&mut it, flag),
            "--shutdown" => shutdown = true,
            _ => usage(),
        }
    }
    let trace = read_trace(path);
    let start = std::time::Instant::now();
    let replayed = match net::replay_over_socket(addr.as_str(), &trace.ops, connections) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("scored: socket replay failed: {e}");
            std::process::exit(1);
        }
    };
    let elapsed = start.elapsed();
    let rejected = replayed
        .responses
        .iter()
        .filter(|r| matches!(r, Response::Rejected(_)))
        .count();
    println!(
        "replayed {} ops in {:.1} ms over {} connection(s) ({} rejected, {} busy retries)",
        replayed.responses.len(),
        elapsed.as_secs_f64() * 1e3,
        connections,
        rejected,
        replayed.busy_retries
    );
    println!("digest {:016x}", combined_digest(&replayed.responses));
    if shutdown {
        if let Err(e) = net::request_shutdown(addr.as_str()) {
            eprintln!("scored: shutdown request failed: {e}");
            std::process::exit(1);
        }
    }
}
