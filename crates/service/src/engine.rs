//! The resident engine: many concurrent sessions, sharded by the group
//! graph, answering typed requests.
//!
//! # Execution model
//!
//! [`ServiceEngine::execute`] walks a request batch in order. Shardable
//! ops ([`Request::SubmitProbes`], [`Request::QueryPreferences`]) are
//! buffered; a barrier op (open/churn/epoch/close) first flushes the
//! buffer, then runs serially. A flush buckets the buffered ops by
//! *shard* and runs the buckets concurrently (index-ordered parallel
//! map), each bucket processing its ops sequentially; answers land back
//! at their request index. The shard count is a fixed logical constant —
//! it never follows the thread budget — and each answer is additionally
//! independent of the shard layout (cross-shard queries merge partials in
//! request order), so a trace replays bit-identically at any `--threads`.
//!
//! # Shard key
//!
//! A player's shard is its component in the group graph of the current
//! scores: players whose score rows are bit-identical share a group
//! (`byzscore::cluster_players_with` at threshold 0 over the cached
//! rows), and `shard = group mod shards`. Same-group players — the ones
//! whose requests touch the same cluster state — therefore always route
//! to the same worker.
//!
//! # Incremental recompute
//!
//! Churn and epoch transitions recompute scores through
//! [`Session::evolved`]: the new world (pool → drift epoch → identity
//! remap) replaces the truth while the session keeps its parameters,
//! adversary, and — crucially — its [`WarmStart`] slot, so a `Naive`
//! session refreshes the previous group cache and reuses its pooled
//! select machines instead of rebuilding from scratch. Outputs stay
//! bit-identical to a cold session over the same world (pinned in core).

use std::sync::Arc;

use byzscore::{
    cluster_players_with, remap_planted, DriftSchedule, DriftingTruth, NeighborStrategy,
    ProceduralTruth, ProtocolParams, RemappedTruth, Session, TruthSource, WarmStart,
};
use byzscore_adversary::{Corruption, Inverter};
use byzscore_bitset::{BitMatrix, Bits};
use byzscore_board::par::par_map_items;
use byzscore_board::{Board, BoardStats, ClusterSpec, Oracle};
use byzscore_model::Planted;
use byzscore_random::derive_seed;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::request::{mix, Request, Response, ServiceError, SessionSpec};

/// Root tag of every service board scope: session `s` posts under the
/// path `[TAG_SERVICE, s]`.
pub const TAG_SERVICE: u64 = 0x5e_c0;
const TAG_CHURN: u64 = 0x5e_c1;
const TAG_DRIFT: u64 = 0x5e_c2;
const TAG_SCORE: u64 = 0x5e_c3;

/// Default logical shard count (fixed; independent of the thread budget).
pub const DEFAULT_SHARDS: usize = 8;

/// Everything resident for one open session.
pub(crate) struct SessionState {
    spec: SessionSpec,
    /// Fixed identity pool (capacity `2 × players`).
    pool: Arc<dyn TruthSource>,
    pool_planted: Planted,
    /// Active slot → pool identity.
    map: Vec<u32>,
    next_fresh: u32,
    epoch: u64,
    /// Churn transitions applied so far (feeds churn + score seeds).
    churns: u64,
    /// Carries the group cache and pooled select machines across
    /// recomputes.
    warm: Arc<WarmStart>,
    /// The current evolved session (world of `epoch`/`map`).
    session: Session,
    /// Resident probe oracle over the current world.
    oracle: Oracle,
    /// Cached scores of the current world.
    rows: BitMatrix,
    /// Active slot → shard (group graph mod shard count).
    shard_of: Vec<u32>,
    /// Board scope id of this session's posts.
    scope: u64,
    last_max_err: u64,
}

/// The resident scoring service.
///
/// ```
/// use byzscore_service::{Request, Response, ServiceEngine, SessionSpec, ServiceAlgorithm};
///
/// let mut engine = ServiceEngine::new();
/// let spec = SessionSpec {
///     players: 48, objects: 96, clusters: 4, diameter: 4,
///     world_seed: 7, algorithm: ServiceAlgorithm::Naive,
///     budget: 4, corrupt: 0, drift_ppm: 0, score_seed: 11,
/// };
/// let answers = engine.execute(&[
///     Request::Open(spec),
///     Request::QueryPreferences { session: 0, players: vec![0, 1], objects: None },
///     Request::CloseSession { session: 0 },
/// ]);
/// assert!(matches!(answers[0], Response::Opened { session: 0, .. }));
/// assert!(matches!(answers[2], Response::Closed { .. }));
/// ```
pub struct ServiceEngine {
    shards: usize,
    board: Board,
    /// Index = session id; `None` = closed. Ids are never reused.
    sessions: Vec<Option<SessionState>>,
}

impl Default for ServiceEngine {
    fn default() -> Self {
        ServiceEngine::new()
    }
}

/// What one shard job produces: a full answer, or one query's partial
/// rows (original position, ones, row digest) to merge in request order.
enum JobOut {
    Full(Response),
    Part(Vec<(usize, u64, u64)>),
}

/// One unit of work routed to a shard bucket.
enum ShardJob<'a> {
    Probe {
        idx: usize,
        session: u64,
        state: &'a SessionState,
        player: u32,
        objects: &'a [u32],
    },
    QueryPart {
        idx: usize,
        state: &'a SessionState,
        /// `(original position in the request's player list, player)`.
        members: Vec<(usize, u32)>,
        objects: Option<&'a [u32]>,
    },
}

impl ServiceEngine {
    /// Engine with the default shard count.
    pub fn new() -> ServiceEngine {
        ServiceEngine::with_shards(DEFAULT_SHARDS)
    }

    /// Engine with an explicit logical shard count (≥ 1). Answers do not
    /// depend on the choice — it only controls available concurrency.
    pub fn with_shards(shards: usize) -> ServiceEngine {
        ServiceEngine {
            shards: shards.max(1),
            board: Board::new(),
            sessions: Vec::new(),
        }
    }

    /// The fixed logical shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Currently open sessions.
    pub fn open_sessions(&self) -> usize {
        self.sessions.iter().flatten().count()
    }

    /// Traffic and memory counters of the shared bulletin board.
    pub fn board_stats(&self) -> BoardStats {
        self.board.stats()
    }

    /// Pooled select machines currently parked in session `s`'s warm
    /// slot (0 for closed/unknown sessions or non-`Naive` algorithms).
    pub fn pooled_selects(&self, session: u64) -> usize {
        self.sessions
            .get(session as usize)
            .and_then(|s| s.as_ref())
            .map_or(0, |s| s.warm.pooled_selects())
    }

    /// Fault-injection hook: panic from inside the engine while the
    /// caller holds its lock. The socket dispatcher calls this under
    /// the write lock to poison it, exercising the supervision path's
    /// rebuild-from-journal recovery end to end.
    #[cfg(feature = "fault-inject")]
    pub fn inject_barrier_panic(&mut self) {
        panic!("fault-inject: barrier panic");
    }

    /// Execute a request batch; answers come back in request order.
    ///
    /// The answer stream is a pure function of the engine's session
    /// history and the batch — identical however the batch is split
    /// across `execute` calls, whatever the thread budget.
    pub fn execute(&mut self, requests: &[Request]) -> Vec<Response> {
        let mut responses: Vec<Option<Response>> = (0..requests.len()).map(|_| None).collect();
        let mut pending: Vec<usize> = Vec::new();
        for (i, req) in requests.iter().enumerate() {
            if req.is_shardable() {
                pending.push(i);
            } else {
                flush(
                    &self.sessions,
                    &self.board,
                    self.shards,
                    requests,
                    &mut pending,
                    &mut responses,
                );
                responses[i] = Some(self.barrier(req));
            }
        }
        flush(
            &self.sessions,
            &self.board,
            self.shards,
            requests,
            &mut pending,
            &mut responses,
        );
        responses
            .into_iter()
            .map(|r| r.expect("every request answered"))
            .collect()
    }

    /// Serial (world-mutating) ops. Also the entry point for the socket
    /// front-end's dispatcher, which calls it under its exclusive engine
    /// lock after draining the shard queues — the same flush-then-barrier
    /// ordering `execute` enforces on a batch.
    pub(crate) fn barrier(&mut self, req: &Request) -> Response {
        match req {
            Request::Open(spec) => self.open(*spec),
            Request::ApplyChurn {
                session,
                retire,
                join,
            } => self.churn(*session, *retire, *join),
            Request::AdvanceEpoch { session } => self.epoch(*session),
            Request::CloseSession { session } => self.close(*session),
            _ => unreachable!("shardable ops never reach the barrier"),
        }
    }

    fn open(&mut self, spec: SessionSpec) -> Response {
        let sid = self.sessions.len() as u64;
        let players = spec.players.max(1);
        let (pool, pool_planted) = pool_of(&spec);
        let warm = Arc::new(WarmStart::new());
        let session = fresh_session(&spec, &pool, &warm);
        let scope = self.board.scope(&[TAG_SERVICE, sid]).id();
        let mut state = SessionState {
            spec,
            pool,
            pool_planted,
            map: (0..players as u32).collect(),
            next_fresh: players as u32,
            epoch: 0,
            churns: 0,
            warm,
            session,
            // Placeholders; `recompute` installs the real world.
            oracle: Oracle::new_uncached(Arc::new(EmptyTruth) as Arc<dyn TruthSource>),
            rows: BitMatrix::zeros(0, 0),
            shard_of: Vec::new(),
            scope,
            last_max_err: 0,
        };
        recompute(&mut state, self.shards);
        let response = Response::Opened {
            session: sid,
            players: state.map.len(),
            max_err: state.last_max_err,
        };
        self.sessions.push(Some(state));
        response
    }

    fn churn(&mut self, sid: u64, retire: usize, join: usize) -> Response {
        let shards = self.shards;
        let state = match session_mut(&mut self.sessions, sid) {
            Ok(s) => s,
            Err(e) => return Response::Rejected(e),
        };
        state.churns += 1;
        // Mirrors the dynamic-world churn law exactly: seeded shuffle
        // picks the retiring slots (never below one player), survivors
        // keep relative order, joiners take fresh pool rows at the tail.
        let mut rng = SmallRng::seed_from_u64(derive_seed(
            state.spec.world_seed,
            &[TAG_CHURN, state.churns],
        ));
        let retire = retire.min(state.map.len().saturating_sub(1));
        let mut slots: Vec<usize> = (0..state.map.len()).collect();
        slots.shuffle(&mut rng);
        let mut retiring: Vec<usize> = slots[..retire].to_vec();
        retiring.sort_unstable();
        let retired: Vec<u32> = retiring.iter().map(|&s| state.map[s]).collect();
        for &s in retiring.iter().rev() {
            state.map.remove(s);
        }
        let pool_rows = state.pool.players() as u32;
        let mut joined = Vec::new();
        for _ in 0..join {
            if state.next_fresh >= pool_rows {
                break; // pool exhausted: the world stops growing
            }
            joined.push(state.next_fresh);
            state.map.push(state.next_fresh);
            state.next_fresh += 1;
        }
        recompute(state, shards);
        Response::Churned {
            session: sid,
            retired,
            joined,
            players: state.map.len(),
            max_err: state.last_max_err,
        }
    }

    fn epoch(&mut self, sid: u64) -> Response {
        let shards = self.shards;
        let state = match session_mut(&mut self.sessions, sid) {
            Ok(s) => s,
            Err(e) => return Response::Rejected(e),
        };
        state.epoch += 1;
        recompute(state, shards);
        Response::Epoch {
            session: sid,
            epoch: state.epoch,
            max_err: state.last_max_err,
        }
    }

    fn close(&mut self, sid: u64) -> Response {
        if let Err(e) = session_mut(&mut self.sessions, sid) {
            return Response::Rejected(e);
        }
        let before = self.board.stats().live_slots();
        // Retire through the scope handle: re-resolving the path yields
        // the same scope id the session posted under.
        self.board.scope(&[TAG_SERVICE, sid]).retire();
        let freed = before - self.board.stats().live_slots();
        self.sessions[sid as usize] = None;
        Response::Closed {
            session: sid,
            freed_slots: freed,
        }
    }
}

/// The fixed identity pool (capacity `2 × players`) and its planted
/// structure, a pure function of the spec — `open` and checkpoint
/// restore derive identical pools from identical specs.
fn pool_of(spec: &SessionSpec) -> (Arc<dyn TruthSource>, Planted) {
    let players = spec.players.max(1);
    let pool_spec = ClusterSpec {
        players: players * 2,
        objects: spec.objects.max(1),
        clusters: spec.clusters.clamp(1, players),
        diameter: spec.diameter,
        seed: spec.world_seed,
    };
    let source = ProceduralTruth::new(pool_spec);
    let pool_planted = Planted {
        assignment: source.assignment(),
        clusters: source.clusters(),
        centers: source.centers().to_vec(),
        target_diameter: source.spec().diameter,
        special_objects: None,
    };
    (Arc::new(source) as Arc<dyn TruthSource>, pool_planted)
}

/// A never-run session over the pool, carrying the spec's parameters,
/// adversary, and the shared warm-start slot.
fn fresh_session(
    spec: &SessionSpec,
    pool: &Arc<dyn TruthSource>,
    warm: &Arc<WarmStart>,
) -> Session {
    Session::builder()
        .truth(pool.clone())
        .params(ProtocolParams::with_budget(spec.budget.max(1)))
        .adversary(
            Corruption::Count {
                count: spec.corrupt,
            },
            Inverter,
        )
        .warm_start(warm.clone())
        .build()
}

/// A zero-player truth used only as the pre-`recompute` placeholder.
struct EmptyTruth;

impl TruthSource for EmptyTruth {
    fn players(&self) -> usize {
        0
    }
    fn objects(&self) -> usize {
        0
    }
    fn value(&self, _player: u32, _object: u32) -> bool {
        false
    }
}

fn session_ref(sessions: &[Option<SessionState>], sid: u64) -> Result<&SessionState, ServiceError> {
    match sessions.get(sid as usize) {
        None => Err(ServiceError::UnknownSession(sid)),
        Some(None) => Err(ServiceError::SessionClosed(sid)),
        Some(Some(state)) => Ok(state),
    }
}

fn session_mut(
    sessions: &mut [Option<SessionState>],
    sid: u64,
) -> Result<&mut SessionState, ServiceError> {
    match sessions.get_mut(sid as usize) {
        None => Err(ServiceError::UnknownSession(sid)),
        Some(None) => Err(ServiceError::SessionClosed(sid)),
        Some(Some(state)) => Ok(state),
    }
}

/// Rebuild a session's world and scores after a transition (or at open):
/// compose pool → drift epoch → identity remap, evolve the session onto
/// it, run the scoring algorithm, and refresh the caches every shardable
/// op reads (score rows, shard map, probe oracle).
fn recompute(state: &mut SessionState, shards: usize) {
    let (truth, planted) = compose_world(state);
    state.session = state.session.evolved(truth.clone(), Some(planted));
    let seed = derive_seed(
        state.spec.score_seed,
        &[TAG_SCORE, state.epoch, state.churns],
    );
    let outcome = state.session.run(state.spec.algorithm.core(), seed);
    state.last_max_err = outcome.errors.max as u64;
    state.rows = outcome.output.expect("service sessions use the dense sink");
    state.shard_of = shard_map(&state.rows, shards);
    state.oracle = Oracle::new(truth);
}

/// Compose the session's current world — pool → drift epoch → identity
/// remap — and its remapped planted structure. A pure function of
/// `(spec, map, epoch)`, shared by `recompute` and checkpoint restore.
fn compose_world(state: &SessionState) -> (Arc<dyn TruthSource>, Planted) {
    let stepped: Arc<dyn TruthSource> = if state.spec.drift_ppm > 0 {
        let schedule = DriftSchedule::uniform(
            state.spec.drift_ppm as f64 / 1e6,
            derive_seed(state.spec.world_seed, &[TAG_DRIFT]),
        );
        Arc::new(DriftingTruth::new(state.pool.clone(), schedule).at_epoch(state.epoch))
    } else {
        state.pool.clone()
    };
    let truth: Arc<dyn TruthSource> = Arc::new(RemappedTruth::new(stepped, state.map.clone()));
    let planted = remap_planted(&state.pool_planted, &state.map);
    (truth, planted)
}

/// Shard key: the group graph of the scores — players with identical
/// rows share a group; groups spread round-robin over the shards.
fn shard_map(rows: &BitMatrix, shards: usize) -> Vec<u32> {
    let zvecs: Vec<_> = (0..rows.rows()).map(|p| rows.row(p).to_bitvec()).collect();
    let grouping = cluster_players_with(&zvecs, 0, 1, NeighborStrategy::Grouped);
    grouping
        .assignment
        .iter()
        .map(|&g| g % shards as u32)
        .collect()
}

/// Run the buffered shardable ops: validate serially, bucket by shard,
/// run buckets concurrently (each sequential), scatter answers back by
/// request index, merging cross-shard query partials in request order.
fn flush(
    sessions: &[Option<SessionState>],
    board: &Board,
    shards: usize,
    requests: &[Request],
    pending: &mut Vec<usize>,
    responses: &mut [Option<Response>],
) {
    if pending.is_empty() {
        return;
    }
    let mut buckets: Vec<Vec<ShardJob<'_>>> = (0..shards).map(|_| Vec::new()).collect();
    // Per query-request index: how many players it asked for (to size the
    // merge buffer).
    let mut query_width: Vec<(usize, usize, u64)> = Vec::new();
    for &idx in pending.iter() {
        match &requests[idx] {
            Request::SubmitProbes {
                session,
                player,
                objects,
            } => {
                let state = match session_ref(sessions, *session) {
                    Ok(s) => s,
                    Err(e) => {
                        responses[idx] = Some(Response::Rejected(e));
                        continue;
                    }
                };
                if let Some(resp) = validate(state, *session, &[*player], Some(objects)) {
                    responses[idx] = Some(resp);
                    continue;
                }
                let shard = state.shard_of[*player as usize] as usize;
                buckets[shard].push(ShardJob::Probe {
                    idx,
                    session: *session,
                    state,
                    player: *player,
                    objects,
                });
            }
            Request::QueryPreferences {
                session,
                players,
                objects,
            } => {
                let state = match session_ref(sessions, *session) {
                    Ok(s) => s,
                    Err(e) => {
                        responses[idx] = Some(Response::Rejected(e));
                        continue;
                    }
                };
                if players.is_empty() {
                    responses[idx] = Some(Response::Rejected(ServiceError::EmptyQuery(*session)));
                    continue;
                }
                if let Some(resp) = validate(state, *session, players, objects.as_deref()) {
                    responses[idx] = Some(resp);
                    continue;
                }
                // Split the player list by owning shard; each partial
                // remembers the players' original positions.
                let mut parts: Vec<Vec<(usize, u32)>> = (0..shards).map(|_| Vec::new()).collect();
                for (pos, &p) in players.iter().enumerate() {
                    parts[state.shard_of[p as usize] as usize].push((pos, p));
                }
                for (shard, members) in parts.into_iter().enumerate() {
                    if !members.is_empty() {
                        buckets[shard].push(ShardJob::QueryPart {
                            idx,
                            state,
                            members,
                            objects: objects.as_deref(),
                        });
                    }
                }
                query_width.push((idx, players.len(), *session));
            }
            _ => unreachable!("only shardable ops are buffered"),
        }
    }
    pending.clear();

    // Index-ordered parallel map over the shard buckets; each bucket runs
    // its jobs sequentially. Probe side effects (oracle ledger, board
    // claims) are commutative atomics / same-value posts, so the final
    // state is order-independent.
    let bucket_outs: Vec<Vec<(usize, JobOut)>> = par_map_items(&buckets, |bucket| {
        bucket
            .iter()
            .map(|job| match job {
                ShardJob::Probe {
                    idx,
                    session,
                    state,
                    player,
                    objects,
                } => (
                    *idx,
                    JobOut::Full(probe_response(board, state, *session, *player, objects)),
                ),
                ShardJob::QueryPart {
                    idx,
                    state,
                    members,
                    objects,
                } => (*idx, JobOut::Part(query_part(state, members, *objects))),
            })
            .collect()
    });

    // Scatter: full answers land directly; query partials accumulate into
    // per-request merge buffers keyed by original player position.
    // Per player slot: (ones, digest) once its shard's partial arrives.
    type MergeBuf = Vec<Option<(u64, u64)>>;
    let mut merges: std::collections::HashMap<usize, (MergeBuf, u64)> = query_width
        .into_iter()
        .map(|(idx, width, session)| (idx, (vec![None; width], session)))
        .collect();
    for outs in bucket_outs {
        for (idx, out) in outs {
            match out {
                JobOut::Full(resp) => responses[idx] = Some(resp),
                JobOut::Part(part) => {
                    let (buf, _) = merges.get_mut(&idx).expect("query registered");
                    for (pos, ones, digest) in part {
                        buf[pos] = Some((ones, digest));
                    }
                }
            }
        }
    }
    let mut merged: Vec<(usize, Response)> = merges
        .into_iter()
        .map(|(idx, (buf, session))| (idx, merge_preferences(session, &buf)))
        .collect();
    merged.sort_unstable_by_key(|&(idx, _)| idx);
    for (idx, resp) in merged {
        responses[idx] = Some(resp);
    }
}

/// Execute one probe op against a session: every probed bit is read
/// through the memoized oracle and posted as a claim in the session's
/// board scope. Side effects commute (atomic probe ledger, same-value
/// claims), so concurrent probes — batch flush or socket shard workers —
/// produce the same final state and per-op answer in any order.
pub(crate) fn probe_response(
    board: &Board,
    state: &SessionState,
    session: u64,
    player: u32,
    objects: &[u32],
) -> Response {
    let mut ones = 0u32;
    let mut digest = 0x920beu64;
    for &o in objects.iter() {
        let bit = state.oracle.probe(player, o);
        board.post_claim(state.scope, player, o, bit);
        ones += bit as u32;
        digest = mix(digest, mix(o as u64, bit as u64));
    }
    Response::Probed {
        session,
        player,
        ones,
        digest,
    }
}

/// Execute one shard's slice of a preference query: per member
/// `(original position, ones, row digest)`, pure reads of the cached
/// score rows.
pub(crate) fn query_part(
    state: &SessionState,
    members: &[(usize, u32)],
    objects: Option<&[u32]>,
) -> Vec<(usize, u64, u64)> {
    let rows = &state.rows;
    members
        .iter()
        .map(|&(pos, p)| {
            let row = rows.row(p as usize);
            match objects {
                None => (pos, row.count_ones() as u64, row.content_hash()),
                Some(objs) => {
                    let mut ones = 0u64;
                    let mut digest = 0x9ae5u64;
                    for &o in objs.iter() {
                        let bit = row.get(o as usize);
                        ones += bit as u64;
                        digest = mix(digest, mix(o as u64, bit as u64));
                    }
                    (pos, ones, digest)
                }
            }
        })
        .collect()
}

/// Fold completed query partials — indexed by original player position —
/// into the final [`Response::Preferences`]. Both the batch flush and
/// the socket merge cells call this, so the digest arithmetic cannot
/// drift between the two front-ends.
pub(crate) fn merge_preferences(session: u64, buf: &[Option<(u64, u64)>]) -> Response {
    let mut total = 0u64;
    let mut digest = 0x9e4fu64;
    for cell in buf {
        let (ones, d) = cell.expect("every queried player answered");
        total += ones;
        digest = mix(digest, mix(ones, d));
    }
    Response::Preferences {
        session,
        players: buf.len() as u32,
        ones: total,
        digest,
    }
}

/// The durable slice of one resident session — everything a checkpoint
/// must carry to reconstruct [`SessionState`] without replaying its
/// history. The pool, the evolved world, the probe oracle, and the
/// shard map are all pure functions of these fields, so they are
/// *recomputed* at restore rather than serialized; the score rows are
/// carried verbatim so restore never re-runs the scoring algorithm.
pub(crate) struct SessionImage {
    pub spec: SessionSpec,
    pub map: Vec<u32>,
    pub next_fresh: u32,
    pub epoch: u64,
    pub churns: u64,
    pub last_max_err: u64,
    pub rows: BitMatrix,
    /// `(object, author, value)` claims in the session's board scope.
    pub claims: Vec<(u32, u32, bool)>,
}

impl ServiceEngine {
    /// Total session slots ever allocated (open + closed; ids are never
    /// reused, so a restored engine must preserve this count).
    pub(crate) fn session_slots(&self) -> usize {
        self.sessions.len()
    }

    /// Snapshot every open session as a [`SessionImage`], in id order.
    pub(crate) fn images(&self) -> Vec<(u64, SessionImage)> {
        self.sessions
            .iter()
            .enumerate()
            .filter_map(|(sid, slot)| {
                let state = slot.as_ref()?;
                Some((
                    sid as u64,
                    SessionImage {
                        spec: state.spec,
                        map: state.map.clone(),
                        next_fresh: state.next_fresh,
                        epoch: state.epoch,
                        churns: state.churns,
                        last_max_err: state.last_max_err,
                        rows: state.rows.clone(),
                        claims: self.board.scope_claims(state.scope),
                    },
                ))
            })
            .collect()
    }

    /// Rebuild an engine from checkpoint images: `slots` closed slots,
    /// then each image installed at its id. Derived state (pool, world,
    /// oracle, shard map) is recomputed from the image's fields; the
    /// score rows come from the image, so nothing re-runs the scorer —
    /// restore cost is bounded by the checkpoint size, not the history.
    pub(crate) fn from_images(
        shards: usize,
        slots: usize,
        images: Vec<(u64, SessionImage)>,
    ) -> ServiceEngine {
        let mut engine = ServiceEngine::with_shards(shards);
        engine.sessions = (0..slots).map(|_| None).collect();
        for (sid, image) in images {
            let state = engine.restore_state(sid, image);
            let slot = engine
                .sessions
                .get_mut(sid as usize)
                .expect("image id within slot count");
            *slot = Some(state);
        }
        engine
    }

    /// Reconstruct one [`SessionState`] from its image: re-derive the
    /// pool and a fresh (never-run) session exactly as `open` would,
    /// re-register the board scope and re-post its claims, then install
    /// the checkpointed rows and recompute the caches they determine.
    /// The session itself is left un-evolved — the next barrier's
    /// `recompute` evolves it onto the same world a cold open would,
    /// and warm-vs-cold bit-identity is pinned in core.
    fn restore_state(&self, sid: u64, image: SessionImage) -> SessionState {
        let SessionImage {
            spec,
            map,
            next_fresh,
            epoch,
            churns,
            last_max_err,
            rows,
            claims,
        } = image;
        let (pool, pool_planted) = pool_of(&spec);
        let warm = Arc::new(WarmStart::new());
        let session = fresh_session(&spec, &pool, &warm);
        let scope = self.board.scope(&[TAG_SERVICE, sid]).id();
        for &(object, author, value) in &claims {
            self.board.post_claim(scope, author, object, value);
        }
        let mut state = SessionState {
            spec,
            pool,
            pool_planted,
            map,
            next_fresh,
            epoch,
            churns,
            warm,
            session,
            oracle: Oracle::new_uncached(Arc::new(EmptyTruth) as Arc<dyn TruthSource>),
            rows,
            shard_of: Vec::new(),
            scope,
            last_max_err,
        };
        let (truth, _planted) = compose_world(&state);
        state.shard_of = shard_map(&state.rows, self.shards);
        state.oracle = Oracle::new(truth);
        state
    }
}

/// Where a single shardable op should run: computed by the socket
/// dispatcher under a shared engine lock, executed on the owning shard's
/// worker thread.
pub(crate) enum Routed {
    /// Validation failed; answer immediately with this response.
    Reject(Response),
    /// A probe, owned entirely by one shard.
    Probe {
        /// Owning shard of the probing player.
        shard: usize,
    },
    /// A query split by owning shard; partials merge by original
    /// position via [`merge_preferences`].
    Query {
        /// Total players queried (the merge-buffer width).
        width: usize,
        /// Per-shard member lists: `(shard, [(original position, player)])`.
        parts: Vec<(usize, Vec<(usize, u32)>)>,
    },
}

impl ServiceEngine {
    /// The shared bulletin board (for shard workers posting probe claims).
    pub(crate) fn board(&self) -> &Board {
        &self.board
    }

    /// Resolve an open session for a shard job.
    pub(crate) fn session(&self, sid: u64) -> Result<&SessionState, ServiceError> {
        session_ref(&self.sessions, sid)
    }

    /// Validate and route one shardable op exactly as a batch flush
    /// would bucket it: same validation order, same shard key
    /// (`shard_of` from the group graph), same query split.
    pub(crate) fn route_shardable(&self, req: &Request) -> Routed {
        match req {
            Request::SubmitProbes {
                session,
                player,
                objects,
            } => {
                let state = match session_ref(&self.sessions, *session) {
                    Ok(s) => s,
                    Err(e) => return Routed::Reject(Response::Rejected(e)),
                };
                if let Some(resp) = validate(state, *session, &[*player], Some(objects)) {
                    return Routed::Reject(resp);
                }
                Routed::Probe {
                    shard: state.shard_of[*player as usize] as usize,
                }
            }
            Request::QueryPreferences {
                session,
                players,
                objects,
            } => {
                let state = match session_ref(&self.sessions, *session) {
                    Ok(s) => s,
                    Err(e) => return Routed::Reject(Response::Rejected(e)),
                };
                if players.is_empty() {
                    return Routed::Reject(Response::Rejected(ServiceError::EmptyQuery(*session)));
                }
                if let Some(resp) = validate(state, *session, players, objects.as_deref()) {
                    return Routed::Reject(resp);
                }
                let mut parts: Vec<Vec<(usize, u32)>> =
                    (0..self.shards).map(|_| Vec::new()).collect();
                for (pos, &p) in players.iter().enumerate() {
                    parts[state.shard_of[p as usize] as usize].push((pos, p));
                }
                Routed::Query {
                    width: players.len(),
                    parts: parts
                        .into_iter()
                        .enumerate()
                        .filter(|(_, members)| !members.is_empty())
                        .collect(),
                }
            }
            _ => unreachable!("only shardable ops are routed"),
        }
    }
}

/// Range-check players and objects against the session; `Some(Rejected)`
/// on the first violation.
fn validate(
    state: &SessionState,
    session: u64,
    players: &[u32],
    objects: Option<&[u32]>,
) -> Option<Response> {
    let n = state.map.len();
    for &p in players {
        if p as usize >= n {
            return Some(Response::Rejected(ServiceError::PlayerOutOfRange {
                session,
                player: p,
                players: n,
            }));
        }
    }
    if let Some(objs) = objects {
        let m = state.spec.objects;
        for &o in objs {
            if o as usize >= m {
                return Some(Response::Rejected(ServiceError::ObjectOutOfRange {
                    session,
                    object: o,
                    objects: m,
                }));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ServiceAlgorithm;

    fn spec(seed: u64) -> SessionSpec {
        SessionSpec {
            players: 48,
            objects: 96,
            clusters: 4,
            diameter: 4,
            world_seed: seed,
            algorithm: ServiceAlgorithm::Naive,
            budget: 4,
            corrupt: 0,
            drift_ppm: 2_000,
            score_seed: seed ^ 0xa5a5,
        }
    }

    #[test]
    fn open_query_close_lifecycle() {
        let mut engine = ServiceEngine::new();
        let answers = engine.execute(&[
            Request::Open(spec(1)),
            Request::QueryPreferences {
                session: 0,
                players: vec![0, 7, 31],
                objects: None,
            },
            Request::SubmitProbes {
                session: 0,
                player: 3,
                objects: vec![0, 1, 2, 90],
            },
            Request::CloseSession { session: 0 },
        ]);
        assert!(matches!(
            answers[0],
            Response::Opened {
                session: 0,
                players: 48,
                ..
            }
        ));
        assert!(matches!(
            answers[1],
            Response::Preferences { players: 3, .. }
        ));
        assert!(matches!(
            answers[2],
            Response::Probed {
                session: 0,
                player: 3,
                ..
            }
        ));
        assert!(matches!(answers[3], Response::Closed { session: 0, .. }));
        assert_eq!(engine.open_sessions(), 0);
    }

    #[test]
    fn closing_a_session_returns_board_live_slots_to_pre_open_level() {
        // Satellite: `ScopeHandle::retire` under the service lifecycle.
        let mut engine = ServiceEngine::new();
        engine.execute(&[Request::Open(spec(2))]);
        let pre_open = engine.board_stats().live_slots();
        let answers = engine.execute(&[
            Request::Open(spec(3)),
            Request::SubmitProbes {
                session: 1,
                player: 0,
                objects: vec![1, 2, 3, 4, 5],
            },
            Request::SubmitProbes {
                session: 1,
                player: 9,
                objects: vec![1, 8],
            },
        ]);
        assert!(answers.iter().all(|r| !matches!(r, Response::Rejected(_))));
        let while_open = engine.board_stats().live_slots();
        assert!(
            while_open > pre_open,
            "probe claims must occupy live slots ({while_open} vs {pre_open})"
        );
        let closed = engine
            .execute(&[Request::CloseSession { session: 1 }])
            .remove(0);
        assert_eq!(
            engine.board_stats().live_slots(),
            pre_open,
            "retiring the session scope must free exactly its slots"
        );
        match closed {
            Response::Closed { freed_slots, .. } => {
                assert_eq!(freed_slots, while_open - pre_open)
            }
            other => panic!("expected Closed, got {other:?}"),
        }
        // Session 0's scope is untouched by session 1's close.
        let again = engine
            .execute(&[Request::QueryPreferences {
                session: 0,
                players: vec![0],
                objects: None,
            }])
            .remove(0);
        assert!(matches!(again, Response::Preferences { .. }));
    }

    #[test]
    fn answers_do_not_depend_on_batch_splits_or_shard_count() {
        let ops = vec![
            Request::Open(spec(4)),
            Request::SubmitProbes {
                session: 0,
                player: 1,
                objects: vec![0, 5, 9],
            },
            Request::QueryPreferences {
                session: 0,
                players: vec![2, 40, 11],
                objects: Some(vec![3, 4]),
            },
            Request::ApplyChurn {
                session: 0,
                retire: 3,
                join: 2,
            },
            Request::QueryPreferences {
                session: 0,
                players: vec![0, 46],
                objects: None,
            },
            Request::AdvanceEpoch { session: 0 },
            Request::QueryPreferences {
                session: 0,
                players: vec![5],
                objects: None,
            },
            Request::CloseSession { session: 0 },
        ];
        let whole = ServiceEngine::new().execute(&ops);
        // One op per call.
        let mut split_engine = ServiceEngine::new();
        let split: Vec<Response> = ops
            .iter()
            .flat_map(|op| split_engine.execute(std::slice::from_ref(op)))
            .collect();
        assert_eq!(whole, split, "batch splits must not change answers");
        // Different logical shard counts agree too (merge order is the
        // request order, not the shard order).
        for shards in [1, 3, 16] {
            let other = ServiceEngine::with_shards(shards).execute(&ops);
            assert_eq!(whole, other, "shards={shards} changed answers");
        }
    }

    #[test]
    fn churn_and_epoch_recompute_and_report_population() {
        let mut engine = ServiceEngine::new();
        engine.execute(&[Request::Open(spec(5))]);
        let churned = engine
            .execute(&[Request::ApplyChurn {
                session: 0,
                retire: 4,
                join: 2,
            }])
            .remove(0);
        match churned {
            Response::Churned {
                ref retired,
                ref joined,
                players,
                ..
            } => {
                assert_eq!(retired.len(), 4);
                assert_eq!(joined, &[48, 49], "joiners are fresh pool rows");
                assert_eq!(players, 46);
            }
            other => panic!("expected Churned, got {other:?}"),
        }
        let epoch = engine
            .execute(&[Request::AdvanceEpoch { session: 0 }])
            .remove(0);
        assert!(matches!(epoch, Response::Epoch { epoch: 1, .. }));
    }

    #[test]
    fn naive_sessions_reuse_pooled_select_machines_across_recomputes() {
        let mut engine = ServiceEngine::new();
        engine.execute(&[Request::Open(spec(6))]);
        let after_open = engine.pooled_selects(0);
        assert!(
            after_open > 0,
            "the opening recompute must park select machines"
        );
        engine.execute(&[Request::AdvanceEpoch { session: 0 }]);
        assert!(
            engine.pooled_selects(0) > 0,
            "recomputes keep recycling machines"
        );
    }

    #[test]
    fn errors_are_typed_and_non_fatal() {
        let mut engine = ServiceEngine::new();
        let answers = engine.execute(&[
            Request::Open(spec(7)),
            Request::SubmitProbes {
                session: 9,
                player: 0,
                objects: vec![0],
            },
            Request::SubmitProbes {
                session: 0,
                player: 99,
                objects: vec![0],
            },
            Request::QueryPreferences {
                session: 0,
                players: vec![0],
                objects: Some(vec![999]),
            },
            Request::QueryPreferences {
                session: 0,
                players: vec![],
                objects: None,
            },
            Request::CloseSession { session: 0 },
            Request::AdvanceEpoch { session: 0 },
        ]);
        assert!(matches!(
            answers[1],
            Response::Rejected(ServiceError::UnknownSession(9))
        ));
        assert!(matches!(
            answers[2],
            Response::Rejected(ServiceError::PlayerOutOfRange { player: 99, .. })
        ));
        assert!(matches!(
            answers[3],
            Response::Rejected(ServiceError::ObjectOutOfRange { object: 999, .. })
        ));
        assert!(matches!(
            answers[4],
            Response::Rejected(ServiceError::EmptyQuery(0))
        ));
        assert!(matches!(answers[5], Response::Closed { .. }));
        assert!(matches!(
            answers[6],
            Response::Rejected(ServiceError::SessionClosed(0))
        ));
    }
}
