//! Deterministic fault plans for chaos testing the service plane.
//!
//! A [`FaultPlan`] is a parsed schedule of injection points, each keyed
//! to a 0-based *op index* maintained by the component that hosts the
//! hook (the dispatcher's dispatch counter, the admission counter for
//! connection-level faults). Every slot fires exactly once; with a
//! single client connection the op indices are the trace indices, so a
//! fault schedule is as reproducible as the trace itself.
//!
//! The plan type and parser are always compiled (and unit-tested); the
//! hooks in `net.rs`/`engine.rs` only exist under the `fault-inject`
//! cargo feature, so a production build carries no injection branches.
//!
//! # Spec grammar
//!
//! Comma-separated `kind@index` slots:
//!
//! ```text
//! kill@7                abort the process before dispatching op 7
//! panic-worker@9        panic the shard worker executing op 9
//! panic-barrier@4       panic inside op 4's barrier, write lock held
//! drop-conn@5           sever op 5's client connection at dispatch
//! stall@3:600           sleep 600 ms in the connection thread before
//!                       admitting op 3 (a wedged-server simulation)
//! kill@checkpoint       abort right after the first compaction cycle
//!                       completes (kill@checkpoint:N for cycle N)
//! torn-checkpoint@1     write compaction cycle 1's checkpoint torn
//!                       (footer missing) and abort before the journal
//!                       is truncated — the tear the footer exists for
//! ```
//!
//! Checkpoint faults are keyed by the 0-based *compaction-cycle index*
//! rather than an op index.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// One kind of injected fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Abort the process (the in-process stand-in for `kill -9`).
    Kill,
    /// Panic inside a shard worker's job execution.
    PanicWorker,
    /// Panic inside the engine barrier path, while write-locked.
    PanicBarrier,
    /// Sever the op's client connection (the op still executes).
    DropConn,
    /// Stall the connection thread for this long before admission.
    Stall(Duration),
    /// Abort right after a compaction cycle completes (checkpoint
    /// written, journal truncated) — keyed by cycle index.
    KillCheckpoint,
    /// Install a torn checkpoint (no footer) and abort before the
    /// journal is truncated — keyed by cycle index.
    TornCheckpoint,
}

#[derive(Debug)]
struct FaultSlot {
    at: u64,
    kind: FaultKind,
    fired: AtomicBool,
}

/// A fire-once schedule of injected faults, keyed by op index.
#[derive(Debug, Default)]
pub struct FaultPlan {
    slots: Vec<FaultSlot>,
}

impl FaultPlan {
    /// The empty plan: every hook is a no-op.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Parse the `kind@index[,kind@index...]` spec grammar; an empty
    /// string is the empty plan.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut slots = Vec::new();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (kind_tok, at_tok) = part
                .split_once('@')
                .ok_or_else(|| format!("fault slot {part:?} needs kind@index"))?;
            let parse_at = |tok: &str| {
                tok.parse::<u64>()
                    .map_err(|_| format!("bad op index in fault slot {part:?}"))
            };
            let (at, kind) = match kind_tok {
                "kill" if at_tok == "checkpoint" => (0, FaultKind::KillCheckpoint),
                "kill" if at_tok.starts_with("checkpoint:") => {
                    let cycle_tok = &at_tok["checkpoint:".len()..];
                    (parse_at(cycle_tok)?, FaultKind::KillCheckpoint)
                }
                "kill" => (parse_at(at_tok)?, FaultKind::Kill),
                "torn-checkpoint" => (parse_at(at_tok)?, FaultKind::TornCheckpoint),
                "panic-worker" => (parse_at(at_tok)?, FaultKind::PanicWorker),
                "panic-barrier" => (parse_at(at_tok)?, FaultKind::PanicBarrier),
                "drop-conn" => (parse_at(at_tok)?, FaultKind::DropConn),
                "stall" => {
                    let (at_tok, ms_tok) = at_tok
                        .split_once(':')
                        .ok_or_else(|| format!("stall slot {part:?} needs stall@index:ms"))?;
                    let ms = ms_tok
                        .parse::<u64>()
                        .map_err(|_| format!("bad stall duration in {part:?}"))?;
                    (
                        parse_at(at_tok)?,
                        FaultKind::Stall(Duration::from_millis(ms)),
                    )
                }
                other => return Err(format!("unknown fault kind {other:?}")),
            };
            slots.push(FaultSlot {
                at,
                kind,
                fired: AtomicBool::new(false),
            });
        }
        Ok(FaultPlan { slots })
    }

    /// Fire-once check: the first matching unfired slot at `at` claims
    /// itself and returns its kind.
    fn fire(&self, at: u64, want: impl Fn(FaultKind) -> bool) -> Option<FaultKind> {
        for slot in &self.slots {
            if slot.at == at
                && want(slot.kind)
                && slot
                    .fired
                    .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            {
                return Some(slot.kind);
            }
        }
        None
    }

    /// Abort the process if a `kill` slot is scheduled at `at`.
    pub fn kill_at(&self, at: u64) {
        if self.fire(at, |k| k == FaultKind::Kill).is_some() {
            eprintln!("fault-inject: kill at op {at}");
            std::process::abort();
        }
    }

    /// True when a worker panic is scheduled at `at` (claims the slot).
    pub fn worker_panic_at(&self, at: u64) -> bool {
        self.fire(at, |k| k == FaultKind::PanicWorker).is_some()
    }

    /// True when a barrier panic is scheduled at `at` (claims the slot).
    pub fn barrier_panic_at(&self, at: u64) -> bool {
        self.fire(at, |k| k == FaultKind::PanicBarrier).is_some()
    }

    /// True when the op's connection should be severed at `at`.
    pub fn drop_conn_at(&self, at: u64) -> bool {
        self.fire(at, |k| k == FaultKind::DropConn).is_some()
    }

    /// The stall to apply before admitting op `at`, if scheduled.
    pub fn stall_at(&self, at: u64) -> Option<Duration> {
        match self.fire(at, |k| matches!(k, FaultKind::Stall(_))) {
            Some(FaultKind::Stall(d)) => Some(d),
            _ => None,
        }
    }

    /// Abort the process if a `kill@checkpoint` slot is scheduled at
    /// compaction cycle `cycle` — called *after* the cycle completes,
    /// so recovery must come up from the fresh checkpoint plus an
    /// empty tail.
    pub fn kill_checkpoint_at(&self, cycle: u64) {
        if self
            .fire(cycle, |k| k == FaultKind::KillCheckpoint)
            .is_some()
        {
            eprintln!("fault-inject: kill after compaction cycle {cycle}");
            std::process::abort();
        }
    }

    /// True when compaction cycle `cycle` should install a torn
    /// checkpoint instead of a real one (claims the slot); the caller
    /// aborts before truncating the journal.
    pub fn torn_checkpoint_at(&self, cycle: u64) -> bool {
        self.fire(cycle, |k| k == FaultKind::TornCheckpoint)
            .is_some()
    }

    /// True when no slots are scheduled.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_kind_and_fires_once() {
        let plan =
            FaultPlan::parse("panic-worker@3, drop-conn@5,stall@7:250,panic-barrier@9").unwrap();
        assert!(!plan.worker_panic_at(2));
        assert!(plan.worker_panic_at(3));
        assert!(!plan.worker_panic_at(3), "slots fire once");
        assert!(plan.drop_conn_at(5));
        assert_eq!(plan.stall_at(7), Some(Duration::from_millis(250)));
        assert_eq!(plan.stall_at(7), None);
        assert!(plan.barrier_panic_at(9));
        assert!(!plan.drop_conn_at(9), "kinds do not cross-fire");
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn checkpoint_faults_parse_and_key_on_cycle_index() {
        let plan = FaultPlan::parse("torn-checkpoint@1,kill@checkpoint:2").unwrap();
        assert!(!plan.torn_checkpoint_at(0));
        assert!(plan.torn_checkpoint_at(1));
        assert!(!plan.torn_checkpoint_at(1), "slots fire once");
        // kill@checkpoint:2 must not abort the test process at other
        // cycles; cycle 2 itself is exercised end-to-end in CI chaos.
        plan.kill_checkpoint_at(0);
        plan.kill_checkpoint_at(1);
        // Bare kill@checkpoint defaults to cycle 0 — verify via parse
        // round-trip against the non-aborting torn kind's key space.
        let bare = FaultPlan::parse("kill@checkpoint").unwrap();
        assert!(!bare.is_empty());
        assert!(!bare.torn_checkpoint_at(0), "kinds do not cross-fire");
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "kill",             // missing index
            "kill@x",           // bad index
            "stall@3",          // missing duration
            "stall@3:fast",     // bad duration
            "explode@1",        // unknown kind
            "panic-worker@3:4", // stray duration
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
