//! Versioned engine checkpoints: the compaction half of the durability
//! story (DESIGN.md §4.16).
//!
//! A checkpoint file (`byzscore-ckpt/v1`) captures the full resident
//! state of a [`ServiceEngine`] plus its [`DedupeWindow`] at a known
//! op count: per open session the spec, the slot→identity map, the
//! churn/epoch counters, the cached score rows (verbatim, hex words),
//! and the session's board claims; plus every dedupe entry in FIFO
//! order. Everything else resident — the identity pool, the evolved
//! world, the probe oracle, the shard map — is a pure function of
//! those fields and is *recomputed* at restore, so a checkpoint is
//! small and loading one never re-runs the scoring algorithm.
//!
//! # Torn-write detection
//!
//! The last line is a footer carrying the body's byte length and a
//! mix-fold digest. A checkpoint whose footer is missing, short, or
//! inconsistent is *torn* — the crash landed mid-write — and recovery
//! falls back to the previous checkpoint (`<journal>.ckpt.prev`, kept
//! by the rotation in [`save`]) or, absent that, to full-journal
//! replay. The footer is written before the file is renamed into
//! place, so a *renamed* checkpoint can only be torn by media-level
//! truncation, and the fallback chain still recovers (the journal is
//! only truncated after the new checkpoint is durable).

use std::collections::HashMap;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use byzscore_bitset::{BitMatrix, BitVec, Bits};

use crate::engine::{ServiceEngine, SessionImage};
use crate::journal::DedupeWindow;
use crate::request::{mix, Request};
use crate::wire::{format_response, parse_response};
use crate::workload::{format_op, parse_op};

/// Version header of the checkpoint format.
pub const CKPT_VERSION: &str = "byzscore-ckpt/v1";

/// Where a recovered engine's state came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoverySource {
    /// The current checkpoint plus the journal tail.
    Checkpoint,
    /// The previous checkpoint (the current one was torn) plus the
    /// journal tail.
    PreviousCheckpoint,
    /// No usable checkpoint: the journal was replayed in full.
    FullJournal,
}

impl RecoverySource {
    /// Human-readable source for recovery log lines.
    pub fn describe(&self) -> &'static str {
        match self {
            RecoverySource::Checkpoint => "checkpoint + journal tail",
            RecoverySource::PreviousCheckpoint => "previous checkpoint + journal tail",
            RecoverySource::FullJournal => "the full journal",
        }
    }
}

/// Why a checkpoint file failed to load.
#[derive(Debug)]
pub enum CheckpointError {
    /// Footer missing or inconsistent: the write was torn mid-file.
    Torn(String),
    /// Footer verified but the body does not parse.
    Corrupt(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Torn(why) => write!(f, "torn checkpoint: {why}"),
            CheckpointError::Corrupt(why) => write!(f, "corrupt checkpoint: {why}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// A decoded checkpoint: the restored engine, its dedupe window, and
/// the mutating-op count the snapshot was taken at.
pub struct RestoredCheckpoint {
    /// Engine rebuilt from the session images.
    pub engine: ServiceEngine,
    /// Dedupe window restored entry-for-entry (FIFO order preserved).
    pub dedupe: DedupeWindow,
    /// Mutating ops applied when the checkpoint was written — journal
    /// entries past this count form the replay tail.
    pub ops: u64,
}

/// Path of the current checkpoint kept beside `journal`.
pub fn checkpoint_path(journal: &Path) -> PathBuf {
    sibling(journal, ".ckpt")
}

/// Path of the rotated previous checkpoint kept beside `journal`.
pub fn previous_checkpoint_path(journal: &Path) -> PathBuf {
    sibling(journal, ".ckpt.prev")
}

fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(suffix);
    PathBuf::from(os)
}

/// Mix-fold a byte body into the footer digest (same mixer as response
/// digests; seeded so an empty body is not zero).
fn body_digest(body: &[u8]) -> u64 {
    let mut h = mix(0xc4e_c9f7, body.len() as u64);
    for chunk in body.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h = mix(h, u64::from_le_bytes(word));
    }
    h
}

/// Serialize `engine` + `dedupe` at `ops` applied mutating ops into a
/// complete `byzscore-ckpt/v1` file body (footer included).
pub fn encode_checkpoint(engine: &ServiceEngine, dedupe: &DedupeWindow, ops: u64) -> String {
    let mut out = String::new();
    out.push_str(CKPT_VERSION);
    out.push('\n');
    out.push_str(&format!(
        "meta ops={ops} shards={} slots={}\n",
        engine.shards(),
        engine.session_slots()
    ));
    for (sid, image) in engine.images() {
        let open_line = format_op(&Request::Open(image.spec));
        let spec_tail = open_line
            .strip_prefix("open ")
            .expect("open ops format with the open verb");
        out.push_str(&format!("session {sid} {spec_tail}\n"));
        out.push_str(&format!(
            "state {sid} {} {} {} {}\n",
            image.next_fresh, image.epoch, image.churns, image.last_max_err
        ));
        let map: Vec<String> = image.map.iter().map(|id| id.to_string()).collect();
        out.push_str(&format!("map {sid} {}\n", map.join(",")));
        out.push_str(&format!(
            "rows {sid} {} {} {}\n",
            image.rows.rows(),
            image.rows.cols(),
            encode_rows(&image.rows)
        ));
        for (object, author, value) in image.claims {
            out.push_str(&format!("claim {sid} {object} {author} {}\n", value as u8));
        }
    }
    for (partition, seq, key, resp) in dedupe.entries() {
        let part = partition.map_or_else(|| "-".to_string(), |p| p.to_string());
        out.push_str(&format!(
            "dedupe {part} {seq} {key:016x} {}\n",
            format_response(&resp)
        ));
    }
    let digest = body_digest(out.as_bytes());
    out.push_str(&format!("footer len={} digest={digest:016x}\n", out.len()));
    out
}

/// Score rows as one hex string: row-major `u64` words, 16 hex digits
/// each ("-" for an empty matrix).
fn encode_rows(rows: &BitMatrix) -> String {
    if rows.rows() == 0 {
        return "-".to_string();
    }
    let mut hex = String::with_capacity(rows.rows() * rows.cols().div_ceil(64) * 16);
    for r in 0..rows.rows() {
        for word in rows.row(r).to_bitvec().words() {
            hex.push_str(&format!("{word:016x}"));
        }
    }
    hex
}

fn decode_rows(hex: &str, nrows: usize, ncols: usize) -> Result<BitMatrix, String> {
    if nrows == 0 {
        return Ok(BitMatrix::zeros(0, ncols));
    }
    let per_row = ncols.div_ceil(64);
    if hex.len() != nrows * per_row * 16 {
        return Err(format!(
            "rows hex length {} != {nrows}x{per_row} words",
            hex.len()
        ));
    }
    let mut parsed = Vec::with_capacity(nrows);
    let bytes = hex.as_bytes();
    for r in 0..nrows {
        let mut words = Vec::with_capacity(per_row);
        for w in 0..per_row {
            let at = (r * per_row + w) * 16;
            let digits = std::str::from_utf8(&bytes[at..at + 16]).map_err(|_| "non-ascii hex")?;
            words.push(u64::from_str_radix(digits, 16).map_err(|e| format!("bad row word: {e}"))?);
        }
        parsed.push(BitVec::from_words(words, ncols));
    }
    Ok(BitMatrix::from_rows(&parsed))
}

/// One session's fields accumulated while parsing.
#[derive(Default)]
struct PartialImage {
    spec: Option<crate::request::SessionSpec>,
    state: Option<(u32, u64, u64, u64)>,
    map: Option<Vec<u32>>,
    rows: Option<BitMatrix>,
    claims: Vec<(u32, u32, bool)>,
}

/// Verify the footer and split off the body, or report the file torn.
fn verified_body(text: &str) -> Result<&str, CheckpointError> {
    let footer_at = text
        .rfind("\nfooter ")
        .ok_or_else(|| CheckpointError::Torn("no footer line".into()))?;
    let body = &text[..footer_at + 1];
    let footer = text[footer_at + 1..].trim_end();
    let rest = footer
        .strip_prefix("footer ")
        .ok_or_else(|| CheckpointError::Torn("malformed footer".into()))?;
    let mut len = None;
    let mut digest = None;
    for tok in rest.split_whitespace() {
        if let Some(v) = tok.strip_prefix("len=") {
            len = v.parse::<usize>().ok();
        } else if let Some(v) = tok.strip_prefix("digest=") {
            digest = u64::from_str_radix(v, 16).ok();
        }
    }
    let (len, digest) = match (len, digest) {
        (Some(l), Some(d)) => (l, d),
        _ => return Err(CheckpointError::Torn("unparsable footer".into())),
    };
    if len != body.len() {
        return Err(CheckpointError::Torn(format!(
            "footer len {len} != body {}",
            body.len()
        )));
    }
    if digest != body_digest(body.as_bytes()) {
        return Err(CheckpointError::Torn("footer digest mismatch".into()));
    }
    Ok(body)
}

/// Decode a checkpoint file into a restored engine. `shards` is the
/// *caller's* shard count (answers are shard-invariant, so a restarted
/// server may restore with a different layout than the writer used).
pub fn decode_checkpoint(text: &str, shards: usize) -> Result<RestoredCheckpoint, CheckpointError> {
    let body = verified_body(text)?;
    let corrupt = |why: String| CheckpointError::Corrupt(why);
    let mut lines = body.lines();
    match lines.next() {
        Some(header) if header.trim() == CKPT_VERSION => {}
        other => {
            return Err(corrupt(format!(
                "bad header {other:?}, expected {CKPT_VERSION:?}"
            )))
        }
    }
    let mut ops = None;
    let mut slots = None;
    let mut partials: HashMap<u64, PartialImage> = HashMap::new();
    let mut order: Vec<u64> = Vec::new();
    let mut dedupe = DedupeWindow::new();
    for line in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (verb, rest) = line.split_once(' ').unwrap_or((line, ""));
        match verb {
            "meta" => {
                for tok in rest.split_whitespace() {
                    if let Some(v) = tok.strip_prefix("ops=") {
                        ops = v.parse::<u64>().ok();
                    } else if let Some(v) = tok.strip_prefix("slots=") {
                        slots = v.parse::<usize>().ok();
                    }
                }
            }
            "session" => {
                let (sid, tail) = rest
                    .split_once(' ')
                    .ok_or_else(|| corrupt(format!("short session line {line:?}")))?;
                let sid: u64 = sid
                    .parse()
                    .map_err(|e| corrupt(format!("bad session id: {e}")))?;
                let spec = match parse_op(&format!("open {tail}")) {
                    Ok(Request::Open(spec)) => spec,
                    other => return Err(corrupt(format!("bad session spec: {other:?}"))),
                };
                if !order.contains(&sid) {
                    order.push(sid);
                }
                partials.entry(sid).or_default().spec = Some(spec);
            }
            "state" => {
                let toks: Vec<&str> = rest.split_whitespace().collect();
                if toks.len() != 5 {
                    return Err(corrupt(format!("state line wants 5 fields: {line:?}")));
                }
                let sid: u64 = toks[0]
                    .parse()
                    .map_err(|e| corrupt(format!("bad state id: {e}")))?;
                let parse4 = || -> Result<(u32, u64, u64, u64), String> {
                    Ok((
                        toks[1].parse().map_err(|e| format!("next_fresh: {e}"))?,
                        toks[2].parse().map_err(|e| format!("epoch: {e}"))?,
                        toks[3].parse().map_err(|e| format!("churns: {e}"))?,
                        toks[4].parse().map_err(|e| format!("max_err: {e}"))?,
                    ))
                };
                partials.entry(sid).or_default().state = Some(parse4().map_err(corrupt)?);
            }
            "map" => {
                let (sid, ids) = rest
                    .split_once(' ')
                    .ok_or_else(|| corrupt(format!("short map line {line:?}")))?;
                let sid: u64 = sid
                    .parse()
                    .map_err(|e| corrupt(format!("bad map id: {e}")))?;
                let map: Result<Vec<u32>, _> = ids.trim().split(',').map(|t| t.parse()).collect();
                partials.entry(sid).or_default().map =
                    Some(map.map_err(|e| corrupt(format!("bad map entry: {e}")))?);
            }
            "rows" => {
                let toks: Vec<&str> = rest.split_whitespace().collect();
                if toks.len() != 4 {
                    return Err(corrupt(format!("rows line wants 4 fields: {line:?}")));
                }
                let sid: u64 = toks[0]
                    .parse()
                    .map_err(|e| corrupt(format!("bad rows id: {e}")))?;
                let nrows: usize = toks[1]
                    .parse()
                    .map_err(|e| corrupt(format!("bad row count: {e}")))?;
                let ncols: usize = toks[2]
                    .parse()
                    .map_err(|e| corrupt(format!("bad col count: {e}")))?;
                partials.entry(sid).or_default().rows =
                    Some(decode_rows(toks[3], nrows, ncols).map_err(corrupt)?);
            }
            "claim" => {
                let toks: Vec<&str> = rest.split_whitespace().collect();
                if toks.len() != 4 {
                    return Err(corrupt(format!("claim line wants 4 fields: {line:?}")));
                }
                let sid: u64 = toks[0]
                    .parse()
                    .map_err(|e| corrupt(format!("bad claim id: {e}")))?;
                let object: u32 = toks[1]
                    .parse()
                    .map_err(|e| corrupt(format!("bad claim object: {e}")))?;
                let author: u32 = toks[2]
                    .parse()
                    .map_err(|e| corrupt(format!("bad claim author: {e}")))?;
                let value = match toks[3] {
                    "0" => false,
                    "1" => true,
                    other => return Err(corrupt(format!("bad claim value {other:?}"))),
                };
                partials
                    .entry(sid)
                    .or_default()
                    .claims
                    .push((object, author, value));
            }
            "dedupe" => {
                let toks: Vec<&str> = rest.splitn(4, ' ').collect();
                if toks.len() != 4 {
                    return Err(corrupt(format!("dedupe line wants 4 fields: {line:?}")));
                }
                let partition = match toks[0] {
                    "-" => None,
                    p => Some(
                        p.parse::<u64>()
                            .map_err(|e| corrupt(format!("bad dedupe partition: {e}")))?,
                    ),
                };
                let seq: u64 = toks[1]
                    .parse()
                    .map_err(|e| corrupt(format!("bad dedupe seq: {e}")))?;
                let key = u64::from_str_radix(toks[2], 16)
                    .map_err(|e| corrupt(format!("bad dedupe key: {e}")))?;
                let resp = parse_response(toks[3])
                    .map_err(|e| corrupt(format!("bad dedupe response: {e}")))?;
                dedupe.record(partition, seq, key, resp);
            }
            other => return Err(corrupt(format!("unknown checkpoint verb {other:?}"))),
        }
    }
    let ops = ops.ok_or_else(|| corrupt("missing meta ops".into()))?;
    let slots = slots.ok_or_else(|| corrupt("missing meta slots".into()))?;
    let mut images = Vec::with_capacity(order.len());
    for sid in order {
        let partial = partials.remove(&sid).expect("ordered ids were inserted");
        let spec = partial
            .spec
            .ok_or_else(|| corrupt(format!("session {sid} missing spec")))?;
        let (next_fresh, epoch, churns, last_max_err) = partial
            .state
            .ok_or_else(|| corrupt(format!("session {sid} missing state")))?;
        let map = partial
            .map
            .ok_or_else(|| corrupt(format!("session {sid} missing map")))?;
        let rows = partial
            .rows
            .ok_or_else(|| corrupt(format!("session {sid} missing rows")))?;
        if sid as usize >= slots {
            return Err(corrupt(format!("session {sid} outside {slots} slots")));
        }
        images.push((
            sid,
            SessionImage {
                spec,
                map,
                next_fresh,
                epoch,
                churns,
                last_max_err,
                rows,
                claims: partial.claims,
            },
        ));
    }
    Ok(RestoredCheckpoint {
        engine: ServiceEngine::from_images(shards, slots, images),
        dedupe,
        ops,
    })
}

/// Durably install `text` as the current checkpoint beside `journal`:
/// write `<journal>.ckpt.tmp`, fsync it, rotate any existing current
/// checkpoint to `.ckpt.prev`, and rename the tmp into place. Every
/// mutation is an atomic rename, so a crash anywhere leaves either the
/// old or the new checkpoint loadable.
fn install_text(journal: &Path, text: &str) -> io::Result<()> {
    let current = checkpoint_path(journal);
    let tmp = sibling(journal, ".ckpt.tmp");
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(text.as_bytes())?;
        file.sync_all()?;
    }
    if current.exists() {
        std::fs::rename(&current, previous_checkpoint_path(journal))?;
    }
    std::fs::rename(&tmp, &current)?;
    // Best-effort directory sync so the renames themselves are durable.
    if let Some(dir) = journal.parent() {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Write the current engine + dedupe state as the checkpoint beside
/// `journal` (rotating the previous one to `.ckpt.prev`).
pub fn save_checkpoint(
    journal: &Path,
    engine: &ServiceEngine,
    dedupe: &DedupeWindow,
    ops: u64,
) -> io::Result<()> {
    install_text(journal, &encode_checkpoint(engine, dedupe, ops))
}

/// Fault-injection hook: install a deliberately truncated checkpoint
/// (the footer never lands), as a crash mid-`write_all` would leave
/// behind if the tmp file had already been renamed by a buggy ordering.
/// Recovery must detect the tear and fall back.
#[cfg(feature = "fault-inject")]
pub fn save_torn_checkpoint(
    journal: &Path,
    engine: &ServiceEngine,
    dedupe: &DedupeWindow,
    ops: u64,
) -> io::Result<()> {
    let full = encode_checkpoint(engine, dedupe, ops);
    let cut = full.len() * 2 / 3;
    install_text(journal, &full[..cut])
}

/// Load the best available checkpoint beside `journal`: the current
/// one, else (when that is missing or torn) the rotated previous one.
/// `None` when neither loads. Corrupt-but-complete files are treated
/// like torn ones for fallback purposes, with a note on stderr.
pub fn load_latest(journal: &Path, shards: usize) -> Option<(RestoredCheckpoint, RecoverySource)> {
    for (path, source) in [
        (checkpoint_path(journal), RecoverySource::Checkpoint),
        (
            previous_checkpoint_path(journal),
            RecoverySource::PreviousCheckpoint,
        ),
    ] {
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        match decode_checkpoint(&text, shards) {
            Ok(restored) => return Some((restored, source)),
            Err(err) => {
                eprintln!("skipping {}: {err}", path.display());
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::combined_digest;
    use crate::workload::{Trace, TraceSpec};

    /// Drive a fresh engine over a generated trace, recording responses
    /// into the dedupe window like the journaled paths do.
    fn driven_engine(seed: u64, upto: usize) -> (ServiceEngine, DedupeWindow, u64, Vec<Request>) {
        let trace = Trace::generate(&TraceSpec::small(seed));
        let mut engine = ServiceEngine::new();
        let mut dedupe = DedupeWindow::new();
        let mut mutating = 0u64;
        for (seq, op) in trace.ops[..upto].iter().enumerate() {
            let resp = engine.execute(std::slice::from_ref(op)).remove(0);
            if !op.is_shardable() {
                dedupe.record(op.session(), seq as u64, crate::journal::op_key(op), resp);
            }
            if op.is_mutating() {
                mutating += 1;
            }
        }
        (engine, dedupe, mutating, trace.ops)
    }

    #[test]
    fn checkpoint_round_trips_and_future_answers_match() {
        let (engine, dedupe, ops, all) = driven_engine(31, 9);
        let text = encode_checkpoint(&engine, &dedupe, ops);
        let restored = decode_checkpoint(&text, engine.shards()).expect("round trip decodes");
        assert_eq!(restored.ops, ops);
        assert_eq!(restored.dedupe.len(), dedupe.len());
        // The restored engine must answer the rest of the trace exactly
        // as the original would — including recomputes (churn/epoch)
        // that re-derive the world from the restored fields.
        let mut original = engine;
        let mut recovered = restored.engine;
        let tail = &all[9..];
        assert_eq!(
            combined_digest(&original.execute(tail)),
            combined_digest(&recovered.execute(tail)),
            "restored engine diverged on the tail"
        );
    }

    #[test]
    fn restored_engine_preserves_slot_count_and_closed_sessions() {
        let (engine, dedupe, ops, _) = driven_engine(32, 14);
        let slots = engine.session_slots();
        let open = engine.open_sessions();
        let text = encode_checkpoint(&engine, &dedupe, ops);
        let restored = decode_checkpoint(&text, 4).expect("decodes at a different shard count");
        assert_eq!(restored.engine.session_slots(), slots, "ids never reused");
        assert_eq!(restored.engine.open_sessions(), open);
    }

    #[test]
    fn torn_footer_is_detected_at_any_cut() {
        let (engine, dedupe, ops, _) = driven_engine(33, 7);
        let text = encode_checkpoint(&engine, &dedupe, ops);
        for frac in [1usize, 3, 7, 9] {
            let cut = text.len() * frac / 10;
            assert!(
                matches!(
                    decode_checkpoint(&text[..cut], DEFAULT_SHARDS_FOR_TEST),
                    Err(CheckpointError::Torn(_))
                ),
                "a {frac}0% prefix must read as torn"
            );
        }
        // Flipping a body byte breaks the digest even with the footer intact.
        let mut bytes = text.clone().into_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] = bytes[mid].wrapping_add(1);
        let flipped = String::from_utf8_lossy(&bytes).into_owned();
        assert!(matches!(
            decode_checkpoint(&flipped, DEFAULT_SHARDS_FOR_TEST),
            Err(CheckpointError::Torn(_))
        ));
    }

    const DEFAULT_SHARDS_FOR_TEST: usize = 8;

    #[test]
    fn save_rotates_previous_and_load_latest_falls_back() {
        let dir = std::env::temp_dir();
        let journal = dir.join(format!("byzscore_ckpt_test_{}", std::process::id()));
        let _ = std::fs::remove_file(checkpoint_path(&journal));
        let _ = std::fs::remove_file(previous_checkpoint_path(&journal));

        let (engine, dedupe, ops, _) = driven_engine(34, 6);
        save_checkpoint(&journal, &engine, &dedupe, ops).expect("first save");
        let (first, source) = load_latest(&journal, 8).expect("loads current");
        assert_eq!(source, RecoverySource::Checkpoint);
        assert_eq!(first.ops, ops);

        let (engine2, dedupe2, ops2, _) = driven_engine(34, 9);
        save_checkpoint(&journal, &engine2, &dedupe2, ops2).expect("second save rotates");
        let (latest, _) = load_latest(&journal, 8).expect("loads newer");
        assert_eq!(latest.ops, ops2);

        // Tear the current file: fallback must surface the rotated one.
        let current = checkpoint_path(&journal);
        let text = std::fs::read_to_string(&current).expect("current readable");
        std::fs::write(&current, &text[..text.len() / 2]).expect("truncate current");
        let (fallback, source) = load_latest(&journal, 8).expect("previous still loads");
        assert_eq!(source, RecoverySource::PreviousCheckpoint);
        assert_eq!(fallback.ops, ops, "rotated file is the older snapshot");

        let _ = std::fs::remove_file(checkpoint_path(&journal));
        let _ = std::fs::remove_file(previous_checkpoint_path(&journal));
    }
}
