//! `byzscore-wire/v1` — the length-prefixed frame protocol of the
//! socket front-end.
//!
//! # Framing
//!
//! Every message is one *frame*: a 4-byte big-endian payload length
//! followed by that many bytes of UTF-8 text. A declared length above
//! [`MAX_FRAME_BYTES`] is a protocol violation — the stream cannot be
//! resynchronized after a lying prefix, so the peer answers a typed
//! `err` frame and closes. Everything *inside* a frame is text on
//! purpose: request payloads reuse the `byzscore-trace/v1` op lines
//! (one serialization to audit, and a recorded trace file is literally
//! a list of valid wire payloads), and responses use the line grammar
//! below, so a wire capture is human-readable end to end.
//!
//! # Envelopes
//!
//! The first frame each way is the version handshake
//! (`hello byzscore-wire/v1`). After that, client frames are
//! [`ClientFrame`]: `req <seq> <op line>`, `stats <seq>`, or
//! `shutdown <seq>`. Server frames are [`ServerFrame`]: `resp <seq>
//! <response line>`, `stats <seq> <k=v …>`, `bye <seq>`, or `err <seq>
//! <message>`. The `seq` is chosen by the client and echoed verbatim;
//! responses may come back in any order (shard workers finish when they
//! finish), and the sequence number is how the client reassembles
//! request order — nothing in the protocol forces the server to answer
//! in-order, which is what lets per-shard workers run free.
//!
//! # Determinism
//!
//! [`format_response`]/[`parse_response`] round-trip every [`Response`]
//! variant field-exactly (pinned by unit tests), so a client-side digest
//! over decoded responses equals the server-side digest over the
//! originals — the socket adds no observable state of its own.

use std::io::{self, Read, Write};

use crate::request::{Response, ServiceError};
use crate::workload::{join_ids, num, split_ids};

/// Version string exchanged in the opening handshake frames.
pub const WIRE_VERSION: &str = "byzscore-wire/v1";

/// Hard cap on a frame payload. Large enough for any op line the trace
/// generator emits (a full-row query on a 10⁵-object session is ~600 KB);
/// small enough that a hostile length prefix cannot balloon allocation.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Write one frame: 4-byte big-endian length, then the payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME_BYTES);
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame payload. `Ok(None)` is a clean end-of-stream (the peer
/// closed between frames); a close mid-frame or a length prefix above
/// [`MAX_FRAME_BYTES`] is an error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    // Distinguish "closed before a frame" (clean) from "closed inside
    // the length prefix" (error) by hand-rolling the first read.
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_bytes[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream closed inside a frame length prefix",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// One frame from client to server.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientFrame {
    /// Version handshake; must be the first frame on a connection.
    Hello,
    /// One service op. The payload is a raw `byzscore-trace/v1` op line;
    /// it is *not* parsed at the envelope layer so that the server can
    /// answer a malformed line with a typed rejection carrying this
    /// `seq` instead of dropping the connection.
    Op {
        /// Client-chosen sequence number, echoed in the answer.
        seq: u64,
        /// The op line (trace syntax).
        line: String,
    },
    /// Ask for the server's observability counters.
    Stats {
        /// Echoed sequence number.
        seq: u64,
    },
    /// Ask the server to stop accepting connections, drain, and exit.
    Shutdown {
        /// Echoed sequence number.
        seq: u64,
    },
}

impl ClientFrame {
    /// Serialize to the frame payload text.
    pub fn encode(&self) -> String {
        match self {
            ClientFrame::Hello => format!("hello {WIRE_VERSION}"),
            ClientFrame::Op { seq, line } => format!("req {seq} {line}"),
            ClientFrame::Stats { seq } => format!("stats {seq}"),
            ClientFrame::Shutdown { seq } => format!("shutdown {seq}"),
        }
    }

    /// Parse a frame payload.
    pub fn decode(text: &str) -> Result<ClientFrame, String> {
        let (verb, rest) = split_verb(text);
        match verb {
            "hello" => {
                if rest.trim() == WIRE_VERSION {
                    Ok(ClientFrame::Hello)
                } else {
                    Err(format!(
                        "version mismatch: peer speaks {:?}, this build speaks {WIRE_VERSION:?}",
                        rest.trim()
                    ))
                }
            }
            "req" => {
                let (seq_tok, line) = split_verb(rest);
                let seq = parse_seq(seq_tok)?;
                if line.is_empty() {
                    return Err("req frame carries no op line".into());
                }
                Ok(ClientFrame::Op {
                    seq,
                    line: line.to_string(),
                })
            }
            "stats" => Ok(ClientFrame::Stats {
                seq: parse_seq(rest.trim())?,
            }),
            "shutdown" => Ok(ClientFrame::Shutdown {
                seq: parse_seq(rest.trim())?,
            }),
            other => Err(format!("unknown client frame verb {other:?}")),
        }
    }
}

/// One frame from server to client.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServerFrame {
    /// Version handshake answer.
    Hello,
    /// The answer to an op frame, any kind — including typed `Busy`
    /// (admission queue full) and `Rejected` (validation or parse
    /// failure) responses.
    Resp {
        /// Echo of the request's sequence number.
        seq: u64,
        /// The typed answer.
        response: Response,
    },
    /// Observability counters.
    Stats {
        /// Echo of the request's sequence number.
        seq: u64,
        /// The counters at snapshot time.
        stats: StatsSnapshot,
    },
    /// Shutdown acknowledged; the server drains and exits.
    Bye {
        /// Echo of the request's sequence number.
        seq: u64,
    },
    /// Protocol-level failure (bad envelope, non-UTF-8 payload). `seq`
    /// is 0 when the offending frame's sequence could not be recovered.
    Err {
        /// Echo of the request's sequence number, or 0.
        seq: u64,
        /// What went wrong.
        message: String,
    },
}

impl ServerFrame {
    /// Serialize to the frame payload text.
    pub fn encode(&self) -> String {
        match self {
            ServerFrame::Hello => format!("hello {WIRE_VERSION}"),
            ServerFrame::Resp { seq, response } => {
                format!("resp {seq} {}", format_response(response))
            }
            ServerFrame::Stats { seq, stats } => format!("stats {seq} {}", stats.encode()),
            ServerFrame::Bye { seq } => format!("bye {seq}"),
            ServerFrame::Err { seq, message } => format!("err {seq} {message}"),
        }
    }

    /// Parse a frame payload.
    pub fn decode(text: &str) -> Result<ServerFrame, String> {
        let (verb, rest) = split_verb(text);
        match verb {
            "hello" => {
                if rest.trim() == WIRE_VERSION {
                    Ok(ServerFrame::Hello)
                } else {
                    Err(format!(
                        "version mismatch: peer speaks {:?}, this build speaks {WIRE_VERSION:?}",
                        rest.trim()
                    ))
                }
            }
            "resp" => {
                let (seq_tok, line) = split_verb(rest);
                Ok(ServerFrame::Resp {
                    seq: parse_seq(seq_tok)?,
                    response: parse_response(line)?,
                })
            }
            "stats" => {
                let (seq_tok, line) = split_verb(rest);
                Ok(ServerFrame::Stats {
                    seq: parse_seq(seq_tok)?,
                    stats: StatsSnapshot::decode(line)?,
                })
            }
            "bye" => Ok(ServerFrame::Bye {
                seq: parse_seq(rest.trim())?,
            }),
            "err" => {
                let (seq_tok, message) = split_verb(rest);
                Ok(ServerFrame::Err {
                    seq: parse_seq(seq_tok)?,
                    message: message.to_string(),
                })
            }
            other => Err(format!("unknown server frame verb {other:?}")),
        }
    }
}

/// The server's observability counters, as answered to a `stats` frame
/// and printed at shutdown.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Ops accepted into the admission queue over the server's lifetime.
    pub admitted: u64,
    /// Ops answered `Busy` at admission (each may be retried by the
    /// client; retries that get in count under `admitted`).
    pub busy_rejected: u64,
    /// Frames whose op line failed to parse (answered with a typed
    /// `Rejected(Malformed)` response).
    pub malformed: u64,
    /// Ops fully executed and answered.
    pub completed: u64,
    /// Sessions currently open in the engine.
    pub open_sessions: u64,
    /// High-water mark of the admission queue depth.
    pub queue_depth_peak: u64,
    /// Median admission-to-answer latency, microseconds (bucket lower
    /// bound of a log₂ histogram).
    pub p50_us: u64,
    /// 99th-percentile admission-to-answer latency, microseconds.
    pub p99_us: u64,
    /// Admission queue depth at snapshot time (0 on an idle server — the
    /// depth-gauge regression test pins that it cannot leak).
    pub queue_depth: u64,
    /// Ops answered with a typed `Retryable` fault (each may be resent;
    /// resends that complete count under `completed` a second time).
    pub retryable: u64,
    /// Mutating ops appended to the write-ahead journal.
    pub journaled: u64,
    /// Resent barrier ops answered from the dedupe window instead of
    /// re-executing.
    pub deduped: u64,
    /// Shard-worker panics caught and supervised.
    pub worker_panics: u64,
    /// Engine rebuilds from the journal after a poisoned barrier.
    pub rebuilds: u64,
    /// Compaction cycles completed (checkpoint written + WAL truncated).
    pub checkpoints: u64,
    /// Journal entries removed by compaction over the server's lifetime.
    pub truncated_ops: u64,
    /// Mutating ops currently in the journal tail — what a crash right
    /// now would replay (a gauge, not a counter).
    pub tail_len: u64,
}

impl StatsSnapshot {
    /// `key=value` space-separated encoding, fixed field order. New
    /// counters append at the end — old decoders skip unknown keys.
    pub fn encode(&self) -> String {
        format!(
            "admitted={} busy={} malformed={} completed={} sessions={} depth_peak={} p50_us={} p99_us={} \
             depth={} retryable={} journaled={} deduped={} panics={} rebuilds={} ckpts={} \
             truncated={} tail={}",
            self.admitted,
            self.busy_rejected,
            self.malformed,
            self.completed,
            self.open_sessions,
            self.queue_depth_peak,
            self.p50_us,
            self.p99_us,
            self.queue_depth,
            self.retryable,
            self.journaled,
            self.deduped,
            self.worker_panics,
            self.rebuilds,
            self.checkpoints,
            self.truncated_ops,
            self.tail_len,
        )
    }

    /// Inverse of [`StatsSnapshot::encode`]; unknown keys are ignored so
    /// future servers can add counters without breaking old clients.
    pub fn decode(text: &str) -> Result<StatsSnapshot, String> {
        let mut s = StatsSnapshot::default();
        for pair in text.split_whitespace() {
            let (key, value) = pair
                .split_once('=')
                .filter(|(k, _)| !k.is_empty())
                .ok_or_else(|| format!("bad stats pair {pair:?}"))?;
            let v: u64 = value
                .parse()
                .map_err(|_| format!("bad stats value {pair:?}"))?;
            match key {
                "admitted" => s.admitted = v,
                "busy" => s.busy_rejected = v,
                "malformed" => s.malformed = v,
                "completed" => s.completed = v,
                "sessions" => s.open_sessions = v,
                "depth_peak" => s.queue_depth_peak = v,
                "p50_us" => s.p50_us = v,
                "p99_us" => s.p99_us = v,
                "depth" => s.queue_depth = v,
                "retryable" => s.retryable = v,
                "journaled" => s.journaled = v,
                "deduped" => s.deduped = v,
                "panics" => s.worker_panics = v,
                "rebuilds" => s.rebuilds = v,
                "ckpts" => s.checkpoints = v,
                "truncated" => s.truncated_ops = v,
                "tail" => s.tail_len = v,
                _ => {}
            }
        }
        Ok(s)
    }
}

/// Serialize a [`Response`] as one wire line — the exact inverse of
/// [`parse_response`], so decoded responses digest identically to the
/// originals.
pub fn format_response(resp: &Response) -> String {
    match resp {
        Response::Opened {
            session,
            players,
            max_err,
        } => format!("opened {session} {players} {max_err}"),
        Response::Probed {
            session,
            player,
            ones,
            digest,
        } => format!("probed {session} {player} {ones} {digest}"),
        Response::Preferences {
            session,
            players,
            ones,
            digest,
        } => format!("prefs {session} {players} {ones} {digest}"),
        Response::Churned {
            session,
            retired,
            joined,
            players,
            max_err,
        } => format!(
            "churned {session} {} {} {players} {max_err}",
            ids_or_dash(retired),
            ids_or_dash(joined)
        ),
        Response::Epoch {
            session,
            epoch,
            max_err,
        } => format!("epoch {session} {epoch} {max_err}"),
        Response::Closed {
            session,
            freed_slots,
        } => format!("closed {session} {freed_slots}"),
        Response::Busy { retry_after_ms } => format!("busy {retry_after_ms}"),
        Response::Retryable { reason } => format!("retryable {reason}"),
        Response::Rejected(e) => match e {
            ServiceError::UnknownSession(s) => format!("rejected unknown-session {s}"),
            ServiceError::SessionClosed(s) => format!("rejected session-closed {s}"),
            ServiceError::PlayerOutOfRange {
                session,
                player,
                players,
            } => format!("rejected player-range {session} {player} {players}"),
            ServiceError::ObjectOutOfRange {
                session,
                object,
                objects,
            } => format!("rejected object-range {session} {object} {objects}"),
            ServiceError::EmptyQuery(s) => format!("rejected empty-query {s}"),
            ServiceError::Malformed { message } => format!("rejected malformed {message}"),
        },
    }
}

/// Parse a [`format_response`] line back into the typed [`Response`].
pub fn parse_response(line: &str) -> Result<Response, String> {
    let (verb, rest) = split_verb(line.trim());
    let mut toks = rest.split_whitespace();
    let resp = match verb {
        "opened" => Response::Opened {
            session: num(toks.next(), "session")?,
            players: num(toks.next(), "players")?,
            max_err: num(toks.next(), "max_err")?,
        },
        "probed" => Response::Probed {
            session: num(toks.next(), "session")?,
            player: num(toks.next(), "player")?,
            ones: num(toks.next(), "ones")?,
            digest: num(toks.next(), "digest")?,
        },
        "prefs" => Response::Preferences {
            session: num(toks.next(), "session")?,
            players: num(toks.next(), "players")?,
            ones: num(toks.next(), "ones")?,
            digest: num(toks.next(), "digest")?,
        },
        "churned" => Response::Churned {
            session: num(toks.next(), "session")?,
            retired: dash_or_ids(toks.next().ok_or("missing retired list")?)?,
            joined: dash_or_ids(toks.next().ok_or("missing joined list")?)?,
            players: num(toks.next(), "players")?,
            max_err: num(toks.next(), "max_err")?,
        },
        "epoch" => Response::Epoch {
            session: num(toks.next(), "session")?,
            epoch: num(toks.next(), "epoch")?,
            max_err: num(toks.next(), "max_err")?,
        },
        "closed" => Response::Closed {
            session: num(toks.next(), "session")?,
            freed_slots: num(toks.next(), "freed_slots")?,
        },
        "busy" => Response::Busy {
            retry_after_ms: num(toks.next(), "retry_after_ms")?,
        },
        "retryable" => {
            // The reason is the remainder of the line verbatim, like a
            // malformed-rejection message.
            return Ok(Response::Retryable {
                reason: rest.to_string(),
            });
        }
        "rejected" => {
            let kind = toks.next().ok_or("missing rejection kind")?;
            let error = match kind {
                "unknown-session" => ServiceError::UnknownSession(num(toks.next(), "session")?),
                "session-closed" => ServiceError::SessionClosed(num(toks.next(), "session")?),
                "player-range" => ServiceError::PlayerOutOfRange {
                    session: num(toks.next(), "session")?,
                    player: num(toks.next(), "player")?,
                    players: num(toks.next(), "players")?,
                },
                "object-range" => ServiceError::ObjectOutOfRange {
                    session: num(toks.next(), "session")?,
                    object: num(toks.next(), "object")?,
                    objects: num(toks.next(), "objects")?,
                },
                "empty-query" => ServiceError::EmptyQuery(num(toks.next(), "session")?),
                "malformed" => {
                    // The message is the remainder of the line verbatim.
                    let (_, message) = split_verb(rest);
                    return Ok(Response::Rejected(ServiceError::Malformed {
                        message: message.to_string(),
                    }));
                }
                other => return Err(format!("unknown rejection kind {other:?}")),
            };
            Response::Rejected(error)
        }
        other => return Err(format!("unknown response verb {other:?}")),
    };
    if let Some(extra) = toks.next() {
        return Err(format!("trailing token {extra:?}"));
    }
    Ok(resp)
}

/// First whitespace-separated token and the rest of the string.
fn split_verb(text: &str) -> (&str, &str) {
    match text.split_once(char::is_whitespace) {
        Some((verb, rest)) => (verb, rest.trim_start()),
        None => (text, ""),
    }
}

fn parse_seq(tok: &str) -> Result<u64, String> {
    tok.parse::<u64>()
        .map_err(|_| format!("bad sequence number {tok:?}"))
}

fn ids_or_dash(ids: &[u32]) -> String {
    if ids.is_empty() {
        "-".to_string()
    } else {
        join_ids(ids)
    }
}

fn dash_or_ids(field: &str) -> Result<Vec<u32>, String> {
    if field == "-" {
        Ok(Vec::new())
    } else {
        split_ids(field)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn every_response_variant() -> Vec<Response> {
        vec![
            Response::Opened {
                session: 3,
                players: 48,
                max_err: 7,
            },
            Response::Probed {
                session: 0,
                player: 11,
                ones: 4,
                digest: 0xdead_beef_0102_0304,
            },
            Response::Preferences {
                session: 9,
                players: 5,
                ones: 123,
                digest: u64::MAX,
            },
            Response::Churned {
                session: 2,
                retired: vec![4, 9, 31],
                joined: vec![48, 49],
                players: 47,
                max_err: 2,
            },
            Response::Churned {
                session: 2,
                retired: vec![],
                joined: vec![],
                players: 48,
                max_err: 0,
            },
            Response::Epoch {
                session: 1,
                epoch: 12,
                max_err: 3,
            },
            Response::Closed {
                session: 5,
                freed_slots: 992,
            },
            Response::Busy { retry_after_ms: 5 },
            Response::Retryable {
                reason: "shard worker panicked".to_string(),
            },
            Response::Rejected(ServiceError::UnknownSession(77)),
            Response::Rejected(ServiceError::SessionClosed(0)),
            Response::Rejected(ServiceError::PlayerOutOfRange {
                session: 1,
                player: 99,
                players: 48,
            }),
            Response::Rejected(ServiceError::ObjectOutOfRange {
                session: 1,
                object: 512,
                objects: 96,
            }),
            Response::Rejected(ServiceError::EmptyQuery(4)),
            Response::Rejected(ServiceError::Malformed {
                message: "unknown op \"frobnicate\"".to_string(),
            }),
        ]
    }

    #[test]
    fn every_response_round_trips_field_exactly() {
        for resp in every_response_variant() {
            let line = format_response(&resp);
            let back = parse_response(&line).unwrap_or_else(|e| panic!("{line:?}: {e}"));
            assert_eq!(back, resp, "line {line:?}");
            // Digest equality is implied by == but is the property the
            // replay gate actually leans on; assert it explicitly.
            assert_eq!(back.digest(), resp.digest());
        }
    }

    #[test]
    fn response_parse_rejects_malformed_lines() {
        for bad in [
            "",
            "opened 1",             // missing fields
            "opened 1 2 3 4",       // trailing token
            "probed 0 1 x 2",       // bad number
            "churned 0 1,2 3 4",    // missing field
            "rejected",             // missing kind
            "rejected what 3",      // unknown kind
            "transmogrified 1 2 3", // unknown verb
        ] {
            assert!(parse_response(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn client_frames_round_trip() {
        let frames = [
            ClientFrame::Hello,
            ClientFrame::Op {
                seq: 42,
                line: "probe 0 3 1,2,9".to_string(),
            },
            ClientFrame::Stats { seq: 7 },
            ClientFrame::Shutdown { seq: u64::MAX },
        ];
        for f in frames {
            let text = f.encode();
            assert_eq!(ClientFrame::decode(&text).as_ref(), Ok(&f), "{text:?}");
        }
        assert!(ClientFrame::decode("hello byzscore-wire/v0").is_err());
        assert!(ClientFrame::decode("req 1").is_err(), "op line required");
        assert!(ClientFrame::decode("req x probe").is_err(), "bad seq");
        assert!(ClientFrame::decode("warble 3").is_err());
        // A req frame with a garbage op line decodes fine — op parsing
        // (and the typed Malformed answer) is the server's job.
        assert!(matches!(
            ClientFrame::decode("req 9 utter garbage"),
            Ok(ClientFrame::Op { seq: 9, .. })
        ));
    }

    #[test]
    fn server_frames_round_trip() {
        let frames = [
            ServerFrame::Hello,
            ServerFrame::Resp {
                seq: 3,
                response: Response::Busy { retry_after_ms: 8 },
            },
            ServerFrame::Stats {
                seq: 1,
                stats: StatsSnapshot {
                    admitted: 100,
                    busy_rejected: 3,
                    malformed: 1,
                    completed: 97,
                    open_sessions: 2,
                    queue_depth_peak: 55,
                    p50_us: 120,
                    p99_us: 9000,
                    queue_depth: 4,
                    retryable: 2,
                    journaled: 61,
                    deduped: 1,
                    worker_panics: 2,
                    rebuilds: 1,
                    checkpoints: 2,
                    truncated_ops: 40,
                    tail_len: 3,
                },
            },
            ServerFrame::Bye { seq: 12 },
            ServerFrame::Err {
                seq: 0,
                message: "frame payload is not UTF-8".to_string(),
            },
        ];
        for f in frames {
            let text = f.encode();
            assert_eq!(ServerFrame::decode(&text).as_ref(), Ok(&f), "{text:?}");
        }
    }

    #[test]
    fn frames_round_trip_through_a_byte_stream() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello byzscore-wire/v1").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, "req 1 epoch 0".as_bytes()).unwrap();
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cursor).unwrap().as_deref(),
            Some(&b"hello byzscore-wire/v1"[..])
        );
        assert_eq!(read_frame(&mut cursor).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(
            read_frame(&mut cursor).unwrap().as_deref(),
            Some(&b"req 1 epoch 0"[..])
        );
        assert_eq!(read_frame(&mut cursor).unwrap(), None, "clean EOF");
    }

    /// Every counter survives the `k=v` codec field-exactly, including
    /// the fault-tolerance counters appended after the v1 set — and a
    /// decoder fed only the v1 prefix leaves the new counters at zero
    /// (forward/backward compatibility of the unknown-key rule).
    #[test]
    fn stats_snapshot_round_trips_field_exactly() {
        let stats = StatsSnapshot {
            admitted: u64::MAX,
            busy_rejected: 17,
            malformed: 3,
            completed: u64::MAX - 5,
            open_sessions: 11,
            queue_depth_peak: 256,
            p50_us: 0,
            p99_us: 1 << 62,
            queue_depth: 9,
            retryable: 8,
            journaled: 1_000_000,
            deduped: 7,
            worker_panics: 2,
            rebuilds: 1,
            checkpoints: 5,
            truncated_ops: 320,
            tail_len: 6,
        };
        let text = stats.encode();
        assert_eq!(StatsSnapshot::decode(&text), Ok(stats), "{text:?}");
        // An old-format line (no fault counters) still decodes.
        let old =
            "admitted=5 busy=0 malformed=0 completed=5 sessions=1 depth_peak=2 p50_us=10 p99_us=20";
        let decoded = StatsSnapshot::decode(old).expect("v1 prefix decodes");
        assert_eq!(decoded.admitted, 5);
        assert_eq!(decoded.retryable, 0);
        assert_eq!(decoded.rebuilds, 0);
        // A future key is skipped, not an error.
        assert!(StatsSnapshot::decode("admitted=1 warp_factor=9").is_ok());
        for bad in ["admitted", "admitted=x", "=5"] {
            assert!(StatsSnapshot::decode(bad).is_err(), "accepted {bad:?}");
        }
    }

    /// A `Read` source that hands out at most `chunk` bytes per call —
    /// the TCP-segmentation shape `read_frame` must be insensitive to.
    struct Trickle {
        data: Vec<u8>,
        pos: usize,
        chunk: usize,
    }

    impl Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let n = self.chunk.min(buf.len()).min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    /// A frame split across arbitrary segment boundaries — including a
    /// 1-byte trickle that splits the length prefix itself — parses
    /// byte-identically to a single-segment read.
    #[test]
    fn frames_parse_identically_across_segment_boundaries() {
        let mut data = Vec::new();
        write_frame(&mut data, b"req 7 probe 0 3 1,2,9").unwrap();
        write_frame(&mut data, b"resp 7 probed 0 3 2 12345").unwrap();
        write_frame(&mut data, b"").unwrap();
        let whole: Vec<Option<Vec<u8>>> = {
            let mut cursor = io::Cursor::new(data.clone());
            (0..4).map(|_| read_frame(&mut cursor).unwrap()).collect()
        };
        for chunk in [1usize, 2, 3, 5, 7] {
            let mut trickle = Trickle {
                data: data.clone(),
                pos: 0,
                chunk,
            };
            for (i, expected) in whole.iter().enumerate() {
                assert_eq!(
                    read_frame(&mut trickle).unwrap(),
                    *expected,
                    "frame {i} at {chunk}-byte segments"
                );
            }
        }
    }

    #[test]
    fn oversized_and_truncated_frames_are_errors_not_panics() {
        // Lying length prefix far past the cap.
        let mut huge = Vec::new();
        huge.extend_from_slice(&(MAX_FRAME_BYTES as u32 + 1).to_be_bytes());
        assert_eq!(
            read_frame(&mut io::Cursor::new(huge)).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        // Stream dies inside the length prefix.
        assert_eq!(
            read_frame(&mut io::Cursor::new(vec![0u8, 0]))
                .unwrap_err()
                .kind(),
            io::ErrorKind::UnexpectedEof
        );
        // Stream dies inside the payload.
        let mut short = Vec::new();
        short.extend_from_slice(&8u32.to_be_bytes());
        short.extend_from_slice(b"abc");
        assert!(read_frame(&mut io::Cursor::new(short)).is_err());
    }
}
