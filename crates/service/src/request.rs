//! The typed request/response surface of the scoring service.
//!
//! Every field on both sides of the API is an integer (or a list of
//! integers): responses are digested into `u64`s with integer-only
//! mixing, so a replayed trace produces bit-identical digests on any
//! host, thread count, or shard layout. Quantities that are naturally
//! fractional are carried as integers — preference drift as
//! parts-per-million, workload skew as an extra-draw count.

use byzscore::Algorithm;

/// Everything needed to open a session: the world, the protocol, and the
/// adversary, all by value.
///
/// `players` is the *active* population; the underlying identity pool is
/// provisioned at `2 × players`, leaving `players` fresh identities of
/// join headroom for [`Request::ApplyChurn`] (joins beyond that are
/// silently truncated, mirroring the dynamic-world runner).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SessionSpec {
    /// Initial active population `n`.
    pub players: usize,
    /// Number of objects `m`.
    pub objects: usize,
    /// Planted taste clusters in the procedural world.
    pub clusters: usize,
    /// Planted cluster diameter.
    pub diameter: usize,
    /// Seed of the hidden truth (and of churn/drift randomness).
    pub world_seed: u64,
    /// Scoring algorithm run on every recompute.
    pub algorithm: ServiceAlgorithm,
    /// Per-player probe budget `B`.
    pub budget: usize,
    /// Players corrupted per recompute (seeded count corruption with the
    /// inverting strategy); `0` for an all-honest session.
    pub corrupt: usize,
    /// Per-epoch preference drift rate in parts-per-million (`0` freezes
    /// the world; `1_000_000` flips every bit each epoch).
    pub drift_ppm: u32,
    /// Master seed of the protocol executions.
    pub score_seed: u64,
}

/// Which scoring algorithm a session runs on every recompute.
///
/// `Naive` is the service's flagship: it is the one algorithm with an
/// incremental recompute path (warm-started group cache + pooled select
/// machines), so resident sessions pay for churn/epoch transitions
/// proportionally to what actually changed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ServiceAlgorithm {
    /// Direct sampling with group-cache warm starts across recomputes.
    #[default]
    Naive,
    /// Figure 2 (`CalculatePreferences`) with trusted shared randomness.
    Calculate,
    /// Skyline: planted clusters given for free.
    Oracle,
    /// Population-majority per object.
    Majority,
}

impl ServiceAlgorithm {
    /// The core [`Algorithm`] this maps onto.
    pub fn core(self) -> Algorithm {
        match self {
            ServiceAlgorithm::Naive => Algorithm::NaiveSampling,
            ServiceAlgorithm::Calculate => Algorithm::CalculatePreferences,
            ServiceAlgorithm::Oracle => Algorithm::OracleClusters,
            ServiceAlgorithm::Majority => Algorithm::GlobalMajority,
        }
    }

    /// Stable name used in trace files.
    pub fn name(self) -> &'static str {
        match self {
            ServiceAlgorithm::Naive => "naive",
            ServiceAlgorithm::Calculate => "calculate",
            ServiceAlgorithm::Oracle => "oracle",
            ServiceAlgorithm::Majority => "majority",
        }
    }

    /// Inverse of [`ServiceAlgorithm::name`].
    pub fn parse(s: &str) -> Option<ServiceAlgorithm> {
        match s {
            "naive" => Some(ServiceAlgorithm::Naive),
            "calculate" => Some(ServiceAlgorithm::Calculate),
            "oracle" => Some(ServiceAlgorithm::Oracle),
            "majority" => Some(ServiceAlgorithm::Majority),
            _ => None,
        }
    }
}

/// One request to the engine. Session ids are assigned in open order and
/// never reused, so a recorded trace replays against the same ids.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Open a session; answers [`Response::Opened`] with its id.
    Open(SessionSpec),
    /// One player probes a set of objects against the hidden truth; the
    /// results are posted as claims in the session's board scope.
    SubmitProbes {
        /// Target session.
        session: u64,
        /// Probing player (active slot index).
        player: u32,
        /// Objects to probe.
        objects: Vec<u32>,
    },
    /// Read computed preference scores for a set of players, optionally
    /// restricted to a set of objects (`None` = full rows). Players may
    /// live on different shards; partial answers are merged back in
    /// request order.
    QueryPreferences {
        /// Target session.
        session: u64,
        /// Players to read (active slot indices).
        players: Vec<u32>,
        /// Object restriction; `None` reads whole rows.
        objects: Option<Vec<u32>>,
    },
    /// Retire `retire` players (seeded shuffle, never below one) and join
    /// up to `join` fresh pool identities, then recompute scores.
    ApplyChurn {
        /// Target session.
        session: u64,
        /// Players to retire.
        retire: usize,
        /// Fresh identities to join.
        join: usize,
    },
    /// Advance the session's drift epoch by one and recompute scores.
    AdvanceEpoch {
        /// Target session.
        session: u64,
    },
    /// Close the session and retire its board scope.
    CloseSession {
        /// Target session.
        session: u64,
    },
}

impl Request {
    /// The session this request addresses (`None` for `Open`).
    pub fn session(&self) -> Option<u64> {
        match self {
            Request::Open(_) => None,
            Request::SubmitProbes { session, .. }
            | Request::QueryPreferences { session, .. }
            | Request::ApplyChurn { session, .. }
            | Request::AdvanceEpoch { session }
            | Request::CloseSession { session } => Some(*session),
        }
    }

    /// True for the ops the engine may execute concurrently across shards
    /// (reads and probe writes); false for the barrier ops that mutate
    /// session worlds and must serialize.
    pub fn is_shardable(&self) -> bool {
        matches!(
            self,
            Request::SubmitProbes { .. } | Request::QueryPreferences { .. }
        )
    }

    /// True for ops that change engine state and therefore must be
    /// journaled before execution (everything except preference reads).
    /// Probes mutate too — their board claims feed the `freed_slots`
    /// count a later `close` answers with.
    pub fn is_mutating(&self) -> bool {
        !matches!(self, Request::QueryPreferences { .. })
    }
}

/// One answer from the engine, in request order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// A session opened and its first scores were computed.
    Opened {
        /// Assigned session id (open order, never reused).
        session: u64,
        /// Active population.
        players: usize,
        /// Max honest prediction error of the initial scores.
        max_err: u64,
    },
    /// Probe results for one player.
    Probed {
        /// Session answered.
        session: u64,
        /// Probing player.
        player: u32,
        /// How many probed objects came back `true`.
        ones: u32,
        /// Integer digest of the `(object, bit)` sequence.
        digest: u64,
    },
    /// Merged preference scores across the queried players.
    Preferences {
        /// Session answered.
        session: u64,
        /// Players answered.
        players: u32,
        /// Total set bits across the queried rows (restricted to the
        /// queried objects when a restriction was given).
        ones: u64,
        /// Integer digest of the per-player `(ones, row-digest)` sequence
        /// in request order — independent of the shard layout.
        digest: u64,
    },
    /// Churn applied and scores recomputed.
    Churned {
        /// Session answered.
        session: u64,
        /// Pool identities retired.
        retired: Vec<u32>,
        /// Pool identities joined (may be shorter than requested when the
        /// pool headroom is exhausted).
        joined: Vec<u32>,
        /// Active population after the churn.
        players: usize,
        /// Max honest error of the recomputed scores.
        max_err: u64,
    },
    /// Epoch advanced and scores recomputed.
    Epoch {
        /// Session answered.
        session: u64,
        /// New epoch.
        epoch: u64,
        /// Max honest error of the recomputed scores.
        max_err: u64,
    },
    /// Session closed; its board scope was retired.
    Closed {
        /// Session answered.
        session: u64,
        /// Board slots freed by retiring the session's scope.
        freed_slots: u64,
    },
    /// The request was rejected; the engine state is unchanged.
    Rejected(ServiceError),
    /// The server's admission queue was full; nothing was executed and
    /// the op may be resent after the given delay. Only the socket
    /// front-end emits this — an op the engine *accepted* is never
    /// answered with `Busy`, so replay digests (which fold only final
    /// answers) are unaffected by transient overload.
    Busy {
        /// Suggested client-side retry delay.
        retry_after_ms: u32,
    },
    /// The op was admitted but its execution was interrupted by an
    /// infrastructure fault (a panicked worker, an engine rebuild). The
    /// op may or may not have been applied; because every mutation is
    /// either idempotent (probes) or deduplicated by `(seq, op)` on the
    /// server, resending it verbatim is always safe and yields the real
    /// answer. Like `Busy`, this never enters a replay digest — clients
    /// retry until a final answer arrives.
    Retryable {
        /// What faulted, human-readable and deterministic.
        reason: String,
    },
}

/// Why the engine rejected a request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// No session was ever opened under this id.
    UnknownSession(u64),
    /// The session existed but was closed.
    SessionClosed(u64),
    /// A player index is outside the session's active population.
    PlayerOutOfRange {
        /// Session addressed.
        session: u64,
        /// Offending player index.
        player: u32,
        /// Active population at the time.
        players: usize,
    },
    /// An object index is outside the session's object set.
    ObjectOutOfRange {
        /// Session addressed.
        session: u64,
        /// Offending object index.
        object: u32,
        /// Object count.
        objects: usize,
    },
    /// A preference query named no players.
    EmptyQuery(u64),
    /// The request text could not be parsed at all (bad op line on the
    /// stdin loop, bad frame payload on the socket). Typed so that every
    /// input — however mangled — still gets a digestible answer instead
    /// of tearing down the session loop or the connection.
    Malformed {
        /// What failed to parse, human-readable.
        message: String,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownSession(s) => write!(f, "unknown session {s}"),
            ServiceError::SessionClosed(s) => write!(f, "session {s} is closed"),
            ServiceError::PlayerOutOfRange {
                session,
                player,
                players,
            } => write!(
                f,
                "player {player} out of range {players} in session {session}"
            ),
            ServiceError::ObjectOutOfRange {
                session,
                object,
                objects,
            } => write!(
                f,
                "object {object} out of range {objects} in session {session}"
            ),
            ServiceError::EmptyQuery(s) => write!(f, "empty preference query on session {s}"),
            ServiceError::Malformed { message } => write!(f, "malformed request: {message}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// One SplitMix64-style mixing step — the digest primitive everywhere in
/// this crate. Integer in, integer out; no floats ever enter a digest.
#[inline]
pub fn mix(h: u64, v: u64) -> u64 {
    let mut z = h ^ v.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Response {
    fn error_digest(e: &ServiceError) -> u64 {
        match e {
            ServiceError::UnknownSession(s) => mix(mix(0xe1, 1), *s),
            ServiceError::SessionClosed(s) => mix(mix(0xe1, 2), *s),
            ServiceError::PlayerOutOfRange {
                session,
                player,
                players,
            } => mix(
                mix(mix(mix(0xe1, 3), *session), *player as u64),
                *players as u64,
            ),
            ServiceError::ObjectOutOfRange {
                session,
                object,
                objects,
            } => mix(
                mix(mix(mix(0xe1, 4), *session), *object as u64),
                *objects as u64,
            ),
            ServiceError::EmptyQuery(s) => mix(mix(0xe1, 5), *s),
            ServiceError::Malformed { message } => {
                // Fold the message bytes so distinct parse failures digest
                // apart; messages are deterministic strings, so this stays
                // host-invariant.
                fold_text(mix(0xe1, 6), message)
            }
        }
    }

    /// Integer digest of the full response content. Two responses digest
    /// equal iff they carry the same variant and field values, so a
    /// replayed trace's per-op digest stream pins the whole API surface.
    pub fn digest(&self) -> u64 {
        match self {
            Response::Opened {
                session,
                players,
                max_err,
            } => mix(mix(mix(mix(0x5d, 1), *session), *players as u64), *max_err),
            Response::Probed {
                session,
                player,
                ones,
                digest,
            } => mix(
                mix(
                    mix(mix(mix(0x5d, 2), *session), *player as u64),
                    *ones as u64,
                ),
                *digest,
            ),
            Response::Preferences {
                session,
                players,
                ones,
                digest,
            } => mix(
                mix(mix(mix(mix(0x5d, 3), *session), *players as u64), *ones),
                *digest,
            ),
            Response::Churned {
                session,
                retired,
                joined,
                players,
                max_err,
            } => {
                let mut h = mix(mix(0x5d, 4), *session);
                h = mix(h, retired.len() as u64);
                for &r in retired {
                    h = mix(h, r as u64);
                }
                h = mix(h, joined.len() as u64);
                for &j in joined {
                    h = mix(h, j as u64);
                }
                mix(mix(h, *players as u64), *max_err)
            }
            Response::Epoch {
                session,
                epoch,
                max_err,
            } => mix(mix(mix(mix(0x5d, 5), *session), *epoch), *max_err),
            Response::Closed {
                session,
                freed_slots,
            } => mix(mix(mix(0x5d, 6), *session), *freed_slots),
            Response::Rejected(e) => mix(mix(0x5d, 7), Self::error_digest(e)),
            Response::Busy { retry_after_ms } => mix(mix(0x5d, 8), *retry_after_ms as u64),
            Response::Retryable { reason } => fold_text(mix(0x5d, 9), reason),
        }
    }
}

/// Fold a deterministic string into a digest: length first, then the
/// bytes in 8-byte little-endian words.
fn fold_text(mut h: u64, text: &str) -> u64 {
    h = mix(h, text.len() as u64);
    for chunk in text.as_bytes().chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h = mix(h, u64::from_le_bytes(word));
    }
    h
}

/// Fold a response stream into one digest (order-sensitive): the single
/// cell a benchmark gates to pin an entire replayed workload.
pub fn combined_digest(responses: &[Response]) -> u64 {
    let mut h = 0x6272_7a73_6372_7631; // "byzscrv1"
    for r in responses {
        h = mix(h, r.digest());
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_separate_variants_and_fields() {
        let a = Response::Opened {
            session: 0,
            players: 64,
            max_err: 3,
        };
        let b = Response::Opened {
            session: 0,
            players: 64,
            max_err: 4,
        };
        let c = Response::Closed {
            session: 0,
            freed_slots: 0,
        };
        assert_ne!(a.digest(), b.digest());
        assert_ne!(a.digest(), c.digest());
        assert_eq!(a.digest(), a.clone().digest());
    }

    #[test]
    fn combined_digest_is_order_sensitive() {
        let a = Response::Epoch {
            session: 0,
            epoch: 1,
            max_err: 0,
        };
        let b = Response::Epoch {
            session: 1,
            epoch: 1,
            max_err: 0,
        };
        assert_ne!(
            combined_digest(&[a.clone(), b.clone()]),
            combined_digest(&[b, a])
        );
    }

    #[test]
    fn algorithm_names_round_trip() {
        for alg in [
            ServiceAlgorithm::Naive,
            ServiceAlgorithm::Calculate,
            ServiceAlgorithm::Oracle,
            ServiceAlgorithm::Majority,
        ] {
            assert_eq!(ServiceAlgorithm::parse(alg.name()), Some(alg));
        }
        assert_eq!(ServiceAlgorithm::parse("robust"), None);
    }
}
