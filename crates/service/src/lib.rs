//! **byzscore-service** — scoring as a service.
//!
//! A resident engine ([`ServiceEngine`]) holds many concurrent scoring
//! sessions behind a typed request API ([`Request`]/[`Response`]):
//! open a world, submit probes, query computed preferences, churn the
//! population, advance the drift epoch, close. Requests are sharded
//! across a fixed logical worker set keyed by the *group graph* of the
//! current scores — same-group players route to the same worker, and
//! cross-shard preference queries merge per-shard partials in request
//! order. World transitions recompute scores incrementally through the
//! warm-start path (group-cache refresh + pooled select machines) of
//! `byzscore::Session::evolved`.
//!
//! The [`workload`] module generates seeded request traces and
//! round-trips them through the versioned `byzscore-trace/v1` file
//! format; a trace replays bit-identically at any thread count, which is
//! what the `e17_service_throughput` benchmark and the determinism suite
//! gate on. The `scored` binary wraps generate/replay/serve for the
//! command line.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
mod engine;
pub mod fault;
pub mod journal;
pub mod net;
mod request;
pub mod wire;
pub mod workload;

pub use checkpoint::{CheckpointError, RecoverySource, CKPT_VERSION};
pub use engine::{ServiceEngine, DEFAULT_SHARDS, TAG_SERVICE};
pub use fault::{FaultKind, FaultPlan};
pub use journal::{
    CompactionPolicy, DedupeWindow, Journal, JournaledEngine, Recovered, RecoveryReport,
};
pub use net::{NetConfig, ReplayOptions, Server, SocketReplay};
pub use request::{
    combined_digest, mix, Request, Response, ServiceAlgorithm, ServiceError, SessionSpec,
};
pub use wire::{StatsSnapshot, MAX_FRAME_BYTES, WIRE_VERSION};
pub use workload::{
    format_op, parse_digests, parse_op, OpMix, Trace, TraceError, TraceSpec, TRACE_VERSION,
};
