//! Write-ahead op journal and the idempotent-resend dedupe window.
//!
//! # The journal is a trace file
//!
//! Ops are already `byzscore-trace/v1` text, so the journal reuses the
//! format verbatim: the header line, then one op line per mutating op,
//! each preceded by a `# wal seq=N` comment carrying the client's wire
//! sequence number. Comments are ignored by [`Trace::from_text`], so a
//! journal *is* a valid trace — `scored replay wal.journal` replays a
//! crashed server's history directly, and recovery is nothing more than
//! [`ServiceEngine::execute`] over the parsed ops (the batch path, the
//! same code every digest gate already pins).
//!
//! # Durability contract
//!
//! An entry is appended and fsynced **before** its op executes, and the
//! answer is only sent after execution. A crash therefore leaves three
//! possible states per op, all safe:
//!
//! * journaled + executed, answer maybe lost — recovery re-applies it;
//!   the client's resend is answered from the rebuilt [`DedupeWindow`]
//!   (barriers) or by idempotent re-execution (probes).
//! * journaled, never executed — recovery applies it for the first
//!   time; identical outcome by engine determinism.
//! * torn tail (the crash landed mid-append) — the partial last line is
//!   dropped and the file truncated to the last newline. The op was
//!   never executed and never answered, so the resend simply runs it
//!   fresh.
//!
//! Queries are *not* journaled: they read score rows that change only
//! at barriers, so they are pure functions of the journaled history.
//!
//! # Why resends never double-apply
//!
//! Probes are naturally idempotent — the board holds one claim slot per
//! `(scope, object, author)` and re-posting overwrites with the same
//! value, so re-executing a probe changes nothing (including the
//! `freed_slots` a later close reports). Barriers are *not* idempotent
//! (a churn retires players each time), so the engine keeps a bounded
//! per-session [`DedupeWindow`]: a resent barrier whose `(seq, op)`
//! pair was already answered gets the recorded response back without
//! re-executing. Recovery restocks the window from the `# wal seq=N`
//! annotations, so the exactly-once guarantee spans crashes.

use std::collections::{HashMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::{self, Read as _, Write as _};
use std::path::Path;

use crate::engine::ServiceEngine;
use crate::request::{mix, Request, Response};
use crate::workload::{format_op, parse_op, TraceError, TRACE_VERSION};

/// Resent-op memory per dedupe partition (one partition per session,
/// plus one for session-less `open` ops). A client pipelines at most a
/// barrier-free window per session, so a small FIFO covers every resend
/// a live client can produce.
pub const DEDUPE_WINDOW: usize = 64;

/// Fold an op's canonical trace line into a 64-bit identity key. A
/// dedupe hit requires the stored key to match, so a *different* op
/// reusing an old sequence number executes instead of replaying a
/// stale answer.
pub fn op_key(op: &Request) -> u64 {
    let line = format_op(op);
    let mut h = mix(0x0b5e_55ed, line.len() as u64);
    for chunk in line.as_bytes().chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h = mix(h, u64::from_le_bytes(word));
    }
    h
}

/// Bounded `(seq, op) → response` memory for barrier ops, partitioned
/// by session so one chatty session cannot evict another's entries.
/// Partitions survive `close` — a retried close must answer the
/// recorded `Closed`, not a `Rejected(SessionClosed)`.
#[derive(Debug, Default)]
pub struct DedupeWindow {
    map: HashMap<(Option<u64>, u64), (u64, Response)>,
    order: HashMap<Option<u64>, VecDeque<u64>>,
}

impl DedupeWindow {
    /// An empty window.
    pub fn new() -> DedupeWindow {
        DedupeWindow::default()
    }

    /// The recorded answer for a resend: same partition, same sequence
    /// number, same op text. A key mismatch is *not* a hit — the client
    /// reused the sequence number for a different op.
    pub fn lookup(&self, partition: Option<u64>, seq: u64, key: u64) -> Option<&Response> {
        match self.map.get(&(partition, seq)) {
            Some((stored, resp)) if *stored == key => Some(resp),
            _ => None,
        }
    }

    /// Record an answered barrier op, evicting the partition's oldest
    /// entry past [`DEDUPE_WINDOW`].
    pub fn record(&mut self, partition: Option<u64>, seq: u64, key: u64, resp: Response) {
        if self.map.insert((partition, seq), (key, resp)).is_none() {
            let order = self.order.entry(partition).or_default();
            order.push_back(seq);
            if order.len() > DEDUPE_WINDOW {
                if let Some(evicted) = order.pop_front() {
                    self.map.remove(&(partition, evicted));
                }
            }
        }
    }

    /// Recorded entries across all partitions.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Append handle on a write-ahead journal file.
#[derive(Debug)]
pub struct Journal {
    file: File,
}

impl Journal {
    /// Create (truncate) a fresh journal: header line, fsynced.
    pub fn create(path: &Path) -> io::Result<Journal> {
        let mut file = File::create(path)?;
        file.write_all(TRACE_VERSION.as_bytes())?;
        file.write_all(b"\n")?;
        file.sync_data()?;
        Ok(Journal { file })
    }

    /// Open an existing journal for appending — call after
    /// [`recover`], which truncates any torn tail first.
    pub fn open_append(path: &Path) -> io::Result<Journal> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(Journal { file })
    }

    /// Append one mutating op (seq annotation + op line, one write) and
    /// fsync before returning — the caller only executes the op once
    /// this succeeds.
    pub fn append(&mut self, seq: u64, op: &Request) -> io::Result<()> {
        let entry = format!("# wal seq={seq}\n{}\n", format_op(op));
        self.file.write_all(entry.as_bytes())?;
        self.file.sync_data()
    }
}

/// One journaled op: the client sequence number from its `# wal seq=N`
/// annotation (`None` when replaying a plain trace file as a journal)
/// and the op itself.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalEntry {
    /// Wire sequence number the op was admitted under, if annotated.
    pub seq: Option<u64>,
    /// The journaled op.
    pub op: Request,
}

/// Parse journal text (assumed complete — see [`recover`] for the
/// torn-tail file path). A trailing `# wal seq=N` with no following op
/// line is ignored: the annotated op was never appended, so it was
/// never executed.
pub fn parse_journal(text: &str) -> Result<Vec<JournalEntry>, TraceError> {
    let trace_err = |line: usize, message: String| TraceError { line, message };
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, header)) if header.trim() == TRACE_VERSION => {}
        Some((_, header)) => {
            return Err(trace_err(
                1,
                format!("bad journal header {header:?}, expected {TRACE_VERSION:?}"),
            ))
        }
        None => return Err(trace_err(0, "empty journal".to_string())),
    }
    let mut entries = Vec::new();
    let mut pending_seq: Option<u64> = None;
    for (i, raw) in lines {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            if let Some(tok) = comment.trim().strip_prefix("wal seq=") {
                pending_seq =
                    Some(tok.trim().parse::<u64>().map_err(|_| {
                        trace_err(i + 1, format!("bad wal seq annotation {line:?}"))
                    })?);
            }
            continue;
        }
        // A complete op line that fails to parse is corruption, not a
        // torn tail — refuse to serve from a journal we cannot replay.
        let op = parse_op(line).map_err(|m| trace_err(i + 1, m))?;
        entries.push(JournalEntry {
            seq: pending_seq.take(),
            op,
        });
    }
    Ok(entries)
}

/// What [`recover`] rebuilds from a journal.
pub struct Recovered {
    /// The engine with every journaled op applied, via the batch path.
    pub engine: ServiceEngine,
    /// Dedupe window restocked with the recovery-computed answer of
    /// every seq-annotated barrier op (determinism makes these equal to
    /// the answers the crashed server sent).
    pub dedupe: DedupeWindow,
    /// The recovery-computed answers, in journal order.
    pub responses: Vec<Response>,
    /// Ops replayed.
    pub replayed: usize,
}

/// Rebuild engine state from journal text.
pub fn recover_from_text(text: &str, shards: usize) -> Result<Recovered, TraceError> {
    let entries = parse_journal(text)?;
    let ops: Vec<Request> = entries.iter().map(|e| e.op.clone()).collect();
    let mut engine = ServiceEngine::with_shards(shards);
    let responses = engine.execute(&ops);
    let mut dedupe = DedupeWindow::new();
    for (entry, resp) in entries.iter().zip(&responses) {
        if let Some(seq) = entry.seq {
            if !entry.op.is_shardable() {
                dedupe.record(entry.op.session(), seq, op_key(&entry.op), resp.clone());
            }
        }
    }
    Ok(Recovered {
        engine,
        dedupe,
        replayed: ops.len(),
        responses,
    })
}

/// Rebuild engine state from a journal file, truncating a torn tail
/// (anything after the last newline) on disk first so subsequent
/// appends continue a well-formed file.
pub fn recover(path: &Path, shards: usize) -> io::Result<Recovered> {
    let mut file = OpenOptions::new().read(true).write(true).open(path)?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    let keep = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1);
    if keep < bytes.len() {
        file.set_len(keep as u64)?;
        file.sync_data()?;
        bytes.truncate(keep);
    }
    drop(file);
    let text = String::from_utf8(bytes)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "journal is not UTF-8"))?;
    recover_from_text(&text, shards)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// A [`ServiceEngine`] fronted by the WAL + dedupe pipeline — the
/// single-threaded counterpart of the socket dispatcher, used by the
/// stdin serve loop and the e18 fault-recovery experiment.
pub struct JournaledEngine {
    engine: ServiceEngine,
    journal: Journal,
    dedupe: DedupeWindow,
}

impl JournaledEngine {
    /// Fresh engine over a fresh journal.
    pub fn create(path: &Path, shards: usize) -> io::Result<JournaledEngine> {
        Ok(JournaledEngine {
            engine: ServiceEngine::with_shards(shards),
            journal: Journal::create(path)?,
            dedupe: DedupeWindow::new(),
        })
    }

    /// Rebuild from an existing journal and keep appending to it.
    /// Returns the engine and how many ops were replayed.
    pub fn recover(path: &Path, shards: usize) -> io::Result<(JournaledEngine, usize)> {
        let rec = recover(path, shards)?;
        Ok((
            JournaledEngine {
                engine: rec.engine,
                journal: Journal::open_append(path)?,
                dedupe: rec.dedupe,
            },
            rec.replayed,
        ))
    }

    /// Dedupe-check, journal (mutating ops), then execute one op.
    pub fn submit(&mut self, seq: u64, op: &Request) -> io::Result<Response> {
        if !op.is_shardable() {
            if let Some(resp) = self.dedupe.lookup(op.session(), seq, op_key(op)) {
                return Ok(resp.clone());
            }
        }
        if op.is_mutating() {
            self.journal.append(seq, op)?;
        }
        let resp = self.engine.execute(std::slice::from_ref(op)).remove(0);
        if !op.is_shardable() {
            self.dedupe
                .record(op.session(), seq, op_key(op), resp.clone());
        }
        Ok(resp)
    }

    /// The engine behind the journal.
    pub fn engine(&self) -> &ServiceEngine {
        &self.engine
    }

    /// Fault-injection hook: journal an op *without* executing it, the
    /// on-disk state a crash between append and execute leaves behind.
    #[cfg(feature = "fault-inject")]
    pub fn journal_without_execute(&mut self, seq: u64, op: &Request) -> io::Result<()> {
        self.journal.append(seq, op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::combined_digest;
    use crate::workload::{Trace, TraceSpec};

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("byzscore_journal_{tag}_{}", std::process::id()));
        p
    }

    #[test]
    fn dedupe_window_hits_misses_and_evicts() {
        let mut w = DedupeWindow::new();
        let resp = Response::Epoch {
            session: 0,
            epoch: 1,
            max_err: 0,
        };
        w.record(Some(0), 7, 11, resp.clone());
        assert_eq!(w.lookup(Some(0), 7, 11), Some(&resp));
        assert_eq!(w.lookup(Some(0), 7, 12), None, "key mismatch is a miss");
        assert_eq!(w.lookup(Some(0), 8, 11), None, "seq mismatch is a miss");
        assert_eq!(w.lookup(Some(1), 7, 11), None, "partition mismatch");
        // FIFO eviction per partition; other partitions untouched.
        for seq in 100..100 + DEDUPE_WINDOW as u64 {
            w.record(Some(0), seq, seq, resp.clone());
        }
        assert_eq!(w.lookup(Some(0), 7, 11), None, "oldest entry evicted");
        assert_eq!(w.len(), DEDUPE_WINDOW);
        w.record(None, 7, 11, resp.clone());
        assert_eq!(w.lookup(None, 7, 11), Some(&resp));
    }

    #[test]
    fn op_key_separates_ops_with_equal_length_lines() {
        let a = parse_op("epoch 1").unwrap();
        let b = parse_op("epoch 2").unwrap();
        assert_ne!(op_key(&a), op_key(&b));
        assert_eq!(op_key(&a), op_key(&a.clone()));
    }

    #[test]
    fn journal_parses_with_and_without_seq_annotations() {
        let text = format!(
            "{TRACE_VERSION}\n# wal seq=9\nepoch 0\n# plain comment\nchurn 0 1 1\n\n# wal seq=12\n"
        );
        let entries = parse_journal(&text).expect("parse");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].seq, Some(9));
        assert_eq!(entries[1].seq, None, "plain comment is not an annotation");
        assert!(parse_journal("byzscore-trace/v2\n").is_err());
        assert!(
            parse_journal(&format!("{TRACE_VERSION}\n# wal seq=x\nepoch 0\n")).is_err(),
            "bad annotation is corruption"
        );
        assert!(
            parse_journal(&format!("{TRACE_VERSION}\nepoch zero\n")).is_err(),
            "a complete unparsable op line is corruption"
        );
    }

    /// Kill the "server" (drop the journaled engine) at every op index
    /// of a generated trace; recovery + the remaining ops must digest
    /// bit-identically to the uninterrupted run. This is the in-process
    /// statement of the tentpole's crash-recovery determinism claim.
    #[test]
    fn recovery_is_digest_identical_at_every_kill_point() {
        let trace = Trace::generate(&TraceSpec::small(23));
        let expected = combined_digest(&trace.replay());
        let path = temp_path("killpoints");
        // Exhaustive at the barrier indices + a probe stride; the e18
        // experiment covers the committed trace with a seeded schedule.
        let kill_points: Vec<usize> = (0..trace.ops.len())
            .filter(|&k| !trace.ops[k].is_shardable() || k % 5 == 0)
            .collect();
        for k in kill_points {
            let mut responses = Vec::new();
            {
                let mut je = JournaledEngine::create(&path, 4).expect("create journal");
                for (i, op) in trace.ops[..k].iter().enumerate() {
                    responses.push(je.submit(i as u64, op).expect("submit"));
                }
                // Crash: je dropped without any shutdown handshake.
            }
            let (mut je, replayed) =
                JournaledEngine::recover(&path, 4).expect("recover from journal");
            assert_eq!(
                replayed,
                trace.ops[..k].iter().filter(|o| o.is_mutating()).count(),
                "journal holds exactly the mutating prefix at kill point {k}"
            );
            for (i, op) in trace.ops.iter().enumerate().skip(k) {
                responses.push(je.submit(i as u64, op).expect("submit after recovery"));
            }
            assert_eq!(
                combined_digest(&responses),
                expected,
                "kill at op {k} diverged"
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    /// A torn tail — partial bytes after the last newline — is dropped
    /// on recovery and the file keeps accepting appends.
    #[test]
    fn torn_tail_is_truncated_and_appends_continue() {
        use std::io::Write as _;
        let path = temp_path("torn");
        let mut je = JournaledEngine::create(&path, 2).expect("create");
        let open = parse_op("open 8 16 2 2 5 naive 2 0 0 7").unwrap();
        let epoch = parse_op("epoch 0").unwrap();
        je.submit(0, &open).expect("open");
        je.submit(1, &epoch).expect("epoch");
        drop(je);
        // Simulate a crash mid-append: partial annotation, no newline.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"# wal seq=2\nchurn 0 1").unwrap();
        drop(f);
        let (mut je, replayed) = JournaledEngine::recover(&path, 2).expect("recover");
        assert_eq!(replayed, 2, "the torn entry was never executed");
        let resp = je.submit(2, &parse_op("close 0").unwrap()).expect("close");
        assert!(matches!(resp, Response::Closed { .. }));
        // The resumed file is still a valid journal end to end.
        let (_, replayed) = JournaledEngine::recover(&path, 2).expect("re-recover");
        assert_eq!(replayed, 3);
        let _ = std::fs::remove_file(&path);
    }

    /// A resent barrier answers the recorded response without
    /// re-executing — including across a crash/recover boundary — and
    /// a different op under a reused seq executes normally.
    #[test]
    fn dedupe_survives_recovery_and_checks_op_identity() {
        let path = temp_path("dedupe");
        let ops = [
            parse_op("open 8 16 2 2 5 naive 2 0 1000 7").unwrap(),
            parse_op("churn 0 1 1").unwrap(),
        ];
        let mut je = JournaledEngine::create(&path, 2).expect("create");
        let first = je.submit(0, &ops[0]).expect("open");
        let churned = je.submit(1, &ops[1]).expect("churn");
        // Resend before the crash: recorded answer, no second churn.
        assert_eq!(je.submit(1, &ops[1]).expect("resend"), churned);
        drop(je);
        let (mut je, _) = JournaledEngine::recover(&path, 2).expect("recover");
        assert_eq!(
            je.submit(1, &ops[1]).expect("resend after recovery"),
            churned,
            "dedupe window survives the crash"
        );
        assert_eq!(je.submit(0, &ops[0]).expect("resent open"), first);
        // Same seq, different op text: executes (a second churn).
        let other = je
            .submit(1, &parse_op("epoch 0").unwrap())
            .expect("reused seq, new op");
        assert!(matches!(other, Response::Epoch { .. }));
        let _ = std::fs::remove_file(&path);
    }

    /// The journal is a valid `byzscore-trace/v1` file: `Trace::from_text`
    /// parses it directly.
    #[test]
    fn journal_is_a_replayable_trace_file() {
        let path = temp_path("astrace");
        let trace = Trace::generate(&TraceSpec::small(31));
        let mut je = JournaledEngine::create(&path, 4).expect("create");
        for (i, op) in trace.ops.iter().enumerate() {
            je.submit(i as u64, op).expect("submit");
        }
        drop(je);
        let text = std::fs::read_to_string(&path).expect("read journal");
        let parsed = Trace::from_text(&text).expect("journal parses as a trace");
        let mutating: Vec<Request> = trace
            .ops
            .iter()
            .filter(|o| o.is_mutating())
            .cloned()
            .collect();
        assert_eq!(parsed.ops, mutating);
        let _ = std::fs::remove_file(&path);
    }
}
