//! Write-ahead op journal and the idempotent-resend dedupe window.
//!
//! # The journal is a trace file
//!
//! Ops are already `byzscore-trace/v1` text, so the journal reuses the
//! format verbatim: the header line, then one op line per mutating op,
//! each preceded by a `# wal seq=N` comment carrying the client's wire
//! sequence number. Comments are ignored by [`Trace::from_text`], so a
//! journal *is* a valid trace — `scored replay wal.journal` replays a
//! crashed server's history directly, and recovery is nothing more than
//! [`ServiceEngine::execute`] over the parsed ops (the batch path, the
//! same code every digest gate already pins).
//!
//! # Durability contract
//!
//! An entry is appended and fsynced **before** its op executes, and the
//! answer is only sent after execution. A crash therefore leaves three
//! possible states per op, all safe:
//!
//! * journaled + executed, answer maybe lost — recovery re-applies it;
//!   the client's resend is answered from the rebuilt [`DedupeWindow`]
//!   (barriers) or by idempotent re-execution (probes).
//! * journaled, never executed — recovery applies it for the first
//!   time; identical outcome by engine determinism.
//! * torn tail (the crash landed mid-append) — the partial last line is
//!   dropped and the file truncated to the last newline. The op was
//!   never executed and never answered, so the resend simply runs it
//!   fresh.
//!
//! Queries are *not* journaled: they read score rows that change only
//! at barriers, so they are pure functions of the journaled history.
//!
//! # Why resends never double-apply
//!
//! Probes are naturally idempotent — the board holds one claim slot per
//! `(scope, object, author)` and re-posting overwrites with the same
//! value, so re-executing a probe changes nothing (including the
//! `freed_slots` a later close reports). Barriers are *not* idempotent
//! (a churn retires players each time), so the engine keeps a bounded
//! per-session [`DedupeWindow`]: a resent barrier whose `(seq, op)`
//! pair was already answered gets the recorded response back without
//! re-executing. Recovery restocks the window from the `# wal seq=N`
//! annotations, so the exactly-once guarantee spans crashes.

use std::collections::{HashMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::{self, Read as _, Write as _};
use std::path::Path;

use crate::checkpoint::RecoverySource;
use crate::engine::ServiceEngine;
use crate::request::{mix, Request, Response};
use crate::workload::{format_op, parse_op, TraceError, TRACE_VERSION};

/// Resent-op memory per dedupe partition (one partition per session,
/// plus one for session-less `open` ops). A client pipelines at most a
/// barrier-free window per session, so a small FIFO covers every resend
/// a live client can produce.
pub const DEDUPE_WINDOW: usize = 64;

/// Fold an op's canonical trace line into a 64-bit identity key. A
/// dedupe hit requires the stored key to match, so a *different* op
/// reusing an old sequence number executes instead of replaying a
/// stale answer.
pub fn op_key(op: &Request) -> u64 {
    let line = format_op(op);
    let mut h = mix(0x0b5e_55ed, line.len() as u64);
    for chunk in line.as_bytes().chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h = mix(h, u64::from_le_bytes(word));
    }
    h
}

/// Bounded `(seq, op) → response` memory for barrier ops, partitioned
/// by session so one chatty session cannot evict another's entries.
/// Partitions survive `close` — a retried close must answer the
/// recorded `Closed`, not a `Rejected(SessionClosed)`.
#[derive(Debug, Default)]
pub struct DedupeWindow {
    map: HashMap<(Option<u64>, u64), (u64, Response)>,
    order: HashMap<Option<u64>, VecDeque<u64>>,
}

impl DedupeWindow {
    /// An empty window.
    pub fn new() -> DedupeWindow {
        DedupeWindow::default()
    }

    /// The recorded answer for a resend: same partition, same sequence
    /// number, same op text. A key mismatch is *not* a hit — the client
    /// reused the sequence number for a different op.
    pub fn lookup(&self, partition: Option<u64>, seq: u64, key: u64) -> Option<&Response> {
        match self.map.get(&(partition, seq)) {
            Some((stored, resp)) if *stored == key => Some(resp),
            _ => None,
        }
    }

    /// Record an answered barrier op, evicting the partition's oldest
    /// entry past [`DEDUPE_WINDOW`].
    pub fn record(&mut self, partition: Option<u64>, seq: u64, key: u64, resp: Response) {
        if self.map.insert((partition, seq), (key, resp)).is_none() {
            let order = self.order.entry(partition).or_default();
            order.push_back(seq);
            if order.len() > DEDUPE_WINDOW {
                if let Some(evicted) = order.pop_front() {
                    self.map.remove(&(partition, evicted));
                }
            }
        }
    }

    /// Recorded entries across all partitions.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Every recorded entry as `(partition, seq, key, response)`, in
    /// per-partition FIFO order with partitions sorted (session-less
    /// first). Re-`record`ing the list into an empty window reproduces
    /// this window exactly — order included, so future evictions agree.
    /// This is what a checkpoint serializes.
    pub fn entries(&self) -> Vec<(Option<u64>, u64, u64, Response)> {
        let mut partitions: Vec<Option<u64>> = self.order.keys().copied().collect();
        partitions.sort_unstable();
        let mut out = Vec::with_capacity(self.map.len());
        for partition in partitions {
            for &seq in &self.order[&partition] {
                if let Some((key, resp)) = self.map.get(&(partition, seq)) {
                    out.push((partition, seq, *key, resp.clone()));
                }
            }
        }
        out
    }
}

/// Append handle on a write-ahead journal file.
#[derive(Debug)]
pub struct Journal {
    file: File,
}

impl Journal {
    /// Create (truncate) a fresh journal: header line, fsynced.
    pub fn create(path: &Path) -> io::Result<Journal> {
        let mut file = File::create(path)?;
        file.write_all(TRACE_VERSION.as_bytes())?;
        file.write_all(b"\n")?;
        file.sync_data()?;
        Ok(Journal { file })
    }

    /// Open an existing journal for appending — call after
    /// [`recover`], which truncates any torn tail first.
    pub fn open_append(path: &Path) -> io::Result<Journal> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(Journal { file })
    }

    /// Append one mutating op (seq annotation + op line, one write) and
    /// fsync before returning — the caller only executes the op once
    /// this succeeds. Returns the bytes appended (for byte-threshold
    /// compaction accounting).
    pub fn append(&mut self, seq: u64, op: &Request) -> io::Result<usize> {
        let entry = format!("# wal seq={seq}\n{}\n", format_op(op));
        self.file.write_all(entry.as_bytes())?;
        self.file.sync_data()?;
        Ok(entry.len())
    }

    /// Start a fresh post-checkpoint tail atomically: write a sibling
    /// tmp file holding the header plus a `# ckpt ops=K` base marker,
    /// fsync it, rename it over the journal, and return an append
    /// handle on the new file. The marker is a comment, so the tail is
    /// still a valid `byzscore-trace/v1` file — and the rename is the
    /// *last* step of a compaction cycle, after the checkpoint at `K`
    /// is durable, so a crash anywhere leaves a journal whose base is
    /// covered by a loadable checkpoint.
    pub fn truncate_to_base(path: &Path, base: u64) -> io::Result<Journal> {
        let tmp = {
            let mut os = path.as_os_str().to_os_string();
            os.push(".tail.tmp");
            std::path::PathBuf::from(os)
        };
        {
            let mut file = File::create(&tmp)?;
            file.write_all(format!("{TRACE_VERSION}\n# ckpt ops={base}\n").as_bytes())?;
            file.sync_data()?;
        }
        std::fs::rename(&tmp, path)?;
        if let Some(dir) = path.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        // The old append handle (if any) points at the unlinked inode;
        // the caller must adopt this handle on the renamed file.
        Journal::open_append(path)
    }
}

/// One journaled op: the client sequence number from its `# wal seq=N`
/// annotation (`None` when replaying a plain trace file as a journal)
/// and the op itself.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalEntry {
    /// Wire sequence number the op was admitted under, if annotated.
    pub seq: Option<u64>,
    /// The journaled op.
    pub op: Request,
}

/// A parsed journal: the compaction base — mutating ops already
/// captured by the checkpoint this journal was last truncated against
/// (0 for a never-compacted journal) — plus the tail entries.
pub struct ParsedJournal {
    /// Ops covered by the checkpoint the tail starts after.
    pub base: u64,
    /// The journaled tail ops, in order.
    pub entries: Vec<JournalEntry>,
}

/// Parse journal text (assumed complete — see [`recover`] for the
/// torn-tail file path), including its `# ckpt ops=K` base marker. A
/// trailing `# wal seq=N` with no following op line is ignored: the
/// annotated op was never appended, so it was never executed.
pub fn parse_journal_with_base(text: &str) -> Result<ParsedJournal, TraceError> {
    let trace_err = |line: usize, message: String| TraceError { line, message };
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, header)) if header.trim() == TRACE_VERSION => {}
        Some((_, header)) => {
            return Err(trace_err(
                1,
                format!("bad journal header {header:?}, expected {TRACE_VERSION:?}"),
            ))
        }
        None => return Err(trace_err(0, "empty journal".to_string())),
    }
    let mut base = 0u64;
    let mut entries = Vec::new();
    let mut pending_seq: Option<u64> = None;
    for (i, raw) in lines {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            if let Some(tok) = comment.trim().strip_prefix("wal seq=") {
                pending_seq =
                    Some(tok.trim().parse::<u64>().map_err(|_| {
                        trace_err(i + 1, format!("bad wal seq annotation {line:?}"))
                    })?);
            } else if let Some(tok) = comment.trim().strip_prefix("ckpt ops=") {
                base = tok
                    .trim()
                    .parse::<u64>()
                    .map_err(|_| trace_err(i + 1, format!("bad ckpt base marker {line:?}")))?;
            }
            continue;
        }
        // A complete op line that fails to parse is corruption, not a
        // torn tail — refuse to serve from a journal we cannot replay.
        let op = parse_op(line).map_err(|m| trace_err(i + 1, m))?;
        entries.push(JournalEntry {
            seq: pending_seq.take(),
            op,
        });
    }
    Ok(ParsedJournal { base, entries })
}

/// Parse journal text into its entries, ignoring any compaction base
/// marker. Prefer [`parse_journal_with_base`] when recovering — a
/// compacted journal's entries are only the tail of the history.
pub fn parse_journal(text: &str) -> Result<Vec<JournalEntry>, TraceError> {
    parse_journal_with_base(text).map(|parsed| parsed.entries)
}

/// What [`recover`] rebuilds from a journal (and its checkpoints).
pub struct Recovered {
    /// The engine with the full journaled history applied — restored
    /// from a checkpoint where one covers the journal's base, with the
    /// tail replayed via the batch path.
    pub engine: ServiceEngine,
    /// Dedupe window restocked from the checkpoint (if any) plus the
    /// recovery-computed answer of every seq-annotated tail barrier op
    /// (determinism makes these equal to the answers the crashed server
    /// sent).
    pub dedupe: DedupeWindow,
    /// The recovery-computed answers of the replayed tail, in journal
    /// order.
    pub responses: Vec<Response>,
    /// Ops re-executed during recovery — the journal tail only, which
    /// compaction keeps bounded by the threshold.
    pub replayed: usize,
    /// Where the pre-tail state came from.
    pub source: RecoverySource,
    /// The journal's compaction base (0 for a never-compacted journal).
    pub journal_base: u64,
    /// Mutating ops across the full history (base + tail).
    pub history_ops: u64,
}

/// Execute `entries` against `engine`, restocking `dedupe` from the
/// seq-annotated barrier answers — the shared tail-replay step of both
/// recovery paths.
fn replay_entries(
    engine: &mut ServiceEngine,
    dedupe: &mut DedupeWindow,
    entries: &[JournalEntry],
) -> Vec<Response> {
    let ops: Vec<Request> = entries.iter().map(|e| e.op.clone()).collect();
    let responses = engine.execute(&ops);
    for (entry, resp) in entries.iter().zip(&responses) {
        if let Some(seq) = entry.seq {
            if !entry.op.is_shardable() {
                dedupe.record(entry.op.session(), seq, op_key(&entry.op), resp.clone());
            }
        }
    }
    responses
}

/// Rebuild engine state from journal text alone. Text-level recovery
/// cannot see checkpoint files, so it refuses a compacted journal
/// (non-zero base): its entries are only a tail of the history. Use
/// [`recover`] with the file path for checkpoint-aware recovery.
pub fn recover_from_text(text: &str, shards: usize) -> Result<Recovered, TraceError> {
    let ParsedJournal { base, entries } = parse_journal_with_base(text)?;
    if base > 0 {
        return Err(TraceError {
            line: 0,
            message: format!(
                "journal was compacted at {base} ops; recover from the file path so the \
                 checkpoint can be loaded"
            ),
        });
    }
    let mut engine = ServiceEngine::with_shards(shards);
    let mut dedupe = DedupeWindow::new();
    let responses = replay_entries(&mut engine, &mut dedupe, &entries);
    Ok(Recovered {
        engine,
        dedupe,
        responses,
        replayed: entries.len(),
        source: RecoverySource::FullJournal,
        journal_base: 0,
        history_ops: entries.len() as u64,
    })
}

/// Rebuild engine state from a journal file, truncating a torn tail
/// (anything after the last newline) on disk first so subsequent
/// appends continue a well-formed file.
///
/// # Recovery decision tree
///
/// 1. Heal the journal (drop any torn last line) and parse its base.
/// 2. Load the best checkpoint beside it: the current `.ckpt` if its
///    footer verifies, else the rotated `.ckpt.prev`. A checkpoint is
///    usable when it covers the journal base (`ckpt.ops ≥ base`) —
///    the cycle ordering (checkpoint durable *before* the journal is
///    truncated) guarantees this for every crash window, so a torn
///    current checkpoint always leaves a usable previous one.
/// 3. With a usable checkpoint: restore it, skip the `ckpt.ops − base`
///    tail entries it already contains, and replay the rest.
/// 4. With no checkpoint at all and base 0: full-journal replay.
/// 5. A compacted journal (base > 0) with no usable checkpoint means
///    ops exist nowhere on disk — refuse loudly rather than serve a
///    silently rewound history (only reachable by deleting/corrupting
///    both checkpoint files out from under a compacted journal).
pub fn recover(path: &Path, shards: usize) -> io::Result<Recovered> {
    let mut file = OpenOptions::new().read(true).write(true).open(path)?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    let keep = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1);
    if keep < bytes.len() {
        file.set_len(keep as u64)?;
        file.sync_data()?;
        bytes.truncate(keep);
    }
    drop(file);
    let text = String::from_utf8(bytes)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "journal is not UTF-8"))?;
    let ParsedJournal { base, entries } = parse_journal_with_base(&text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    if let Some((ckpt, source)) = crate::checkpoint::load_latest(path, shards) {
        if ckpt.ops >= base {
            let skip = ((ckpt.ops - base) as usize).min(entries.len());
            let tail = &entries[skip..];
            let mut engine = ckpt.engine;
            let mut dedupe = ckpt.dedupe;
            let responses = replay_entries(&mut engine, &mut dedupe, tail);
            return Ok(Recovered {
                engine,
                dedupe,
                responses,
                replayed: tail.len(),
                source,
                journal_base: base,
                history_ops: base + entries.len() as u64,
            });
        }
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "checkpoint at {} ops cannot cover the journal base {base}: ops in between \
                 exist nowhere on disk",
                ckpt.ops
            ),
        ));
    }
    if base > 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("journal was compacted at {base} ops but no usable checkpoint loads"),
        ));
    }
    let mut engine = ServiceEngine::with_shards(shards);
    let mut dedupe = DedupeWindow::new();
    let responses = replay_entries(&mut engine, &mut dedupe, &entries);
    Ok(Recovered {
        engine,
        dedupe,
        responses,
        replayed: entries.len(),
        source: RecoverySource::FullJournal,
        journal_base: 0,
        history_ops: entries.len() as u64,
    })
}

/// When a journaled front-end runs a checkpoint + truncate cycle.
/// Disabled by default; thresholds measure the journal *tail* (ops or
/// bytes appended since the last checkpoint), so recovery replay work
/// stays bounded by whichever threshold is set.
#[derive(Clone, Copy, Debug, Default)]
pub struct CompactionPolicy {
    /// Compact once this many mutating ops accumulate past the last
    /// checkpoint (`--compact-every`).
    pub every: Option<u64>,
    /// Compact once this many bytes accumulate past the last
    /// checkpoint (`--compact-bytes`).
    pub bytes: Option<u64>,
}

impl CompactionPolicy {
    /// True when either threshold is set.
    pub fn is_enabled(&self) -> bool {
        self.every.is_some() || self.bytes.is_some()
    }

    /// True when the current tail crosses a threshold.
    pub fn due(&self, tail_ops: u64, tail_bytes: u64) -> bool {
        self.every.is_some_and(|n| tail_ops >= n) || self.bytes.is_some_and(|b| tail_bytes >= b)
    }
}

/// What [`JournaledEngine::recover_with`] reports about a recovery.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryReport {
    /// Journal-tail ops re-executed.
    pub replayed: usize,
    /// Where the pre-tail state came from.
    pub source: RecoverySource,
    /// Mutating ops across the full history (checkpoint + tail).
    pub history_ops: u64,
}

/// A [`ServiceEngine`] fronted by the WAL + dedupe pipeline — the
/// single-threaded counterpart of the socket dispatcher, used by the
/// stdin serve loop, `scored compact`, and the e18/e19 experiments.
pub struct JournaledEngine {
    engine: ServiceEngine,
    journal: Journal,
    dedupe: DedupeWindow,
    path: std::path::PathBuf,
    policy: CompactionPolicy,
    /// Mutating ops applied over the full history.
    ops_applied: u64,
    /// Ops covered by the last checkpoint (= the journal's base).
    base: u64,
    /// Bytes appended since the last checkpoint.
    tail_bytes: u64,
    /// Completed compaction cycles this process ran.
    checkpoints: u64,
    /// Journal entries removed by those cycles.
    truncated_ops: u64,
}

impl JournaledEngine {
    /// Fresh engine over a fresh journal, compaction disabled.
    pub fn create(path: &Path, shards: usize) -> io::Result<JournaledEngine> {
        JournaledEngine::create_with(path, shards, CompactionPolicy::default())
    }

    /// Fresh engine over a fresh journal with a compaction policy.
    pub fn create_with(
        path: &Path,
        shards: usize,
        policy: CompactionPolicy,
    ) -> io::Result<JournaledEngine> {
        Ok(JournaledEngine {
            engine: ServiceEngine::with_shards(shards),
            journal: Journal::create(path)?,
            dedupe: DedupeWindow::new(),
            path: path.to_path_buf(),
            policy,
            ops_applied: 0,
            base: 0,
            tail_bytes: 0,
            checkpoints: 0,
            truncated_ops: 0,
        })
    }

    /// Rebuild from an existing journal (checkpoint-aware) and keep
    /// appending to it. Returns the engine and how many ops were
    /// replayed — the journal tail only, when a checkpoint loads.
    pub fn recover(path: &Path, shards: usize) -> io::Result<(JournaledEngine, usize)> {
        let (engine, report) =
            JournaledEngine::recover_with(path, shards, CompactionPolicy::default())?;
        Ok((engine, report.replayed))
    }

    /// Checkpoint-aware recovery with a compaction policy, reporting
    /// the replayed tail length and the recovery source.
    pub fn recover_with(
        path: &Path,
        shards: usize,
        policy: CompactionPolicy,
    ) -> io::Result<(JournaledEngine, RecoveryReport)> {
        let rec = recover(path, shards)?;
        let report = RecoveryReport {
            replayed: rec.replayed,
            source: rec.source,
            history_ops: rec.history_ops,
        };
        let tail_bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        Ok((
            JournaledEngine {
                engine: rec.engine,
                journal: Journal::open_append(path)?,
                dedupe: rec.dedupe,
                path: path.to_path_buf(),
                policy,
                ops_applied: rec.history_ops,
                base: rec.journal_base,
                tail_bytes,
                checkpoints: 0,
                truncated_ops: 0,
            },
            report,
        ))
    }

    /// Dedupe-check, journal (mutating ops), then execute one op — and
    /// run a compaction cycle when the policy says the tail crossed a
    /// threshold (the engine is quiescent between `submit` calls, so
    /// every post-op point is a safe checkpoint point).
    pub fn submit(&mut self, seq: u64, op: &Request) -> io::Result<Response> {
        if !op.is_shardable() {
            if let Some(resp) = self.dedupe.lookup(op.session(), seq, op_key(op)) {
                return Ok(resp.clone());
            }
        }
        if op.is_mutating() {
            self.tail_bytes += self.journal.append(seq, op)? as u64;
            self.ops_applied += 1;
        }
        let resp = self.engine.execute(std::slice::from_ref(op)).remove(0);
        if !op.is_shardable() {
            self.dedupe
                .record(op.session(), seq, op_key(op), resp.clone());
        }
        if self.policy.due(self.tail_ops(), self.tail_bytes) {
            // A failed compaction leaves the journal intact — log and
            // keep serving; durability is unaffected.
            if let Err(err) = self.compact() {
                eprintln!("compaction failed (serving continues): {err}");
            }
        }
        Ok(resp)
    }

    /// Run one checkpoint + truncate cycle now, regardless of policy:
    /// write the checkpoint at the current op count (rotating the
    /// previous one), fsync it, truncate the journal to a fresh tail
    /// via atomic rename, and adopt the new append handle.
    pub fn compact(&mut self) -> io::Result<()> {
        crate::checkpoint::save_checkpoint(
            &self.path,
            &self.engine,
            &self.dedupe,
            self.ops_applied,
        )?;
        self.journal = Journal::truncate_to_base(&self.path, self.ops_applied)?;
        self.truncated_ops += self.ops_applied - self.base;
        self.base = self.ops_applied;
        self.tail_bytes = 0;
        self.checkpoints += 1;
        Ok(())
    }

    /// The engine behind the journal.
    pub fn engine(&self) -> &ServiceEngine {
        &self.engine
    }

    /// Completed compaction cycles this process ran.
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints
    }

    /// Journal entries removed by this process's compaction cycles.
    pub fn truncated_ops(&self) -> u64 {
        self.truncated_ops
    }

    /// Mutating ops currently in the journal tail — what a crash right
    /// now would replay.
    pub fn tail_ops(&self) -> u64 {
        self.ops_applied - self.base
    }

    /// Mutating ops applied over the full history.
    pub fn history_ops(&self) -> u64 {
        self.ops_applied
    }

    /// Fault-injection hook: journal an op *without* executing it, the
    /// on-disk state a crash between append and execute leaves behind.
    #[cfg(feature = "fault-inject")]
    pub fn journal_without_execute(&mut self, seq: u64, op: &Request) -> io::Result<()> {
        self.journal.append(seq, op).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::combined_digest;
    use crate::workload::{Trace, TraceSpec};

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("byzscore_journal_{tag}_{}", std::process::id()));
        p
    }

    #[test]
    fn dedupe_window_hits_misses_and_evicts() {
        let mut w = DedupeWindow::new();
        let resp = Response::Epoch {
            session: 0,
            epoch: 1,
            max_err: 0,
        };
        w.record(Some(0), 7, 11, resp.clone());
        assert_eq!(w.lookup(Some(0), 7, 11), Some(&resp));
        assert_eq!(w.lookup(Some(0), 7, 12), None, "key mismatch is a miss");
        assert_eq!(w.lookup(Some(0), 8, 11), None, "seq mismatch is a miss");
        assert_eq!(w.lookup(Some(1), 7, 11), None, "partition mismatch");
        // FIFO eviction per partition; other partitions untouched.
        for seq in 100..100 + DEDUPE_WINDOW as u64 {
            w.record(Some(0), seq, seq, resp.clone());
        }
        assert_eq!(w.lookup(Some(0), 7, 11), None, "oldest entry evicted");
        assert_eq!(w.len(), DEDUPE_WINDOW);
        w.record(None, 7, 11, resp.clone());
        assert_eq!(w.lookup(None, 7, 11), Some(&resp));
    }

    #[test]
    fn op_key_separates_ops_with_equal_length_lines() {
        let a = parse_op("epoch 1").unwrap();
        let b = parse_op("epoch 2").unwrap();
        assert_ne!(op_key(&a), op_key(&b));
        assert_eq!(op_key(&a), op_key(&a.clone()));
    }

    #[test]
    fn journal_parses_with_and_without_seq_annotations() {
        let text = format!(
            "{TRACE_VERSION}\n# wal seq=9\nepoch 0\n# plain comment\nchurn 0 1 1\n\n# wal seq=12\n"
        );
        let entries = parse_journal(&text).expect("parse");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].seq, Some(9));
        assert_eq!(entries[1].seq, None, "plain comment is not an annotation");
        assert!(parse_journal("byzscore-trace/v2\n").is_err());
        assert!(
            parse_journal(&format!("{TRACE_VERSION}\n# wal seq=x\nepoch 0\n")).is_err(),
            "bad annotation is corruption"
        );
        assert!(
            parse_journal(&format!("{TRACE_VERSION}\nepoch zero\n")).is_err(),
            "a complete unparsable op line is corruption"
        );
    }

    /// Kill the "server" (drop the journaled engine) at every op index
    /// of a generated trace; recovery + the remaining ops must digest
    /// bit-identically to the uninterrupted run. This is the in-process
    /// statement of the tentpole's crash-recovery determinism claim.
    #[test]
    fn recovery_is_digest_identical_at_every_kill_point() {
        let trace = Trace::generate(&TraceSpec::small(23));
        let expected = combined_digest(&trace.replay());
        let path = temp_path("killpoints");
        // Exhaustive at the barrier indices + a probe stride; the e18
        // experiment covers the committed trace with a seeded schedule.
        let kill_points: Vec<usize> = (0..trace.ops.len())
            .filter(|&k| !trace.ops[k].is_shardable() || k % 5 == 0)
            .collect();
        for k in kill_points {
            let mut responses = Vec::new();
            {
                let mut je = JournaledEngine::create(&path, 4).expect("create journal");
                for (i, op) in trace.ops[..k].iter().enumerate() {
                    responses.push(je.submit(i as u64, op).expect("submit"));
                }
                // Crash: je dropped without any shutdown handshake.
            }
            let (mut je, replayed) =
                JournaledEngine::recover(&path, 4).expect("recover from journal");
            assert_eq!(
                replayed,
                trace.ops[..k].iter().filter(|o| o.is_mutating()).count(),
                "journal holds exactly the mutating prefix at kill point {k}"
            );
            for (i, op) in trace.ops.iter().enumerate().skip(k) {
                responses.push(je.submit(i as u64, op).expect("submit after recovery"));
            }
            assert_eq!(
                combined_digest(&responses),
                expected,
                "kill at op {k} diverged"
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    /// A torn tail — partial bytes after the last newline — is dropped
    /// on recovery and the file keeps accepting appends.
    #[test]
    fn torn_tail_is_truncated_and_appends_continue() {
        use std::io::Write as _;
        let path = temp_path("torn");
        let mut je = JournaledEngine::create(&path, 2).expect("create");
        let open = parse_op("open 8 16 2 2 5 naive 2 0 0 7").unwrap();
        let epoch = parse_op("epoch 0").unwrap();
        je.submit(0, &open).expect("open");
        je.submit(1, &epoch).expect("epoch");
        drop(je);
        // Simulate a crash mid-append: partial annotation, no newline.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"# wal seq=2\nchurn 0 1").unwrap();
        drop(f);
        let (mut je, replayed) = JournaledEngine::recover(&path, 2).expect("recover");
        assert_eq!(replayed, 2, "the torn entry was never executed");
        let resp = je.submit(2, &parse_op("close 0").unwrap()).expect("close");
        assert!(matches!(resp, Response::Closed { .. }));
        // The resumed file is still a valid journal end to end.
        let (_, replayed) = JournaledEngine::recover(&path, 2).expect("re-recover");
        assert_eq!(replayed, 3);
        let _ = std::fs::remove_file(&path);
    }

    /// A resent barrier answers the recorded response without
    /// re-executing — including across a crash/recover boundary — and
    /// a different op under a reused seq executes normally.
    #[test]
    fn dedupe_survives_recovery_and_checks_op_identity() {
        let path = temp_path("dedupe");
        let ops = [
            parse_op("open 8 16 2 2 5 naive 2 0 1000 7").unwrap(),
            parse_op("churn 0 1 1").unwrap(),
        ];
        let mut je = JournaledEngine::create(&path, 2).expect("create");
        let first = je.submit(0, &ops[0]).expect("open");
        let churned = je.submit(1, &ops[1]).expect("churn");
        // Resend before the crash: recorded answer, no second churn.
        assert_eq!(je.submit(1, &ops[1]).expect("resend"), churned);
        drop(je);
        let (mut je, _) = JournaledEngine::recover(&path, 2).expect("recover");
        assert_eq!(
            je.submit(1, &ops[1]).expect("resend after recovery"),
            churned,
            "dedupe window survives the crash"
        );
        assert_eq!(je.submit(0, &ops[0]).expect("resent open"), first);
        // Same seq, different op text: executes (a second churn).
        let other = je
            .submit(1, &parse_op("epoch 0").unwrap())
            .expect("reused seq, new op");
        assert!(matches!(other, Response::Epoch { .. }));
        let _ = std::fs::remove_file(&path);
    }

    /// The journal is a valid `byzscore-trace/v1` file: `Trace::from_text`
    /// parses it directly.
    #[test]
    fn journal_is_a_replayable_trace_file() {
        let path = temp_path("astrace");
        let trace = Trace::generate(&TraceSpec::small(31));
        let mut je = JournaledEngine::create(&path, 4).expect("create");
        for (i, op) in trace.ops.iter().enumerate() {
            je.submit(i as u64, op).expect("submit");
        }
        drop(je);
        let text = std::fs::read_to_string(&path).expect("read journal");
        let parsed = Trace::from_text(&text).expect("journal parses as a trace");
        let mutating: Vec<Request> = trace
            .ops
            .iter()
            .filter(|o| o.is_mutating())
            .cloned()
            .collect();
        assert_eq!(parsed.ops, mutating);
        let _ = std::fs::remove_file(&path);
    }
}
