//! Seeded request-trace generation and the versioned trace file format.
//!
//! A [`Trace`] is an ordered request list. [`Trace::generate`] derives
//! one deterministically from a [`TraceSpec`] (op mix, player skew,
//! seed); [`Trace::to_text`] / [`Trace::from_text`] round-trip it
//! through the `byzscore-trace/v1` line format, so a committed trace
//! file replays bit-identically anywhere (`tests/determinism.rs` pins
//! this across 1/2/8 worker threads).
//!
//! # Format (`byzscore-trace/v1`)
//!
//! Line 1 is the version header; every following non-empty line is one
//! op. Session ids are open-order indices. All fields are integers —
//! skew and drift are integer-encoded, so no float ever enters a trace.
//!
//! ```text
//! byzscore-trace/v1
//! open <players> <objects> <clusters> <diameter> <world_seed> <algorithm> <budget> <corrupt> <drift_ppm> <score_seed>
//! probe <sid> <player> <o1,o2,...>
//! query <sid> <p1,p2,...> <o1,o2,...|->
//! churn <sid> <retire> <join>
//! epoch <sid>
//! close <sid>
//! ```

use byzscore_random::{choose_k, derive_seed};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::engine::ServiceEngine;
use crate::request::{combined_digest, Request, Response, ServiceAlgorithm, SessionSpec};

const TAG_TRACE: u64 = 0x7c_01;
const TAG_WORLD: u64 = 0x7c_02;
const TAG_SCORE: u64 = 0x7c_03;

/// Version header of the trace format this build reads and writes.
pub const TRACE_VERSION: &str = "byzscore-trace/v1";

/// Relative op frequencies of a generated workload (weights, not
/// probabilities; they need not sum to anything in particular).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpMix {
    /// Weight of probe submissions.
    pub probe: u32,
    /// Weight of preference queries.
    pub query: u32,
    /// Weight of churn transitions (each triggers a full recompute).
    pub churn: u32,
    /// Weight of epoch advances (each triggers a full recompute).
    pub epoch: u32,
}

impl Default for OpMix {
    /// Read-heavy steady state: mostly probes and queries, rare world
    /// transitions.
    fn default() -> Self {
        OpMix {
            probe: 12,
            query: 6,
            churn: 1,
            epoch: 1,
        }
    }
}

impl OpMix {
    fn total(&self) -> u32 {
        self.probe + self.query + self.churn + self.epoch
    }
}

/// Everything a generated workload is a pure function of.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceSpec {
    /// Concurrent sessions to open up front.
    pub sessions: usize,
    /// Ops generated after the opens (closes are appended at the end).
    pub ops: usize,
    /// Players per session.
    pub players: usize,
    /// Objects per session.
    pub objects: usize,
    /// Planted clusters per session world.
    pub clusters: usize,
    /// Planted cluster diameter.
    pub diameter: usize,
    /// Per-player probe budget.
    pub budget: usize,
    /// Corrupted players per session.
    pub corrupt: usize,
    /// Drift rate in parts-per-million.
    pub drift_ppm: u32,
    /// Scoring algorithm of every session.
    pub algorithm: ServiceAlgorithm,
    /// Op frequencies.
    pub mix: OpMix,
    /// Player-pick skew: a target player is the minimum of `skew + 1`
    /// uniform draws, so higher skew concentrates load on low slots
    /// (integer-encoded Zipf-ish hotspotting).
    pub skew: u32,
    /// Master seed of the generator.
    pub seed: u64,
}

impl TraceSpec {
    /// A small smoke-scale spec (a few sessions, tens of ops).
    pub fn small(seed: u64) -> TraceSpec {
        TraceSpec {
            sessions: 2,
            ops: 40,
            players: 32,
            objects: 64,
            clusters: 4,
            diameter: 4,
            budget: 4,
            corrupt: 2,
            drift_ppm: 2_000,
            algorithm: ServiceAlgorithm::Naive,
            mix: OpMix::default(),
            skew: 1,
            seed,
        }
    }
}

/// An ordered request workload, ready to execute or serialize.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// The ops, in execution order.
    pub ops: Vec<Request>,
}

/// A parse failure: line number (1-based) and what went wrong.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line number of the offending line (0 for the header).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceError {}

fn err(line: usize, message: impl Into<String>) -> TraceError {
    TraceError {
        line,
        message: message.into(),
    }
}

impl Trace {
    /// Deterministically generate a workload from `spec`: open all
    /// sessions, interleave `spec.ops` ops drawn from the mix (tracking
    /// each session's live population so every generated index is
    /// valid), close every session at the end.
    pub fn generate(spec: &TraceSpec) -> Trace {
        assert!(spec.sessions >= 1, "need at least one session");
        assert!(spec.mix.total() > 0, "op mix must have positive weight");
        let mut rng = SmallRng::seed_from_u64(derive_seed(spec.seed, &[TAG_TRACE]));
        let players = spec.players.max(2);
        let mut ops = Vec::with_capacity(spec.sessions * 2 + spec.ops);
        // Track each session's live population and remaining pool
        // headroom, mirroring the engine's churn arithmetic.
        let mut live: Vec<(usize, usize)> = Vec::new();
        for s in 0..spec.sessions {
            ops.push(Request::Open(SessionSpec {
                players,
                objects: spec.objects.max(2),
                clusters: spec.clusters.max(1),
                diameter: spec.diameter,
                world_seed: derive_seed(spec.seed, &[TAG_WORLD, s as u64]),
                algorithm: spec.algorithm,
                budget: spec.budget.max(1),
                corrupt: spec.corrupt,
                drift_ppm: spec.drift_ppm,
                score_seed: derive_seed(spec.seed, &[TAG_SCORE, s as u64]),
            }));
            live.push((players, players));
        }
        let m = spec.objects.max(2);
        for _ in 0..spec.ops {
            let sid = rng.gen_range(0..spec.sessions);
            let (n, headroom) = live[sid];
            let roll = rng.gen_range(0..spec.mix.total());
            if roll < spec.mix.probe {
                let player = self::skewed(&mut rng, n, spec.skew);
                let k = 1 + rng.gen_range(0..8usize.min(m));
                ops.push(Request::SubmitProbes {
                    session: sid as u64,
                    player,
                    objects: choose_k(&mut rng, m, k),
                });
            } else if roll < spec.mix.probe + spec.mix.query {
                let k = 1 + rng.gen_range(0..4usize.min(n));
                let players = choose_k(&mut rng, n, k);
                let objects = if rng.gen_range(0..2u32) == 0 {
                    None
                } else {
                    let ko = 1 + rng.gen_range(0..8usize.min(m));
                    Some(choose_k(&mut rng, m, ko))
                };
                ops.push(Request::QueryPreferences {
                    session: sid as u64,
                    players,
                    objects,
                });
            } else if roll < spec.mix.probe + spec.mix.query + spec.mix.churn {
                let retire = rng.gen_range(0..=2usize.min(n.saturating_sub(1)));
                let join = rng.gen_range(0..=2usize);
                let joined = join.min(headroom);
                live[sid] = (n - retire + joined, headroom - joined);
                ops.push(Request::ApplyChurn {
                    session: sid as u64,
                    retire,
                    join,
                });
            } else {
                ops.push(Request::AdvanceEpoch {
                    session: sid as u64,
                });
            }
        }
        for sid in 0..spec.sessions {
            ops.push(Request::CloseSession {
                session: sid as u64,
            });
        }
        Trace { ops }
    }

    /// Replay on a fresh engine; answers come back in op order.
    pub fn replay(&self) -> Vec<Response> {
        ServiceEngine::new().execute(&self.ops)
    }

    /// Replay and fold the answers into one digest.
    pub fn replay_digest(&self) -> u64 {
        combined_digest(&self.replay())
    }

    /// Serialize to the `byzscore-trace/v1` line format.
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(self.ops.len() * 24 + 24);
        out.push_str(TRACE_VERSION);
        out.push('\n');
        for op in &self.ops {
            out.push_str(&format_op(op));
            out.push('\n');
        }
        out
    }

    /// Parse the `byzscore-trace/v1` line format.
    pub fn from_text(text: &str) -> Result<Trace, TraceError> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, header)) if header.trim() == TRACE_VERSION => {}
            Some((_, header)) => {
                return Err(err(
                    1,
                    format!("bad header {header:?}, expected {TRACE_VERSION:?}"),
                ))
            }
            None => return Err(err(0, "empty trace")),
        }
        let mut ops = Vec::new();
        for (i, raw) in lines {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            ops.push(parse_op(line).map_err(|m| err(i + 1, m))?);
        }
        Ok(Trace { ops })
    }
}

/// Pick a player with integer skew: the minimum of `skew + 1` uniform
/// draws over `0..n`.
fn skewed(rng: &mut SmallRng, n: usize, skew: u32) -> u32 {
    (0..=skew)
        .map(|_| rng.gen_range(0..n) as u32)
        .min()
        .expect("at least one draw")
}

pub(crate) fn join_ids(ids: &[u32]) -> String {
    let mut s = String::with_capacity(ids.len() * 3);
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&id.to_string());
    }
    s
}

pub(crate) fn split_ids(field: &str) -> Result<Vec<u32>, String> {
    field
        .split(',')
        .map(|t| {
            t.parse::<u32>()
                .map_err(|_| format!("bad id list {field:?}"))
        })
        .collect()
}

pub(crate) fn num<T: std::str::FromStr>(tok: Option<&str>, what: &str) -> Result<T, String> {
    tok.ok_or_else(|| format!("missing {what}"))?
        .parse::<T>()
        .map_err(|_| format!("bad {what} {tok:?}"))
}

/// Serialize one op as its trace line (no trailing newline) — the exact
/// inverse of [`parse_op`], shared by [`Trace::to_text`] and the wire
/// protocol's request frames.
pub fn format_op(op: &Request) -> String {
    match op {
        Request::Open(s) => format!(
            "open {} {} {} {} {} {} {} {} {} {}",
            s.players,
            s.objects,
            s.clusters,
            s.diameter,
            s.world_seed,
            s.algorithm.name(),
            s.budget,
            s.corrupt,
            s.drift_ppm,
            s.score_seed
        ),
        Request::SubmitProbes {
            session,
            player,
            objects,
        } => format!("probe {session} {player} {}", join_ids(objects)),
        Request::QueryPreferences {
            session,
            players,
            objects,
        } => {
            let objs = match objects {
                None => "-".to_string(),
                Some(o) => join_ids(o),
            };
            format!("query {session} {} {objs}", join_ids(players))
        }
        Request::ApplyChurn {
            session,
            retire,
            join,
        } => format!("churn {session} {retire} {join}"),
        Request::AdvanceEpoch { session } => format!("epoch {session}"),
        Request::CloseSession { session } => format!("close {session}"),
    }
}

/// Parse one op line (shared by [`Trace::from_text`] and the `scored`
/// binary's line-at-a-time serve mode).
pub fn parse_op(line: &str) -> Result<Request, String> {
    let mut toks = line.split_whitespace();
    let verb = toks.next().ok_or("empty op line")?;
    let op = match verb {
        "open" => Request::Open(SessionSpec {
            players: num(toks.next(), "players")?,
            objects: num(toks.next(), "objects")?,
            clusters: num(toks.next(), "clusters")?,
            diameter: num(toks.next(), "diameter")?,
            world_seed: num(toks.next(), "world_seed")?,
            algorithm: {
                let name = toks.next().ok_or("missing algorithm")?;
                ServiceAlgorithm::parse(name).ok_or_else(|| format!("bad algorithm {name:?}"))?
            },
            budget: num(toks.next(), "budget")?,
            corrupt: num(toks.next(), "corrupt")?,
            drift_ppm: num(toks.next(), "drift_ppm")?,
            score_seed: num(toks.next(), "score_seed")?,
        }),
        "probe" => Request::SubmitProbes {
            session: num(toks.next(), "session")?,
            player: num(toks.next(), "player")?,
            objects: split_ids(toks.next().ok_or("missing object list")?)?,
        },
        "query" => Request::QueryPreferences {
            session: num(toks.next(), "session")?,
            players: split_ids(toks.next().ok_or("missing player list")?)?,
            objects: match toks.next().ok_or("missing object list")? {
                "-" => None,
                field => Some(split_ids(field)?),
            },
        },
        "churn" => Request::ApplyChurn {
            session: num(toks.next(), "session")?,
            retire: num(toks.next(), "retire")?,
            join: num(toks.next(), "join")?,
        },
        "epoch" => Request::AdvanceEpoch {
            session: num(toks.next(), "session")?,
        },
        "close" => Request::CloseSession {
            session: num(toks.next(), "session")?,
        },
        other => return Err(format!("unknown op {other:?}")),
    };
    if let Some(extra) = toks.next() {
        return Err(format!("trailing token {extra:?}"));
    }
    Ok(op)
}

/// Parse the committed `traces/DIGESTS` manifest: one
/// `<trace file name> <16-hex-digit combined digest>` pair per line,
/// `#` comments and blank lines ignored. This file is the single source
/// of truth for the pinned replay digests — `tests/determinism.rs`, the
/// CI replay gates, and the e17 socket table all read it, so rotating a
/// trace is a one-file edit.
pub fn parse_digests(text: &str) -> Result<Vec<(String, u64)>, TraceError> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut toks = line.split_whitespace();
        let name = toks.next().expect("non-empty line has a first token");
        let digest = toks
            .next()
            .ok_or_else(|| err(i + 1, format!("missing digest after {name:?}")))?;
        if digest.len() != 16 || toks.next().is_some() {
            return Err(err(
                i + 1,
                format!("expected `<name> <16-hex digest>`, got {line:?}"),
            ));
        }
        let value = u64::from_str_radix(digest, 16)
            .map_err(|_| err(i + 1, format!("bad digest {digest:?}")))?;
        out.push((name.to_string(), value));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_trace_round_trips_through_text() {
        let trace = Trace::generate(&TraceSpec::small(42));
        let text = trace.to_text();
        let parsed = Trace::from_text(&text).expect("parse back");
        assert_eq!(parsed, trace);
        // Stability of the serialization itself.
        assert_eq!(parsed.to_text(), text);
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let spec = TraceSpec::small(7);
        assert_eq!(Trace::generate(&spec), Trace::generate(&spec));
        assert_ne!(
            Trace::generate(&spec),
            Trace::generate(&TraceSpec::small(8))
        );
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(Trace::from_text("").is_err());
        assert!(Trace::from_text("byzscore-trace/v2\n").is_err());
        for bad in [
            "probe 0 1",                     // missing object list
            "probe 0 1 2,x",                 // bad id
            "query 0 1,2",                   // missing object field
            "open 8 8 2 2 1 robust 4 0 0 1", // unknown algorithm
            "close 0 extra",                 // trailing token
            "frobnicate 1",                  // unknown verb
        ] {
            let text = format!("{TRACE_VERSION}\n{bad}\n");
            assert!(Trace::from_text(&text).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = format!("{TRACE_VERSION}\n\n# a comment\nepoch 0\n");
        let trace = Trace::from_text(&text).expect("parse");
        assert_eq!(trace.ops, vec![Request::AdvanceEpoch { session: 0 }]);
    }

    #[test]
    fn digest_manifest_parses_and_rejects_malformed_lines() {
        let good =
            "# comment\n\nservice_quick.trace 742004f52561bb35\nother.trace 00000000deadbeef\n";
        assert_eq!(
            parse_digests(good).unwrap(),
            vec![
                ("service_quick.trace".to_string(), 0x7420_04f5_2561_bb35),
                ("other.trace".to_string(), 0x0000_0000_dead_beef),
            ]
        );
        for bad in [
            "service_quick.trace",                    // missing digest
            "service_quick.trace 1234",               // short digest
            "service_quick.trace 742004f52561bb3g",   // non-hex
            "service_quick.trace 742004f52561bb35 x", // trailing token
        ] {
            assert!(parse_digests(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn format_op_round_trips_every_op_shape() {
        let trace = Trace::generate(&TraceSpec::small(11));
        for op in &trace.ops {
            let line = format_op(op);
            assert_eq!(parse_op(&line).as_ref(), Ok(op), "line {line:?}");
        }
    }

    #[test]
    fn generated_indices_stay_in_range_under_churn() {
        let mut spec = TraceSpec::small(3);
        spec.ops = 120;
        spec.mix = OpMix {
            probe: 4,
            query: 4,
            churn: 4,
            epoch: 1,
        };
        let trace = Trace::generate(&spec);
        // Replay must produce no rejections: every generated index valid.
        for (op, resp) in trace.ops.iter().zip(trace.replay()) {
            assert!(
                !matches!(resp, Response::Rejected(_)),
                "{op:?} was rejected: {resp:?}"
            );
        }
    }
}
