//! The building-block protocols of **Figure 1**: `RSelect`, `Select`,
//! `ZeroRadius`, and `SmallRadius` (from Alon–Awerbuch–Azar–Patt-Shamir
//! \[2,3\] and Awerbuch et al. \[4\], as restated by the paper in §5).
//!
//! Everything here is expressed against the execution substrate of
//! `byzscore-board` (oracle + bulletin board), the shared-randomness
//! [`Beacon`](byzscore_random::Beacon), and the adversary table of
//! `byzscore-adversary`: the same implementations serve both the honest
//! analysis (§6) and the Byzantine analysis (§7), exactly as in the paper
//! ("they need little modification to tolerate dishonest players").
//!
//! # The blocks
//!
//! * [`rselect`] — Theorem 3: pairwise-elimination tournament over candidate
//!   vectors; returns a candidate within `O(1)` of the best one using
//!   `O(k² log n)` probes.
//! * [`select_among`] — the paper's `Select`, whose pseudocode Figure 1
//!   omits ("a deterministic version of RSelect"). We reconstruct it as a
//!   *batched score-and-eliminate* tournament with `O(k log n)` probes
//!   (linear in the candidate count, which Theorem 5's probe bound
//!   requires); see DESIGN.md §4.2 for the reconstruction rationale.
//! * [`zero_radius`] — Theorem 4: recursive halving of players and objects;
//!   exact recovery when `n/B'` clones exist, `O(B' log n)` probes.
//! * [`small_radius`] — Theorem 5: random object partition + `ZeroRadius`
//!   per part + `Select` stitching, for clusters of diameter ≤ `D`.
//!
//! # Simulation notes (see DESIGN.md §4.1)
//!
//! The pseudocode is per-player, but all players share the beacon-derived
//! partitions, so we execute each recursion *once* over (player-set,
//! object-set) nodes and account probes per player through the oracle —
//! semantically identical and far cheaper to simulate. Dishonest players'
//! posts are routed through the adversary's [`Behaviors`] table at every
//! point where the protocol reads another player's claim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ctx;
mod small_radius;
mod tournament;
mod votes;
mod zero_radius;

pub use ctx::{BlockParams, CandidateMeter, Ctx};
pub use small_radius::small_radius;
pub use tournament::{rselect, select_among, select_vector, StreamingRSelect};
pub use votes::{popular_vectors, VoteTally};
pub use zero_radius::zero_radius;
