//! `SmallRadius` — Figure 1, bottom block (Theorem 5, from \[2,3\]).
//!
//! Collaborative scoring for clusters of *small but non-zero* diameter:
//! if every player has ≥ `n/B` players within distance `D`, each player
//! recovers a vector within `O(D)` of its truth.
//!
//! Idea: randomly partition the objects into `s = Θ(D^{3/2})` groups. Within
//! one group, players of a diameter-`D` cluster look like *near-clones*
//! (expected pairwise distance `D/s` per group), so `ZeroRadius` (run with
//! the relaxed budget `5B`) recovers good group vectors, which the popular
//! filter + `Select` stitch into a full candidate. Θ(log n) independent
//! repetitions and a final `Select` drive the failure probability down.

use byzscore_adversary::Phase;
use byzscore_bitset::{BitVec, Bits};
use byzscore_board::par::par_map_items;
use byzscore_random::{partition_into, tags};

use crate::tournament::select_among;
use crate::votes::candidate_vectors;
use crate::zero_radius::zero_radius;
use crate::Ctx;

/// Run `SmallRadius(P, O, D)` for all players simultaneously.
///
/// * `players` — the player set `P` (global ids).
/// * `objects` — the object set `O` (global ids).
/// * `diameter` — the assumed cluster diameter `D` on these objects.
/// * `scope_path` — scope for randomness derivation and board posts.
///
/// Returns one vector per player (aligned with `players`, over `objects`'
/// coordinates); each is posted on the board under this invocation's scope.
///
/// Guarantee (Theorem 5): if ≥ `n/B` players lie within distance `D` of
/// `p`, then whp `|w(p) − v(p)| ≤ 5D`, with `O(B·log n·D^{3/2}(D + log n))`
/// probes per player.
pub fn small_radius(
    ctx: &Ctx<'_>,
    players: &[u32],
    objects: &[u32],
    diameter: usize,
    scope_path: &[u64],
) -> Vec<BitVec> {
    let b = ctx.params.budget_b;
    let iters = ((ctx.params.c_sr_iters * ctx.log2_n() as f64).ceil() as usize).max(2);
    let s = (((diameter.max(1) as f64).powf(1.5) / ctx.params.sr_subset_scale).ceil() as usize)
        .clamp(1, objects.len().max(1));
    let zr_budget = (ctx.params.sr_budget_mult * b).max(1);
    let popular_threshold = ((players.len() as f64) / (ctx.params.sr_popular_denom * b as f64))
        .floor()
        .max(1.0) as usize;

    let pos_of: std::collections::HashMap<u32, u32> = objects
        .iter()
        .enumerate()
        .map(|(i, &o)| (o, i as u32))
        .collect();

    // One candidate vector per player per iteration.
    let mut candidates: Vec<Vec<BitVec>> = vec![Vec::with_capacity(iters); players.len()];

    for t in 0..iters {
        // Step 1: shared random partition of the objects into s groups.
        let mut part_tags = vec![tags::SR_PARTITION];
        part_tags.extend_from_slice(scope_path);
        part_tags.push(t as u64);
        let mut rng = ctx.beacon.sub_rng(&part_tags);
        let groups = partition_into(&mut rng, objects, s);

        // Steps 2–3 per group, in parallel across groups (each group's
        // ZeroRadius + Select chain is independent; the oracle and board
        // are internally synchronized and order-independent).
        let group_ids: Vec<(usize, &Vec<u32>)> = groups.iter().enumerate().collect();
        let group_results: Vec<Vec<BitVec>> = par_map_items(&group_ids, |&(gi, group)| {
            per_group(
                ctx,
                players,
                group,
                zr_budget,
                popular_threshold,
                scope_path,
                t,
                gi,
            )
        });

        // Concatenate each player's group vectors into a full candidate.
        for (pi, _) in players.iter().enumerate() {
            let mut full = BitVec::zeros(objects.len());
            for (g, group) in groups.iter().enumerate() {
                let part = &group_results[g][pi];
                for (k, &o) in group.iter().enumerate() {
                    if part.get(k) {
                        full.set(pos_of[&o] as usize, true);
                    }
                }
            }
            candidates[pi].push(full);
        }
    }

    // Final step: each player selects among its per-iteration candidates.
    let indexed: Vec<(usize, u32)> = players.iter().copied().enumerate().collect();
    let out: Vec<BitVec> = par_map_items(&indexed, |&(pi, p)| {
        if ctx.behaviors.is_dishonest(p) {
            ctx.behaviors
                .vector_claim(Phase::ClusterFormation, p, objects)
        } else {
            let mut rng = ctx.player_rng(p, &[scope_path.first().copied().unwrap_or(0), 0xf1a1]);
            let c = &candidates[pi];
            let won = select_among(ctx, p, c, objects, &mut rng);
            c[won].clone()
        }
    });

    let scope = ctx
        .board
        .scope(&[scope_path, &[tags::SR_PARTITION]].concat());
    for (&p, v) in players.iter().zip(&out) {
        scope.post_vector(p, v.clone());
    }
    out
}

/// Steps 2–3 of one iteration for one object group: run `ZeroRadius` with
/// the relaxed budget, keep the popular outputs `U_i`, and let every player
/// `Select` its best match.
#[allow(clippy::too_many_arguments)]
fn per_group(
    ctx: &Ctx<'_>,
    players: &[u32],
    group: &[u32],
    zr_budget: usize,
    popular_threshold: usize,
    scope_path: &[u64],
    iter: usize,
    group_index: usize,
) -> Vec<BitVec> {
    if group.is_empty() {
        return vec![BitVec::zeros(0); players.len()];
    }
    let mut zr_path = Vec::with_capacity(scope_path.len() + 2);
    zr_path.extend_from_slice(scope_path);
    zr_path.push(0x5a11);
    zr_path.push(((iter as u64) << 32) | group_index as u64);

    let zr_out = zero_radius(ctx, players, group, zr_budget, &zr_path);
    let u_i = candidate_vectors(&zr_out, popular_threshold, 3 * ctx.params.budget_b);

    players
        .iter()
        .enumerate()
        .map(|(pi, &p)| {
            if ctx.behaviors.is_dishonest(p) {
                ctx.behaviors
                    .vector_claim(Phase::ClusterFormation, p, group)
            } else if u_i.is_empty() {
                zr_out[pi].clone()
            } else {
                let mut rng = ctx.player_rng(p, &[0x5e1ec7, iter as u64, group_index as u64]);
                let won = select_among(ctx, p, &u_i, group, &mut rng);
                u_i[won].clone()
            }
        })
        .collect()
}
