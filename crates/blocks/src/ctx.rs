//! Execution context and tunable protocol constants.

use byzscore_adversary::Behaviors;
use byzscore_board::{Board, Oracle};
use byzscore_random::Beacon;

/// Every constant the paper hides inside Θ(·)/O(·), as an explicit knob.
///
/// Asymptotic statements leave constants free; concrete executions cannot.
/// Defaults are tuned for `n ∈ [64, 4096]` (see EXPERIMENTS.md for the
/// sensitivity ablations A1–A3); [`BlockParams::paper_faithful`] sets every
/// constant that the paper states literally (10 ln n sampling, 220 ln n
/// edge threshold, 2/3 majorities, 5B budgets, …) at the cost of much
/// larger probe counts.
#[derive(Clone, Debug)]
pub struct BlockParams {
    /// The budget parameter `B` the protocol is optimized against.
    pub budget_b: usize,

    // ---- RSelect (Figure 1, top; Theorem 3) ----
    /// Pair sample size multiplier: each pair probes
    /// `ceil(c_rselect · ln n)` differing objects.
    pub c_rselect: f64,
    /// Elimination threshold (paper: 2/3): eliminate `w'` when at least
    /// this fraction of probed differing objects agree with `w`.
    pub rselect_threshold: f64,

    // ---- Select (reconstruction; see lib docs) ----
    /// Batch size multiplier: each elimination round probes
    /// `ceil(c_select · ln n)` disputed objects.
    pub c_select: f64,
    /// Keep candidates scoring within `select_margin · batch` of the best
    /// each round (drop the clear losers only).
    pub select_margin: f64,

    // ---- ZeroRadius (Figure 1, middle; Theorem 4) ----
    /// Base-case threshold multiplier: recurse only while
    /// `min(|P|,|O|) ≥ c_zr_base · B' · ln n`.
    pub c_zr_base: f64,
    /// Vote threshold denominator (paper: 2): a vector is *popular* when
    /// posted by ≥ `|P''| / (zr_vote_denom · B')` players of the sibling
    /// half.
    pub zr_vote_denom: f64,

    // ---- SmallRadius (Figure 1, bottom; Theorem 5) ----
    /// Outer iterations = `max(2, ceil(c_sr_iters · log₂ n))` (paper:
    /// Θ(log n)).
    pub c_sr_iters: f64,
    /// Object partition granularity: `s = clamp(ceil(D^{3/2} /
    /// sr_subset_scale), 1, |O|)` (paper: `s = Θ(D^{3/2})`).
    pub sr_subset_scale: f64,
    /// `ZeroRadius` budget multiplier inside `SmallRadius` (paper: 5, as in
    /// "ZeroRadius(·, ·, 5B)").
    pub sr_budget_mult: usize,
    /// Popularity denominator for `U_i` (paper: 5, as in "output by at
    /// least n/(5B) players").
    pub sr_popular_denom: f64,
}

impl Default for BlockParams {
    /// Laptop-scale defaults: every Θ-constant shrunk to keep probe counts
    /// practical at n ≤ 4096 while preserving the asymptotic shape the
    /// experiments measure.
    fn default() -> Self {
        BlockParams {
            budget_b: 8,
            c_rselect: 3.0,
            rselect_threshold: 2.0 / 3.0,
            c_select: 3.0,
            select_margin: 1.0 / 3.0,
            c_zr_base: 3.0,
            zr_vote_denom: 2.0,
            c_sr_iters: 0.5,
            sr_subset_scale: 48.0,
            sr_budget_mult: 2,
            sr_popular_denom: 3.0,
        }
    }
}

impl BlockParams {
    /// The literal constants of the paper's text. Probe counts become large
    /// (they carry 10·ln n and 5B factors) but match the prose exactly.
    pub fn paper_faithful(budget_b: usize) -> Self {
        BlockParams {
            budget_b,
            c_rselect: 10.0,
            rselect_threshold: 2.0 / 3.0,
            c_select: 10.0,
            select_margin: 1.0 / 3.0,
            c_zr_base: 1.0,
            zr_vote_denom: 2.0,
            c_sr_iters: 1.0,
            sr_subset_scale: 1.0,
            sr_budget_mult: 5,
            sr_popular_denom: 5.0,
        }
    }

    /// Defaults with a given budget.
    pub fn with_budget(budget_b: usize) -> Self {
        BlockParams {
            budget_b,
            ..Default::default()
        }
    }
}

/// Accumulator for candidate-storage high-water marks.
///
/// The streaming `RSelect` tournaments track, per player, the peak number
/// of resident candidate bytes; summing those per-player peaks gives a
/// deterministic (order-independent) measure of how much candidate storage
/// a run needed at its worst. The sum lives behind an atomic only so
/// parallel phases can add their players' peaks without coordination — the
/// final value does not depend on thread count or timing.
#[derive(Debug, Default)]
pub struct CandidateMeter {
    peak_bytes: std::sync::atomic::AtomicU64,
}

impl CandidateMeter {
    /// Fresh meter at zero.
    pub fn new() -> CandidateMeter {
        CandidateMeter::default()
    }

    /// Add one player's peak resident candidate bytes.
    pub fn add_peak(&self, bytes: u64) {
        self.peak_bytes
            .fetch_add(bytes, std::sync::atomic::Ordering::Relaxed);
    }

    /// Sum of per-player peaks recorded so far.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// Shared execution context threaded through every protocol step.
///
/// Bundles the probe oracle (metered truth access), the bulletin board,
/// the adversary's behaviour table, the current shared-randomness beacon,
/// and the constants. Cloning is cheap (the beacon is two words; the rest
/// are references), which is how nested scopes re-key their randomness via
/// [`Ctx::with_beacon`].
#[derive(Clone)]
pub struct Ctx<'a> {
    /// Metered access to hidden preferences.
    pub oracle: &'a Oracle,
    /// The shared bulletin board.
    pub board: &'a Board,
    /// Who is dishonest and what they post.
    pub behaviors: &'a Behaviors<'a>,
    /// Shared randomness for this scope.
    pub beacon: Beacon,
    /// Protocol constants.
    pub params: &'a BlockParams,
    /// Seed for players' *private* coin flips (their own probe sampling in
    /// `RSelect`/`Select`). Kept separate from the beacon: private coins
    /// are never published, so even an omniscient strategy cannot condition
    /// on them (the [`Strategy`](byzscore_adversary::Strategy) API simply
    /// never sees this value).
    pub private_seed: u64,
    /// Optional sink for candidate-residency accounting (the runner wires
    /// one in when it wants the `peak_candidate_bytes` metric; `None`
    /// costs nothing).
    pub meter: Option<&'a CandidateMeter>,
}

impl<'a> Ctx<'a> {
    /// Assemble a context.
    pub fn new(
        oracle: &'a Oracle,
        board: &'a Board,
        behaviors: &'a Behaviors<'a>,
        beacon: Beacon,
        params: &'a BlockParams,
    ) -> Self {
        let private_seed = beacon.seed() ^ 0x7e57_ab1e_5eed_c0de;
        Ctx {
            oracle,
            board,
            behaviors,
            beacon,
            params,
            private_seed,
            meter: None,
        }
    }

    /// Same context with candidate-residency accounting attached.
    pub fn with_meter(&self, meter: &'a CandidateMeter) -> Ctx<'a> {
        Ctx {
            meter: Some(meter),
            ..self.clone()
        }
    }

    /// Deterministic private stream for `player` in the scope named by
    /// `tags`.
    pub fn player_rng(&self, player: u32, scope_tags: &[u64]) -> rand::rngs::SmallRng {
        use rand::SeedableRng;
        let mut tags = Vec::with_capacity(scope_tags.len() + 2);
        tags.push(byzscore_random::tags::PLAYER);
        tags.push(u64::from(player));
        tags.extend_from_slice(scope_tags);
        rand::rngs::SmallRng::seed_from_u64(byzscore_random::derive_seed(self.private_seed, &tags))
    }

    /// Number of players `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.oracle.players()
    }

    /// `ln n`, floored at `ln 2` so degenerate sizes stay positive.
    #[inline]
    pub fn ln_n(&self) -> f64 {
        (self.n().max(2) as f64).ln()
    }

    /// `log₂ n`, at least 1.
    #[inline]
    pub fn log2_n(&self) -> usize {
        (usize::BITS - self.n().max(2).leading_zeros()) as usize
    }

    /// Same context under a re-keyed beacon (nested protocol scope).
    pub fn with_beacon(&self, beacon: Beacon) -> Ctx<'a> {
        Ctx {
            beacon,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzscore_bitset::BitMatrix;

    #[test]
    fn params_presets() {
        let d = BlockParams::default();
        assert!(
            d.rselect_threshold > 0.5,
            "majority threshold must exceed 1/2"
        );
        let p = BlockParams::paper_faithful(4);
        assert_eq!(p.budget_b, 4);
        assert_eq!(p.sr_budget_mult, 5);
        assert_eq!(p.sr_popular_denom, 5.0);
        assert_eq!(BlockParams::with_budget(16).budget_b, 16);
    }

    #[test]
    fn ctx_scales() {
        let truth = BitMatrix::zeros(128, 64);
        let oracle = Oracle::new(&truth);
        let board = Board::new();
        let behaviors = Behaviors::all_honest(&truth);
        let params = BlockParams::default();
        let ctx = Ctx::new(&oracle, &board, &behaviors, Beacon::honest(1), &params);
        assert_eq!(ctx.n(), 128);
        assert_eq!(ctx.log2_n(), 8);
        assert!((ctx.ln_n() - (128f64).ln()).abs() < 1e-9);
        let child = ctx.with_beacon(ctx.beacon.child(&[1]));
        assert_ne!(child.beacon.seed(), ctx.beacon.seed());
    }
}
