//! `ZeroRadius` — Figure 1, middle block (Theorem 4, from \[4\]).
//!
//! Collaborative scoring for the *exact clone* regime: assuming at least
//! `n/B'` players share each player's exact preference vector, every player
//! recovers its full vector with `O(B' log n)` probes.
//!
//! The recursion: randomly halve players and objects (shared randomness, so
//! all players agree on the partition); each half recursively solves its own
//! objects; then each player completes the *other* half's objects by
//! tallying the sibling half's posted outputs, keeping the *popular* vectors
//! (support ≥ `|P''|/(2B')`), and probing disagreement objects one at a time
//! until a single candidate survives — each probe kills at least one
//! candidate, and the player's clones in the sibling half guarantee the true
//! vector is popular.

use byzscore_bitset::{disagreement_indices, BitVec, Bits};
use byzscore_random::{halve, tags};

use crate::votes::candidate_vectors;
use crate::Ctx;

/// Run `ZeroRadius(P, O, B')` for **all** players of `players` at once
/// (DESIGN.md §4.1: the per-player pseudocode shares its random partitions,
/// so one walk of the recursion tree serves everyone; probes are still
/// charged per player).
///
/// * `players` — the player set `P` (global ids).
/// * `objects` — the object set `O` (global ids).
/// * `bprime` — the clone-class budget `B'`.
/// * `scope_path` — caller's scope path; used to key shared randomness and
///   the bulletin-board scope for this invocation's outputs.
///
/// Returns one output vector per player (aligned with `players`, over
/// `objects`' coordinates) and posts each player's vector on the board
/// under this invocation's scope. Dishonest players' outputs are their
/// strategy's claims.
pub fn zero_radius(
    ctx: &Ctx<'_>,
    players: &[u32],
    objects: &[u32],
    bprime: usize,
    scope_path: &[u64],
) -> Vec<BitVec> {
    assert!(bprime >= 1, "budget B' must be ≥ 1");
    let mut path = Vec::with_capacity(scope_path.len() + 4);
    path.extend_from_slice(scope_path);
    let out = zr_node(ctx, players, objects, bprime, &mut path);
    // Publish assembled outputs for this invocation (SmallRadius tallies
    // these; recursion-internal nodes exchange in memory — same data flow).
    // Registered via `Board::scope` so enclosing drivers can retire the
    // whole step's posts by path prefix.
    let scope = ctx
        .board
        .scope(&[scope_path, &[tags::ZR_PARTITION]].concat());
    for (&p, v) in players.iter().zip(&out) {
        scope.post_vector(p, v.clone());
    }
    out
}

/// One recursion node. `path` is mutated push/pop-style to derive child
/// scopes without allocation churn.
fn zr_node(
    ctx: &Ctx<'_>,
    players: &[u32],
    objects: &[u32],
    bprime: usize,
    path: &mut Vec<u64>,
) -> Vec<BitVec> {
    if objects.is_empty() {
        return vec![BitVec::zeros(0); players.len()];
    }
    let threshold = ((ctx.params.c_zr_base * bprime as f64 * ctx.ln_n()).ceil() as usize).max(4);

    // Base case (step 1): probe everything in O.
    if players.len().min(objects.len()) < threshold {
        return base_case(ctx, players, objects);
    }

    // Step 2: shared random halving — every player derives the same split.
    let mut tag_buf = Vec::with_capacity(path.len() + 1);
    tag_buf.push(tags::ZR_PARTITION);
    tag_buf.extend_from_slice(path);
    let mut rng = ctx.beacon.sub_rng(&tag_buf);
    let (p1, p2) = halve(&mut rng, players);
    let (o1, o2) = halve(&mut rng, objects);
    if p1.is_empty() || p2.is_empty() || o1.is_empty() || o2.is_empty() {
        // Degenerate split (vanishingly rare above the base threshold):
        // fall back to probing everything.
        return base_case(ctx, players, objects);
    }

    // Step 3: each half recursively solves its own objects.
    path.push(1);
    let out1 = zr_node(ctx, &p1, &o1, bprime, path);
    path.pop();
    path.push(2);
    let out2 = zr_node(ctx, &p2, &o2, bprime, path);
    path.pop();

    // Steps 4–5: each half completes the sibling's objects by vote +
    // disagreement probing.
    let completed1 = resolve_sibling(ctx, &p1, &o2, &p2, &out2, bprime);
    let completed2 = resolve_sibling(ctx, &p2, &o1, &p1, &out1, bprime);

    // Assemble each player's vector over this node's `objects`.
    let pos_of = position_index(objects);
    let mut result = Vec::with_capacity(players.len());
    let find = |set: &[u32], p: u32| set.iter().position(|&q| q == p);
    for &p in players {
        let mut full = BitVec::zeros(objects.len());
        if let Some(i) = find(&p1, p) {
            scatter(&mut full, &out1[i], &o1, &pos_of);
            scatter(&mut full, &completed1[i], &o2, &pos_of);
        } else {
            let i = find(&p2, p).expect("player is in one half");
            scatter(&mut full, &out2[i], &o2, &pos_of);
            scatter(&mut full, &completed2[i], &o1, &pos_of);
        }
        result.push(full);
    }
    result
}

/// Step 1: every player evaluates every object of the node directly.
fn base_case(ctx: &Ctx<'_>, players: &[u32], objects: &[u32]) -> Vec<BitVec> {
    players
        .iter()
        .map(|&p| {
            if ctx.behaviors.is_dishonest(p) {
                ctx.behaviors
                    .vector_claim(byzscore_adversary::Phase::ClusterFormation, p, objects)
            } else {
                BitVec::from_fn(objects.len(), |k| ctx.oracle.probe(p, objects[k]))
            }
        })
        .collect()
}

/// Steps 4–5 for one half: players `half` complete the sibling objects
/// `sib_objects` from the sibling half's outputs.
///
/// Per resolving player: candidates = popular sibling vectors; while more
/// than one candidate survives, probe one disagreement object (own
/// preference!) and discard disagreeing candidates. If every candidate is
/// eliminated (no exact clone in the sibling — possible in `SmallRadius`'s
/// approximate regime), fall back to the candidate that agreed most with
/// the probes made (DESIGN.md §4.3).
fn resolve_sibling(
    ctx: &Ctx<'_>,
    half: &[u32],
    sib_objects: &[u32],
    sibling: &[u32],
    sibling_out: &[BitVec],
    bprime: usize,
) -> Vec<BitVec> {
    let vote_threshold = ((sibling.len() as f64) / (ctx.params.zr_vote_denom * bprime as f64))
        .floor()
        .max(1.0) as usize;
    let cap = ((2.0 * ctx.params.zr_vote_denom).ceil() as usize).saturating_mul(bprime);
    let candidates = candidate_vectors(sibling_out, vote_threshold, cap);

    half.iter()
        .map(|&p| {
            if ctx.behaviors.is_dishonest(p) {
                return ctx.behaviors.vector_claim(
                    byzscore_adversary::Phase::ClusterFormation,
                    p,
                    sib_objects,
                );
            }
            if candidates.is_empty() {
                // Sibling posted nothing (cannot happen with non-empty
                // sibling halves, but stay total).
                return BitVec::zeros(sib_objects.len());
            }
            let mut alive: Vec<usize> = (0..candidates.len()).collect();
            let mut probed: Vec<(usize, bool)> = Vec::new();
            while alive.len() > 1 {
                let views: Vec<&BitVec> = alive.iter().map(|&i| &candidates[i]).collect();
                let disputes = disagreement_indices(&views);
                let Some(&c) = disputes.first() else { break };
                let truth = ctx.oracle.probe(p, sib_objects[c as usize]);
                probed.push((c as usize, truth));
                alive.retain(|&i| candidates[i].get(c as usize) == truth);
                if alive.is_empty() {
                    // No candidate matches the player exactly: keep the one
                    // most consistent with everything probed so far.
                    let best = (0..candidates.len())
                        .max_by_key(|&i| {
                            probed
                                .iter()
                                .filter(|&&(pos, t)| candidates[i].get(pos) == t)
                                .count()
                        })
                        .expect("candidates non-empty");
                    alive = vec![best];
                }
            }
            candidates[alive[0]].clone()
        })
        .collect()
}

/// Map each global object id of `objects` to its coordinate.
fn position_index(objects: &[u32]) -> std::collections::HashMap<u32, u32> {
    objects
        .iter()
        .enumerate()
        .map(|(i, &o)| (o, i as u32))
        .collect()
}

/// Write `src` (over the global ids `src_objects`) into `dst` (over the
/// node's coordinate space given by `pos_of`).
fn scatter(
    dst: &mut BitVec,
    src: &BitVec,
    src_objects: &[u32],
    pos_of: &std::collections::HashMap<u32, u32>,
) {
    debug_assert_eq!(src.len(), src_objects.len());
    for (k, &o) in src_objects.iter().enumerate() {
        if src.get(k) {
            dst.set(pos_of[&o] as usize, true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BlockParams;
    use byzscore_adversary::{Behaviors, Corruption, Inverter};
    use byzscore_board::{scope_id, Board, Oracle};
    use byzscore_model::{Balance, Workload};
    use byzscore_random::Beacon;

    fn clone_world(
        players: usize,
        objects: usize,
        classes: usize,
        seed: u64,
    ) -> byzscore_model::Instance {
        Workload::CloneClasses {
            players,
            objects,
            classes,
            balance: Balance::Even,
        }
        .generate(seed)
    }

    #[test]
    fn exact_recovery_with_clones() {
        let inst = clone_world(64, 64, 4, 3);
        let oracle = Oracle::new(inst.truth());
        let board = Board::new();
        let behaviors = Behaviors::all_honest(inst.truth());
        let params = BlockParams::with_budget(16);
        let ctx = Ctx::new(&oracle, &board, &behaviors, Beacon::honest(7), &params);
        let players: Vec<u32> = (0..64).collect();
        let objects: Vec<u32> = (0..64).collect();
        let out = zero_radius(&ctx, &players, &objects, 16, &[1]);
        for (p, v) in players.iter().zip(&out) {
            let truth = inst.truth().row(*p as usize);
            assert_eq!(v.hamming(&truth), 0, "player {p} recovered wrong vector");
        }
    }

    #[test]
    fn recovery_beyond_base_case() {
        // Force real recursion: large player/object sets, small budget so
        // the threshold c·B'·ln n is far below n.
        let inst = clone_world(256, 256, 4, 11);
        let oracle = Oracle::new(inst.truth());
        let board = Board::new();
        let behaviors = Behaviors::all_honest(inst.truth());
        let params = BlockParams::with_budget(4);
        let ctx = Ctx::new(&oracle, &board, &behaviors, Beacon::honest(5), &params);
        let players: Vec<u32> = (0..256).collect();
        let objects: Vec<u32> = (0..256).collect();
        let out = zero_radius(&ctx, &players, &objects, 4, &[2]);
        let mut wrong = 0;
        for (p, v) in players.iter().zip(&out) {
            if v.hamming(&inst.truth().row(*p as usize)) != 0 {
                wrong += 1;
            }
        }
        assert_eq!(wrong, 0, "{wrong}/256 players recovered wrong vectors");
        // Budget: per-player probes bounded well below probing everything.
        let max = oracle.ledger().max();
        assert!(
            max < 256,
            "recursion should beat probe-everything; max probes {max}"
        );
    }

    #[test]
    fn probes_scale_with_bprime_not_n() {
        let inst = clone_world(512, 512, 2, 13);
        let oracle = Oracle::new(inst.truth());
        let board = Board::new();
        let behaviors = Behaviors::all_honest(inst.truth());
        let params = BlockParams::with_budget(2);
        let ctx = Ctx::new(&oracle, &board, &behaviors, Beacon::honest(9), &params);
        let players: Vec<u32> = (0..512).collect();
        let objects: Vec<u32> = (0..512).collect();
        zero_radius(&ctx, &players, &objects, 2, &[3]);
        let bound = (8.0 * 2.0 * (512f64).ln() * (512f64).ln()) as u64; // c·B'·ln²n slack
        assert!(
            oracle.ledger().max() <= bound,
            "max probes {} exceeds O(B' log² n) slack {}",
            oracle.ledger().max(),
            bound
        );
    }

    #[test]
    fn outputs_are_posted_on_board() {
        let inst = clone_world(32, 32, 2, 5);
        let oracle = Oracle::new(inst.truth());
        let board = Board::new();
        let behaviors = Behaviors::all_honest(inst.truth());
        let params = BlockParams::with_budget(8);
        let ctx = Ctx::new(&oracle, &board, &behaviors, Beacon::honest(2), &params);
        let players: Vec<u32> = (0..32).collect();
        let objects: Vec<u32> = (0..32).collect();
        zero_radius(&ctx, &players, &objects, 8, &[7, 7]);
        let scope = scope_id(&[7, 7, tags::ZR_PARTITION]);
        assert_eq!(board.vectors(scope).len(), 32);
    }

    #[test]
    fn tolerates_inverting_minority() {
        let inst = clone_world(96, 96, 2, 17);
        // 6 dishonest inverters ≈ n/(3B) with B≈5.
        let dishonest = Corruption::Count { count: 6 }.select(&inst, 1);
        let behaviors = Behaviors::new(inst.truth(), dishonest, &Inverter);
        let oracle = Oracle::new(inst.truth());
        let board = Board::new();
        let params = BlockParams::with_budget(8);
        let ctx = Ctx::new(&oracle, &board, &behaviors, Beacon::honest(3), &params);
        let players: Vec<u32> = (0..96).collect();
        let objects: Vec<u32> = (0..96).collect();
        let out = zero_radius(&ctx, &players, &objects, 8, &[4]);
        for &p in &players {
            if !behaviors.is_dishonest(p) {
                let d = out[p as usize].hamming(&inst.truth().row(p as usize));
                assert_eq!(d, 0, "honest player {p} corrupted by inverters");
            }
        }
    }

    #[test]
    fn empty_objects_total() {
        let inst = clone_world(8, 8, 1, 1);
        let oracle = Oracle::new(inst.truth());
        let board = Board::new();
        let behaviors = Behaviors::all_honest(inst.truth());
        let params = BlockParams::default();
        let ctx = Ctx::new(&oracle, &board, &behaviors, Beacon::honest(1), &params);
        let out = zero_radius(&ctx, &[0, 1, 2], &[], 4, &[9]);
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|v| v.is_empty()));
    }

    #[test]
    fn deterministic_under_same_beacon() {
        let inst = clone_world(128, 128, 4, 23);
        let players: Vec<u32> = (0..128).collect();
        let objects: Vec<u32> = (0..128).collect();
        let run = || {
            let oracle = Oracle::new(inst.truth());
            let board = Board::new();
            let behaviors = Behaviors::all_honest(inst.truth());
            let params = BlockParams::with_budget(4);
            let ctx = Ctx::new(&oracle, &board, &behaviors, Beacon::honest(77), &params);
            zero_radius(&ctx, &players, &objects, 4, &[5])
        };
        let a = run();
        let b = run();
        for (x, y) in a.iter().zip(&b) {
            assert!(x.bits_eq(y));
        }
    }
}
