//! Candidate-selection tournaments: `RSelect` (Figure 1) and the
//! reconstructed `Select`.

use byzscore_bitset::{disagreement_indices, BitVec, Bits};
use byzscore_random::choose_k;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;

use crate::Ctx;

/// `RSelect(w₁, …, w_k)_p` — Figure 1, top block (Theorem 3).
///
/// For every pair of surviving candidates, probe `Θ(log n)` random objects
/// on which they differ; a candidate that agrees with at least 2/3 of the
/// probed objects eliminates its opponent. Any survivor is returned (its
/// index into `candidates`).
///
/// `objects[i]` maps candidate coordinate `i` to a global object id, so the
/// same routine serves full-length candidates (`objects = 0..n`) and
/// sample-restricted candidates. Probes are charged to `player`.
///
/// Guarantee (Theorem 3): with high probability the output `w` satisfies
/// `|v(p) − w| ≤ O(|v(p) − w*|)` for the best candidate `w*`, using
/// `O(k² log n)` probes.
pub fn rselect(
    ctx: &Ctx<'_>,
    player: u32,
    candidates: &[BitVec],
    objects: &[u32],
    rng: &mut SmallRng,
) -> usize {
    assert!(
        !candidates.is_empty(),
        "rselect needs at least one candidate"
    );
    let sample = (ctx.params.c_rselect * ctx.ln_n()).ceil() as usize;
    let threshold = ctx.params.rselect_threshold;
    let k = candidates.len();
    let mut alive = vec![true; k];

    for i in 0..k {
        if !alive[i] {
            continue;
        }
        for j in (i + 1)..k {
            if !alive[j] || !alive[i] {
                break;
            }
            let diff = candidates[i].diff_indices(&candidates[j]);
            if diff.is_empty() {
                alive[j] = false; // exact duplicate
                continue;
            }
            let t = sample.min(diff.len()).max(1);
            let picks = choose_k(rng, diff.len(), t);
            let mut agree_i = 0usize;
            for &x in &picks {
                let coord = diff[x as usize] as usize;
                let truth = ctx.oracle.probe(player, objects[coord]);
                if candidates[i].get(coord) == truth {
                    agree_i += 1;
                }
            }
            let agree_j = t - agree_i; // complementary on the diff set
            if agree_i as f64 >= threshold * t as f64 {
                alive[j] = false;
            } else if agree_j as f64 >= threshold * t as f64 {
                alive[i] = false;
            }
            // Otherwise both survive this pairing (the paper keeps both).
        }
    }

    alive
        .iter()
        .position(|&a| a)
        .expect("at least one candidate survives")
}

/// Incremental [`rselect`]: the same tournament, driven one candidate at a
/// time as the guess loop produces them, so only the *surviving* candidates
/// stay resident instead of the full `k × m` matrix.
///
/// # Replay contract
///
/// The batch loop visits pairs `(i, j)` in lexicographic order with two
/// quirks that this machine reproduces exactly (pinned by
/// `streaming_replays_batch_draw_for_draw`):
///
/// * a **dead `j` breaks** the inner loop (it does not `continue`), so
///   later pairs `(i, j')` with `j' > j` are skipped for this `i`;
/// * a **duplicate `j`** (`diff` empty) dies without an RNG draw and the
///   inner loop continues.
///
/// The only way the batch traversal depends on the final candidate count
/// `k` is through the loop bounds. The machine therefore advances the
/// cursor until the next pair would need a candidate that has not arrived
/// yet, stalls there, and resumes on [`StreamingRSelect::push`];
/// [`StreamingRSelect::finish`] resolves the remaining bound checks. Every
/// pair decision and every `choose_k` draw happens in the batch order, so
/// the RNG stream, the probe sequence, and the winner are bit-identical to
/// [`rselect`] over the full candidate list.
///
/// Eliminated candidates are freed immediately — they are never probed or
/// compared again, and the winner is the first *alive* index — which is
/// what caps residency. [`StreamingRSelect::peak_bytes`] reports the
/// high-water mark of resident candidate storage.
pub struct StreamingRSelect {
    sample: usize,
    threshold: f64,
    cands: Vec<Option<BitVec>>,
    alive: Vec<bool>,
    i: usize,
    j: usize,
    resident_bytes: u64,
    peak_bytes: u64,
}

fn candidate_bytes(v: &BitVec) -> u64 {
    std::mem::size_of_val(v.words()) as u64
}

impl StreamingRSelect {
    /// Start an empty tournament under `ctx`'s RSelect constants.
    pub fn new(ctx: &Ctx<'_>) -> StreamingRSelect {
        StreamingRSelect {
            sample: (ctx.params.c_rselect * ctx.ln_n()).ceil() as usize,
            threshold: ctx.params.rselect_threshold,
            cands: Vec::new(),
            alive: Vec::new(),
            i: 0,
            j: 1,
            resident_bytes: 0,
            peak_bytes: 0,
        }
    }

    /// Candidates accepted so far.
    pub fn len(&self) -> usize {
        self.alive.len()
    }

    /// True before the first [`StreamingRSelect::push`].
    pub fn is_empty(&self) -> bool {
        self.alive.is_empty()
    }

    /// High-water mark of resident candidate bytes.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }

    /// Rearm the machine for a fresh tournament under `ctx`'s constants:
    /// cursor, liveness, and byte accounting restart from scratch while
    /// the candidate-slot allocation is retained. This is the pooling
    /// hook for callers that run many tournaments back to back — e.g. the
    /// per-shard select state a resident service session reuses across
    /// recomputes — and a reset machine replays a fresh one draw for draw
    /// (`reset_machine_replays_fresh_machine` pins this).
    pub fn reset(&mut self, ctx: &Ctx<'_>) {
        self.sample = (ctx.params.c_rselect * ctx.ln_n()).ceil() as usize;
        self.threshold = ctx.params.rselect_threshold;
        self.cands.clear();
        self.alive.clear();
        self.i = 0;
        self.j = 1;
        self.resident_bytes = 0;
        self.peak_bytes = 0;
    }

    /// Feed the next candidate and advance the tournament as far as the
    /// arrived prefix allows. Probes are charged to `player` and pair
    /// samples are drawn from `rng`, exactly as [`rselect`] would.
    pub fn push(
        &mut self,
        ctx: &Ctx<'_>,
        player: u32,
        candidate: BitVec,
        objects: &[u32],
        rng: &mut SmallRng,
    ) {
        self.resident_bytes += candidate_bytes(&candidate);
        self.peak_bytes = self.peak_bytes.max(self.resident_bytes);
        self.cands.push(Some(candidate));
        self.alive.push(true);
        self.advance(ctx, player, objects, rng, false);
    }

    /// Declare the candidate list complete, run the tournament to the end,
    /// and return the winning candidate (first surviving index, as in
    /// [`rselect`]) together with its index.
    pub fn finish(
        mut self,
        ctx: &Ctx<'_>,
        player: u32,
        objects: &[u32],
        rng: &mut SmallRng,
    ) -> (usize, BitVec) {
        self.finish_round(ctx, player, objects, rng)
    }

    /// [`StreamingRSelect::finish`] without consuming the machine, so a
    /// pool owner can [`StreamingRSelect::reset`] and reuse it. The
    /// machine is spent until reset (pushing after `finish_round` is a
    /// contract violation, as it would be after `finish`).
    pub fn finish_round(
        &mut self,
        ctx: &Ctx<'_>,
        player: u32,
        objects: &[u32],
        rng: &mut SmallRng,
    ) -> (usize, BitVec) {
        assert!(
            !self.cands.is_empty(),
            "rselect needs at least one candidate"
        );
        self.advance(ctx, player, objects, rng, true);
        let winner = self
            .alive
            .iter()
            .position(|&a| a)
            .expect("at least one candidate survives");
        let vector = self.cands[winner].take().expect("winner is resident");
        (winner, vector)
    }

    fn kill(&mut self, x: usize) {
        self.alive[x] = false;
        if let Some(v) = self.cands[x].take() {
            self.resident_bytes -= candidate_bytes(&v);
        }
    }

    /// Run the cursor forward. With `finished == false`, stop when the next
    /// pair needs a candidate beyond the arrived prefix; with `finished ==
    /// true`, treat the arrived count as the batch loop's `k`.
    fn advance(
        &mut self,
        ctx: &Ctx<'_>,
        player: u32,
        objects: &[u32],
        rng: &mut SmallRng,
        finished: bool,
    ) {
        let arrived = self.cands.len();
        loop {
            if self.i >= arrived {
                return; // outer loop exhausted (so far)
            }
            if !self.alive[self.i] {
                // Batch: outer-loop `continue` / inner-loop break on dead i.
                self.i += 1;
                self.j = self.i + 1;
                continue;
            }
            if self.j >= arrived {
                if !finished {
                    return; // stall: pair (i, j) needs the next candidate
                }
                // j reached k: inner loop over, next i.
                self.i += 1;
                self.j = self.i + 1;
                continue;
            }
            if !self.alive[self.j] {
                // Batch breaks the inner loop at a dead j.
                self.i += 1;
                self.j = self.i + 1;
                continue;
            }
            let ci = self.cands[self.i].as_ref().expect("alive i resident");
            let cj = self.cands[self.j].as_ref().expect("alive j resident");
            let diff = ci.diff_indices(cj);
            if diff.is_empty() {
                let j = self.j;
                self.kill(j); // exact duplicate, no draw
                self.j += 1;
                continue;
            }
            let t = self.sample.min(diff.len()).max(1);
            let picks = choose_k(rng, diff.len(), t);
            let mut agree_i = 0usize;
            for &x in &picks {
                let coord = diff[x as usize] as usize;
                let truth = ctx.oracle.probe(player, objects[coord]);
                if ci.get(coord) == truth {
                    agree_i += 1;
                }
            }
            let agree_j = t - agree_i; // complementary on the diff set
            if agree_i as f64 >= self.threshold * t as f64 {
                let j = self.j;
                self.kill(j);
            } else if agree_j as f64 >= self.threshold * t as f64 {
                let i = self.i;
                self.kill(i);
            }
            self.j += 1;
        }
    }
}

/// `Select(V, D)_p` — the deterministic tournament Figure 1 references but
/// does not spell out. Reconstruction (DESIGN.md §4.2): *batched
/// score-and-eliminate*, linear in `|V|`:
///
/// 1. While more than one candidate survives, compute the disagreement set
///    of the survivors and probe a batch of `ceil(c_select · ln n)` objects
///    from it (seeded deterministically from `rng`).
/// 2. Score every survivor by agreement with the probed truth; drop all
///    candidates scoring more than `select_margin · batch` below the best,
///    and at minimum the single worst (progress guarantee).
///
/// The margin keeps the within-`D` candidate alive (it loses at most its
/// distance in expectation) while far candidates lose quickly; total probes
/// are `O(|V| · log n)` — linear, as Theorem 5's probe accounting needs.
/// Returns the index of the selected candidate in `candidates`.
pub fn select_among(
    ctx: &Ctx<'_>,
    player: u32,
    candidates: &[BitVec],
    objects: &[u32],
    rng: &mut SmallRng,
) -> usize {
    assert!(
        !candidates.is_empty(),
        "select needs at least one candidate"
    );
    let batch = (ctx.params.c_select * ctx.ln_n()).ceil() as usize;
    let margin = ctx.params.select_margin;

    // Dedup identical candidates first: votes produce many duplicates and
    // k² duplicate pairings would waste probes.
    let mut reps: Vec<usize> = Vec::new();
    'outer: for (i, c) in candidates.iter().enumerate() {
        for &r in &reps {
            if candidates[r].bits_eq(c) {
                continue 'outer;
            }
        }
        reps.push(i);
    }

    let mut cumulative: Vec<i64> = vec![0; reps.len()];
    let mut alive: Vec<usize> = (0..reps.len()).collect();

    while alive.len() > 1 {
        let views: Vec<&BitVec> = alive.iter().map(|&a| &candidates[reps[a]]).collect();
        let disputed = disagreement_indices(&views);
        if disputed.is_empty() {
            break;
        }
        let t = batch.min(disputed.len()).max(1);
        let mut picks = disputed;
        picks.shuffle(rng);
        picks.truncate(t);

        let mut scores: Vec<usize> = vec![0; alive.len()];
        for &coord in &picks {
            let truth = ctx.oracle.probe(player, objects[coord as usize]);
            for (s, &a) in scores.iter_mut().zip(&alive) {
                if candidates[reps[a]].get(coord as usize) == truth {
                    *s += 1;
                }
            }
        }
        for (&a, &s) in alive.iter().zip(&scores) {
            cumulative[a] += s as i64;
        }

        let best = *scores.iter().max().expect("non-empty");
        let cut = best.saturating_sub((margin * t as f64).ceil() as usize);
        let before = alive.len();
        let survivors: Vec<usize> = alive
            .iter()
            .zip(&scores)
            .filter(|&(_, &s)| s >= cut)
            .map(|(&a, _)| a)
            .collect();
        alive = if survivors.len() < before {
            survivors
        } else {
            // No clear loser: drop the single worst (ties: latest index) so
            // the loop always progresses.
            let worst_pos = scores
                .iter()
                .enumerate()
                .min_by_key(|&(pos, &s)| (s, std::cmp::Reverse(pos)))
                .map(|(pos, _)| pos)
                .expect("non-empty");
            alive
                .iter()
                .enumerate()
                .filter(|&(pos, _)| pos != worst_pos)
                .map(|(_, &a)| a)
                .collect()
        };
    }

    let winner = alive
        .into_iter()
        .max_by_key(|&a| cumulative[a])
        .expect("one candidate remains");
    reps[winner]
}

/// Convenience: run [`select_among`] and clone out the winning vector.
pub fn select_vector(
    ctx: &Ctx<'_>,
    player: u32,
    candidates: &[BitVec],
    objects: &[u32],
    rng: &mut SmallRng,
) -> BitVec {
    candidates[select_among(ctx, player, candidates, objects, rng)].clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BlockParams;
    use byzscore_adversary::Behaviors;
    use byzscore_bitset::BitMatrix;
    use byzscore_board::{Board, Oracle};
    use byzscore_random::Beacon;
    use rand::SeedableRng;

    /// Build a 1-player world whose truth row is `truth`, plus harness.
    fn world(truth: BitVec) -> (BitMatrix, BlockParams) {
        (BitMatrix::from_rows(&[truth]), BlockParams::default())
    }

    fn all_objects(n: usize) -> Vec<u32> {
        (0..n as u32).collect()
    }

    #[test]
    fn rselect_picks_exact_match() {
        let mut rng = SmallRng::seed_from_u64(5);
        let truth = BitVec::random(&mut rng, 256);
        let mut far = truth.clone();
        far.flip_random_distinct(&mut rng, 120);
        let mut near = truth.clone();
        near.flip_random_distinct(&mut rng, 2);
        let (m, params) = world(truth.clone());
        let oracle = Oracle::new(&m);
        let board = Board::new();
        let behaviors = Behaviors::all_honest(&m);
        let ctx = Ctx::new(&oracle, &board, &behaviors, Beacon::honest(1), &params);
        let cands = vec![far, truth.clone(), near];
        let mut prng = SmallRng::seed_from_u64(9);
        let won = rselect(&ctx, 0, &cands, &all_objects(256), &mut prng);
        let d = cands[won].hamming(&truth);
        assert!(d <= 2, "rselect picked a candidate at distance {d}");
    }

    #[test]
    fn rselect_single_candidate_costs_nothing() {
        let (m, params) = world(BitVec::zeros(16));
        let oracle = Oracle::new(&m);
        let board = Board::new();
        let behaviors = Behaviors::all_honest(&m);
        let ctx = Ctx::new(&oracle, &board, &behaviors, Beacon::honest(1), &params);
        let mut prng = SmallRng::seed_from_u64(1);
        assert_eq!(
            rselect(&ctx, 0, &[BitVec::ones(16)], &all_objects(16), &mut prng),
            0
        );
        assert_eq!(oracle.ledger().total(), 0);
    }

    #[test]
    fn rselect_dedups_duplicates_free() {
        let (m, params) = world(BitVec::zeros(64));
        let oracle = Oracle::new(&m);
        let board = Board::new();
        let behaviors = Behaviors::all_honest(&m);
        let ctx = Ctx::new(&oracle, &board, &behaviors, Beacon::honest(1), &params);
        let mut prng = SmallRng::seed_from_u64(2);
        let c = BitVec::zeros(64);
        let won = rselect(
            &ctx,
            0,
            &[c.clone(), c.clone(), c],
            &all_objects(64),
            &mut prng,
        );
        assert_eq!(won, 0);
        assert_eq!(
            oracle.ledger().total(),
            0,
            "duplicates eliminated without probes"
        );
    }

    #[test]
    fn rselect_probe_complexity_quadratic_logn() {
        let mut rng = SmallRng::seed_from_u64(7);
        let truth = BitVec::random(&mut rng, 512);
        let (m, params) = world(truth.clone());
        let oracle = Oracle::new(&m);
        let board = Board::new();
        let behaviors = Behaviors::all_honest(&m);
        let ctx = Ctx::new(&oracle, &board, &behaviors, Beacon::honest(1), &params);
        let k = 8;
        let cands: Vec<BitVec> = (0..k)
            .map(|i| {
                let mut v = truth.clone();
                v.flip_random_distinct(&mut rng, 10 * i);
                v
            })
            .collect();
        let mut prng = SmallRng::seed_from_u64(3);
        rselect(&ctx, 0, &cands, &all_objects(512), &mut prng);
        let bound = (k * k) as u64 * (ctx.params.c_rselect * ctx.ln_n()).ceil() as u64;
        assert!(
            oracle.ledger().total() <= bound,
            "probes {} exceed k²·sample {}",
            oracle.ledger().total(),
            bound
        );
    }

    /// The streaming machine must replay the batch tournament draw for
    /// draw: same winner, same probe count, and the private RNG left in
    /// the same state (checked by drawing one more value from each).
    #[test]
    fn streaming_replays_batch_draw_for_draw() {
        use rand::RngCore;
        let mut rng = SmallRng::seed_from_u64(17);
        let truth = BitVec::random(&mut rng, 300);
        let (m, params) = world(truth.clone());
        let oracle_a = Oracle::new(&m);
        let oracle_b = Oracle::new(&m);
        let board = Board::new();
        let behaviors = Behaviors::all_honest(&m);
        let objects = all_objects(300);

        // Candidate shapes that exercise every branch: duplicates (no
        // draw), a far candidate (eliminated), a near one, the truth, and
        // duplicates of earlier entries appearing late.
        let mut far = truth.clone();
        far.flip_random_distinct(&mut rng, 140);
        let mut near = truth.clone();
        near.flip_random_distinct(&mut rng, 3);
        let mut mid = truth.clone();
        mid.flip_random_distinct(&mut rng, 40);
        let cases: Vec<Vec<BitVec>> = vec![
            vec![truth.clone()],
            vec![far.clone(), truth.clone()],
            vec![far.clone(), far.clone(), near.clone()],
            vec![
                far.clone(),
                truth.clone(),
                near.clone(),
                far.clone(),
                mid.clone(),
                near.clone(),
            ],
            vec![mid.clone(), mid.clone(), mid.clone()],
            vec![near.clone(), far.clone(), mid.clone(), truth.clone()],
        ];

        for (case_no, cands) in cases.into_iter().enumerate() {
            let ctx_a = Ctx::new(&oracle_a, &board, &behaviors, Beacon::honest(1), &params);
            let ctx_b = Ctx::new(&oracle_b, &board, &behaviors, Beacon::honest(1), &params);
            let before_a = oracle_a.ledger().total();
            let before_b = oracle_b.ledger().total();

            let mut batch_rng = SmallRng::seed_from_u64(1000 + case_no as u64);
            let won = rselect(&ctx_a, 0, &cands, &objects, &mut batch_rng);

            let mut stream_rng = SmallRng::seed_from_u64(1000 + case_no as u64);
            let mut sel = StreamingRSelect::new(&ctx_b);
            for c in &cands {
                sel.push(&ctx_b, 0, c.clone(), &objects, &mut stream_rng);
            }
            let (s_won, s_vec) = sel.finish(&ctx_b, 0, &objects, &mut stream_rng);

            assert_eq!(won, s_won, "case {case_no}: winner index diverged");
            assert!(
                s_vec.bits_eq(&cands[won]),
                "case {case_no}: winner vector diverged"
            );
            assert_eq!(
                oracle_a.ledger().total() - before_a,
                oracle_b.ledger().total() - before_b,
                "case {case_no}: probe counts diverged"
            );
            assert_eq!(
                batch_rng.next_u64(),
                stream_rng.next_u64(),
                "case {case_no}: RNG streams diverged (extra or missing draws)"
            );
        }
    }

    /// Residency peaks at the surviving prefix, not the full list: pushing
    /// many duplicates of one vector keeps exactly one resident.
    #[test]
    fn streaming_frees_eliminated_candidates() {
        let (m, params) = world(BitVec::zeros(128));
        let oracle = Oracle::new(&m);
        let board = Board::new();
        let behaviors = Behaviors::all_honest(&m);
        let ctx = Ctx::new(&oracle, &board, &behaviors, Beacon::honest(1), &params);
        let objects = all_objects(128);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut sel = StreamingRSelect::new(&ctx);
        let c = BitVec::zeros(128);
        let per = (c.words().len() * 8) as u64;
        for _ in 0..16 {
            sel.push(&ctx, 0, c.clone(), &objects, &mut rng);
        }
        // A duplicate dies the moment the pair (0, j) is visited, so at
        // most two copies are ever resident at once.
        assert_eq!(sel.peak_bytes(), 2 * per);
        let (won, _) = sel.finish(&ctx, 0, &objects, &mut rng);
        assert_eq!(won, 0);
        assert_eq!(oracle.ledger().total(), 0);
    }

    /// A reset machine must be indistinguishable from a fresh one: same
    /// winner, same probes, same RNG stream — the contract the pooled
    /// per-shard reuse in the service layer depends on.
    #[test]
    fn reset_machine_replays_fresh_machine() {
        use rand::RngCore;
        let mut rng = SmallRng::seed_from_u64(23);
        let truth = BitVec::random(&mut rng, 200);
        let (m, params) = world(truth.clone());
        // Uncached oracles: the burn run would otherwise memoize probes
        // and skew the probe-count comparison below.
        let oracle_a = Oracle::new_uncached(&m);
        let oracle_b = Oracle::new_uncached(&m);
        let board = Board::new();
        let behaviors = Behaviors::all_honest(&m);
        let objects = all_objects(200);
        let mut far = truth.clone();
        far.flip_random_distinct(&mut rng, 90);
        let mut near = truth.clone();
        near.flip_random_distinct(&mut rng, 5);
        let cands = vec![far, near, truth.clone()];

        let ctx_a = Ctx::new(&oracle_a, &board, &behaviors, Beacon::honest(1), &params);
        let ctx_b = Ctx::new(&oracle_b, &board, &behaviors, Beacon::honest(1), &params);

        // Burn one tournament on the pooled machine, then reset it.
        let mut pooled = StreamingRSelect::new(&ctx_b);
        let mut burn_rng = SmallRng::seed_from_u64(99);
        for c in &cands {
            pooled.push(&ctx_b, 0, c.clone(), &objects, &mut burn_rng);
        }
        pooled.finish_round(&ctx_b, 0, &objects, &mut burn_rng);
        pooled.reset(&ctx_b);
        assert_eq!(pooled.peak_bytes(), 0, "accounting restarts on reset");
        let burned_probes = oracle_b.ledger().total();

        let mut fresh = StreamingRSelect::new(&ctx_a);
        let mut rng_a = SmallRng::seed_from_u64(7);
        let mut rng_b = SmallRng::seed_from_u64(7);
        let before_a = oracle_a.ledger().total();
        for c in &cands {
            fresh.push(&ctx_a, 0, c.clone(), &objects, &mut rng_a);
            pooled.push(&ctx_b, 0, c.clone(), &objects, &mut rng_b);
        }
        let (won_a, vec_a) = fresh.finish_round(&ctx_a, 0, &objects, &mut rng_a);
        let (won_b, vec_b) = pooled.finish_round(&ctx_b, 0, &objects, &mut rng_b);
        assert_eq!(won_a, won_b, "winner diverged after reset");
        assert!(vec_a.bits_eq(&vec_b), "winner vector diverged after reset");
        assert_eq!(fresh.peak_bytes(), pooled.peak_bytes());
        assert_eq!(
            oracle_a.ledger().total() - before_a,
            oracle_b.ledger().total() - burned_probes,
            "probe counts diverged after reset"
        );
        assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "RNG streams diverged");
    }

    #[test]
    fn select_picks_close_candidate() {
        let mut rng = SmallRng::seed_from_u64(11);
        let truth = BitVec::random(&mut rng, 400);
        let (m, params) = world(truth.clone());
        let oracle = Oracle::new(&m);
        let board = Board::new();
        let behaviors = Behaviors::all_honest(&m);
        let ctx = Ctx::new(&oracle, &board, &behaviors, Beacon::honest(1), &params);
        let mut cands: Vec<BitVec> = (0..12)
            .map(|_| {
                let mut v = truth.clone();
                v.flip_random_distinct(&mut rng, 150);
                v
            })
            .collect();
        let mut near = truth.clone();
        near.flip_random_distinct(&mut rng, 4);
        cands.push(near);
        let mut prng = SmallRng::seed_from_u64(4);
        let won = select_among(&ctx, 0, &cands, &all_objects(400), &mut prng);
        let d = cands[won].hamming(&truth);
        assert!(d <= 30, "select picked distance {d}");
    }

    #[test]
    fn select_linear_probe_cost() {
        let mut rng = SmallRng::seed_from_u64(13);
        let truth = BitVec::random(&mut rng, 600);
        let (m, params) = world(truth.clone());
        let oracle = Oracle::new(&m);
        let board = Board::new();
        let behaviors = Behaviors::all_honest(&m);
        let ctx = Ctx::new(&oracle, &board, &behaviors, Beacon::honest(1), &params);
        let k = 20;
        let cands: Vec<BitVec> = (0..k)
            .map(|_| {
                let mut v = truth.clone();
                v.flip_random_distinct(&mut rng, 60);
                v
            })
            .collect();
        let mut prng = SmallRng::seed_from_u64(5);
        select_among(&ctx, 0, &cands, &all_objects(600), &mut prng);
        // Each round drops ≥ 1 candidate, so ≤ (k−1) batches.
        let bound = (k as u64) * (ctx.params.c_select * ctx.ln_n()).ceil() as u64;
        assert!(
            oracle.ledger().total() <= bound,
            "probes {} exceed linear bound {}",
            oracle.ledger().total(),
            bound
        );
    }

    #[test]
    fn select_vector_returns_winner() {
        let (m, params) = world(BitVec::ones(32));
        let oracle = Oracle::new(&m);
        let board = Board::new();
        let behaviors = Behaviors::all_honest(&m);
        let ctx = Ctx::new(&oracle, &board, &behaviors, Beacon::honest(1), &params);
        let mut prng = SmallRng::seed_from_u64(6);
        let won = select_vector(
            &ctx,
            0,
            &[BitVec::zeros(32), BitVec::ones(32)],
            &all_objects(32),
            &mut prng,
        );
        assert_eq!(won.count_ones(), 32);
    }

    #[test]
    fn select_on_restricted_objects_probes_globally() {
        // Candidates over a 3-object subset {5, 9, 20} of a 32-object world.
        let mut truth = BitVec::zeros(32);
        truth.set(9, true);
        let (m, params) = world(truth);
        let oracle = Oracle::new(&m);
        let board = Board::new();
        let behaviors = Behaviors::all_honest(&m);
        let ctx = Ctx::new(&oracle, &board, &behaviors, Beacon::honest(1), &params);
        let objects = vec![5u32, 9, 20];
        let good = BitVec::from_bools(&[false, true, false]);
        let bad = BitVec::from_bools(&[true, false, true]);
        let mut prng = SmallRng::seed_from_u64(8);
        let won = select_among(&ctx, 0, &[bad, good.clone()], &objects, &mut prng);
        assert_eq!(won, 1);
    }
}
