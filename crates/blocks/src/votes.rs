//! Vote tallies over claimed vectors.

use std::collections::HashMap;

use byzscore_bitset::{BitVec, Bits};

/// A tally of identical claimed vectors.
#[derive(Clone, Debug)]
pub struct VoteTally {
    /// Distinct vectors with their supporter counts, sorted by descending
    /// support then ascending first-seen order (deterministic).
    pub entries: Vec<(BitVec, usize)>,
}

impl VoteTally {
    /// Tally `vectors` by content (hash-grouped, equality-checked, so hash
    /// collisions cannot merge different vectors).
    pub fn tally<'v, I>(vectors: I) -> Self
    where
        I: IntoIterator<Item = &'v BitVec>,
    {
        let mut order: Vec<(BitVec, usize, usize)> = Vec::new(); // (rep, count, first_seen)
        let mut index: HashMap<u64, Vec<usize>> = HashMap::new();
        for (seen, v) in vectors.into_iter().enumerate() {
            let h = v.content_hash();
            let bucket = index.entry(h).or_default();
            if let Some(&slot) = bucket.iter().find(|&&slot| order[slot].0.bits_eq(v)) {
                order[slot].1 += 1;
            } else {
                bucket.push(order.len());
                order.push((v.clone(), 1, seen));
            }
        }
        order.sort_by(|a, b| b.1.cmp(&a.1).then(a.2.cmp(&b.2)));
        VoteTally {
            entries: order.into_iter().map(|(v, c, _)| (v, c)).collect(),
        }
    }

    /// Vectors supported by at least `threshold` voters.
    pub fn at_least(&self, threshold: usize) -> Vec<BitVec> {
        self.entries
            .iter()
            .take_while(|(_, c)| *c >= threshold)
            .map(|(v, _)| v.clone())
            .collect()
    }

    /// The `k` most-supported vectors.
    pub fn top_k(&self, k: usize) -> Vec<BitVec> {
        self.entries
            .iter()
            .take(k)
            .map(|(v, _)| v.clone())
            .collect()
    }

    /// Total number of votes tallied.
    pub fn total_votes(&self) -> usize {
        self.entries.iter().map(|(_, c)| c).sum()
    }
}

/// The *popular* vectors of `ZeroRadius` step 4 / `SmallRadius` step 2:
/// distinct vectors supported by ≥ `threshold` voters. If none reaches the
/// threshold (possible outside the exact-clone regime the theorems assume),
/// falls back to the `fallback_k` most-supported vectors so the caller
/// always has candidates — a liveness guard documented in DESIGN.md §4.3.
pub fn popular_vectors(votes: &[BitVec], threshold: usize, fallback_k: usize) -> Vec<BitVec> {
    let tally = VoteTally::tally(votes.iter());
    let popular = tally.at_least(threshold.max(1));
    if popular.is_empty() {
        tally.top_k(fallback_k.max(1))
    } else {
        popular
    }
}

/// Candidate set for vote resolution: every vector meeting `threshold`
/// **plus** generosity up to the `cap` most-supported vectors.
///
/// The paper's concentration arguments make thresholding alone safe only at
/// asymptotic node sizes; at laptop scale a clone class can dip below
/// `|P''|/(2B')` supporters inside a small recursion node, silently dropping
/// the true vector and corrupting the whole class (DESIGN.md §4.9). Keeping
/// the top-`cap` by support fixes that without breaking the cost or
/// Byzantine analysis: resolution probing eliminates lying candidates
/// anyway, and `cap` bounds the probes exactly as the threshold bound did.
pub fn candidate_vectors(votes: &[BitVec], threshold: usize, cap: usize) -> Vec<BitVec> {
    let tally = VoteTally::tally(votes.iter());
    let popular_count = tally
        .entries
        .iter()
        .take_while(|(_, c)| *c >= threshold.max(1))
        .count();
    let keep = popular_count.max(cap.min(tally.entries.len())).max(1);
    tally.top_k(keep)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(bits: &[bool]) -> BitVec {
        BitVec::from_bools(bits)
    }

    #[test]
    fn tally_groups_identical() {
        let votes = [
            v(&[true, false]),
            v(&[true, false]),
            v(&[false, true]),
            v(&[true, false]),
        ];
        let t = VoteTally::tally(votes.iter());
        assert_eq!(t.entries.len(), 2);
        assert_eq!(t.entries[0].1, 3);
        assert_eq!(t.entries[1].1, 1);
        assert!(t.entries[0].0.bits_eq(&v(&[true, false])));
        assert_eq!(t.total_votes(), 4);
    }

    #[test]
    fn at_least_filters() {
        let votes = [v(&[true]), v(&[true]), v(&[false])];
        let t = VoteTally::tally(votes.iter());
        assert_eq!(t.at_least(2).len(), 1);
        assert_eq!(t.at_least(1).len(), 2);
        assert_eq!(t.at_least(3).len(), 0);
    }

    #[test]
    fn popular_falls_back_to_top_k() {
        let votes = vec![v(&[true]), v(&[false])];
        let pop = popular_vectors(&votes, 5, 1);
        assert_eq!(pop.len(), 1, "fallback keeps the single best");
        let pop2 = popular_vectors(&votes, 1, 1);
        assert_eq!(pop2.len(), 2, "threshold 1 keeps both");
    }

    #[test]
    fn deterministic_order_on_ties() {
        let votes = [v(&[true]), v(&[false])];
        let a = VoteTally::tally(votes.iter());
        let b = VoteTally::tally(votes.iter());
        assert!(a.entries[0].0.bits_eq(&b.entries[0].0));
        // First seen wins ties.
        assert!(a.entries[0].0.bits_eq(&v(&[true])));
    }

    #[test]
    fn empty_tally() {
        let t = VoteTally::tally(std::iter::empty());
        assert!(t.entries.is_empty());
        assert_eq!(t.total_votes(), 0);
        assert!(popular_vectors(&[], 1, 2).is_empty());
    }
}
