//! Property-based invariants of the Figure-1 building blocks.

use byzscore_adversary::Behaviors;
use byzscore_bitset::{BitMatrix, BitVec, Bits};
use byzscore_blocks::{rselect, select_among, zero_radius, BlockParams, Ctx, VoteTally};
use byzscore_board::{Board, Oracle};
use byzscore_random::Beacon;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `RSelect` always returns a valid index, never probes more than
    /// `k²·sample` objects, and never returns a candidate wildly worse than
    /// the best when the gap is decisive.
    #[test]
    fn rselect_is_total_and_bounded(seed in 0u64..500, k in 1usize..7, m in 64usize..300) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let truth_row = BitVec::random(&mut rng, m);
        // 64-row world so ln n gives realistic sample sizes; only row 0 is probed.
        let mut rows = vec![truth_row.clone()];
        rows.extend((1..64).map(|_| BitVec::random(&mut rng, m)));
        let truth = BitMatrix::from_rows(&rows);
        let oracle = Oracle::new(&truth);
        let board = Board::new();
        let behaviors = Behaviors::all_honest(&truth);
        let params = BlockParams::default();
        let ctx = Ctx::new(&oracle, &board, &behaviors, Beacon::honest(seed), &params);
        let cands: Vec<BitVec> = (0..k).map(|_| BitVec::random(&mut rng, m)).collect();
        let objects: Vec<u32> = (0..m as u32).collect();
        let mut prng = SmallRng::seed_from_u64(seed ^ 0xabcd);
        let won = rselect(&ctx, 0, &cands, &objects, &mut prng);
        prop_assert!(won < k);
        let bound = (k * k) as u64
            * (params.c_rselect * (truth.rows().max(2) as f64).ln()).ceil().max(1.0) as u64
            + (k * k) as u64;
        prop_assert!(oracle.ledger().count(0) <= bound.max(m as u64));
    }

    /// `Select` returns a valid index and, when one candidate is the exact
    /// truth and the rest are far, picks something close.
    #[test]
    fn select_finds_exact_match(seed in 0u64..500, k in 1usize..7, m in 96usize..300) {
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(17));
        let truth_row = BitVec::random(&mut rng, m);
        // 64-row world so ln n gives realistic sample sizes; only row 0 is probed.
        let mut rows = vec![truth_row.clone()];
        rows.extend((1..64).map(|_| BitVec::random(&mut rng, m)));
        let truth = BitMatrix::from_rows(&rows);
        let oracle = Oracle::new(&truth);
        let board = Board::new();
        let behaviors = Behaviors::all_honest(&truth);
        let params = BlockParams::default();
        let ctx = Ctx::new(&oracle, &board, &behaviors, Beacon::honest(seed), &params);
        let mut cands: Vec<BitVec> = (0..k)
            .map(|_| {
                let mut v = truth_row.clone();
                v.flip_random_distinct(&mut rng, m / 2);
                v
            })
            .collect();
        cands.push(truth_row.clone());
        let objects: Vec<u32> = (0..m as u32).collect();
        let mut prng = SmallRng::seed_from_u64(seed ^ 0x1234);
        let won = select_among(&ctx, 0, &cands, &objects, &mut prng);
        prop_assert!(won < cands.len());
        let d = cands[won].hamming(&truth_row);
        // The exact-match candidate survives every batch; anything chosen
        // over it must have scored equally on all probed coordinates.
        prop_assert!(d <= m / 4, "picked distance {d} of {m}");
    }

    /// `ZeroRadius` is total on arbitrary player/object subsets: outputs
    /// align with the player list, have the object-list length, and land on
    /// the board.
    #[test]
    fn zero_radius_shape_invariants(
        seed in 0u64..300,
        players_len in 1usize..40,
        objects_len in 0usize..60,
        bprime in 1usize..5,
    ) {
        let n = 48usize;
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(91));
        let truth = BitMatrix::random(&mut rng, n, 64);
        let oracle = Oracle::new(&truth);
        let board = Board::new();
        let behaviors = Behaviors::all_honest(&truth);
        let params = BlockParams::with_budget(bprime);
        let ctx = Ctx::new(&oracle, &board, &behaviors, Beacon::honest(seed), &params);
        let players: Vec<u32> = (0..players_len.min(n) as u32).collect();
        let objects: Vec<u32> = (0..objects_len.min(64) as u32).collect();
        let out = zero_radius(&ctx, &players, &objects, bprime, &[seed]);
        prop_assert_eq!(out.len(), players.len());
        for v in &out {
            prop_assert_eq!(v.len(), objects.len());
        }
    }

    /// Vote tallies: counts sum to the number of votes; entries are
    /// distinct; order is by descending support.
    #[test]
    fn vote_tally_invariants(seed in 0u64..500, votes_n in 0usize..40, len in 1usize..32) {
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(7));
        // Low-entropy vectors so duplicates actually occur.
        let pool: Vec<BitVec> = (0..4).map(|_| BitVec::random(&mut rng, len)).collect();
        let votes: Vec<BitVec> = (0..votes_n)
            .map(|i| pool[(seed as usize + i) % pool.len()].clone())
            .collect();
        let tally = VoteTally::tally(votes.iter());
        prop_assert_eq!(tally.total_votes(), votes_n);
        for w in tally.entries.windows(2) {
            prop_assert!(w[0].1 >= w[1].1, "entries not sorted by support");
            prop_assert!(!w[0].0.bits_eq(&w[1].0), "duplicate entry");
        }
    }
}
