//! Behavioural tests for `SmallRadius` (Theorem 5): error `O(D)` under the
//! small-diameter cluster assumption, honest and Byzantine.

use byzscore_adversary::{Behaviors, ClusterHijacker, Corruption, Inverter, RandomLiar};
use byzscore_bitset::Bits;
use byzscore_blocks::{small_radius, BlockParams, Ctx};
use byzscore_board::{Board, Oracle};
use byzscore_model::{Balance, Instance, Workload};
use byzscore_random::Beacon;

fn planted(
    players: usize,
    objects: usize,
    clusters: usize,
    diameter: usize,
    seed: u64,
) -> Instance {
    Workload::PlantedClusters {
        players,
        objects,
        clusters,
        diameter,
        balance: Balance::Even,
    }
    .generate(seed)
}

fn run_small_radius(
    inst: &Instance,
    behaviors: &Behaviors<'_>,
    budget: usize,
    diameter: usize,
    seed: u64,
) -> (Vec<byzscore_bitset::BitVec>, u64) {
    let oracle = Oracle::new(inst.truth());
    let board = Board::new();
    let params = BlockParams::with_budget(budget);
    let ctx = Ctx::new(&oracle, &board, behaviors, Beacon::honest(seed), &params);
    let players: Vec<u32> = (0..inst.players() as u32).collect();
    let objects: Vec<u32> = (0..inst.objects() as u32).collect();
    let out = small_radius(&ctx, &players, &objects, diameter, &[42]);
    let max_honest = oracle.snapshot().max_where(&behaviors.honest_mask());
    (out, max_honest)
}

#[test]
fn honest_error_is_order_d() {
    let d = 8;
    let inst = planted(128, 256, 4, d, 3);
    let behaviors = Behaviors::all_honest(inst.truth());
    let (out, _) = run_small_radius(&inst, &behaviors, 4, d, 7);
    let mut worst = 0;
    for (p, w) in out.iter().enumerate() {
        worst = worst.max(w.hamming(&inst.truth().row(p)));
    }
    // Theorem 5 promises ≤ 5D; allow the full constant.
    assert!(worst <= 5 * d, "worst error {worst} > 5D = {}", 5 * d);
}

#[test]
fn zero_diameter_degenerates_to_exact() {
    let inst = planted(96, 96, 3, 0, 5);
    let behaviors = Behaviors::all_honest(inst.truth());
    let (out, _) = run_small_radius(&inst, &behaviors, 3, 0, 11);
    for (p, w) in out.iter().enumerate() {
        assert_eq!(
            w.hamming(&inst.truth().row(p)),
            0,
            "player {p} wrong in clone regime"
        );
    }
}

#[test]
fn probes_stay_polylog_per_player() {
    let d = 6;
    let inst = planted(256, 256, 8, d, 9);
    let behaviors = Behaviors::all_honest(inst.truth());
    let (_, max_probes) = run_small_radius(&inst, &behaviors, 8, d, 13);
    // Theorem 5: O(B log n · D^{3/2} (D + log n)). Evaluate the bound with
    // generous constant 4.
    let ln_n = (256f64).ln();
    let bound = 4.0 * 8.0 * ln_n * (d as f64).powf(1.5).max(1.0) * (d as f64 + ln_n);
    assert!(
        (max_probes as f64) < bound,
        "max probes {max_probes} exceeds theorem bound {bound:.0}"
    );
    // Note: at n=256 the polylog factors exceed n, so SmallRadius probes
    // *more* than probe-everything here — the protocol's advantage is the
    // n ≫ B·polylog(n) regime, which experiment E6 sweeps.
}

#[test]
fn tolerates_inverters_at_paper_threshold() {
    let d = 8;
    let budget = 4;
    let inst = planted(144, 144, 4, d, 21);
    // n/(3B) = 12 dishonest players.
    let count = Corruption::paper_threshold(144, budget);
    let dishonest = Corruption::Count { count }.select(&inst, 2);
    let behaviors = Behaviors::new(inst.truth(), dishonest, &Inverter);
    let (out, _) = run_small_radius(&inst, &behaviors, budget, d, 17);
    let mut worst = 0;
    for p in 0..144u32 {
        if !behaviors.is_dishonest(p) {
            worst = worst.max(out[p as usize].hamming(&inst.truth().row(p as usize)));
        }
    }
    assert!(
        worst <= 8 * d,
        "worst honest error {worst} > 8D under inverters"
    );
}

#[test]
fn tolerates_random_liars() {
    let d = 6;
    let inst = planted(120, 120, 4, d, 31);
    let dishonest = Corruption::Count { count: 10 }.select(&inst, 3);
    let liar = RandomLiar { flip_prob: 0.5 };
    let behaviors = Behaviors::new(inst.truth(), dishonest, &liar);
    let (out, _) = run_small_radius(&inst, &behaviors, 4, d, 19);
    let mut worst = 0;
    for p in 0..120u32 {
        if !behaviors.is_dishonest(p) {
            worst = worst.max(out[p as usize].hamming(&inst.truth().row(p as usize)));
        }
    }
    assert!(
        worst <= 8 * d,
        "worst honest error {worst} under random liars"
    );
}

#[test]
fn hijacker_in_cluster_does_not_sink_victims() {
    let d = 6;
    let inst = planted(128, 128, 4, d, 41);
    // Put 8 hijackers inside cluster 0, mimicking one of its members.
    let victim = inst.planted().unwrap().clusters[0][0];
    let dishonest = Corruption::InCluster {
        cluster: 0,
        count: 8,
    }
    .select(&inst, 4);
    let strategy = ClusterHijacker { victim };
    let behaviors = Behaviors::new(inst.truth(), dishonest, &strategy);
    let (out, _) = run_small_radius(&inst, &behaviors, 4, d, 23);
    let mut worst = 0;
    for p in 0..128u32 {
        if !behaviors.is_dishonest(p) {
            worst = worst.max(out[p as usize].hamming(&inst.truth().row(p as usize)));
        }
    }
    assert!(worst <= 10 * d, "hijackers drove honest error to {worst}");
}

#[test]
fn deterministic_given_beacon() {
    let inst = planted(64, 64, 2, 4, 51);
    let behaviors = Behaviors::all_honest(inst.truth());
    let (a, _) = run_small_radius(&inst, &behaviors, 4, 4, 29);
    let (b, _) = run_small_radius(&inst, &behaviors, 4, 4, 29);
    for (x, y) in a.iter().zip(&b) {
        assert!(x.bits_eq(y));
    }
    let (c, _) = run_small_radius(&inst, &behaviors, 4, 4, 30);
    let same = a.iter().zip(&c).all(|(x, y)| x.bits_eq(y));
    // Different beacons *may* coincide on easy instances, but the probe
    // pattern should generally differ; only assert shape here.
    let _ = same;
}
