//! Dynamic worlds: churn, drifting truth, and adaptive corruption across
//! a sequence of protocol repetitions.
//!
//! The paper analyzes one execution against a static world; this module
//! runs a *sequence* of executions ("rounds") over a world that changes
//! between them along three independent axes:
//!
//! * **drift** — the hidden preferences move per epoch
//!   ([`byzscore_board::DriftingTruth`]; round `r` runs at epoch `r`);
//! * **churn** — players retire and fresh identities join between rounds
//!   ([`ChurnSchedule`], realized as an identity remap over a fixed pool
//!   source via [`byzscore_board::RemappedTruth`], cf. Solidago's
//!   churning-population pipeline);
//! * **adaptivity** — the adversary observes each completed round
//!   (surviving group sizes, honest error scores) and re-targets its
//!   corruption budget for the next one
//!   ([`byzscore_adversary::AdaptiveCorruption`]).
//!
//! Each round is an ordinary immutable [`Session`] execution — drift and
//! churn are *adapters composed over the truth substrate*, never mutation
//! — so every per-round guarantee, metric, and determinism property of
//! the static machinery carries over unchanged, on dense and procedural
//! pools alike. The whole trajectory is a pure function of
//! `(pool, schedules, master seed)`: `tests/determinism.rs` pins
//! bit-identity across 1/2/8 worker threads and across substrates.

use std::sync::Arc;

use byzscore_adversary::{
    AdaptiveCorruption, AdaptivePolicy, Corruption, Observation, Strategy, Truthful,
};
use byzscore_bitset::Bits;
use byzscore_board::{
    ClusterSpec, DenseTruth, DriftSchedule, DriftingTruth, ProceduralTruth, RemappedTruth,
    TruthSource,
};
use byzscore_model::Planted;
use byzscore_random::derive_seed;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::cluster::WarmStart;
use crate::runner::{Algorithm, Outcome, OutputSink, Session};
use crate::ProtocolParams;

// Seed-derivation tags of the dynamic runner (distinct from each other;
// truth, drift, and churn randomness flow from independent seeds).
const TAG_ROUND: u64 = 0xd7_01;
const TAG_CHURN: u64 = 0xd7_02;

/// Population turnover between consecutive rounds.
///
/// Between round `r-1` and round `r`, `retire` active players leave
/// (chosen by seeded shuffle) and `join` fresh identities from the pool
/// take slots — survivors keep their relative order, joiners append at
/// the tail, so the remap is deterministic and auditable. `retire` and
/// `join` may differ: the population then shrinks or grows round over
/// round (the per-round `n` the protocol sees follows).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChurnSchedule {
    /// Players retired entering each round.
    pub retire: usize,
    /// Fresh pool identities joining entering each round.
    pub join: usize,
    /// Seed of the churn randomness.
    pub seed: u64,
}

impl ChurnSchedule {
    /// Replacement churn: `turnover` players leave and as many join, so
    /// the population size is invariant.
    pub fn replacement(turnover: usize, seed: u64) -> Self {
        ChurnSchedule {
            retire: turnover,
            join: turnover,
            seed,
        }
    }

    /// Fresh identities consumed over `rounds` rounds (the pool headroom a
    /// world must provision beyond its initial population).
    pub fn joins_over(&self, rounds: usize) -> usize {
        self.join * rounds.saturating_sub(1)
    }
}

/// Everything recorded from one round of a dynamic run.
#[derive(Clone, Debug)]
pub struct RoundReport {
    /// Round index (0-based; round `r` runs at drift epoch `r`).
    pub round: usize,
    /// Drift epoch of the round's world (= round index; 0 without drift).
    pub epoch: u64,
    /// Active population this round.
    pub players: usize,
    /// Pool identities retired entering this round (empty for round 0).
    pub retired: Vec<u32>,
    /// Pool identities joined entering this round (empty for round 0).
    pub joined: Vec<u32>,
    /// Group the adaptive adversary targeted this round, if it adapted.
    pub target_group: Option<usize>,
    /// The round's full measured outcome.
    pub outcome: Outcome,
}

/// The trajectory of a dynamic run.
#[derive(Clone, Debug)]
pub struct DynamicOutcome {
    /// One report per round, in order.
    pub rounds: Vec<RoundReport>,
}

impl DynamicOutcome {
    /// Max honest error per round.
    pub fn max_err_trajectory(&self) -> Vec<u64> {
        self.rounds
            .iter()
            .map(|r| r.outcome.errors.max as u64)
            .collect()
    }

    /// Worst max honest error across all rounds.
    pub fn worst_err(&self) -> u64 {
        self.max_err_trajectory().into_iter().max().unwrap_or(0)
    }
}

/// An executable dynamic world: a pool substrate plus the change laws.
///
/// Build with [`DynamicWorld::builder`]; run with [`DynamicWorld::run`].
///
/// ```
/// use byzscore::{Algorithm, ChurnSchedule, ClusterSpec, DynamicWorld, ProtocolParams};
/// use byzscore_adversary::{AdaptiveCorruption, AdaptivePolicy, Corruption, Inverter};
/// use byzscore_board::DriftSchedule;
///
/// let world = DynamicWorld::builder()
///     .pool(ClusterSpec { players: 64, objects: 96, clusters: 4, diameter: 4, seed: 3 })
///     .active(48)
///     .params(ProtocolParams::with_budget(4))
///     .churn(ChurnSchedule::replacement(4, 11))
///     .drift(DriftSchedule::uniform(0.002, 13))
///     .adversary(
///         AdaptiveCorruption::new(
///             Corruption::Count { count: 4 },
///             1,
///             AdaptivePolicy::SmallestGroup,
///         ),
///         Inverter,
///     )
///     .build();
/// let run = world.run(Algorithm::GlobalMajority, 3, 42);
/// assert_eq!(run.rounds.len(), 3);
/// assert!(run.rounds[1].target_group.is_some(), "adversary adapted");
/// ```
pub struct DynamicWorld {
    pool: Arc<dyn TruthSource>,
    pool_planted: Option<Planted>,
    active: usize,
    params: ProtocolParams,
    corruption: AdaptiveCorruption,
    strategy: Arc<dyn Strategy>,
    churn: Option<ChurnSchedule>,
    drift: Option<DriftSchedule>,
    sink: OutputSink,
}

impl DynamicWorld {
    /// Start building a dynamic world.
    pub fn builder() -> DynamicWorldBuilder {
        DynamicWorldBuilder {
            pool: None,
            pool_planted: None,
            active: None,
            params: None,
            corruption: AdaptiveCorruption::off(Corruption::None),
            strategy: None,
            churn: None,
            drift: None,
            sink: OutputSink::Dense,
        }
    }

    /// Initial active population.
    pub fn active(&self) -> usize {
        self.active
    }

    /// Execute `rounds` rounds of `algorithm` under master seed `seed`.
    ///
    /// Round `r` (0-based) runs at drift epoch `r` on the current identity
    /// map; churn is applied entering every round after the first; the
    /// adaptive adversary sees the observations of all completed rounds
    /// (bounded by its window). Rounds are sequential by construction —
    /// each depends on the last — but each round's *internal* phases use
    /// the full worker budget, and the trajectory is bit-identical at any
    /// thread count.
    pub fn run(&self, algorithm: Algorithm, rounds: usize, seed: u64) -> DynamicOutcome {
        let mut map: Vec<u32> = (0..self.active as u32).collect();
        let mut next_fresh = self.active as u32;
        let pool_rows = self.pool.players() as u32;
        let mut history: Vec<Observation> = Vec::new();
        let mut reports = Vec::new();
        // One warm-start slot spans the whole trajectory: round r+1's
        // NaiveSampling refreshes round r's group cache instead of
        // regrouping cold, re-hashing only rows drift/churn touched (rows
        // whose sampled bits are unchanged keep their cached hash). Rounds
        // are sequential, so the hand-off is race-free; other algorithms
        // simply never consult the slot.
        let warm = Arc::new(WarmStart::new());

        for round in 0..rounds {
            let (retired, joined) = if round > 0 {
                self.apply_churn(&mut map, &mut next_fresh, pool_rows, round)
            } else {
                (Vec::new(), Vec::new())
            };
            let n = map.len();

            // Compose the round's substrate: (pool → drift epoch r) → remap.
            let epoch = self.drift.as_ref().map_or(0, |_| round as u64);
            let stepped: Arc<dyn TruthSource> = match &self.drift {
                Some(schedule) => Arc::new(
                    DriftingTruth::new(self.pool.clone(), schedule.clone()).at_epoch(epoch),
                ),
                None => self.pool.clone(),
            };
            let truth: Arc<dyn TruthSource> = Arc::new(RemappedTruth::new(stepped, map.clone()));
            let planted = self.pool_planted.as_ref().map(|p| remap_planted(p, &map));

            let round_seed = derive_seed(seed, &[TAG_ROUND, round as u64]);
            let (mask, target_group) =
                self.corruption
                    .select_mask_with_target(n, planted.as_ref(), round_seed, &history);

            let mut builder = Session::builder()
                .truth(truth.clone())
                .params(self.params.clone())
                .adversary_shared(
                    Corruption::Explicit { mask: mask.clone() },
                    self.strategy.clone(),
                )
                .output_sink(self.sink)
                .warm_start(warm.clone());
            if let Some(p) = planted.clone() {
                builder = builder.planted(p);
            }
            let outcome = builder.build().run(algorithm, round_seed);

            // A window-0 adversary can never consult the history, and the
            // mean-error half of an observation (a full hamming pass over
            // every honest player) is only read by the HighestError policy
            // — skip what nothing will look at.
            if self.corruption.window > 0 {
                let with_scores = self.corruption.policy == AdaptivePolicy::HighestError;
                history.push(observe(
                    &outcome,
                    planted.as_ref(),
                    &mask,
                    truth.as_ref(),
                    with_scores,
                ));
            }
            reports.push(RoundReport {
                round,
                epoch,
                players: n,
                retired,
                joined,
                target_group,
                outcome,
            });
        }
        DynamicOutcome { rounds: reports }
    }

    /// Retire/join entering `round`; returns the retired and joined pool
    /// identities. Survivors keep relative order; joiners append.
    fn apply_churn(
        &self,
        map: &mut Vec<u32>,
        next_fresh: &mut u32,
        pool_rows: u32,
        round: usize,
    ) -> (Vec<u32>, Vec<u32>) {
        let Some(churn) = &self.churn else {
            return (Vec::new(), Vec::new());
        };
        let mut rng = SmallRng::seed_from_u64(derive_seed(churn.seed, &[TAG_CHURN, round as u64]));
        // Pick the retiring slots by shuffle; never retire below one player.
        let retire = churn.retire.min(map.len().saturating_sub(1));
        let mut slots: Vec<usize> = (0..map.len()).collect();
        slots.shuffle(&mut rng);
        let mut retiring: Vec<usize> = slots[..retire].to_vec();
        retiring.sort_unstable();
        let retired: Vec<u32> = retiring.iter().map(|&s| map[s]).collect();
        for &s in retiring.iter().rev() {
            map.remove(s);
        }
        let mut joined = Vec::new();
        for _ in 0..churn.join {
            if *next_fresh >= pool_rows {
                break; // pool exhausted: world stops growing, documented
            }
            joined.push(*next_fresh);
            map.push(*next_fresh);
            *next_fresh += 1;
        }
        (retired, joined)
    }
}

/// Distill the adversary's between-round observation from a completed
/// round: honest survivors per group, and (when `with_scores` and the
/// output matrix was materialized) mean honest error per group.
fn observe(
    outcome: &Outcome,
    planted: Option<&Planted>,
    dishonest: &[bool],
    truth: &dyn TruthSource,
    with_scores: bool,
) -> Observation {
    let Some(planted) = planted else {
        return Observation::sizes(Vec::new());
    };
    let survivors: Vec<usize> = planted
        .clusters
        .iter()
        .map(|members| members.iter().filter(|&&p| !dishonest[p as usize]).count())
        .collect();
    let mean_err = outcome
        .output
        .as_ref()
        .filter(|_| with_scores)
        .map(|output| {
            planted
                .clusters
                .iter()
                .map(|members| {
                    let honest: Vec<u64> = members
                        .iter()
                        .filter(|&&p| !dishonest[p as usize])
                        .map(|&p| output.row(p as usize).hamming(&truth.row(p)) as u64)
                        .collect();
                    if honest.is_empty() {
                        0.0
                    } else {
                        honest.iter().sum::<u64>() as f64 / honest.len() as f64
                    }
                })
                .collect()
        });
    Observation {
        group_survivors: survivors,
        group_mean_err: mean_err,
    }
}

/// Planted metadata of the pool, viewed through the identity map: slot
/// assignments inherit from the underlying identities, cluster member
/// lists hold *slots* (what corruption targeting and skyline baselines
/// operate on). Centers and diameter describe the base epoch — drift
/// perturbs the live world around them (DESIGN.md §4.11).
pub fn remap_planted(pool: &Planted, map: &[u32]) -> Planted {
    let assignment: Vec<u32> = map.iter().map(|&id| pool.assignment[id as usize]).collect();
    let mut clusters = vec![Vec::new(); pool.clusters.len()];
    for (slot, &c) in assignment.iter().enumerate() {
        clusters[c as usize].push(slot as u32);
    }
    Planted {
        assignment,
        clusters,
        centers: pool.centers.clone(),
        target_diameter: pool.target_diameter,
        special_objects: pool.special_objects.clone(),
    }
}

/// Builder for [`DynamicWorld`] — pool substrate first, then the change
/// laws, then [`DynamicWorldBuilder::build`].
pub struct DynamicWorldBuilder {
    pool: Option<Arc<dyn TruthSource>>,
    pool_planted: Option<Planted>,
    active: Option<usize>,
    params: Option<ProtocolParams>,
    corruption: AdaptiveCorruption,
    strategy: Option<Arc<dyn Strategy>>,
    churn: Option<ChurnSchedule>,
    drift: Option<DriftSchedule>,
    sink: OutputSink,
}

impl DynamicWorldBuilder {
    /// Procedural pool over `spec` (`O(1)` memory in the pool size). The
    /// spec's `players` is the *pool* capacity; combine with
    /// [`DynamicWorldBuilder::active`] to leave join headroom.
    pub fn pool(mut self, spec: ClusterSpec) -> Self {
        let source = ProceduralTruth::new(spec);
        self.pool_planted = Some(planted_of(&source));
        self.pool = Some(Arc::new(source));
        self
    }

    /// Dense twin of [`DynamicWorldBuilder::pool`]: identical bits and
    /// metadata on a materialized matrix, for substrate-equivalence checks
    /// and dense-only metrics.
    pub fn pool_dense(mut self, spec: ClusterSpec) -> Self {
        let source = ProceduralTruth::new(spec);
        self.pool_planted = Some(planted_of(&source));
        self.pool = Some(Arc::new(DenseTruth::new(source.materialize())));
        self
    }

    /// Arbitrary pool source with optional planted metadata.
    pub fn pool_truth(mut self, pool: Arc<dyn TruthSource>, planted: Option<Planted>) -> Self {
        self.pool = Some(pool);
        self.pool_planted = planted;
        self
    }

    /// Initial active population (default: the whole pool — leaving no
    /// headroom for joiners).
    pub fn active(mut self, n: usize) -> Self {
        self.active = Some(n);
        self
    }

    /// Protocol parameters (default `ProtocolParams::with_budget(8)`).
    pub fn params(mut self, params: ProtocolParams) -> Self {
        self.params = Some(params);
        self
    }

    /// Install the adaptive corruption model and dishonest strategy.
    pub fn adversary(
        mut self,
        corruption: AdaptiveCorruption,
        strategy: impl Strategy + 'static,
    ) -> Self {
        self.corruption = corruption;
        self.strategy = Some(Arc::new(strategy));
        self
    }

    /// Population turnover between rounds.
    pub fn churn(mut self, schedule: ChurnSchedule) -> Self {
        self.churn = Some(schedule);
        self
    }

    /// Preference drift across rounds (round `r` runs at epoch `r`).
    pub fn drift(mut self, schedule: DriftSchedule) -> Self {
        self.drift = Some(schedule);
        self
    }

    /// Output disposal per round (default dense; `@scale` worlds stream).
    pub fn output_sink(mut self, sink: OutputSink) -> Self {
        self.sink = sink;
        self
    }

    /// Finish. Panics without a pool, or if `active` exceeds it.
    pub fn build(self) -> DynamicWorld {
        let pool = self.pool.expect("DynamicWorld: set a pool substrate first");
        let active = self.active.unwrap_or(pool.players());
        assert!(
            active >= 1 && active <= pool.players(),
            "active population {active} outside pool of {}",
            pool.players()
        );
        DynamicWorld {
            pool,
            pool_planted: self.pool_planted,
            active,
            params: self
                .params
                .unwrap_or_else(|| ProtocolParams::with_budget(8)),
            corruption: self.corruption,
            strategy: self
                .strategy
                .unwrap_or_else(|| Arc::new(Truthful) as Arc<dyn Strategy>),
            churn: self.churn,
            drift: self.drift,
            sink: self.sink,
        }
    }
}

/// Planted metadata of a procedural pool (same shape the static
/// `SessionBuilder::procedural` records).
fn planted_of(source: &ProceduralTruth) -> Planted {
    Planted {
        assignment: source.assignment(),
        clusters: source.clusters(),
        centers: source.centers().to_vec(),
        target_diameter: source.spec().diameter,
        special_objects: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzscore_adversary::{AdaptivePolicy, Inverter};

    fn spec(pool: usize) -> ClusterSpec {
        ClusterSpec {
            players: pool,
            objects: 96,
            clusters: 4,
            diameter: 4,
            seed: 0xdead,
        }
    }

    fn world() -> DynamicWorld {
        DynamicWorld::builder()
            .pool(spec(72))
            .active(48)
            .params(ProtocolParams::with_budget(4))
            .churn(ChurnSchedule::replacement(6, 5))
            .drift(DriftSchedule::uniform(0.001, 7))
            .adversary(
                AdaptiveCorruption::new(
                    Corruption::Count { count: 4 },
                    1,
                    AdaptivePolicy::SmallestGroup,
                ),
                Inverter,
            )
            .build()
    }

    #[test]
    fn trajectory_shape_and_population() {
        let run = world().run(Algorithm::GlobalMajority, 3, 1);
        assert_eq!(run.rounds.len(), 3);
        for (r, report) in run.rounds.iter().enumerate() {
            assert_eq!(report.round, r);
            assert_eq!(report.epoch, r as u64);
            assert_eq!(report.players, 48, "replacement churn keeps n fixed");
            assert_eq!(report.outcome.dishonest_count, 4);
            if r == 0 {
                assert!(report.retired.is_empty() && report.joined.is_empty());
                assert_eq!(report.target_group, None, "nothing observed yet");
            } else {
                assert_eq!(report.retired.len(), 6);
                assert_eq!(report.joined.len(), 6);
                assert!(report.target_group.is_some(), "adversary adapted");
            }
        }
        // Joined identities are fresh pool rows, in order.
        assert_eq!(run.rounds[1].joined, vec![48, 49, 50, 51, 52, 53]);
        assert_eq!(run.rounds[2].joined, vec![54, 55, 56, 57, 58, 59]);
    }

    #[test]
    fn runs_are_deterministic_in_seed() {
        let w = world();
        let a = w.run(Algorithm::GlobalMajority, 3, 9);
        let b = w.run(Algorithm::GlobalMajority, 3, 9);
        let c = w.run(Algorithm::GlobalMajority, 3, 10);
        for (x, y) in a.rounds.iter().zip(&b.rounds) {
            assert_eq!(x.outcome.output, y.outcome.output);
            assert_eq!(x.retired, y.retired);
            assert_eq!(x.target_group, y.target_group);
        }
        assert!(
            a.rounds
                .iter()
                .zip(&c.rounds)
                .any(|(x, y)| x.outcome.output != y.outcome.output),
            "distinct master seeds must differ"
        );
    }

    #[test]
    fn growth_and_shrink_follow_the_schedule() {
        let grow = DynamicWorld::builder()
            .pool(spec(72))
            .active(40)
            .params(ProtocolParams::with_budget(4))
            .churn(ChurnSchedule {
                retire: 2,
                join: 6,
                seed: 3,
            })
            .build()
            .run(Algorithm::GlobalMajority, 3, 2);
        let sizes: Vec<usize> = grow.rounds.iter().map(|r| r.players).collect();
        assert_eq!(sizes, vec![40, 44, 48]);

        let shrink = DynamicWorld::builder()
            .pool(spec(48))
            .active(48)
            .params(ProtocolParams::with_budget(4))
            .churn(ChurnSchedule {
                retire: 8,
                join: 0,
                seed: 3,
            })
            .build()
            .run(Algorithm::GlobalMajority, 3, 2);
        let sizes: Vec<usize> = shrink.rounds.iter().map(|r| r.players).collect();
        assert_eq!(sizes, vec![48, 40, 32]);
    }

    #[test]
    fn static_world_rounds_repeat_identically() {
        // No churn, no drift, static corruption: every round is the same
        // pure function of its seed — distinct seeds, but the world and
        // mask machinery must be stable.
        let w = DynamicWorld::builder()
            .pool(spec(48))
            .params(ProtocolParams::with_budget(4))
            .adversary(
                AdaptiveCorruption::off(Corruption::FirstK { count: 4 }),
                Inverter,
            )
            .build();
        let run = w.run(Algorithm::GlobalMajority, 2, 7);
        assert_eq!(run.rounds[0].players, 48);
        assert_eq!(run.rounds[1].players, 48);
        // FirstK is seed-independent, so the dishonest sets coincide.
        assert_eq!(
            run.rounds[0].outcome.dishonest_count,
            run.rounds[1].outcome.dishonest_count
        );
    }

    #[test]
    fn churn_preserves_identity_uniqueness() {
        let run = world().run(Algorithm::GlobalMajority, 4, 3);
        for report in &run.rounds {
            // Retired identities never rejoin (fresh ids are monotone).
            for j in &report.joined {
                assert!(*j >= 48, "joined identity {j} is not fresh");
            }
        }
    }

    #[test]
    fn error_stream_sink_omits_scores_from_observations() {
        let w = DynamicWorld::builder()
            .pool(spec(48))
            .params(ProtocolParams::with_budget(4))
            .adversary(
                AdaptiveCorruption::new(
                    Corruption::Count { count: 4 },
                    2,
                    AdaptivePolicy::HighestError,
                ),
                Inverter,
            )
            .output_sink(OutputSink::ErrorStream)
            .build();
        // HighestError degrades to smallest-group without dense output;
        // the run must still adapt and complete.
        let run = w.run(Algorithm::GlobalMajority, 3, 5);
        assert!(run.rounds[1].target_group.is_some());
        assert!(run.rounds[2].outcome.output.is_none());
    }
}
