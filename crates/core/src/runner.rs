//! High-level experiment runner: one call from (instance, adversary,
//! algorithm) to a measured [`Outcome`].

use std::time::{Duration, Instant};

use byzscore_adversary::{Behaviors, Corruption, Strategy, Truthful};
use byzscore_bitset::BitMatrix;
use byzscore_blocks::Ctx;
use byzscore_board::{Board, BoardStats, LedgerSnapshot, Oracle};
use byzscore_election::{BinStrategy, GreedyInfiltrate};
use byzscore_model::metrics::{error_report, ErrorReport};
use byzscore_model::Instance;
use byzscore_random::Beacon;

use crate::robust::RepetitionLog;
use crate::{baseline, calculate_preferences, robust_calculate_preferences, ProtocolParams};

static TRUTHFUL: Truthful = Truthful;

/// Which algorithm to execute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// Figure 2 with trusted shared randomness (§6 analysis).
    CalculatePreferences,
    /// Full §7 protocol: elections + repetitions + `RSelect`.
    Robust,
    /// Prior-art proxy: direct sampling, no collaborative compression, no
    /// vote redundancy (§6.2's "natural approach", cf. \[2,3\]).
    NaiveSampling,
    /// No collaboration beyond pooling probe results.
    Solo,
    /// Population-majority per object.
    GlobalMajority,
    /// Skyline: planted clusters given for free.
    OracleClusters,
    /// `SmallRadius` run directly on the full object set with the given
    /// diameter (the direct \[2,3\] machinery, no sampling loop).
    DirectSmallRadius(usize),
}

impl Algorithm {
    /// Stable name for reports.
    pub fn name(&self) -> String {
        match self {
            Algorithm::CalculatePreferences => "calculate-preferences".into(),
            Algorithm::Robust => "robust".into(),
            Algorithm::NaiveSampling => "naive-sampling".into(),
            Algorithm::Solo => "solo".into(),
            Algorithm::GlobalMajority => "global-majority".into(),
            Algorithm::OracleClusters => "oracle-clusters".into(),
            Algorithm::DirectSmallRadius(d) => format!("direct-small-radius(D={d})"),
        }
    }
}

/// Everything measured from one protocol execution.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Algorithm name.
    pub algorithm: String,
    /// Per-player output matrix `w`.
    pub output: BitMatrix,
    /// Error report over **honest** players (the paper's guarantee).
    pub errors: ErrorReport,
    /// Final probe counts per player.
    pub probes: LedgerSnapshot,
    /// Maximum probes spent by any honest player — the budget the paper's
    /// Lemmas 10–11 bound.
    pub max_honest_probes: u64,
    /// Bulletin-board traffic.
    pub board: BoardStats,
    /// Wall-clock duration of the protocol run.
    pub elapsed: Duration,
    /// Robust-mode election log (empty for other algorithms).
    pub repetitions: Vec<RepetitionLog>,
    /// Number of dishonest players in the run.
    pub dishonest_count: usize,
}

/// Builder tying an instance, parameters, and an adversary together.
///
/// ```
/// use byzscore::{Algorithm, ProtocolParams, ScoringSystem};
/// use byzscore_adversary::{Corruption, Inverter};
/// use byzscore_model::{Balance, Workload};
///
/// let instance = Workload::CloneClasses {
///     players: 48, objects: 160, classes: 2, balance: Balance::Even,
/// }
/// .generate(1);
///
/// let outcome = ScoringSystem::new(&instance, ProtocolParams::with_budget(8))
///     .with_adversary(Corruption::Count { count: 2 }, &Inverter)
///     .run(Algorithm::Robust, 7);
/// assert!(outcome.errors.max <= 4);
/// ```
pub struct ScoringSystem<'a> {
    instance: &'a Instance,
    params: ProtocolParams,
    corruption: Corruption,
    strategy: &'a dyn Strategy,
    election_adversary: &'a dyn BinStrategy,
}

impl<'a> ScoringSystem<'a> {
    /// System over `instance` with everyone honest.
    pub fn new(instance: &'a Instance, params: ProtocolParams) -> Self {
        ScoringSystem {
            instance,
            params,
            corruption: Corruption::None,
            strategy: &TRUTHFUL,
            election_adversary: &GREEDY_DEFAULT,
        }
    }

    /// Install a corruption model and dishonest strategy.
    pub fn with_adversary(mut self, corruption: Corruption, strategy: &'a dyn Strategy) -> Self {
        self.corruption = corruption;
        self.strategy = strategy;
        self
    }

    /// Override how dishonest players play the leader election.
    pub fn with_election_adversary(mut self, adversary: &'a dyn BinStrategy) -> Self {
        self.election_adversary = adversary;
        self
    }

    /// Access the parameters (for experiment sweeps).
    pub fn params(&self) -> &ProtocolParams {
        &self.params
    }

    /// Execute `algorithm` with master seed `seed` and measure everything.
    pub fn run(&self, algorithm: Algorithm, seed: u64) -> Outcome {
        let truth = self.instance.truth();
        let dishonest = self.corruption.select(self.instance, seed);
        let behaviors = Behaviors::new(truth, dishonest, self.strategy);
        let oracle = Oracle::new(truth);
        let board = Board::new();
        let ctx = Ctx::new(
            &oracle,
            &board,
            &behaviors,
            Beacon::honest(seed),
            &self.params.blocks,
        );

        let start = Instant::now();
        let mut repetitions = Vec::new();
        let rows = match algorithm {
            Algorithm::CalculatePreferences => calculate_preferences(&ctx, &self.params, &[0]),
            Algorithm::Robust => {
                let (rows, logs) =
                    robust_calculate_preferences(&ctx, &self.params, self.election_adversary);
                repetitions = logs;
                rows
            }
            Algorithm::NaiveSampling => baseline::naive_sampling(&ctx, &self.params),
            Algorithm::Solo => baseline::solo(&ctx, &self.params),
            Algorithm::GlobalMajority => baseline::global_majority(&ctx, &self.params),
            Algorithm::OracleClusters => {
                baseline::oracle_clusters(&ctx, &self.params, self.instance)
            }
            Algorithm::DirectSmallRadius(d) => {
                let players: Vec<u32> = (0..self.instance.players() as u32).collect();
                let objects: Vec<u32> = (0..self.instance.objects() as u32).collect();
                byzscore_blocks::small_radius(&ctx, &players, &objects, d, &[0xd1])
            }
        };
        let elapsed = start.elapsed();

        let output = BitMatrix::from_rows(&rows);
        let honest_mask = behaviors.honest_mask();
        let errors = error_report(&output, truth, Some(&honest_mask));
        let probes = oracle.snapshot();
        let max_honest_probes = probes.max_where(&honest_mask);

        Outcome {
            algorithm: algorithm.name(),
            output,
            errors,
            probes,
            max_honest_probes,
            board: board.stats(),
            elapsed,
            repetitions,
            dishonest_count: behaviors.dishonest_count(),
        }
    }
}

static GREEDY_DEFAULT: GreedyInfiltrate = GreedyInfiltrate;

#[cfg(test)]
mod tests {
    use super::*;
    use byzscore_adversary::Inverter;
    use byzscore_model::{Balance, Workload};

    fn instance() -> Instance {
        Workload::PlantedClusters {
            players: 64,
            objects: 64,
            clusters: 2,
            diameter: 4,
            balance: Balance::Even,
        }
        .generate(5)
    }

    #[test]
    fn runner_measures_everything() {
        let inst = instance();
        let outcome = ScoringSystem::new(&inst, ProtocolParams::with_budget(4))
            .run(Algorithm::CalculatePreferences, 1);
        assert_eq!(outcome.algorithm, "calculate-preferences");
        assert_eq!(outcome.output.rows(), 64);
        assert!(outcome.errors.max <= 16, "error {}", outcome.errors.max);
        assert!(outcome.max_honest_probes > 0);
        assert!(outcome.board.claim_posts > 0);
        assert_eq!(outcome.dishonest_count, 0);
        assert!(outcome.repetitions.is_empty());
    }

    #[test]
    fn runner_is_deterministic_in_seed() {
        let inst = instance();
        let sys = ScoringSystem::new(&inst, ProtocolParams::with_budget(4));
        let a = sys.run(Algorithm::CalculatePreferences, 9);
        let b = sys.run(Algorithm::CalculatePreferences, 9);
        assert_eq!(a.output, b.output);
        assert_eq!(a.probes.counts(), b.probes.counts());
    }

    #[test]
    fn adversarial_runner_excludes_dishonest_from_errors() {
        let inst = instance();
        let outcome = ScoringSystem::new(&inst, ProtocolParams::with_budget(4))
            .with_adversary(Corruption::Count { count: 5 }, &Inverter)
            .run(Algorithm::GlobalMajority, 3);
        assert_eq!(outcome.dishonest_count, 5);
        assert_eq!(outcome.errors.evaluated, 59);
    }

    #[test]
    fn all_algorithms_run() {
        let inst = instance();
        let sys = ScoringSystem::new(&inst, ProtocolParams::with_budget(4));
        for alg in [
            Algorithm::Solo,
            Algorithm::GlobalMajority,
            Algorithm::OracleClusters,
            Algorithm::NaiveSampling,
            Algorithm::DirectSmallRadius(8),
        ] {
            let out = sys.run(alg, 2);
            assert_eq!(out.output.rows(), 64, "{}", alg.name());
        }
    }
}
