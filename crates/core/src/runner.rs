//! High-level experiment runner: a [`Session`] ties a truth source,
//! parameters, and an adversary together; [`Session::run`] measures one
//! protocol execution, [`Session::run_sweep`] measures many in parallel.

use std::sync::Arc;
use std::time::{Duration, Instant};

use byzscore_adversary::{Behaviors, Corruption, Strategy, Truthful};
use byzscore_bitset::{BitMatrix, Bits};
use byzscore_blocks::{CandidateMeter, Ctx};
use byzscore_board::par::par_map_coarse;
use byzscore_board::{
    Board, BoardStats, ClusterSpec, DenseTruth, IntoTruthSource, LedgerSnapshot, Oracle,
    ProceduralTruth, TruthSource,
};
use byzscore_election::{BinStrategy, GreedyInfiltrate};
use byzscore_model::metrics::ErrorReport;
use byzscore_model::{Instance, Planted};
use byzscore_random::Beacon;

use crate::cluster::WarmStart;
use crate::robust::RepetitionLog;
use crate::{baseline, calculate_preferences, robust_calculate_preferences, ProtocolParams};

/// Which algorithm to execute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// Figure 2 with trusted shared randomness (§6 analysis).
    CalculatePreferences,
    /// Full §7 protocol: elections + repetitions + `RSelect`.
    Robust,
    /// Prior-art proxy: direct sampling, no collaborative compression, no
    /// vote redundancy (§6.2's "natural approach", cf. \[2,3\]).
    NaiveSampling,
    /// No collaboration beyond pooling probe results.
    Solo,
    /// Population-majority per object.
    GlobalMajority,
    /// Skyline: planted clusters given for free.
    OracleClusters,
    /// `SmallRadius` run directly on the full object set with the given
    /// diameter (the direct \[2,3\] machinery, no sampling loop).
    DirectSmallRadius(usize),
}

impl Algorithm {
    /// Stable name for reports.
    pub fn name(&self) -> String {
        match self {
            Algorithm::CalculatePreferences => "calculate-preferences".into(),
            Algorithm::Robust => "robust".into(),
            Algorithm::NaiveSampling => "naive-sampling".into(),
            Algorithm::Solo => "solo".into(),
            Algorithm::GlobalMajority => "global-majority".into(),
            Algorithm::OracleClusters => "oracle-clusters".into(),
            Algorithm::DirectSmallRadius(d) => format!("direct-small-radius(D={d})"),
        }
    }
}

/// Why [`SessionBuilder::try_build`] could not produce a [`Session`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// No world was supplied. One of the world-setting builder steps —
    /// [`SessionBuilder::instance`], [`SessionBuilder::truth`],
    /// [`SessionBuilder::procedural`], or
    /// [`SessionBuilder::procedural_dense`] — must run before building.
    MissingWorld,
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::MissingWorld => write!(
                f,
                "SessionBuilder: no world set — call instance(..), truth(..), \
                 procedural(..), or procedural_dense(..) before build()"
            ),
        }
    }
}

impl std::error::Error for BuildError {}

/// How [`Session::run`] disposes of the per-player output rows.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OutputSink {
    /// Materialize [`Outcome::output`] as the dense `n × m` matrix — the
    /// default; every baseline table and equivalence test runs on it.
    #[default]
    Dense,
    /// Stream each output row straight into the per-player error
    /// accumulation and drop it; `Outcome::output` stays `None`. At
    /// `n = 10⁵`, `m = 1024` the dense matrix is 12.8 MB per outcome, and
    /// `@scale` sweeps hold several outcomes at once — the output matrix,
    /// not the truth, is the memory ceiling there. Error statistics are
    /// bit-identical to the dense sink (same rows, same fold order).
    ErrorStream,
}

/// Everything measured from one protocol execution.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Algorithm name.
    pub algorithm: String,
    /// Per-player output matrix `w` — `Some` under [`OutputSink::Dense`]
    /// (the default), `None` when the run streamed rows into the error
    /// accumulation instead ([`OutputSink::ErrorStream`]).
    pub output: Option<BitMatrix>,
    /// Error report over **honest** players (the paper's guarantee).
    pub errors: ErrorReport,
    /// Final probe counts per player.
    pub probes: LedgerSnapshot,
    /// Maximum probes spent by any honest player — the budget the paper's
    /// Lemmas 10–11 bound.
    pub max_honest_probes: u64,
    /// Bulletin-board traffic and memory (including the peak live-slot
    /// counts from scope-lifecycle accounting).
    pub board: BoardStats,
    /// Whether probe counts used memoized accounting (repeats free) or the
    /// paper's literal per-call accounting. The oracle auto-degrades to
    /// literal accounting past its memo-bitmap cap, so scale sweeps must
    /// not compare probe counts across a mode boundary.
    pub memoized_probes: bool,
    /// Wall-clock duration of the protocol run.
    pub elapsed: Duration,
    /// Robust-mode election log (empty for other algorithms).
    pub repetitions: Vec<RepetitionLog>,
    /// Number of dishonest players in the run.
    pub dishonest_count: usize,
    /// Peak resident candidate bytes across all per-player streaming
    /// `RSelect` tournaments (sum of deterministic per-player peaks).
    /// Zero for algorithms with no tournament (solo, majorities,
    /// skylines, `DirectSmallRadius`). Before guess-loop fusion this
    /// residency scaled with `n × guesses × m`; fused it is near `n × m`.
    pub peak_candidate_bytes: u64,
}

impl Outcome {
    /// The dense output matrix. Panics under [`OutputSink::ErrorStream`];
    /// consumers that inspect raw output rows require the default sink.
    pub fn output(&self) -> &BitMatrix {
        self.output
            .as_ref()
            .expect("Outcome::output requires OutputSink::Dense")
    }
}

/// One point of a sweep: which algorithm to run under which master seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SweepPoint {
    /// Algorithm to execute.
    pub algorithm: Algorithm,
    /// Master seed of the execution.
    pub seed: u64,
}

impl SweepPoint {
    /// New sweep point.
    pub fn new(algorithm: Algorithm, seed: u64) -> Self {
        SweepPoint { algorithm, seed }
    }
}

impl From<(Algorithm, u64)> for SweepPoint {
    fn from((algorithm, seed): (Algorithm, u64)) -> Self {
        SweepPoint { algorithm, seed }
    }
}

/// An executable world: truth source + parameters + adversary.
///
/// Sessions are lifetime-free (the truth is shared behind `Arc`) and
/// `Sync`, so independent executions — distinct `(algorithm, seed)` sweep
/// points — can run concurrently via [`Session::run_sweep`]. Build one with
/// [`Session::builder`]:
///
/// ```
/// use byzscore::{Algorithm, ProtocolParams, Session, SweepPoint};
/// use byzscore_adversary::{Corruption, Inverter};
/// use byzscore_model::{Balance, Workload};
///
/// let instance = Workload::CloneClasses {
///     players: 48, objects: 160, classes: 2, balance: Balance::Even,
/// }
/// .generate(1);
///
/// let session = Session::builder()
///     .instance(&instance)
///     .params(ProtocolParams::with_budget(8))
///     .adversary(Corruption::Count { count: 2 }, Inverter)
///     .build();
///
/// let outcome = session.run(Algorithm::Robust, 7);
/// assert!(outcome.errors.max <= 4);
///
/// // Independent sweep points execute in parallel, bit-identically to
/// // sequential `run` calls.
/// let outcomes = session.run_sweep(&[
///     SweepPoint::new(Algorithm::Robust, 7),
///     SweepPoint::new(Algorithm::GlobalMajority, 7),
/// ]);
/// assert_eq!(outcomes[0].output, outcome.output);
/// ```
pub struct Session {
    truth: Arc<dyn TruthSource>,
    planted: Option<Planted>,
    params: ProtocolParams,
    corruption: Corruption,
    strategy: Arc<dyn Strategy>,
    election_adversary: Arc<dyn BinStrategy>,
    sink: OutputSink,
    warm: Option<Arc<WarmStart>>,
}

impl Session {
    /// Start building a session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder {
            truth: None,
            planted: None,
            params: None,
            corruption: Corruption::None,
            strategy: None,
            election_adversary: None,
            sink: OutputSink::Dense,
            warm: None,
        }
    }

    /// Number of players `n`.
    pub fn players(&self) -> usize {
        self.truth.players()
    }

    /// Number of objects.
    pub fn objects(&self) -> usize {
        self.truth.objects()
    }

    /// Access the parameters (for experiment sweeps).
    pub fn params(&self) -> &ProtocolParams {
        &self.params
    }

    /// The truth source backing this session.
    pub fn truth(&self) -> &Arc<dyn TruthSource> {
        &self.truth
    }

    /// Planted structure, when known.
    pub fn planted(&self) -> Option<&Planted> {
        self.planted.as_ref()
    }

    /// A session over a *changed* world that keeps everything else:
    /// parameters, adversary, sink — and, crucially, the shared
    /// [`WarmStart`] slot, so the next `NaiveSampling` run refreshes the
    /// previous world's group cache (and reuses its pooled select
    /// machines) instead of rebuilding from scratch. This is the
    /// incremental recompute path the resident service engine drives on
    /// every churn/epoch transition (DESIGN.md §4.13); results stay
    /// bit-identical to a cold session over the same world.
    pub fn evolved(&self, truth: Arc<dyn TruthSource>, planted: Option<Planted>) -> Session {
        Session {
            truth,
            planted,
            params: self.params.clone(),
            corruption: self.corruption.clone(),
            strategy: self.strategy.clone(),
            election_adversary: self.election_adversary.clone(),
            sink: self.sink,
            warm: self.warm.clone(),
        }
    }

    /// Execute `algorithm` with master seed `seed` and measure everything.
    pub fn run(&self, algorithm: Algorithm, seed: u64) -> Outcome {
        let n = self.truth.players();
        let m = self.truth.objects();
        let dishonest = self.corruption.select_mask(n, self.planted.as_ref(), seed);
        let behaviors = Behaviors::new(self.truth.as_ref(), dishonest, self.strategy.as_ref());
        let oracle = Oracle::new(self.truth.clone());
        let board = Board::new();
        let meter = CandidateMeter::new();
        let ctx = Ctx::new(
            &oracle,
            &board,
            &behaviors,
            Beacon::honest(seed),
            &self.params.blocks,
        )
        .with_meter(&meter);

        let start = Instant::now();
        let mut repetitions = Vec::new();
        let rows = match algorithm {
            Algorithm::CalculatePreferences => calculate_preferences(&ctx, &self.params, &[0]),
            Algorithm::Robust => {
                let (rows, logs) = robust_calculate_preferences(
                    &ctx,
                    &self.params,
                    self.election_adversary.as_ref(),
                );
                repetitions = logs;
                rows
            }
            Algorithm::NaiveSampling => {
                baseline::naive_sampling_with(&ctx, &self.params, self.warm.as_deref())
            }
            Algorithm::Solo => baseline::solo(&ctx, &self.params),
            Algorithm::GlobalMajority => baseline::global_majority(&ctx, &self.params),
            Algorithm::OracleClusters => {
                baseline::oracle_clusters(&ctx, &self.params, self.planted.as_ref())
            }
            Algorithm::DirectSmallRadius(d) => {
                let players: Vec<u32> = (0..n as u32).collect();
                let objects: Vec<u32> = (0..m as u32).collect();
                byzscore_blocks::small_radius(&ctx, &players, &objects, d, &[0xd1])
            }
        };
        let elapsed = start.elapsed();

        let honest_mask = behaviors.honest_mask();
        let (output, errors) = match self.sink {
            OutputSink::Dense => {
                let output = BitMatrix::from_rows(&rows);
                let errors = ErrorReport::from_errors(
                    (0..n)
                        .filter(|&p| honest_mask[p])
                        .map(|p| output.row(p).hamming(&self.truth.row(p as u32)))
                        .collect(),
                );
                (Some(output), errors)
            }
            OutputSink::ErrorStream => {
                // Same rows, same honest-player order as the dense arm —
                // only the matrix materialization is gone; each row's
                // storage is released as soon as its error is folded in.
                let truth = &self.truth;
                let errors = ErrorReport::from_errors(
                    rows.into_iter()
                        .enumerate()
                        .filter(|(p, _)| honest_mask[*p])
                        .map(|(p, row)| row.hamming(&truth.row(p as u32)))
                        .collect(),
                );
                (None, errors)
            }
        };
        let probes = oracle.snapshot();
        let max_honest_probes = probes.max_where(&honest_mask);

        Outcome {
            algorithm: algorithm.name(),
            output,
            errors,
            probes,
            max_honest_probes,
            board: board.stats(),
            memoized_probes: oracle.is_memoized(),
            elapsed,
            repetitions,
            dishonest_count: behaviors.dishonest_count(),
            peak_candidate_bytes: meter.peak_bytes(),
        }
    }

    /// Execute every sweep point, in parallel under the process-wide
    /// [`byzscore_board::par::set_thread_limit`] budget.
    ///
    /// Each point is an independent pure function of `(self, point)` — its
    /// own oracle, board, and seed-derived randomness — so results are
    /// returned in point order and are bit-identical to sequential
    /// [`Session::run`] calls under any thread count (`tests/determinism.rs`
    /// pins this).
    pub fn run_sweep(&self, points: &[SweepPoint]) -> Vec<Outcome> {
        par_map_coarse(points, |pt| self.run(pt.algorithm, pt.seed))
    }
}

/// Builder for [`Session`] — substrate first, then parameters and
/// adversaries, then [`SessionBuilder::build`].
pub struct SessionBuilder {
    truth: Option<Arc<dyn TruthSource>>,
    planted: Option<Planted>,
    params: Option<ProtocolParams>,
    corruption: Corruption,
    strategy: Option<Arc<dyn Strategy>>,
    election_adversary: Option<Arc<dyn BinStrategy>>,
    sink: OutputSink,
    warm: Option<Arc<WarmStart>>,
}

impl SessionBuilder {
    /// Use a generated [`Instance`] as the world: its truth matrix becomes
    /// an owned [`DenseTruth`] and its planted structure carries over.
    pub fn instance(mut self, instance: &Instance) -> Self {
        self.truth = Some(Arc::new(DenseTruth::new(instance.truth().clone())));
        self.planted = instance.planted().cloned();
        self
    }

    /// Use any truth source (a `&BitMatrix` is cloned into a
    /// [`DenseTruth`]; pass an `Arc<dyn TruthSource>` to share).
    pub fn truth(mut self, truth: impl IntoTruthSource) -> Self {
        self.truth = Some(truth.into_truth_source());
        self
    }

    /// Use the `O(1)`-memory [`ProceduralTruth`] backend over `spec`; the
    /// spec's cluster structure is recorded as planted metadata so skyline
    /// baselines and `InCluster` corruption keep working.
    pub fn procedural(mut self, spec: ClusterSpec) -> Self {
        let source = ProceduralTruth::new(spec);
        self.planted = Some(procedural_planted(&source));
        self.truth = Some(Arc::new(source));
        self
    }

    /// Dense twin of [`SessionBuilder::procedural`]: materialize `spec`
    /// into a [`DenseTruth`] with identical bits and planted metadata.
    /// Exists so backend-equivalence checks (and dense-only metrics) can
    /// run the same world on both substrates.
    pub fn procedural_dense(mut self, spec: ClusterSpec) -> Self {
        let source = ProceduralTruth::new(spec);
        self.planted = Some(procedural_planted(&source));
        self.truth = Some(Arc::new(DenseTruth::new(source.materialize())));
        self
    }

    /// Override the planted structure (e.g. for custom truth sources).
    pub fn planted(mut self, planted: Planted) -> Self {
        self.planted = Some(planted);
        self
    }

    /// Protocol parameters (default: [`ProtocolParams::with_budget`]`(8)`).
    pub fn params(mut self, params: ProtocolParams) -> Self {
        self.params = Some(params);
        self
    }

    /// Shorthand for `.params(ProtocolParams::with_budget(b))`.
    pub fn budget(self, b: usize) -> Self {
        self.params(ProtocolParams::with_budget(b))
    }

    /// Install a corruption model and dishonest strategy.
    pub fn adversary(self, corruption: Corruption, strategy: impl Strategy + 'static) -> Self {
        self.adversary_shared(corruption, Arc::new(strategy))
    }

    /// [`SessionBuilder::adversary`] with an already-shared strategy.
    pub fn adversary_shared(mut self, corruption: Corruption, strategy: Arc<dyn Strategy>) -> Self {
        self.corruption = corruption;
        self.strategy = Some(strategy);
        self
    }

    /// Override how dishonest players play the leader election.
    pub fn election_adversary(mut self, adversary: impl BinStrategy + 'static) -> Self {
        self.election_adversary = Some(Arc::new(adversary));
        self
    }

    /// [`SessionBuilder::election_adversary`] with an already-shared
    /// strategy.
    pub fn election_adversary_shared(mut self, adversary: Arc<dyn BinStrategy>) -> Self {
        self.election_adversary = Some(adversary);
        self
    }

    /// How runs dispose of output rows (default [`OutputSink::Dense`]).
    /// `@scale` sweeps pass [`OutputSink::ErrorStream`] to keep error
    /// statistics without holding `n × m` output matrices.
    pub fn output_sink(mut self, sink: OutputSink) -> Self {
        self.sink = sink;
        self
    }

    /// Attach a shared [`WarmStart`] slot: `NaiveSampling` runs take the
    /// previous run's group cache, refresh it against the new z-vectors,
    /// and put it back. Used by [`crate::DynamicWorld`] to carry the
    /// survivor group graph across rounds; leave unset for independent
    /// runs (a sweep sharing one slot across concurrent points would make
    /// cache hand-offs racy — warm starts are for *sequential* rounds).
    pub fn warm_start(mut self, warm: Arc<WarmStart>) -> Self {
        self.warm = Some(warm);
        self
    }

    /// Finish. Panics with the [`BuildError`] message if no truth source
    /// was supplied; fallible callers use [`SessionBuilder::try_build`].
    pub fn build(self) -> Session {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Finish, naming the missing builder step instead of panicking.
    pub fn try_build(self) -> Result<Session, BuildError> {
        let truth = self.truth.ok_or(BuildError::MissingWorld)?;
        Ok(Session {
            truth,
            planted: self.planted,
            params: self
                .params
                .unwrap_or_else(|| ProtocolParams::with_budget(8)),
            corruption: self.corruption,
            strategy: self
                .strategy
                .unwrap_or_else(|| Arc::new(Truthful) as Arc<dyn Strategy>),
            election_adversary: self
                .election_adversary
                .unwrap_or_else(|| Arc::new(GreedyInfiltrate) as Arc<dyn BinStrategy>),
            sink: self.sink,
            warm: self.warm,
        })
    }
}

/// Planted metadata of a procedural cluster spec (assignment, members,
/// centers), identical to what the dense twin would record.
fn procedural_planted(source: &ProceduralTruth) -> Planted {
    Planted {
        assignment: source.assignment(),
        clusters: source.clusters(),
        centers: source.centers().to_vec(),
        target_diameter: source.spec().diameter,
        special_objects: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzscore_adversary::Inverter;
    use byzscore_model::{Balance, Workload};

    fn instance() -> Instance {
        Workload::PlantedClusters {
            players: 64,
            objects: 64,
            clusters: 2,
            diameter: 4,
            balance: Balance::Even,
        }
        .generate(5)
    }

    fn session() -> Session {
        Session::builder().instance(&instance()).budget(4).build()
    }

    #[test]
    fn runner_measures_everything() {
        let outcome = session().run(Algorithm::CalculatePreferences, 1);
        assert_eq!(outcome.algorithm, "calculate-preferences");
        assert_eq!(outcome.output().rows(), 64);
        assert!(outcome.errors.max <= 16, "error {}", outcome.errors.max);
        assert!(outcome.max_honest_probes > 0);
        assert!(outcome.board.claim_posts > 0);
        assert_eq!(outcome.dishonest_count, 0);
        assert!(outcome.repetitions.is_empty());
    }

    #[test]
    fn runner_is_deterministic_in_seed() {
        let sys = session();
        let a = sys.run(Algorithm::CalculatePreferences, 9);
        let b = sys.run(Algorithm::CalculatePreferences, 9);
        assert_eq!(a.output, b.output);
        assert_eq!(a.probes.counts(), b.probes.counts());
    }

    #[test]
    fn adversarial_runner_excludes_dishonest_from_errors() {
        let inst = instance();
        let outcome = Session::builder()
            .instance(&inst)
            .budget(4)
            .adversary(Corruption::Count { count: 5 }, Inverter)
            .build()
            .run(Algorithm::GlobalMajority, 3);
        assert_eq!(outcome.dishonest_count, 5);
        assert_eq!(outcome.errors.evaluated, 59);
    }

    #[test]
    fn all_algorithms_run() {
        let sys = session();
        for alg in [
            Algorithm::Solo,
            Algorithm::GlobalMajority,
            Algorithm::OracleClusters,
            Algorithm::NaiveSampling,
            Algorithm::DirectSmallRadius(8),
        ] {
            let out = sys.run(alg, 2);
            assert_eq!(out.output().rows(), 64, "{}", alg.name());
        }
    }

    #[test]
    fn board_posts_are_retired_down_to_a_peak() {
        let out = session().run(Algorithm::CalculatePreferences, 4);
        assert!(out.board.retired_scopes > 0, "no scope was retired");
        assert!(
            out.board.peak_claim_slots < out.board.claim_posts,
            "peak {} should sit below cumulative posts {}",
            out.board.peak_claim_slots,
            out.board.claim_posts
        );
    }

    #[test]
    fn run_sweep_matches_run() {
        let sys = session();
        let points = [
            SweepPoint::new(Algorithm::CalculatePreferences, 11),
            SweepPoint::new(Algorithm::GlobalMajority, 12),
            (Algorithm::Solo, 13).into(),
        ];
        let swept = sys.run_sweep(&points);
        assert_eq!(swept.len(), 3);
        for (pt, out) in points.iter().zip(&swept) {
            let direct = sys.run(pt.algorithm, pt.seed);
            assert_eq!(out.output, direct.output, "{}", pt.algorithm.name());
            assert_eq!(out.probes.counts(), direct.probes.counts());
            assert_eq!(out.board, direct.board);
        }
    }

    #[test]
    fn try_build_names_the_missing_world_step() {
        let err = Session::builder().budget(4).try_build().err().unwrap();
        assert_eq!(err, BuildError::MissingWorld);
        let msg = err.to_string();
        for step in ["instance", "truth", "procedural", "build()"] {
            assert!(msg.contains(step), "{msg:?} does not name {step}");
        }
        // A world set through any builder step builds fine.
        assert!(Session::builder().instance(&instance()).try_build().is_ok());
    }

    #[test]
    fn evolved_session_keeps_params_and_matches_cold() {
        let inst = instance();
        let sys = Session::builder()
            .instance(&inst)
            .budget(4)
            .adversary(Corruption::Count { count: 3 }, Inverter)
            .build();
        let evolved = sys.evolved(sys.truth().clone(), sys.planted().cloned());
        assert_eq!(evolved.params().budget(), sys.params().budget());
        let a = sys.run(Algorithm::NaiveSampling, 6);
        let b = evolved.run(Algorithm::NaiveSampling, 6);
        assert_eq!(a.output, b.output, "same world ⇒ same outcome");
        assert_eq!(a.dishonest_count, b.dishonest_count);
    }

    #[test]
    fn procedural_session_runs_without_matrix() {
        let spec = ClusterSpec {
            players: 96,
            objects: 128,
            clusters: 4,
            diameter: 6,
            seed: 21,
        };
        let sys = Session::builder().procedural(spec).budget(4).build();
        assert_eq!(sys.players(), 96);
        assert_eq!(sys.planted().unwrap().clusters.len(), 4);
        let out = sys.run(Algorithm::OracleClusters, 5);
        assert!(out.errors.max <= 12, "skyline error {}", out.errors.max);
    }
}
