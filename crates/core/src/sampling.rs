//! Step 1.b: shared random sample selection, and the Lemma 6 distance
//! separation it provides.

use byzscore_bitset::{BitMatrix, Bits};
use byzscore_random::{bernoulli_subset, tags, Beacon};

/// Choose the sample set `S` for diameter guess `diameter`: every object is
/// included independently with probability `c_sample · ln n / D`, drawn
/// from the shared beacon (so every honest player computes the identical
/// set — step 1.b publishes the selection).
///
/// The rate clamps to 1, which makes the first diameter guess (`D ≈ ln n`)
/// sample *everything*: exactly §6.1's "diameter < log n ⇒ run SmallRadius
/// directly" easy case, folded into the loop.
pub fn choose_sample(
    beacon: &Beacon,
    n_players: usize,
    n_objects: usize,
    diameter: usize,
    c_sample: f64,
) -> Vec<u32> {
    let ln_n = (n_players.max(2) as f64).ln();
    let rate = (c_sample * ln_n / diameter.max(1) as f64).clamp(0.0, 1.0);
    let mut rng = beacon.sub_rng(&[tags::SAMPLE, diameter as u64]);
    bernoulli_subset(&mut rng, n_objects, rate)
}

/// Empirical check of **Lemma 6**: for a pair of players at full-space
/// distance `dist`, their distance restricted to a rate-`r` sample
/// concentrates around `r · dist`. Returns restricted distances for the
/// given pairs — used by experiment E4 to reproduce the separation between
/// `< D` pairs (≤ 2 · c_sample ln n whp) and `≥ 3D` pairs (≥ (3/2) ·
/// c_sample ln n · 3 whp).
pub fn sample_distances(truth: &BitMatrix, sample: &[u32], pairs: &[(u32, u32)]) -> Vec<usize> {
    pairs
        .iter()
        .map(|&(p, q)| {
            let vp = truth.row(p as usize).project(sample);
            let vq = truth.row(q as usize).project(sample);
            vp.hamming(&vq)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzscore_bitset::BitVec;
    use byzscore_model::{Balance, Workload};

    #[test]
    fn sample_is_shared_and_deterministic() {
        let b = Beacon::honest(9);
        let s1 = choose_sample(&b, 256, 512, 64, 2.0);
        let s2 = choose_sample(&b, 256, 512, 64, 2.0);
        assert_eq!(s1, s2);
        let s3 = choose_sample(&b, 256, 512, 128, 2.0);
        assert_ne!(s1, s3, "different diameter, different tag, different set");
    }

    #[test]
    fn rate_clamps_to_everything_for_small_d() {
        let b = Beacon::honest(1);
        let s = choose_sample(&b, 256, 100, 1, 2.0);
        assert_eq!(s.len(), 100, "rate ≥ 1 must take every object");
    }

    #[test]
    fn sample_size_concentrates() {
        let b = Beacon::honest(3);
        let n = 1024;
        let d = 64;
        let s = choose_sample(&b, n, n, d, 2.0);
        let expected = 2.0 * (n as f64).ln() / d as f64 * n as f64;
        assert!(
            (s.len() as f64) > 0.5 * expected && (s.len() as f64) < 2.0 * expected,
            "sample size {} vs expectation {expected:.0}",
            s.len()
        );
    }

    #[test]
    fn lemma6_separation_holds_empirically() {
        // Pairs at distance D vs pairs at distance ≥ 3D must separate on
        // the sample, whp.
        let n = 512;
        let d = 32;
        let inst = Workload::PlantedClusters {
            players: n,
            objects: n,
            clusters: 8,
            diameter: d,
            balance: Balance::Even,
        }
        .generate(17);
        let beacon = Beacon::honest(23);
        let sample = choose_sample(&beacon, n, n, d, 4.0);
        let planted = inst.planted().unwrap();

        // Close pairs: same cluster. Far pairs: different clusters
        // (random centers ⇒ distance ≈ n/2 ≫ 3D).
        let close: Vec<(u32, u32)> = planted.clusters[0]
            .windows(2)
            .map(|w| (w[0], w[1]))
            .take(20)
            .collect();
        let far: Vec<(u32, u32)> = planted.clusters[0]
            .iter()
            .zip(&planted.clusters[1])
            .map(|(&a, &b)| (a, b))
            .take(20)
            .collect();

        let close_d = sample_distances(inst.truth(), &sample, &close);
        let far_d = sample_distances(inst.truth(), &sample, &far);
        let worst_close = close_d.iter().max().copied().unwrap();
        let best_far = far_d.iter().min().copied().unwrap();
        assert!(
            worst_close < best_far,
            "sample failed to separate: close max {worst_close} ≥ far min {best_far}"
        );
    }

    #[test]
    fn sample_distances_exact_on_trivial_sample() {
        let rows = vec![
            BitVec::from_bools(&[true, false, true, false]),
            BitVec::from_bools(&[false, false, true, true]),
        ];
        let truth = BitMatrix::from_rows(&rows);
        let all: Vec<u32> = (0..4).collect();
        let d = sample_distances(&truth, &all, &[(0, 1)]);
        assert_eq!(d, vec![2]);
        let restricted = sample_distances(&truth, &[2, 3], &[(0, 1)]);
        assert_eq!(restricted, vec![1]);
    }
}
