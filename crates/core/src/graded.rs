//! §8 extension: non-binary preferences.
//!
//! "Players are restricted to binary preferences; in reality, players may
//! rate items on a numerical scale. … We believe that many of the
//! techniques developed in this paper generalize to these more realistic
//! settings" (§8).
//!
//! This module realizes the generalization by **bit-plane decomposition**:
//! a score in `0..2^k` is `k` binary preference matrices (one per bit), and
//! the binary protocol runs once per plane under independently derived
//! seeds. Each plane inherits the paper's guarantee — plane error `O(D_j)`
//! where `D_j` is the plane's cluster diameter — so the recombined score
//! error is bounded in L1: `Σ_j 2^j · O(D_j)`. Players whose *grades*
//! cluster produce clustered bit planes (each plane's Hamming diameter is
//! at most the grade cluster's L1 diameter), so the structural assumption
//! transfers.

use byzscore_bitset::{BitMatrix, BitVec, Bits};
use byzscore_board::{DriftSchedule, DriftingTruth};
use byzscore_model::Instance;
use byzscore_random::derive_seed;
use rand::Rng;

use crate::{Algorithm, Outcome, ProtocolParams, Session};

/// A matrix of integer scores in `0..2^bits` (players × objects).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GradeMatrix {
    players: usize,
    objects: usize,
    bits: u32,
    grades: Vec<u8>,
}

impl GradeMatrix {
    /// Zeroed grade matrix with scores in `0..2^bits` (`1 ≤ bits ≤ 8`).
    pub fn zeros(players: usize, objects: usize, bits: u32) -> Self {
        assert!((1..=8).contains(&bits), "bits in 1..=8");
        GradeMatrix {
            players,
            objects,
            bits,
            grades: vec![0; players * objects],
        }
    }

    /// Build from a per-entry function.
    pub fn from_fn(
        players: usize,
        objects: usize,
        bits: u32,
        mut f: impl FnMut(usize, usize) -> u8,
    ) -> Self {
        let mut g = GradeMatrix::zeros(players, objects, bits);
        for p in 0..players {
            for o in 0..objects {
                g.set(p, o, f(p, o));
            }
        }
        g
    }

    /// Uniformly random grades.
    pub fn random<R: Rng + ?Sized>(rng: &mut R, players: usize, objects: usize, bits: u32) -> Self {
        let max = (1u16 << bits) as u8;
        GradeMatrix::from_fn(players, objects, bits, |_, _| rng.gen_range(0..max))
    }

    /// Number of players.
    pub fn players(&self) -> usize {
        self.players
    }

    /// Number of objects.
    pub fn objects(&self) -> usize {
        self.objects
    }

    /// Score resolution in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Grade of (`player`, `object`).
    #[inline]
    pub fn get(&self, player: usize, object: usize) -> u8 {
        self.grades[player * self.objects + object]
    }

    /// Set the grade of (`player`, `object`); must fit in `bits`.
    #[inline]
    pub fn set(&mut self, player: usize, object: usize, grade: u8) {
        assert!(
            (grade as u16) < (1u16 << self.bits),
            "grade {grade} out of range for {} bits",
            self.bits
        );
        self.grades[player * self.objects + object] = grade;
    }

    /// Decompose into `bits` binary planes (least-significant first).
    pub fn planes(&self) -> Vec<BitMatrix> {
        (0..self.bits)
            .map(|j| {
                let mut m = BitMatrix::zeros(self.players, self.objects);
                for p in 0..self.players {
                    let mut row = BitVec::zeros(self.objects);
                    for o in 0..self.objects {
                        if (self.get(p, o) >> j) & 1 == 1 {
                            row.set(o, true);
                        }
                    }
                    m.set_row(p, &row);
                }
                m
            })
            .collect()
    }

    /// Recombine binary planes (least-significant first) into grades.
    pub fn from_planes(planes: &[BitMatrix]) -> Self {
        assert!(!planes.is_empty() && planes.len() <= 8, "1..=8 planes");
        let players = planes[0].rows();
        let objects = planes[0].cols();
        let mut g = GradeMatrix::zeros(players, objects, planes.len() as u32);
        for (j, plane) in planes.iter().enumerate() {
            assert_eq!(plane.rows(), players, "plane {j} row mismatch");
            assert_eq!(plane.cols(), objects, "plane {j} col mismatch");
            for p in 0..players {
                for o in plane.row(p).iter_ones() {
                    g.grades[p * objects + o] |= 1 << j;
                }
            }
        }
        g
    }

    /// L1 distance between `player`'s row here and in `other` — the graded
    /// analogue of the Hamming "rate of error" (§8 suggests such metrics).
    pub fn l1_row_distance(&self, other: &GradeMatrix, player: usize) -> u64 {
        assert_eq!(self.objects, other.objects);
        (0..self.objects)
            .map(|o| {
                (i64::from(self.get(player, o)) - i64::from(other.get(player, o))).unsigned_abs()
            })
            .sum()
    }
}

/// Result of a graded run: per-plane outcomes plus the recombined scores.
pub struct GradedOutcome {
    /// Predicted grades.
    pub predicted: GradeMatrix,
    /// The binary outcome of each bit plane (LSB first).
    pub planes: Vec<Outcome>,
    /// Worst per-player L1 error against the truth.
    pub max_l1: u64,
    /// Mean per-player L1 error.
    pub mean_l1: f64,
}

/// Run the collaborative scoring protocol on graded preferences: once per
/// bit plane with independently derived seeds, then recombine.
pub fn score_graded(
    truth: &GradeMatrix,
    params: &ProtocolParams,
    algorithm: Algorithm,
    seed: u64,
) -> GradedOutcome {
    let planes = truth.planes();
    let outcomes: Vec<Outcome> = planes
        .iter()
        .enumerate()
        .map(|(j, plane)| {
            let instance = Instance::new(plane.clone(), None, format!("plane{j}"), seed);
            Session::builder()
                .instance(&instance)
                .params(params.clone())
                .build()
                .run(
                    algorithm,
                    byzscore_random::derive_seed(seed, &[0x6e_ad, j as u64]),
                )
        })
        .collect();

    let out_planes: Vec<BitMatrix> = outcomes.iter().map(|o| o.output().clone()).collect();
    let predicted = GradeMatrix::from_planes(&out_planes);

    let mut max_l1 = 0u64;
    let mut sum = 0u64;
    for p in 0..truth.players() {
        let e = truth.l1_row_distance(&predicted, p);
        max_l1 = max_l1.max(e);
        sum += e;
    }
    GradedOutcome {
        predicted,
        planes: outcomes,
        max_l1,
        mean_l1: sum as f64 / truth.players() as f64,
    }
}

// Seed-derivation tags of the graded plane.
const TAG_PLANE_SEED: u64 = 0x6e_d1;
const TAG_EPOCH: u64 = 0x6e_e0;

/// A multi-bit world whose *grades* drift over epochs — the graded half
/// of the dynamic-world plane (DESIGN.md §4.11).
///
/// Each bit plane of the base [`GradeMatrix`] becomes a
/// [`DriftingTruth`] under a plane-derived drift seed, so planes drift
/// independently while sharing one rate/locality law. A grade's
/// trajectory is therefore a bounded random walk in `0..2^bits`:
/// flipping plane `j` at some epoch moves the score by `±2^j`, and
/// [`DriftingGrades::at_epoch`] reconstructs the exact matrix at any `t`
/// (pure, bit-reproducible — the dense replay of every plane's schedule).
pub struct DriftingGrades {
    planes: Vec<DriftingTruth>,
    bits: u32,
}

impl DriftingGrades {
    /// A drifting grade world over `base`: plane `j` drifts under
    /// `schedule` re-seeded with a plane-`j` derivation.
    pub fn new(base: &GradeMatrix, schedule: &DriftSchedule) -> Self {
        let planes = base
            .planes()
            .into_iter()
            .enumerate()
            .map(|(j, plane)| {
                let mut s = schedule.clone();
                s.seed = derive_seed(schedule.seed, &[TAG_PLANE_SEED, j as u64]);
                DriftingTruth::new(plane, s)
            })
            .collect();
        DriftingGrades {
            planes,
            bits: base.bits(),
        }
    }

    /// Score resolution in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The exact grade matrix at epoch `t` (epoch 0 is the base).
    pub fn at_epoch(&self, t: u64) -> GradeMatrix {
        let planes: Vec<BitMatrix> = self.planes.iter().map(|p| p.materialize_at(t)).collect();
        GradeMatrix::from_planes(&planes)
    }

    /// The grade matrices of epochs `0..epochs`, reconstructed in one
    /// incremental per-plane replay
    /// ([`DriftingTruth::materialize_trajectory`]): entry `t` is
    /// bit-identical to [`DriftingGrades::at_epoch`]`(t)`, at `O(epochs)`
    /// total replay cost instead of `O(epochs²)`.
    pub fn trajectory(&self, epochs: u64) -> Vec<GradeMatrix> {
        if epochs == 0 {
            return Vec::new();
        }
        let per_plane: Vec<Vec<BitMatrix>> = self
            .planes
            .iter()
            .map(|p| p.materialize_trajectory(epochs - 1))
            .collect();
        (0..epochs as usize)
            .map(|t| {
                let planes: Vec<BitMatrix> = per_plane.iter().map(|v| v[t].clone()).collect();
                GradeMatrix::from_planes(&planes)
            })
            .collect()
    }
}

/// Run the graded protocol against a drifting world, once per epoch in
/// `0..epochs`, with independently derived seeds — the multi-bit drift
/// trajectory experiment e16 reports.
pub fn score_graded_drift(
    world: &DriftingGrades,
    params: &ProtocolParams,
    algorithm: Algorithm,
    epochs: u64,
    seed: u64,
) -> Vec<GradedOutcome> {
    world
        .trajectory(epochs)
        .iter()
        .enumerate()
        .map(|(t, truth)| {
            score_graded(
                truth,
                params,
                algorithm,
                derive_seed(seed, &[TAG_EPOCH, t as u64]),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn plane_roundtrip() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = GradeMatrix::random(&mut rng, 12, 30, 3);
        let back = GradeMatrix::from_planes(&g.planes());
        assert_eq!(g, back);
    }

    #[test]
    fn set_get_and_bounds() {
        let mut g = GradeMatrix::zeros(2, 3, 2);
        g.set(1, 2, 3);
        assert_eq!(g.get(1, 2), 3);
        assert_eq!(g.get(0, 0), 0);
        assert_eq!(g.bits(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn overflow_grade_panics() {
        let mut g = GradeMatrix::zeros(1, 1, 2);
        g.set(0, 0, 4);
    }

    #[test]
    fn l1_distance_basics() {
        let mut a = GradeMatrix::zeros(1, 3, 3);
        let mut b = GradeMatrix::zeros(1, 3, 3);
        a.set(0, 0, 7);
        b.set(0, 0, 2);
        b.set(0, 2, 1);
        assert_eq!(a.l1_row_distance(&b, 0), 5 + 1);
        assert_eq!(a.l1_row_distance(&a, 0), 0);
    }

    #[test]
    fn graded_clone_world_recovers_exactly() {
        // Four grade-clone classes: members share identical grade rows, so
        // every bit plane is a clone world and recovery is exact.
        let mut rng = SmallRng::seed_from_u64(5);
        let players = 64;
        let objects = 96;
        let classes = 4;
        let prototypes: Vec<GradeMatrix> = (0..classes)
            .map(|_| GradeMatrix::random(&mut rng, 1, objects, 2))
            .collect();
        let truth = GradeMatrix::from_fn(players, objects, 2, |p, o| {
            prototypes[p % classes].get(0, o)
        });
        let params = ProtocolParams::with_budget(4);
        let out = score_graded(&truth, &params, Algorithm::CalculatePreferences, 9);
        assert_eq!(out.planes.len(), 2);
        assert!(
            out.max_l1 <= 6,
            "graded clone world should be near-exact, max L1 {}",
            out.max_l1
        );
    }

    #[test]
    fn drifting_grades_epoch_zero_is_the_base() {
        let mut rng = SmallRng::seed_from_u64(11);
        let base = GradeMatrix::random(&mut rng, 10, 20, 3);
        let world = DriftingGrades::new(&base, &DriftSchedule::uniform(0.1, 5));
        assert_eq!(world.at_epoch(0), base);
        assert_eq!(world.bits(), 3);
    }

    #[test]
    fn drifting_grades_move_and_are_reproducible() {
        let mut rng = SmallRng::seed_from_u64(13);
        let base = GradeMatrix::random(&mut rng, 12, 24, 2);
        let world = DriftingGrades::new(&base, &DriftSchedule::uniform(0.2, 6));
        let a = world.at_epoch(3);
        let b = world.at_epoch(3);
        assert_eq!(a, b, "epoch reconstruction is pure");
        assert_ne!(a, base, "rate 0.2 over 3 epochs must move grades");
        // Planes drift under distinct derived seeds: the two planes of
        // some entry must disagree with lockstep flipping (statistically
        // certain at these sizes; checked via the L1 trajectory).
        let mut moved = 0u64;
        for p in 0..12 {
            moved += base.l1_row_distance(&a, p);
        }
        assert!(moved > 0);
    }

    #[test]
    fn trajectory_matches_at_epoch() {
        let mut rng = SmallRng::seed_from_u64(19);
        let base = GradeMatrix::random(&mut rng, 8, 16, 3);
        let world = DriftingGrades::new(&base, &DriftSchedule::uniform(0.1, 4));
        let traj = world.trajectory(4);
        assert_eq!(traj.len(), 4);
        for (t, g) in traj.iter().enumerate() {
            assert_eq!(g, &world.at_epoch(t as u64), "epoch {t}");
        }
        assert!(world.trajectory(0).is_empty());
    }

    #[test]
    fn graded_drift_trajectory_runs_per_epoch() {
        let mut rng = SmallRng::seed_from_u64(17);
        let prototypes: Vec<GradeMatrix> = (0..3)
            .map(|_| GradeMatrix::random(&mut rng, 1, 40, 2))
            .collect();
        let base = GradeMatrix::from_fn(24, 40, 2, |p, o| prototypes[p % 3].get(0, o));
        let world = DriftingGrades::new(&base, &DriftSchedule::uniform(0.005, 8));
        let params = ProtocolParams::with_budget(4);
        let traj = score_graded_drift(&world, &params, Algorithm::GlobalMajority, 3, 21);
        assert_eq!(traj.len(), 3);
        for (t, out) in traj.iter().enumerate() {
            assert_eq!(out.planes.len(), 2, "epoch {t} plane count");
            // Each epoch's L1 bound still holds against its own truth.
            let truth_t = world.at_epoch(t as u64);
            let mut max_l1 = 0;
            for p in 0..24 {
                max_l1 = max_l1.max(truth_t.l1_row_distance(&out.predicted, p));
            }
            assert_eq!(
                max_l1, out.max_l1,
                "epoch {t} scored against its epoch's truth"
            );
        }
    }

    #[test]
    fn graded_error_bounded_by_weighted_plane_errors() {
        let mut rng = SmallRng::seed_from_u64(7);
        let truth = GradeMatrix::random(&mut rng, 32, 48, 3);
        let params = ProtocolParams::with_budget(4);
        let out = score_graded(&truth, &params, Algorithm::GlobalMajority, 3);
        // L1 error ≤ Σ_j 2^j · (plane-j Hamming error) per player; check the
        // aggregate version of the bound.
        let bound: u64 = out
            .planes
            .iter()
            .enumerate()
            .map(|(j, o)| (1u64 << j) * o.errors.max as u64)
            .sum();
        assert!(
            out.max_l1 <= bound,
            "L1 {} exceeds weighted plane bound {bound}",
            out.max_l1
        );
    }
}
