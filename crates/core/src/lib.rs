//! **byzscore** — Byzantine-tolerant collaborative scoring.
//!
//! Rust reproduction of *"Collaborative Scoring with Dishonest
//! Participants"* (Gilbert, Guerraoui, Malakouti Rad, Zadimoghaddam —
//! SPAA 2010): `n` players collectively evaluate `n` objects so that every
//! player ends up with an accurate prediction of its own preference for
//! every object, probing only `O(B·polylog n)` objects each — and the
//! guarantee survives up to `n/(3B)` colluding Byzantine players.
//!
//! # The protocol (Figure 2)
//!
//! For each guessed diameter `D = 2^d`:
//!
//! 1. **Sample** (`sampling`): publish a shared random object sample `S`,
//!    each object kept with probability `Θ(log n)/D` — big enough that
//!    cluster structure survives on `S` (Lemma 6), small enough to be cheap.
//! 2. **Probe the sample** (`byzscore_blocks::small_radius`): on `S`,
//!    diameter-`D` clusters shrink to diameter `O(log n)`, so `SmallRadius`
//!    recovers every player's sample preferences `z(p)` (Lemma 7).
//! 3. **Cluster** (`cluster`): connect players with `|z(p) − z(q)|` below
//!    the edge threshold, then greedily peel clusters of size ≥ `n/B`
//!    (Lemmas 8–9).
//! 4. **Share the work** (`share`): within each cluster, every object is
//!    probed by `Θ(log n)` randomly chosen members and the majority wins —
//!    redundancy is what neutralizes the Byzantine members (Lemma 13).
//!
//! A final `RSelect` picks each player's best candidate across the diameter
//! guesses (Lemma 12 / Theorem 14).
//!
//! Dishonest players cannot be allowed to bias the shared randomness, so
//! the robust wrapper ([`robust`]) elects a leader per repetition with
//! Feige's lightest-bin protocol (§7.1, `byzscore-election`), runs the
//! whole pipeline once per beacon, and lets `RSelect` discard the
//! repetitions whose leader was dishonest.
//!
//! # Quick start
//!
//! ```
//! use byzscore::{Algorithm, ProtocolParams, Session};
//! use byzscore_model::{Balance, Workload};
//!
//! // 64 players, 256 objects, 4 planted taste clusters of diameter 4.
//! let instance = Workload::PlantedClusters {
//!     players: 64, objects: 256, clusters: 4, diameter: 4,
//!     balance: Balance::Even,
//! }
//! .generate(7);
//!
//! let session = Session::builder()
//!     .instance(&instance)
//!     .params(ProtocolParams::with_budget(8))
//!     .build();
//! let outcome = session.run(Algorithm::CalculatePreferences, 42);
//!
//! // Every honest player's prediction error is O(D).
//! assert!(outcome.errors.max <= 5 * 4);
//! ```
//!
//! A [`Session`] owns its substrate behind the `TruthSource` trait: dense
//! matrices for simulation sizes, or the `O(1)`-memory procedural backend
//! (`Session::builder().procedural(spec)`) for `n ≥ 10⁵` worlds. Sweeps of
//! independent `(algorithm, seed)` points run in parallel with
//! [`Session::run_sweep`]. Byzantine runs plug in a corruption model and
//! strategy from `byzscore-adversary`; see `examples/sybil_attack.rs`.
//!
//! Beyond the paper's static model, the [`dynamic`] module runs *sequences*
//! of executions over worlds that change between rounds — drifting truth
//! ([`DriftingTruth`]), population churn ([`ChurnSchedule`]), and
//! adversaries that re-target after observing each round
//! (`byzscore_adversary::AdaptiveCorruption`) — and [`graded`] extends the
//! plane to multi-bit scores, drifting or not.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod cluster;
pub mod dynamic;
mod fused;
pub mod graded;
mod params;
mod protocol;
mod robust;
mod runner;
pub mod sampling;
pub mod share;

pub use byzscore_board::{
    ClusterSpec, DenseTruth, DriftLocality, DriftSchedule, DriftingTruth, ProceduralTruth,
    RemappedTruth, TruthSource,
};
pub use cluster::{
    cluster_players_with, Clustering, GroupCache, NeighborIndex, NeighborStrategy, WarmStart,
};
pub use dynamic::{
    remap_planted, ChurnSchedule, DynamicOutcome, DynamicWorld, DynamicWorldBuilder, RoundReport,
};
pub use params::ProtocolParams;
pub use protocol::calculate_preferences;
pub use robust::robust_calculate_preferences;
pub use runner::{Algorithm, BuildError, Outcome, OutputSink, Session, SessionBuilder, SweepPoint};
