//! Protocol-level parameters (on top of the block-level constants).

use byzscore_blocks::BlockParams;

use crate::cluster::NeighborStrategy;

/// All protocol-level constants of Figure 2 and §7, explicit.
///
/// `blocks` carries the Figure-1 constants; the fields here govern the
/// outer protocol. Two presets:
///
/// * [`ProtocolParams::with_budget`] — tuned for `n ∈ [64, 4096]`; keeps
///   the asymptotic shape (what the experiments measure) at practical probe
///   counts.
/// * [`ProtocolParams::paper_faithful`] — the literal constants of the
///   text: `10 ln n / D` sampling, `20 ln n` sample diameter, `220 ln n`
///   edge threshold.
#[derive(Clone, Debug)]
pub struct ProtocolParams {
    /// Figure-1 constants.
    pub blocks: BlockParams,
    /// Sampling constant: object kept in `S` with probability
    /// `c_sample · ln n / D` (paper: 10).
    pub c_sample: f64,
    /// Sample-diameter multiplier: `SmallRadius` runs on `S` with diameter
    /// `2 · c_sample · ln n` (paper: 20 ln n, i.e. 2 × its c_sample).
    pub sample_diam_mult: f64,
    /// Edge threshold multiplier: neighbor-graph edge iff
    /// `|z(p) − z(q)| ≤ edge_mult · c_sample · ln n`.
    /// Paper: `220 ln n = 22 × (10 ln n)`, so its edge_mult is 22 —
    /// `2 × (SmallRadius error bound 100 ln n) + (sample distance 20 ln n)`.
    pub edge_mult: f64,
    /// Work-sharing redundancy: each object probed by
    /// `max(3, ceil(c_probe_rep · ln n))` cluster members (paper: Θ(log n)).
    pub c_probe_rep: f64,
    /// Robust-mode repetitions = `max(2, ceil(c_elect_reps · log₂ n))`
    /// (paper: Θ(log n) elections).
    pub c_elect_reps: f64,
    /// Baseline (`NaiveSampling`): public sample size
    /// `naive_sample_mult · B · ln n`.
    pub naive_sample_mult: f64,
    /// Degree slack for cluster peeling: a seed needs
    /// `ceil(degree_frac · n/B) − 1` neighbors instead of the full
    /// `n/B − 1`. The paper states Lemma 8's degree bound for honest
    /// executions; with up to `n/(3B)` Byzantine players, the dishonest
    /// members of a planted cluster post garbage sample vectors and vanish
    /// from the neighbor graph, so an honest member's visible degree can
    /// drop to `n/B − n/(3B) − 1`. `2/3` is exactly that allowance; probe
    /// loads grow by at most 3/2 (same asymptotics, Lemma 10).
    pub degree_frac: f64,
    /// If true, a dishonest elected leader publishes degenerate bits that
    /// force an empty sample (an explicit sabotage model — the strongest
    /// "biased randomness" attack our beacon abstraction can express).
    /// If false, a dishonest leader's bits are modeled as arbitrary but
    /// fixed. Either way the §7.1 defense (repetition + RSelect) is what
    /// must absorb it.
    pub leader_sabotage: bool,
    /// How step 1.d discovers the Lemma-8 neighbor graph: the exact
    /// `O(n²)` pass, the sound banded prefilter, or a per-size automatic
    /// choice. All strategies produce the identical edge set; this only
    /// trades discovery time and memory.
    pub neighbor_strategy: NeighborStrategy,
}

impl ProtocolParams {
    /// Tuned defaults with the given budget `B`.
    pub fn with_budget(budget_b: usize) -> Self {
        ProtocolParams {
            blocks: BlockParams::with_budget(budget_b),
            c_sample: 2.0,
            sample_diam_mult: 2.0,
            edge_mult: 3.0,
            c_probe_rep: 1.0,
            c_elect_reps: 0.4,
            naive_sample_mult: 2.0,
            degree_frac: 2.0 / 3.0,
            leader_sabotage: true,
            neighbor_strategy: NeighborStrategy::Auto,
        }
    }

    /// The literal constants of the paper's text.
    pub fn paper_faithful(budget_b: usize) -> Self {
        ProtocolParams {
            blocks: BlockParams::paper_faithful(budget_b),
            c_sample: 10.0,
            sample_diam_mult: 2.0,
            edge_mult: 22.0,
            c_probe_rep: 1.0,
            c_elect_reps: 1.0,
            naive_sample_mult: 2.0,
            degree_frac: 2.0 / 3.0,
            leader_sabotage: true,
            neighbor_strategy: NeighborStrategy::Auto,
        }
    }

    /// Budget `B`.
    pub fn budget(&self) -> usize {
        self.blocks.budget_b
    }

    /// Minimum cluster size `⌈n/B⌉` for `n` players (Definition 1 /
    /// Lemma 9).
    pub fn min_cluster_size(&self, n: usize) -> usize {
        n.div_ceil(self.budget().max(1)).max(1)
    }

    /// The `SmallRadius` diameter used on the sample:
    /// `sample_diam_mult · c_sample · ln n` (paper: 20 ln n).
    pub fn sample_diameter(&self, n: usize) -> usize {
        (self.sample_diam_mult * self.c_sample * (n.max(2) as f64).ln()).ceil() as usize
    }

    /// Neighbor-graph edge threshold on sample distances (paper: 220 ln n).
    pub fn edge_threshold(&self, n: usize) -> usize {
        (self.edge_mult * self.c_sample * (n.max(2) as f64).ln()).ceil() as usize
    }

    /// Peeling degree threshold: seeds need this many members in their
    /// neighborhood (themselves included) — `n/B` shrunk by the Byzantine
    /// allowance (see [`ProtocolParams::degree_frac`]).
    pub fn peel_min_size(&self, n: usize) -> usize {
        ((self.min_cluster_size(n) as f64) * self.degree_frac).ceil() as usize
    }

    /// Per-object work-sharing redundancy (paper: Θ(log n), must be ≥ 3 for
    /// a meaningful majority).
    pub fn probe_reps(&self, n: usize) -> usize {
        ((self.c_probe_rep * (n.max(2) as f64).ln()).ceil() as usize).max(3)
    }

    /// Robust-mode repetition count (paper: Θ(log n)).
    pub fn election_reps(&self, n: usize) -> usize {
        let log2n = (usize::BITS - n.max(2).leading_zeros()) as usize;
        ((self.c_elect_reps * log2n as f64).ceil() as usize).max(2)
    }

    /// The doubling diameter guesses of Figure 2 step 1 for `objects`
    /// columns: `D = 2^d` from `max(2, ~ln n)` (below which the whole-object
    /// `SmallRadius` case applies — §6.1's easy case, covered by the first
    /// guess because the sample rate clamps to 1) up to the object count.
    pub fn diameter_guesses(&self, n: usize, objects: usize) -> Vec<usize> {
        let ln_n = (n.max(2) as f64).ln();
        let mut d = 1usize;
        while (d as f64) < ln_n {
            d *= 2;
        }
        let mut out = Vec::new();
        while d < 2 * objects.max(1) {
            out.push(d);
            d *= 2;
        }
        if out.is_empty() {
            out.push(1);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_relationship() {
        let tuned = ProtocolParams::with_budget(8);
        let paper = ProtocolParams::paper_faithful(8);
        assert!(paper.c_sample > tuned.c_sample);
        assert_eq!(paper.edge_mult, 22.0);
        assert_eq!(tuned.budget(), 8);
    }

    #[test]
    fn paper_constants_reproduce_text() {
        // n such that ln n is clean-ish: the text's 10 ln n / 20 ln n /
        // 220 ln n relationships must hold exactly.
        let p = ProtocolParams::paper_faithful(4);
        let n = 1024;
        let ln_n = (n as f64).ln();
        assert_eq!(p.sample_diameter(n), (20.0 * ln_n).ceil() as usize);
        assert_eq!(p.edge_threshold(n), (220.0 * ln_n).ceil() as usize);
    }

    #[test]
    fn min_cluster_size_is_n_over_b() {
        let p = ProtocolParams::with_budget(8);
        assert_eq!(p.min_cluster_size(64), 8);
        assert_eq!(p.min_cluster_size(65), 9);
        assert_eq!(p.min_cluster_size(1), 1);
    }

    #[test]
    fn diameter_guesses_cover_range() {
        let p = ProtocolParams::with_budget(8);
        let guesses = p.diameter_guesses(256, 256);
        assert!(!guesses.is_empty());
        // First guess ≈ ln n (the direct-SmallRadius regime folds in here).
        assert!(*guesses.first().unwrap() >= 4);
        assert!(*guesses.first().unwrap() <= 16);
        // Guesses double and reach the object count.
        for w in guesses.windows(2) {
            assert_eq!(w[1], 2 * w[0]);
        }
        assert!(*guesses.last().unwrap() >= 256);
    }

    #[test]
    fn probe_reps_floor() {
        let p = ProtocolParams::with_budget(8);
        assert!(p.probe_reps(4) >= 3);
        assert!(p.election_reps(4) >= 2);
    }
}
