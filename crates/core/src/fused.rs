//! Per-player streaming `RSelect` tournaments, advanced in lockstep with
//! the guess loop.
//!
//! Step 2 of Figure 2 used to wait for the whole guess loop and then run
//! one batch `RSelect` per player over the full `n × guesses × m`
//! candidate matrix. [`FusedSelect`] folds that tournament into the loop:
//! each guess's candidate is pushed into the player's
//! [`StreamingRSelect`] the moment it exists, eliminated candidates are
//! freed immediately, and residency is capped near `n × m`. Outputs are
//! bit-identical to the batch path — the streaming machine replays the
//! batch pair order and RNG draws exactly (see the replay contract on
//! [`StreamingRSelect`]), dishonest players still produce their
//! `vector_claim` at the very end against the same board state, and under
//! a memoizing oracle the probe ledgers are order-independent, so moving
//! honest `RSelect` probes earlier changes no probe column.

use byzscore_adversary::Phase;
use byzscore_bitset::BitVec;
use byzscore_blocks::{Ctx, StreamingRSelect};
use byzscore_board::par::par_update_items;
use rand::rngs::SmallRng;

/// An honest player's in-flight tournament: the streaming selector plus
/// the private RNG that replays the batch path's draw order.
type PlayerState = Option<(StreamingRSelect, SmallRng)>;

/// One tournament per player: honest players hold a streaming selector
/// plus their private RNG (seeded exactly as the batch path would);
/// dishonest players hold nothing and answer with `vector_claim` at
/// [`FusedSelect::finish`].
pub(crate) struct FusedSelect {
    states: Vec<PlayerState>,
}

impl FusedSelect {
    /// Set up tournaments for all players; `rng_tags` are the private
    /// stream tags the batch caller would pass to `Ctx::player_rng`.
    pub(crate) fn new(ctx: &Ctx<'_>, rng_tags: &[u64]) -> FusedSelect {
        FusedSelect::with_pool(ctx, rng_tags, Vec::new())
    }

    /// [`FusedSelect::new`] drawing honest players' machines from `pool`
    /// (reset under `ctx`) before allocating fresh ones — the reusable
    /// select state a warm-started session carries across recomputes
    /// ([`crate::cluster::WarmStart`]). A reset machine replays a fresh
    /// one draw for draw, so outputs are bit-identical either way.
    pub(crate) fn with_pool(
        ctx: &Ctx<'_>,
        rng_tags: &[u64],
        mut pool: Vec<StreamingRSelect>,
    ) -> FusedSelect {
        let states = (0..ctx.n() as u32)
            .map(|p| {
                if ctx.behaviors.is_dishonest(p) {
                    None
                } else {
                    let sel = match pool.pop() {
                        Some(mut sel) => {
                            sel.reset(ctx);
                            sel
                        }
                        None => StreamingRSelect::new(ctx),
                    };
                    Some((sel, ctx.player_rng(p, rng_tags)))
                }
            })
            .collect();
        FusedSelect { states }
    }

    /// Feed one guess's candidates (one per player) into the tournaments,
    /// in parallel over players.
    pub(crate) fn absorb(&mut self, ctx: &Ctx<'_>, w_d: Vec<BitVec>, objects: &[u32]) {
        assert_eq!(w_d.len(), self.states.len(), "one candidate per player");
        let mut pairs: Vec<(Option<BitVec>, &mut PlayerState)> = w_d
            .into_iter()
            .map(Some)
            .zip(self.states.iter_mut())
            .collect();
        par_update_items(&mut pairs, |p, (w, state)| {
            if let Some((sel, rng)) = state.as_mut() {
                let cand = w.take().expect("candidate consumed once");
                sel.push(ctx, p as u32, cand, objects, rng);
            }
        });
    }

    /// Close every tournament and return the per-player winners. Records
    /// the summed per-player peak candidate residency into `ctx.meter`
    /// when one is attached (the sum of deterministic per-player peaks is
    /// itself deterministic, whatever the thread count).
    pub(crate) fn finish(self, ctx: &Ctx<'_>, objects: &[u32]) -> Vec<BitVec> {
        self.finish_recycling(ctx, objects).0
    }

    /// [`FusedSelect::finish`] that also hands back the spent honest-player
    /// machines so the caller can pool them for the next run (they carry
    /// their candidate-slot allocations; `reset` rearms them).
    pub(crate) fn finish_recycling(
        self,
        ctx: &Ctx<'_>,
        objects: &[u32],
    ) -> (Vec<BitVec>, Vec<StreamingRSelect>) {
        type Slot = (PlayerState, Option<BitVec>, u64);
        let mut slots: Vec<Slot> = self.states.into_iter().map(|s| (s, None, 0)).collect();
        par_update_items(&mut slots, |p, (state, out, peak)| match state.as_mut() {
            Some((sel, rng)) => {
                let (_, winner) = sel.finish_round(ctx, p as u32, objects, rng);
                *peak = sel.peak_bytes();
                *out = Some(winner);
            }
            None => {
                *out = Some(ctx.behaviors.vector_claim(Phase::Other, p as u32, objects));
            }
        });
        if let Some(meter) = ctx.meter {
            meter.add_peak(slots.iter().map(|(_, _, peak)| peak).sum());
        }
        let mut outputs = Vec::with_capacity(slots.len());
        let mut recycled = Vec::new();
        for (state, out, _) in slots {
            if let Some((sel, _)) = state {
                recycled.push(sel);
            }
            outputs.push(out.expect("every player produced an output"));
        }
        (outputs, recycled)
    }
}
