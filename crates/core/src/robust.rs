//! §7: the Byzantine-robust wrapper — elect, repeat, select.
//!
//! Shared randomness is the one resource Figure 2 cannot create for itself:
//! if the dishonest players bias the sample or the probe assignments, every
//! guarantee collapses (see `share_work`'s `rig` mode for how bad it gets).
//! The paper's remedy (§7.1): elect a leader with Feige's lightest-bin
//! protocol — honest with constant probability — and let the leader publish
//! the bits. Repeat the whole pipeline Θ(log n) times with fresh elections;
//! with high probability some repetition had an honest leader, and each
//! player's final `RSelect` over the repetition candidates discards the
//! sabotaged ones.

use byzscore_bitset::BitVec;
use byzscore_blocks::Ctx;
use byzscore_election::{elect, BinStrategy, ElectionParams};
use byzscore_random::{derive_seed, tags, Beacon};

use crate::fused::FusedSelect;
use crate::protocol::calculate_preferences;
use crate::ProtocolParams;

/// Per-repetition record, for experiment introspection (E9/E10).
#[derive(Clone, Debug)]
pub struct RepetitionLog {
    /// Elected leader.
    pub leader: u32,
    /// Whether that leader was honest.
    pub leader_honest: bool,
    /// Election rounds played.
    pub election_rounds: usize,
}

/// Run the full §7 protocol: `reps` (Θ(log n)) iterations of
/// (lightest-bin election → leader beacon → `CalculatePreferences`),
/// finished with a per-player `RSelect` across the repetition candidates.
///
/// `election_adversary` controls how the coordinated dishonest players
/// play the bin game (rushing, full-information). The master context's
/// beacon seeds the private election coins and derives each leader's
/// published beacon; a dishonest leader's beacon carries
/// dishonest provenance, which (with `params.leader_sabotage`) triggers
/// the sabotage model inside Figure 2.
///
/// Returns the per-player outputs plus the repetition log.
pub fn robust_calculate_preferences(
    ctx: &Ctx<'_>,
    params: &ProtocolParams,
    election_adversary: &dyn BinStrategy,
) -> (Vec<BitVec>, Vec<RepetitionLog>) {
    let n = ctx.n();
    let m = ctx.oracle.objects();
    let reps = params.election_reps(n);
    let election_params = ElectionParams::for_players(n);
    let dishonest_mask = ctx.behaviors.dishonest_mask();

    let mut logs = Vec::with_capacity(reps);
    // Final-RSelect tournaments run fused with the repetition loop: each
    // repetition's candidates are pushed the moment they exist, so only
    // surviving candidates stay resident instead of all `reps` of them.
    let all_objects: Vec<u32> = (0..m as u32).collect();
    let mut fused = FusedSelect::new(ctx, &[0x0b57, 0xf1aa1]);

    for r in 0..reps {
        // §7.1: elect a leader (full information, rushing adversary).
        let election_seed = derive_seed(ctx.beacon.seed(), &[tags::ELECTION, r as u64]);
        let outcome = elect(
            dishonest_mask,
            election_adversary,
            &election_params,
            election_seed,
        );

        // The leader publishes its random string; we model it as a beacon
        // derived from (master seed, repetition, leader). A dishonest
        // leader's string is adversarial: dishonest provenance.
        let beacon_seed = derive_seed(
            ctx.beacon.seed(),
            &[0xbeac, r as u64, u64::from(outcome.leader)],
        );
        let beacon = if outcome.leader_honest {
            Beacon::honest(beacon_seed)
        } else {
            Beacon::dishonest(beacon_seed)
        };
        logs.push(RepetitionLog {
            leader: outcome.leader,
            leader_honest: outcome.leader_honest,
            election_rounds: outcome.rounds,
        });

        let rep_ctx = ctx.with_beacon(beacon);
        let w_r = calculate_preferences(&rep_ctx, params, &[0x0b57, r as u64]);
        fused.absorb(ctx, w_r, &all_objects);

        // Release any remaining posts of this repetition (the per-diameter
        // retirement inside `calculate_preferences` catches almost all of
        // them; this is the backstop that keeps repetitions from leaking).
        ctx.board.retire_prefix(&[0x0b57, r as u64]);
    }

    // Final RSelect across repetitions ("the players then execute RSelect
    // to choose the best vector"). Run under the master context — RSelect
    // is local and needs no shared randomness (§7.1).
    let out = fused.finish(ctx, &all_objects);
    (out, logs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzscore_adversary::{Behaviors, Corruption, Inverter};
    use byzscore_bitset::Bits;
    use byzscore_board::{Board, Oracle};
    use byzscore_election::GreedyInfiltrate;
    use byzscore_model::{Balance, Workload};

    #[test]
    fn robust_run_with_inverters_keeps_honest_error_small() {
        let d = 6;
        let budget = 4;
        let inst = Workload::PlantedClusters {
            players: 96,
            objects: 96,
            clusters: 4,
            diameter: d,
            balance: Balance::Even,
        }
        .generate(7);
        let count = Corruption::paper_threshold(96, budget); // n/(3B) = 8
        let dishonest = Corruption::Count { count }.select(&inst, 1);
        let behaviors = Behaviors::new(inst.truth(), dishonest, &Inverter);
        let params = ProtocolParams::with_budget(budget);
        let oracle = Oracle::new(inst.truth());
        let board = Board::new();
        let ctx = Ctx::new(
            &oracle,
            &board,
            &behaviors,
            Beacon::honest(3),
            &params.blocks,
        );
        let (out, logs) = robust_calculate_preferences(&ctx, &params, &GreedyInfiltrate);
        assert_eq!(logs.len(), params.election_reps(96));
        assert!(
            logs.iter().any(|l| l.leader_honest),
            "no repetition had an honest leader — amplification failed"
        );
        let mut worst = 0;
        for p in 0..96u32 {
            if !behaviors.is_dishonest(p) {
                worst = worst.max(out[p as usize].hamming(&inst.truth().row(p as usize)));
            }
        }
        assert!(worst <= 6 * d, "honest error {worst} > 6D in robust mode");
    }

    #[test]
    fn all_honest_robust_equals_low_error() {
        let inst = Workload::CloneClasses {
            players: 64,
            objects: 64,
            classes: 2,
            balance: Balance::Even,
        }
        .generate(11);
        let params = ProtocolParams::with_budget(4);
        let behaviors = Behaviors::all_honest(inst.truth());
        let oracle = Oracle::new(inst.truth());
        let board = Board::new();
        let ctx = Ctx::new(
            &oracle,
            &board,
            &behaviors,
            Beacon::honest(5),
            &params.blocks,
        );
        let (out, logs) = robust_calculate_preferences(&ctx, &params, &GreedyInfiltrate);
        assert!(logs.iter().all(|l| l.leader_honest));
        let worst = (0..64)
            .map(|p| out[p].hamming(&inst.truth().row(p)))
            .max()
            .unwrap();
        assert!(worst <= 2, "clone world robust error {worst}");
    }
}
