//! Step 1.d: neighbor discovery over sample vectors and greedy cluster
//! peeling (§6.5, Lemmas 8–9).
//!
//! The Lemma-8 edge set — `(p, q)` is an edge iff `|z(p) − z(q)| ≤ τ` — is
//! produced by a [`NeighborIndex`], which offers three discovery strategies
//! behind one API:
//!
//! * [`NeighborStrategy::Exact`] — the literal all-pairs `O(n²)`
//!   bounded-distance pass, adjacency materialized. Cheap and cache-friendly
//!   up to a few thousand players.
//! * [`NeighborStrategy::Banded`] — a *sound* LSH/bit-bucketing prefilter:
//!   the `|S|` sample coordinates are split into `τ + 1` disjoint bands, and
//!   by pigeonhole any pair within distance `τ` must agree **exactly** on at
//!   least one band (if all `τ + 1` bands differed somewhere, the total
//!   distance would be ≥ `τ + 1`). Only pairs sharing a band bucket are
//!   candidates; each survivor is verified with an exact
//!   [`hamming_within`](byzscore_bitset::Bits::hamming_within), so the edge
//!   set is **identical** to the exact pass — the bands only prune, never
//!   decide. Crucially the banded index also *peels lazily*: adjacency is
//!   never materialized, so dense neighborhoods (a planted cluster of
//!   `n/B = 12 500` players at `n = 10⁵` is a clique of ~7.8·10⁷ edges,
//!   ~1.6·10⁸ adjacency-list entries) cost no memory.
//!
//! * [`NeighborStrategy::Grouped`] — deduplicate bit-identical `z`-vectors
//!   first and work on the *group graph*. Distance-0 players are neighbors
//!   at any `τ ≥ 0`, so every member of a group has exactly the same
//!   neighborhood (its group mates plus every member of each group whose
//!   representative is within `τ`): the Lemma-8 edge set factors through
//!   groups, and discovery plus peeling run over `G ≤ n` representatives
//!   weighted by multiplicity. `SmallRadius`/sample outputs collapse
//!   heavily inside planted clusters, so at e13 scale `G` is orders of
//!   magnitude below `n` and the quadratic part shrinks by `(G/n)²`.
//!   When grouping barely collapses (`G > 7n/8`) the strategy falls back
//!   to direct banding over players, which is strictly cheaper there.
//!
//! All strategies fall back to an explicit complete-graph shortcut when
//! `τ ≥ |S|` (every pair is trivially within threshold — the empty-sample
//! sabotage case). Banded discovery keeps pruning at mid-range thresholds
//! via *multi-probe* bucketing: when `τ + 1` exact-match bands would be too
//! narrow (`< MIN_BAND_BITS` bits), it uses `⌊τ/2⌋ + 1` wider bands — some
//! band then differs in at most one bit, so probing the exact bucket plus
//! every single-bit-flip bucket keeps the prune sound. Only when even those
//! bands would be too narrow does discovery degrade to the unmaterialized
//! blocked scan, and that scan now carries a per-band popcount prefilter:
//! the L1 distance of two players' per-band popcount profiles lower-bounds
//! their Hamming distance, so far pairs are rejected from a few bytes
//! without touching the word kernels (ROADMAP "neighbor discovery beyond
//! bands").

use std::collections::HashMap;
use std::sync::Arc;

use byzscore_bitset::{BitMatrix, BitVec, Bits};
use byzscore_board::par::par_map_players;

/// A clustering of the players.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Clustering {
    /// For each player, the index of its cluster.
    pub assignment: Vec<u32>,
    /// Member lists (each sorted ascending).
    pub clusters: Vec<Vec<u32>>,
}

impl Clustering {
    /// Members of `player`'s cluster.
    pub fn cluster_of(&self, player: u32) -> &[u32] {
        &self.clusters[self.assignment[player as usize] as usize]
    }

    /// Size of the smallest cluster (Lemma 9 property 2: ≥ n/B).
    pub fn min_size(&self) -> usize {
        self.clusters.iter().map(Vec::len).min().unwrap_or(0)
    }

    /// Everyone in exactly one cluster (Lemma 9 property 1).
    pub fn is_partition(&self) -> bool {
        let n = self.assignment.len();
        let mut seen = vec![false; n];
        for members in &self.clusters {
            for &p in members {
                if seen[p as usize] {
                    return false;
                }
                seen[p as usize] = true;
            }
        }
        seen.into_iter().all(|s| s)
    }
}

/// How [`NeighborIndex::build`] discovers the Lemma-8 edge set.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum NeighborStrategy {
    /// Pick per input shape: `Exact` up to [`AUTO_EXACT_MAX`] players
    /// (materialization is cheap there), `Grouped` beyond (which itself
    /// bands directly when dedup barely collapses).
    #[default]
    Auto,
    /// All-pairs `O(n²)` bounded-distance pass with materialized adjacency.
    Exact,
    /// Banded prefilter + exact verification; adjacency never materialized.
    Banded,
    /// Deduplicate bit-identical vectors, discover edges over group
    /// representatives (weighted by multiplicity), expand during peel.
    /// Falls back to the banded path when grouping barely collapses
    /// (`G > 7n/8`) — there the group indirection would cost more than
    /// it prunes.
    Grouped,
}

/// Largest player count for which [`NeighborStrategy::Auto`] still picks
/// the materialized exact pass.
pub const AUTO_EXACT_MAX: usize = 4096;

/// Minimum band width (bits) for the banded prefilter to be worth its
/// bucket overhead; below this the prune keeps nearly every pair and the
/// index degrades to an unmaterialized blocked scan.
const MIN_BAND_BITS: usize = 16;

/// Width (bits) of the popcount-profile bands backing the scan-mode
/// prefilter.
const PC_BAND_BITS: usize = 8;

enum Mode {
    /// `threshold ≥ |S|`: every pair is an edge; nothing is stored.
    Complete,
    /// Exact strategy: full adjacency lists (sorted ascending).
    Materialized(Vec<Vec<u32>>),
    /// Banded prefilter: per-band hash buckets prune candidate pairs
    /// (exact-match bands, or wider multi-probe bands at mid-range `τ`).
    Banded(Bands),
    /// Bands too narrow even for multi-probe: verify every pair on demand
    /// with the blocked kernel behind a per-band popcount prefilter; never
    /// materialize.
    Scan(PopFilter),
    /// Bit-identical vectors deduplicated; an inner index over the group
    /// representatives answers group-graph queries, expanded back to
    /// players on the fly.
    Grouped(Groups),
}

struct Bands {
    /// Number of bands (`threshold + 1`, or `⌊threshold/2⌋ + 1` when
    /// multi-probing).
    k: usize,
    /// Vector length (needed to recompute band boundaries for probing).
    len: usize,
    /// Single-bit-flip probing active (mid-`τ` mode).
    probe: bool,
    /// `keys[p * k + j]` = FNV hash of player `p`'s bits in band `j`.
    keys: Vec<u64>,
    /// Raw band contents (`≤ 64` bits each); only filled when probing,
    /// where flipped-key computation needs them.
    contents: Vec<u64>,
    /// Per-band: band key → players carrying it (ascending, by build order).
    buckets: Vec<HashMap<u64, Vec<u32>>>,
}

impl Bands {
    fn build(rows: &BitMatrix, k: usize, probe: bool) -> Bands {
        let n = rows.rows();
        let len = rows.cols();
        let mut keys = Vec::with_capacity(n * k);
        let mut contents = Vec::with_capacity(if probe { n * k } else { 0 });
        let mut buckets: Vec<HashMap<u64, Vec<u32>>> = (0..k).map(|_| HashMap::new()).collect();
        for p in 0..n {
            let words = rows.row(p);
            for (j, bucket) in buckets.iter_mut().enumerate() {
                let (start, end) = band_range(len, k, j);
                let key = if probe {
                    debug_assert!(end - start <= 64, "multi-probe bands must fit one word");
                    let content = extract_bits(words.words(), start, end - start);
                    contents.push(content);
                    fnv_u64(content)
                } else {
                    band_key(words.words(), start, end)
                };
                keys.push(key);
                bucket.entry(key).or_default().push(p as u32);
            }
        }
        Bands {
            k,
            len,
            probe,
            keys,
            contents,
            buckets,
        }
    }

    #[inline]
    fn key(&self, p: usize, j: usize) -> u64 {
        self.keys[p * self.k + j]
    }

    /// True iff `p` and `q` share a band key strictly before band `j` —
    /// the dedup rule: a candidate pair is processed only at its *first*
    /// shared band.
    #[inline]
    fn shares_band_before(&self, p: usize, q: usize, j: usize) -> bool {
        (0..j).any(|i| self.key(p, i) == self.key(q, i))
    }

    /// Visit every distinct candidate `q ≠ p` sharing at least one band
    /// bucket with `p`, exactly once. `buckets` is passed explicitly so
    /// peeling can substitute a compacted (alive-only) working copy.
    fn for_candidates(
        &self,
        buckets: &[HashMap<u64, Vec<u32>>],
        p: usize,
        mut f: impl FnMut(usize),
    ) {
        if !self.probe {
            for (j, bucket_map) in buckets.iter().enumerate() {
                let Some(bucket) = bucket_map.get(&self.key(p, j)) else {
                    continue;
                };
                for &q32 in bucket {
                    let q = q32 as usize;
                    if q != p && !self.shares_band_before(p, q, j) {
                        f(q);
                    }
                }
            }
            return;
        }
        // Multi-probe: with `k = ⌊τ/2⌋ + 1` bands a pair within `τ` has
        // some band differing in at most `⌊τ/k⌋ ≤ 1` bits, so its bucket is
        // reached either by the exact key or by flipping exactly one bit of
        // `p`'s band content. A candidate can surface through several
        // probes; collect + sort + dedup, order never matters to callers.
        let mut cands: Vec<u32> = Vec::new();
        for (j, bucket_map) in buckets.iter().enumerate() {
            if let Some(bucket) = bucket_map.get(&self.key(p, j)) {
                cands.extend_from_slice(bucket);
            }
            let (start, end) = band_range(self.len, self.k, j);
            let content = self.contents[p * self.k + j];
            for bit in 0..(end - start) {
                if let Some(bucket) = bucket_map.get(&fnv_u64(content ^ (1u64 << bit))) {
                    cands.extend_from_slice(bucket);
                }
            }
        }
        cands.sort_unstable();
        cands.dedup();
        for q32 in cands {
            let q = q32 as usize;
            if q != p {
                f(q);
            }
        }
    }
}

/// Per-band popcount profiles: the L1 distance between two players'
/// profiles lower-bounds their Hamming distance (each band contributes at
/// least `|pc_j(p) − pc_j(q)|` differing bits), so scan-mode pair checks
/// reject far pairs from a handful of byte-sized counters.
struct PopFilter {
    k: usize,
    counts: Vec<u16>,
}

impl PopFilter {
    fn build(rows: &BitMatrix) -> PopFilter {
        let n = rows.rows();
        let len = rows.cols();
        let k = (len / PC_BAND_BITS).clamp(1, 64);
        let mut counts = Vec::with_capacity(n * k);
        for p in 0..n {
            let words = rows.row(p);
            for j in 0..k {
                let (start, end) = band_range(len, k, j);
                counts.push(popcount_range(words.words(), start, end) as u16);
            }
        }
        PopFilter { k, counts }
    }

    /// True iff the popcount lower bound does not already exceed
    /// `threshold` (a `false` is a proven non-edge; a `true` still needs
    /// exact verification).
    #[inline]
    fn admits(&self, p: usize, q: usize, threshold: usize) -> bool {
        let a = &self.counts[p * self.k..(p + 1) * self.k];
        let b = &self.counts[q * self.k..(q + 1) * self.k];
        let mut l1 = 0usize;
        for (x, y) in a.iter().zip(b) {
            l1 += x.abs_diff(*y) as usize;
        }
        l1 <= threshold
    }
}

/// Bit-identical-vector grouping plus an inner index over representatives.
///
/// Soundness of the factoring: members of one group are at distance 0, so
/// they are mutual neighbors at every `τ ≥ 0`, and `|z(p) − z(q)|` depends
/// only on the groups of `p` and `q` — the Lemma-8 edge set is exactly
/// "same group, or groups whose representatives are within `τ`".
struct Groups {
    /// Player → group id (ids in order of first appearance). Shared so a
    /// [`GroupCache`] can reuse one grouping across every diameter guess.
    group_of: Arc<Vec<u32>>,
    /// Group member lists, each ascending; `members[g][0]` is the
    /// representative (and the group's smallest player index).
    members: Arc<Vec<Vec<u32>>>,
    /// Index over the representative vectors, same threshold. Never
    /// `Grouped` itself (groups are distinct by construction).
    inner: Box<NeighborIndex>,
}

/// The banded-family mode for this shape: exact-match bands when `τ+1`
/// bands are wide enough, multi-probe bands at mid-`τ`, prefiltered scan
/// beyond.
fn banded_mode(rows: &BitMatrix, threshold: usize) -> Mode {
    let len = rows.cols();
    let k_exact = threshold + 1;
    let k_probe = threshold / 2 + 1;
    if len / k_exact >= MIN_BAND_BITS {
        Mode::Banded(Bands::build(rows, k_exact, false))
    } else if len / k_probe >= MIN_BAND_BITS {
        // `len < MIN·(τ+1) ≤ 2·MIN·k_probe` here, so probe bands are
        // < 2·MIN = 32 bits — they fit one word.
        Mode::Banded(Bands::build(rows, k_probe, true))
    } else {
        Mode::Scan(PopFilter::build(rows))
    }
}

/// Group players by bit-identical rows: hash-bucket candidates, confirm
/// with exact word comparison so hash collisions cannot merge groups.
fn group_players(rows: &BitMatrix) -> (Vec<u32>, Vec<Vec<u32>>) {
    let hashes: Vec<u64> = (0..rows.rows())
        .map(|p| rows.row(p).content_hash())
        .collect();
    group_players_hashed(rows, &hashes)
}

/// [`group_players`] with the per-row content hashes supplied by the
/// caller — the [`GroupCache`] refresh path reuses hashes of rows that
/// did not change since the previous round, so only changed rows pay the
/// hash pass. The bucket assembly is identical either way, so the
/// resulting grouping (ids in first-appearance order) is bit-identical to
/// a fresh [`group_players`] run.
fn group_players_hashed(rows: &BitMatrix, hashes: &[u64]) -> (Vec<u32>, Vec<Vec<u32>>) {
    let n = rows.rows();
    let mut by_hash: HashMap<u64, Vec<u32>> = HashMap::new();
    let mut group_of = Vec::with_capacity(n);
    let mut members: Vec<Vec<u32>> = Vec::new();
    for (p, &hash) in hashes.iter().enumerate().take(n) {
        let row = rows.row(p);
        let ids = by_hash.entry(hash).or_default();
        let gid = ids
            .iter()
            .copied()
            .find(|&g| rows.row(members[g as usize][0] as usize).bits_eq(&row))
            .unwrap_or_else(|| {
                let g = members.len() as u32;
                members.push(Vec::new());
                ids.push(g);
                g
            });
        group_of.push(gid);
        members[gid as usize].push(p as u32);
    }
    (group_of, members)
}

/// Band `j` of a `k`-band split covers bits `[j·len/k, (j+1)·len/k)`.
#[inline]
fn band_range(len: usize, k: usize, j: usize) -> (usize, usize) {
    (j * len / k, (j + 1) * len / k)
}

/// `count ≤ 64` bits of `words` starting at bit `start`, as a `u64`.
#[inline]
fn extract_bits(words: &[u64], start: usize, count: usize) -> u64 {
    debug_assert!((1..=64).contains(&count));
    let w = start / 64;
    let off = start % 64;
    let mut v = words[w] >> off;
    if off + count > 64 {
        v |= words[w + 1] << (64 - off);
    }
    if count < 64 {
        v &= (1u64 << count) - 1;
    }
    v
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

/// One-chunk FNV-1a — [`band_key`] specialized to a `≤ 64`-bit band, the
/// form multi-probe flips recompute per candidate key.
#[inline]
fn fnv_u64(v: u64) -> u64 {
    (FNV_OFFSET ^ v).wrapping_mul(FNV_PRIME)
}

/// FNV-1a hash of the band's bits, in 64-bit chunks. Equal band contents
/// always hash equal, so bucketing by hash key keeps the prune sound;
/// hash collisions only add candidates, which verification discards.
fn band_key(words: &[u64], start: usize, end: usize) -> u64 {
    let mut h: u64 = FNV_OFFSET;
    let mut pos = start;
    while pos < end {
        let take = (end - pos).min(64);
        h ^= extract_bits(words, pos, take);
        h = h.wrapping_mul(FNV_PRIME);
        pos += take;
    }
    h
}

/// Set bits in `words[start..end)` (bit positions).
fn popcount_range(words: &[u64], start: usize, end: usize) -> usize {
    let mut count = 0usize;
    let mut pos = start;
    while pos < end {
        let take = (end - pos).min(64);
        count += extract_bits(words, pos, take).count_ones() as usize;
        pos += take;
    }
    count
}

/// Neighbor discovery over sample vectors: the Lemma-8 edge set
/// `(p, q) ⇔ |z(p) − z(q)| ≤ threshold`, queryable without materializing
/// adjacency (see module docs for the strategies).
pub struct NeighborIndex {
    rows: Arc<BitMatrix>,
    threshold: usize,
    mode: Mode,
}

/// One grouping pass, packaged for reuse: the shared player→group map and
/// member lists plus the representative rows already packed into a matrix
/// (what the per-`τ` inner index is built over).
struct CachedGroups {
    group_of: Arc<Vec<u32>>,
    members: Arc<Vec<Vec<u32>>>,
    rep_rows: Arc<BitMatrix>,
}

impl CachedGroups {
    fn from_grouping(rows: &BitMatrix, group_of: Vec<u32>, members: Vec<Vec<u32>>) -> CachedGroups {
        let reps: Vec<BitVec> = members
            .iter()
            .map(|m| rows.row(m[0] as usize).to_bitvec())
            .collect();
        CachedGroups {
            group_of: Arc::new(group_of),
            members: Arc::new(members),
            rep_rows: Arc::new(BitMatrix::from_rows(&reps)),
        }
    }
}

impl NeighborIndex {
    /// Build an index over `zvecs` (equal-length sample vectors) for the
    /// given edge `threshold`.
    pub fn build(zvecs: &[BitVec], threshold: usize, strategy: NeighborStrategy) -> NeighborIndex {
        Self::build_shared(
            Arc::new(BitMatrix::from_rows(zvecs)),
            threshold,
            strategy,
            None,
        )
    }

    /// Core constructor over an already-packed (and possibly shared) row
    /// matrix. When `cached` grouping is supplied (by a [`GroupCache`]),
    /// the grouped path skips `group_players` and reuses the cached
    /// representative matrix; every decision point (complete-graph
    /// shortcut, `Auto` size cut, weak-collapse fallback, inner-strategy
    /// pick) is evaluated exactly as the uncached build would, so the
    /// resulting index is indistinguishable from a fresh one.
    fn build_shared(
        rows: Arc<BitMatrix>,
        threshold: usize,
        strategy: NeighborStrategy,
        cached: Option<&CachedGroups>,
    ) -> NeighborIndex {
        let len = rows.cols();
        let n = rows.rows();
        let mode = if threshold >= len {
            Mode::Complete
        } else {
            match strategy {
                NeighborStrategy::Exact => Mode::Materialized(materialize(&rows, threshold)),
                NeighborStrategy::Auto if n <= AUTO_EXACT_MAX => {
                    Mode::Materialized(materialize(&rows, threshold))
                }
                NeighborStrategy::Auto | NeighborStrategy::Grouped => {
                    let owned;
                    let groups = match cached {
                        Some(c) => c,
                        None => {
                            let (group_of, members) = group_players(&rows);
                            // Weak collapse (G ≈ n) means grouping buys
                            // almost no pruning but would pay a duplicated
                            // representative matrix and per-query
                            // indirection — band the players directly
                            // instead, exactly as `Banded` would.
                            if members.len() * 8 > n * 7 {
                                return NeighborIndex {
                                    mode: banded_mode(&rows, threshold),
                                    rows,
                                    threshold,
                                };
                            }
                            owned = CachedGroups::from_grouping(&rows, group_of, members);
                            &owned
                        }
                    };
                    // Cached groupings re-evaluate the same fallback so a
                    // cache hit can never pick a different mode.
                    if groups.members.len() * 8 > n * 7 {
                        banded_mode(&rows, threshold)
                    } else {
                        // Groups are pairwise distinct, so re-grouping
                        // cannot help: the inner index picks exact or
                        // banded by size.
                        let inner_strategy = if groups.members.len() <= AUTO_EXACT_MAX {
                            NeighborStrategy::Exact
                        } else {
                            NeighborStrategy::Banded
                        };
                        let inner = Box::new(NeighborIndex::build_shared(
                            groups.rep_rows.clone(),
                            threshold,
                            inner_strategy,
                            None,
                        ));
                        Mode::Grouped(Groups {
                            group_of: groups.group_of.clone(),
                            members: groups.members.clone(),
                            inner,
                        })
                    }
                }
                NeighborStrategy::Banded => banded_mode(&rows, threshold),
            }
        };
        NeighborIndex {
            rows,
            threshold,
            mode,
        }
    }

    /// Number of players indexed.
    pub fn n(&self) -> usize {
        self.rows.rows()
    }

    /// The edge threshold `τ`.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Which internal path discovery takes (`"complete"`, `"exact"`,
    /// `"banded"`, `"multiprobe"`, `"scan"`, or `"grouped"`) — for logs and
    /// bench labels.
    pub fn mode_name(&self) -> &'static str {
        match &self.mode {
            Mode::Complete => "complete",
            Mode::Materialized(_) => "exact",
            Mode::Banded(bands) if bands.probe => "multiprobe",
            Mode::Banded(_) => "banded",
            Mode::Scan(_) => "scan",
            Mode::Grouped(_) => "grouped",
        }
    }

    #[inline]
    fn verify(&self, p: usize, q: usize) -> bool {
        self.rows
            .row(p)
            .hamming_within(&self.rows.row(q), self.threshold)
            .is_some()
    }

    /// [`NeighborIndex::verify`] behind the popcount prefilter when the
    /// index runs in scan mode (a rejected pair is a proven non-edge).
    #[inline]
    fn verify_filtered(&self, p: usize, q: usize) -> bool {
        if let Mode::Scan(filter) = &self.mode {
            if !filter.admits(p, q, self.threshold) {
                return false;
            }
        }
        self.verify(p, q)
    }

    /// Enumerate the verified neighbors of `p`, each exactly once, in
    /// unspecified order — the lazy primitive every query shares.
    fn for_each_neighbor(&self, p: usize, mut f: impl FnMut(usize)) {
        self.for_each_neighbor_dyn(p, &mut f);
    }

    /// Non-generic core of [`NeighborIndex::for_each_neighbor`]: the
    /// grouped mode recurses into its inner index, and dynamic dispatch
    /// keeps that recursion from instantiating closure types without
    /// bound.
    fn for_each_neighbor_dyn(&self, p: usize, f: &mut dyn FnMut(usize)) {
        let n = self.n();
        match &self.mode {
            Mode::Complete => {
                for q in (0..n).filter(|&q| q != p) {
                    f(q);
                }
            }
            Mode::Materialized(adj) => {
                for &q in &adj[p] {
                    f(q as usize);
                }
            }
            Mode::Banded(bands) => bands.for_candidates(&bands.buckets, p, |q| {
                if self.verify(p, q) {
                    f(q);
                }
            }),
            Mode::Scan(filter) => {
                for q in 0..n {
                    if q != p && filter.admits(p, q, self.threshold) && self.verify(p, q) {
                        f(q);
                    }
                }
            }
            Mode::Grouped(groups) => {
                let g = groups.group_of[p] as usize;
                for &q in &groups.members[g] {
                    if q as usize != p {
                        f(q as usize);
                    }
                }
                groups.inner.for_each_neighbor_dyn(g, &mut |h| {
                    for &q in &groups.members[h] {
                        f(q as usize);
                    }
                });
            }
        }
    }

    /// All neighbors of `p`, ascending — identical across strategies.
    pub fn neighbors_of(&self, p: usize) -> Vec<u32> {
        if let Mode::Materialized(adj) = &self.mode {
            return adj[p].clone();
        }
        let mut out = Vec::new();
        self.for_each_neighbor(p, |q| out.push(q as u32));
        out.sort_unstable();
        out
    }

    /// Per-group degree: every member of a group has the same neighbor
    /// count (`|group| − 1` mates plus each adjacent group's multiplicity).
    fn group_degrees(&self, groups: &Groups) -> Vec<usize> {
        let sizes: Vec<usize> = groups.members.iter().map(Vec::len).collect();
        par_map_players(groups.members.len(), |g| {
            let mut deg = sizes[g] - 1;
            groups.inner.for_each_neighbor(g, |h| deg += sizes[h]);
            deg
        })
    }

    /// Degree of every player (neighbor counts), in parallel.
    pub fn degrees(&self) -> Vec<usize> {
        let n = self.n();
        match &self.mode {
            Mode::Complete => vec![n.saturating_sub(1); n],
            Mode::Materialized(adj) => adj.iter().map(Vec::len).collect(),
            Mode::Grouped(groups) => {
                let gdeg = self.group_degrees(groups);
                (0..n).map(|p| gdeg[groups.group_of[p] as usize]).collect()
            }
            _ => par_map_players(n, |p| {
                let mut deg = 0usize;
                self.for_each_neighbor(p, |_| deg += 1);
                deg
            }),
        }
    }

    /// Materialize the full adjacency (sorted rows). Intended for tests and
    /// small inputs; defeats the purpose of the banded index at scale.
    pub fn adjacency(&self) -> Vec<Vec<u32>> {
        match &self.mode {
            Mode::Materialized(adj) => adj.clone(),
            _ => par_map_players(self.n(), |p| self.neighbors_of(p)),
        }
    }

    /// Like [`NeighborIndex::adjacency`], but consumes the index so the
    /// `Exact` strategy hands over its materialized lists without a copy.
    pub fn into_adjacency(self) -> Vec<Vec<u32>> {
        match self.mode {
            Mode::Materialized(adj) => adj,
            _ => self.adjacency(),
        }
    }

    /// Greedy peeling of §6.5 driven by index queries instead of
    /// materialized adjacency — output is identical to
    /// [`peel_clusters`] on the exact edge set (pinned by tests):
    ///
    /// 1. While some remaining player has ≥ `min_size − 1` remaining
    ///    neighbors, peel it and its neighbors off as a new cluster.
    /// 2. Attach every leftover player to a cluster containing one of its
    ///    original neighbors; degenerate leftovers join the cluster whose
    ///    first member's `z` is closest (total-function fallback — wrong
    ///    diameter guesses produce such inputs routinely and `RSelect`
    ///    discards their candidates later).
    ///
    /// For the banded index, per-peel work is confined to the peeled
    /// members' *live* bucket mates: the working bucket copy is compacted
    /// as players die, so tight clusters cost `O(cluster)` rather than
    /// `O(cluster²)` bookkeeping after the first peel.
    pub fn peel(&self, min_size: usize) -> Clustering {
        let n = self.n();
        assert!(n > 0, "cannot cluster zero players");
        if let Mode::Grouped(groups) = &self.mode {
            return self.peel_grouped(groups, min_size);
        }
        let need = min_size.saturating_sub(1);

        let mut alive = vec![true; n];
        let mut degree = self.degrees();
        let mut assignment: Vec<Option<u32>> = vec![None; n];
        let mut clusters: Vec<Vec<u32>> = Vec::new();

        // Working copy of the band buckets, compacted as players die.
        let mut live_buckets: Option<Vec<HashMap<u64, Vec<u32>>>> = match &self.mode {
            Mode::Banded(bands) => Some(bands.buckets.clone()),
            _ => None,
        };
        // Dead entries still sitting in `live_buckets`; compaction is a
        // pure performance device (decrementing a dead player's degree is
        // harmless — it is never read again), so it can be batched.
        let mut stale = 0usize;

        // Phase 1: peel seeds with enough remaining neighbors. Highest
        // current degree first — any qualifying seed satisfies Lemma 9;
        // max-degree makes the run deterministic and compact.
        loop {
            let seed = (0..n)
                .filter(|&p| alive[p] && degree[p] >= need)
                .max_by_key(|&p| (degree[p], std::cmp::Reverse(p)));
            let Some(seed) = seed else { break };
            let mut members: Vec<u32> = vec![seed as u32];
            match (&self.mode, live_buckets.as_ref()) {
                (Mode::Complete, _) => {
                    members.extend((0..n as u32).filter(|&q| q != seed as u32 && alive[q as usize]))
                }
                (Mode::Materialized(adj), _) => {
                    members.extend(adj[seed].iter().copied().filter(|&q| alive[q as usize]))
                }
                (Mode::Banded(bands), Some(buckets)) => {
                    bands.for_candidates(buckets, seed, |q| {
                        if alive[q] && self.verify(seed, q) {
                            members.push(q as u32);
                        }
                    });
                }
                _ => members.extend(
                    (0..n as u32)
                        .filter(|&q| q != seed as u32 && alive[q as usize])
                        .filter(|&q| self.verify_filtered(seed, q as usize)),
                ),
            }
            members.sort_unstable();
            let id = clusters.len() as u32;
            for &m in &members {
                alive[m as usize] = false;
                assignment[m as usize] = Some(id);
            }
            // Update residual degrees of everyone adjacent to the peeled
            // set: every (peeled member, alive neighbor) pair subtracts 1.
            match (&self.mode, live_buckets.as_mut()) {
                // Everyone alive was peeled; nobody is left to update.
                (Mode::Complete, _) => {}
                (Mode::Materialized(adj), _) => {
                    for &m in &members {
                        for &q in &adj[m as usize] {
                            if alive[q as usize] {
                                degree[q as usize] = degree[q as usize].saturating_sub(1);
                            }
                        }
                    }
                }
                (Mode::Banded(bands), Some(buckets)) => {
                    // Drop the dead from the working buckets (batched: a
                    // full sweep costs n·k, so small peels accumulate
                    // first) so peeled members mostly walk *alive* bucket
                    // mates. Stale dead entries that slip through only
                    // decrement a dead player's degree — never read again.
                    stale += members.len();
                    if stale >= 1024 || stale * 4 >= n {
                        for bucket_map in buckets.iter_mut() {
                            for bucket in bucket_map.values_mut() {
                                bucket.retain(|&q| alive[q as usize]);
                            }
                        }
                        stale = 0;
                    }
                    for &m in &members {
                        bands.for_candidates(buckets, m as usize, |q| {
                            if alive[q] && self.verify(m as usize, q) {
                                degree[q] = degree[q].saturating_sub(1);
                            }
                        });
                    }
                }
                _ => {
                    // Blocked scan: per alive player, count peeled
                    // neighbors in one pass (exact integer sums, so the
                    // result is thread-count independent).
                    let dropped = par_map_players(n, |q| {
                        if !alive[q] {
                            return 0usize;
                        }
                        members
                            .iter()
                            .filter(|&&m| self.verify_filtered(q, m as usize))
                            .count()
                    });
                    for (q, d) in dropped.into_iter().enumerate() {
                        degree[q] = degree[q].saturating_sub(d);
                    }
                }
            }
            clusters.push(members);
        }

        // Phase 2: leftovers attach to a cluster containing an original
        // neighbor (lowest cluster id), else to the z-nearest cluster seed.
        for p in 0..n {
            if assignment[p].is_some() {
                continue;
            }
            let via_neighbor = self.assigned_neighbor_min(p, &assignment);
            let id = via_neighbor.unwrap_or_else(|| {
                if clusters.is_empty() {
                    clusters.push(Vec::new());
                }
                // Nearest cluster by z-distance to the cluster's first
                // member.
                (0..clusters.len() as u32)
                    .min_by_key(|&c| {
                        clusters[c as usize].first().map_or(usize::MAX, |&m| {
                            self.rows.row(p).hamming(&self.rows.row(m as usize))
                        })
                    })
                    .expect("at least one cluster exists")
            });
            assignment[p] = Some(id);
            let members = &mut clusters[id as usize];
            let pos = members.partition_point(|&m| m < p as u32);
            members.insert(pos, p as u32);
        }

        Clustering {
            assignment: assignment
                .into_iter()
                .map(|a| a.expect("assigned"))
                .collect(),
            clusters,
        }
    }

    /// Lowest cluster id among `p`'s original neighbors that are already
    /// assigned (phase-2 attachment rule). Uses pristine (uncompacted)
    /// adjacency: peeled neighbors count.
    fn assigned_neighbor_min(&self, p: usize, assignment: &[Option<u32>]) -> Option<u32> {
        let mut best: Option<u32> = None;
        self.for_each_neighbor(p, |q| {
            if let Some(a) = assignment[q] {
                best = Some(best.map_or(a, |b| b.min(a)));
            }
        });
        best
    }

    /// §6.5 peeling over the group graph — output identical to the
    /// player-level reference (pinned by the proptests): groups live and
    /// die wholesale (a seed's neighborhood is its whole group plus every
    /// adjacent group), degrees stay uniform within a group, and phase-2
    /// attachment answers neighbor queries through per-group minima.
    fn peel_grouped(&self, groups: &Groups, min_size: usize) -> Clustering {
        let n = self.n();
        let g_n = groups.members.len();
        let need = min_size.saturating_sub(1);
        let sizes: Vec<usize> = groups.members.iter().map(Vec::len).collect();
        let inner = &groups.inner;

        let mut gdeg = self.group_degrees(groups);
        let mut alive = vec![true; g_n];
        let mut alive_left = g_n;
        let mut assignment: Vec<Option<u32>> = vec![None; n];
        let mut clusters: Vec<Vec<u32>> = Vec::new();
        // Lowest cluster id among each group's already-assigned members —
        // phase 2's neighbor queries reduce to minima over these.
        let mut g_min_assigned: Vec<Option<u32>> = vec![None; g_n];

        // Phase 1. The player-level rule "max (degree, Reverse(index))"
        // factors: all members of a group share its degree, so the winning
        // player is the smallest member of the best (degree, Reverse(rep))
        // group, and its neighborhood is exactly {seed's group} ∪ adjacent
        // alive groups — peels are group-closed.
        loop {
            let seed = (0..g_n)
                .filter(|&g| alive[g] && gdeg[g] >= need)
                .max_by_key(|&g| (gdeg[g], std::cmp::Reverse(groups.members[g][0])));
            let Some(seed) = seed else { break };
            let mut peeled: Vec<u32> = vec![seed as u32];
            inner.for_each_neighbor(seed, |h| {
                if alive[h] {
                    peeled.push(h as u32);
                }
            });
            let id = clusters.len() as u32;
            let mut cluster_members: Vec<u32> = Vec::new();
            for &g in &peeled {
                alive[g as usize] = false;
                alive_left -= 1;
                g_min_assigned[g as usize] = Some(id);
                for &p in &groups.members[g as usize] {
                    assignment[p as usize] = Some(id);
                    cluster_members.push(p);
                }
            }
            cluster_members.sort_unstable();
            // Residual degrees: every alive group adjacent to a peeled
            // group loses that group's full multiplicity.
            if alive_left > 0 {
                for &g in &peeled {
                    inner.for_each_neighbor(g as usize, |h| {
                        if alive[h] {
                            gdeg[h] = gdeg[h].saturating_sub(sizes[g as usize]);
                        }
                    });
                }
            }
            clusters.push(cluster_members);
        }

        // Phase 2: leftovers attach in player-index order, exactly as the
        // reference — a leftover's assigned neighbors are the assigned
        // members of its own group plus those of adjacent groups.
        #[allow(clippy::needless_range_loop)] // assignment[p] is also written
        for p in 0..n {
            if assignment[p].is_some() {
                continue;
            }
            let g = groups.group_of[p] as usize;
            let mut best = g_min_assigned[g];
            inner.for_each_neighbor(g, |h| {
                if let Some(a) = g_min_assigned[h] {
                    best = Some(best.map_or(a, |b| b.min(a)));
                }
            });
            let id = best.unwrap_or_else(|| {
                if clusters.is_empty() {
                    clusters.push(Vec::new());
                }
                (0..clusters.len() as u32)
                    .min_by_key(|&c| {
                        clusters[c as usize].first().map_or(usize::MAX, |&m| {
                            self.rows.row(p).hamming(&self.rows.row(m as usize))
                        })
                    })
                    .expect("at least one cluster exists")
            });
            assignment[p] = Some(id);
            g_min_assigned[g] = Some(g_min_assigned[g].map_or(id, |b| b.min(id)));
            let members = &mut clusters[id as usize];
            let pos = members.partition_point(|&m| m < p as u32);
            members.insert(pos, p as u32);
        }

        Clustering {
            assignment: assignment
                .into_iter()
                .map(|a| a.expect("assigned"))
                .collect(),
            clusters,
        }
    }
}

/// Exact all-pairs pass: adjacency rows in ascending order, parallel over
/// players with early-exit popcounts on packed matrix rows.
fn materialize(rows: &BitMatrix, threshold: usize) -> Vec<Vec<u32>> {
    let n = rows.rows();
    par_map_players(n, |p| {
        let zp = rows.row(p);
        let mut adj = Vec::new();
        for q in 0..n {
            if q != p && zp.hamming_within(&rows.row(q), threshold).is_some() {
                adj.push(q as u32);
            }
        }
        adj
    })
}

/// Build the neighbor graph: `(p, q)` is an edge iff
/// `|z(p) − z(q)| ≤ threshold` (Lemma 8) — the materialized exact edge set.
pub fn neighbor_graph(zvecs: &[BitVec], threshold: usize) -> Vec<Vec<u32>> {
    if zvecs.is_empty() {
        return Vec::new();
    }
    NeighborIndex::build(zvecs, threshold, NeighborStrategy::Exact).into_adjacency()
}

/// Greedy peeling of §6.5 over a pre-materialized adjacency (the original
/// reference implementation; [`NeighborIndex::peel`] reproduces it exactly
/// without materializing, which the equivalence tests pin):
///
/// 1. While some remaining player has ≥ `min_size − 1` remaining neighbors,
///    peel it and its neighbors off as a new cluster.
/// 2. Attach every leftover player to a cluster that contains one of its
///    original neighbors (the paper's argument: its degree only dropped
///    because neighbors were peeled).
/// 3. Total-function fallbacks for degenerate inputs the lemmas exclude
///    (no cluster formed at all, a leftover with no surviving neighbor):
///    join the cluster whose first member's `z` is closest. Wrong-diameter
///    guesses produce such inputs routinely; their candidates are discarded
///    later by `RSelect`.
pub fn peel_clusters(zvecs: &[BitVec], adjacency: &[Vec<u32>], min_size: usize) -> Clustering {
    let n = zvecs.len();
    assert!(n > 0, "cannot cluster zero players");
    let need = min_size.saturating_sub(1);

    let mut alive = vec![true; n];
    let mut degree: Vec<usize> = adjacency.iter().map(Vec::len).collect();
    let mut assignment: Vec<Option<u32>> = vec![None; n];
    let mut clusters: Vec<Vec<u32>> = Vec::new();

    // Phase 1: peel seeds with enough remaining neighbors. Highest current
    // degree first — any qualifying seed satisfies Lemma 9; max-degree makes
    // the run deterministic and compact.
    loop {
        let seed = (0..n)
            .filter(|&p| alive[p] && degree[p] >= need)
            .max_by_key(|&p| (degree[p], std::cmp::Reverse(p)));
        let Some(seed) = seed else { break };
        let mut members: Vec<u32> = vec![seed as u32];
        members.extend(
            adjacency[seed]
                .iter()
                .copied()
                .filter(|&q| alive[q as usize]),
        );
        members.sort_unstable();
        let id = clusters.len() as u32;
        for &m in &members {
            alive[m as usize] = false;
            assignment[m as usize] = Some(id);
        }
        // Update residual degrees of everyone adjacent to the peeled set.
        for &m in &members {
            for &q in &adjacency[m as usize] {
                if alive[q as usize] {
                    degree[q as usize] = degree[q as usize].saturating_sub(1);
                }
            }
        }
        clusters.push(members);
    }

    // Phase 2: leftovers attach to a cluster containing an original
    // neighbor (lowest cluster id), else to the z-nearest cluster seed.
    for p in 0..n {
        if assignment[p].is_some() {
            continue;
        }
        let via_neighbor = adjacency[p]
            .iter()
            .filter_map(|&q| assignment[q as usize])
            .min();
        let id = via_neighbor.unwrap_or_else(|| {
            if clusters.is_empty() {
                clusters.push(Vec::new());
            }
            // Nearest cluster by z-distance to the cluster's first member.
            (0..clusters.len() as u32)
                .min_by_key(|&c| {
                    clusters[c as usize]
                        .first()
                        .map_or(usize::MAX, |&m| zvecs[p].hamming(&zvecs[m as usize]))
                })
                .expect("at least one cluster exists")
        });
        assignment[p] = Some(id);
        let members = &mut clusters[id as usize];
        let pos = members.partition_point(|&m| m < p as u32);
        members.insert(pos, p as u32);
    }

    Clustering {
        assignment: assignment
            .into_iter()
            .map(|a| a.expect("assigned"))
            .collect(),
        clusters,
    }
}

/// Convenience: neighbor discovery + peel in one call, with an explicit
/// strategy (the protocol passes `ProtocolParams::neighbor_strategy`).
pub fn cluster_players_with(
    zvecs: &[BitVec],
    threshold: usize,
    min_size: usize,
    strategy: NeighborStrategy,
) -> Clustering {
    NeighborIndex::build(zvecs, threshold, strategy).peel(min_size)
}

/// Convenience: graph + peel in one call under the default
/// ([`NeighborStrategy::Auto`]) strategy.
pub fn cluster_players(zvecs: &[BitVec], threshold: usize, min_size: usize) -> Clustering {
    cluster_players_with(zvecs, threshold, min_size, NeighborStrategy::Auto)
}

/// Cross-guess reusable neighbor-discovery state.
///
/// The diameter-guess loop of `naive_sampling` rebuilds discovery from
/// scratch for every guess even though the z-vectors are *identical*
/// across guesses — only the edge threshold `τ` changes. Everything
/// `τ`-independent is computed once here: the packed row matrix and (for
/// the grouped strategies) the bit-identical-vector grouping plus the
/// representative matrix. [`GroupCache::index`] then builds a per-`τ`
/// [`NeighborIndex`] that only re-bands the representatives and re-runs
/// verify/peel — the cheap part — while sharing the cached structure.
///
/// Equivalence contract (pinned by the `tests/neighbor_index.rs`
/// proptests): for every `τ` and every strategy,
/// `cache.index(τ)` produces the same edge set, degrees, and peel output
/// as `NeighborIndex::build(&zvecs, τ, strategy)`.
///
/// [`GroupCache::refresh`] supports warm starts across `DynamicWorld`
/// rounds: rows that did not change since the previous round reuse their
/// cached content hash (the grouping pass itself reruns — group ids are
/// assigned in first-appearance order, so any changed row can shift them
/// and a partial regroup could diverge from a fresh build). Round beacons
/// reseed the public sample every round, so in practice most rows *do*
/// change and the honest win is bounded; the mechanism exists for drifts
/// that leave the sample fixed (see DESIGN.md §4.12).
pub struct GroupCache {
    rows: Arc<BitMatrix>,
    strategy: NeighborStrategy,
    /// Per-row content hashes; populated iff `grouping` is.
    row_hashes: Vec<u64>,
    grouping: Option<CachedGroups>,
}

impl GroupCache {
    /// Pack `zvecs` once and precompute whatever the strategy can reuse
    /// across thresholds.
    pub fn build(zvecs: &[BitVec], strategy: NeighborStrategy) -> GroupCache {
        let rows = Arc::new(BitMatrix::from_rows(zvecs));
        let mut cache = GroupCache {
            rows,
            strategy,
            row_hashes: Vec::new(),
            grouping: None,
        };
        cache.regroup();
        cache
    }

    /// True when this strategy/shape takes the grouped discovery path
    /// (`Grouped`, or `Auto` above the exact-materialization cut) — the
    /// only case with `τ`-independent structure beyond the row matrix.
    fn wants_grouping(&self) -> bool {
        match self.strategy {
            NeighborStrategy::Grouped => true,
            NeighborStrategy::Auto => self.rows.rows() > AUTO_EXACT_MAX,
            NeighborStrategy::Exact | NeighborStrategy::Banded => false,
        }
    }

    fn regroup(&mut self) {
        if !self.wants_grouping() {
            self.row_hashes.clear();
            self.grouping = None;
            return;
        }
        if self.row_hashes.is_empty() {
            self.row_hashes = (0..self.rows.rows())
                .map(|p| self.rows.row(p).content_hash())
                .collect();
        }
        let (group_of, members) = group_players_hashed(&self.rows, &self.row_hashes);
        self.grouping = Some(CachedGroups::from_grouping(&self.rows, group_of, members));
    }

    /// Number of players cached.
    pub fn n(&self) -> usize {
        self.rows.rows()
    }

    /// The strategy this cache was built for.
    pub fn strategy(&self) -> NeighborStrategy {
        self.strategy
    }

    /// Distinct z-vector groups, when the grouped path applies.
    pub fn group_count(&self) -> Option<usize> {
        self.grouping.as_ref().map(|g| g.members.len())
    }

    /// Build the per-threshold index, sharing every cached `τ`-independent
    /// piece. Equivalent to `NeighborIndex::build` over the original
    /// vectors (see the type docs for the contract).
    pub fn index(&self, threshold: usize) -> NeighborIndex {
        NeighborIndex::build_shared(
            self.rows.clone(),
            threshold,
            self.strategy,
            self.grouping.as_ref(),
        )
    }

    /// Discovery + peel for one guess: `self.index(threshold).peel(..)`.
    pub fn cluster(&self, threshold: usize, min_size: usize) -> Clustering {
        self.index(threshold).peel(min_size)
    }

    /// Warm-start the cache on next-round vectors: rows bit-identical to
    /// the cached ones keep their content hash (skipping the hash pass),
    /// changed rows are re-hashed, and the grouping is rebuilt from the
    /// combined hashes — bit-identical to a cold [`GroupCache::build`] on
    /// `zvecs`. Returns the number of unchanged rows.
    pub fn refresh(&mut self, zvecs: &[BitVec]) -> usize {
        let new_rows = BitMatrix::from_rows(zvecs);
        let mut unchanged = 0usize;
        if self.wants_grouping() && !self.row_hashes.is_empty() {
            let old = &self.rows;
            let comparable = old.rows().min(new_rows.rows());
            let mut hashes = Vec::with_capacity(new_rows.rows());
            for p in 0..new_rows.rows() {
                let row = new_rows.row(p);
                if p < comparable && row.bits_eq(&old.row(p)) {
                    unchanged += 1;
                    hashes.push(self.row_hashes[p]);
                } else {
                    hashes.push(row.content_hash());
                }
            }
            self.row_hashes = hashes;
        } else {
            self.row_hashes.clear();
        }
        self.rows = Arc::new(new_rows);
        self.regroup();
        unchanged
    }
}

/// A hand-off slot that carries a [`GroupCache`] across protocol runs —
/// the `DynamicWorld` warm-start mechanism. The world builds one
/// `WarmStart`, each round's `naive_sampling` takes the previous round's
/// cache out, [`GroupCache::refresh`]es it on the new z-vectors, uses it
/// for every diameter guess, and puts it back. Interior mutability keeps
/// the algorithm signatures immutable; the slot is only ever touched at
/// round boundaries (rounds are sequential), so the mutex is uncontended.
#[derive(Default)]
pub struct WarmStart {
    slot: std::sync::Mutex<Option<GroupCache>>,
    reused_rows: std::sync::atomic::AtomicUsize,
    /// Recycled per-player `RSelect` machines from the previous run's
    /// fused tournament — the reusable per-shard select state: a resident
    /// service session recomputes on every churn/epoch transition, and
    /// re-allocating `n` tournament machines each time is pure churn.
    /// Machines are `reset` before reuse, which is draw-for-draw
    /// indistinguishable from a fresh machine (pinned in blocks).
    select_pool: std::sync::Mutex<Vec<byzscore_blocks::StreamingRSelect>>,
}

impl WarmStart {
    /// Empty slot: the first round builds cold.
    pub fn new() -> WarmStart {
        WarmStart::default()
    }

    /// Take the carried cache if it matches `strategy` (a mismatched one
    /// is dropped — refreshing it would change discovery modes).
    pub(crate) fn take(&self, strategy: NeighborStrategy) -> Option<GroupCache> {
        let mut slot = self.slot.lock().expect("warm-start slot");
        match slot.take() {
            Some(c) if c.strategy() == strategy => Some(c),
            _ => None,
        }
    }

    /// Store the cache for the next round and record how many rows the
    /// refresh reused (0 for a cold build).
    pub(crate) fn put(&self, cache: GroupCache, reused: usize) {
        self.reused_rows
            .store(reused, std::sync::atomic::Ordering::Relaxed);
        *self.slot.lock().expect("warm-start slot") = Some(cache);
    }

    /// Rows whose cached hash survived the most recent refresh —
    /// observability for experiments and tests (round beacons reseed the
    /// sample each round, so this is usually small; it grows only when
    /// drift leaves the sampled coordinates untouched).
    pub fn last_reused_rows(&self) -> usize {
        self.reused_rows.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Take the recycled select machines (empty on the first run).
    pub(crate) fn take_select_pool(&self) -> Vec<byzscore_blocks::StreamingRSelect> {
        std::mem::take(&mut *self.select_pool.lock().expect("select pool"))
    }

    /// Return a run's select machines for the next run to reuse.
    pub(crate) fn put_select_pool(&self, pool: Vec<byzscore_blocks::StreamingRSelect>) {
        *self.select_pool.lock().expect("select pool") = pool;
    }

    /// Number of select machines currently pooled for reuse.
    pub fn pooled_selects(&self) -> usize {
        self.select_pool.lock().expect("select pool").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Two tight camps far apart.
    fn two_camps(len: usize, per_camp: usize, seed: u64) -> Vec<BitVec> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = BitVec::random(&mut rng, len);
        let b = a.complement();
        let mut out = Vec::new();
        for i in 0..2 * per_camp {
            let mut v = if i < per_camp { a.clone() } else { b.clone() };
            v.flip_random_distinct(&mut rng, 2);
            out.push(v);
        }
        out
    }

    #[test]
    fn neighbor_graph_thresholds() {
        let zs = two_camps(128, 8, 1);
        let adj = neighbor_graph(&zs, 4);
        // Within-camp distance ≤ 4; cross-camp ≈ 128.
        for (p, neighbors) in adj.iter().enumerate().take(8) {
            assert!(
                neighbors.iter().all(|&q| q < 8),
                "camp A player {p} linked out"
            );
            assert_eq!(neighbors.len(), 7, "camp A is a clique under the threshold");
        }
        for neighbors in adj.iter().take(16).skip(8) {
            assert!(neighbors.iter().all(|&q| q >= 8));
        }
    }

    #[test]
    fn peeling_recovers_camps() {
        let zs = two_camps(128, 8, 2);
        let c = cluster_players(&zs, 4, 8);
        assert!(c.is_partition());
        assert_eq!(c.clusters.len(), 2);
        assert_eq!(c.min_size(), 8);
        // Camp purity.
        let id0 = c.assignment[0];
        for p in 0..8 {
            assert_eq!(c.assignment[p], id0);
        }
        for p in 8..16 {
            assert_ne!(c.assignment[p], id0);
        }
    }

    #[test]
    fn leftovers_attach_via_neighbors() {
        // Chain: clique of 5 + one pendant attached to a clique member.
        let mut zs = Vec::new();
        let mut rng = SmallRng::seed_from_u64(3);
        let center = BitVec::random(&mut rng, 64);
        for _ in 0..5 {
            zs.push(center.clone());
        }
        let mut pendant = center.clone();
        pendant.flip_random_distinct(&mut rng, 3); // within threshold of clique
        zs.push(pendant);
        let c = cluster_players(&zs, 3, 5);
        assert!(c.is_partition());
        assert_eq!(c.clusters.len(), 1);
        assert_eq!(c.clusters[0].len(), 6);
    }

    #[test]
    fn no_qualifying_seed_degenerates_gracefully() {
        // All-far players, min_size larger than any neighborhood.
        let mut rng = SmallRng::seed_from_u64(4);
        let zs: Vec<BitVec> = (0..6).map(|_| BitVec::random(&mut rng, 256)).collect();
        let c = cluster_players(&zs, 2, 4);
        assert!(c.is_partition());
        assert!(!c.clusters.is_empty());
        let total: usize = c.clusters.iter().map(Vec::len).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn assignment_matches_membership() {
        let zs = two_camps(64, 6, 5);
        let c = cluster_players(&zs, 4, 6);
        for (p, &a) in c.assignment.iter().enumerate() {
            assert!(c.clusters[a as usize].contains(&(p as u32)));
        }
    }

    #[test]
    fn singleton_input() {
        let zs = vec![BitVec::zeros(8)];
        let c = cluster_players(&zs, 1, 1);
        assert!(c.is_partition());
        assert_eq!(c.clusters.len(), 1);
        assert_eq!(c.cluster_of(0), &[0]);
    }

    /// The lazy modes (complete / banded / multiprobe / scan / grouped)
    /// against the materialized exact path, on structured and random
    /// inputs.
    #[test]
    fn banded_modes_match_exact() {
        let mut rng = SmallRng::seed_from_u64(6);
        let cases: Vec<(Vec<BitVec>, usize)> = vec![
            (two_camps(256, 10, 7), 4),   // banded (wide bands)
            (two_camps(256, 10, 10), 24), // multiprobe (mid-τ)
            (two_camps(64, 6, 8), 12),    // scan (bands too narrow)
            (two_camps(32, 5, 9), 40),    // complete (τ ≥ len)
            ((0..14).map(|_| BitVec::random(&mut rng, 96)).collect(), 3),
        ];
        for (zs, threshold) in cases {
            let exact = NeighborIndex::build(&zs, threshold, NeighborStrategy::Exact);
            for strategy in [NeighborStrategy::Banded, NeighborStrategy::Grouped] {
                let lazy = NeighborIndex::build(&zs, threshold, strategy);
                assert_eq!(
                    exact.adjacency(),
                    lazy.adjacency(),
                    "edge sets diverge at τ={threshold} (mode {})",
                    lazy.mode_name()
                );
                assert_eq!(exact.degrees(), lazy.degrees());
                for min_size in [1usize, 3, 8] {
                    let reference = peel_clusters(&zs, &exact.adjacency(), min_size);
                    assert_eq!(exact.peel(min_size), reference);
                    assert_eq!(lazy.peel(min_size), reference, "mode {}", lazy.mode_name());
                }
            }
        }
    }

    #[test]
    fn multiprobe_triggers_and_is_sound() {
        // len=256, τ=24: 25 exact-match bands would be 10 bits (< 16), but
        // ⌊τ/2⌋+1 = 13 multiprobe bands are 19 bits — the mid-τ regime
        // that used to fall to the blocked scan.
        let zs = two_camps(256, 12, 11);
        let idx = NeighborIndex::build(&zs, 24, NeighborStrategy::Banded);
        assert_eq!(idx.mode_name(), "multiprobe");
        let exact = NeighborIndex::build(&zs, 24, NeighborStrategy::Exact);
        assert_eq!(idx.adjacency(), exact.adjacency());
    }

    #[test]
    fn scan_mode_carries_popcount_prefilter() {
        // len=64, τ=12: neither 13 exact bands (4 bits) nor 7 probe bands
        // (9 bits) reach MIN_BAND_BITS — the prefiltered scan regime.
        let zs = two_camps(64, 6, 12);
        let idx = NeighborIndex::build(&zs, 12, NeighborStrategy::Banded);
        assert_eq!(idx.mode_name(), "scan");
        let exact = NeighborIndex::build(&zs, 12, NeighborStrategy::Exact);
        assert_eq!(idx.adjacency(), exact.adjacency());
        assert_eq!(idx.peel(6), exact.peel(6));
    }

    #[test]
    fn grouped_collapses_duplicates() {
        // Heavy duplication: 40 players over 5 distinct vectors.
        let mut rng = SmallRng::seed_from_u64(13);
        let distinct: Vec<BitVec> = (0..5).map(|_| BitVec::random(&mut rng, 128)).collect();
        let zs: Vec<BitVec> = (0..40).map(|i| distinct[i % 5].clone()).collect();
        let grouped = NeighborIndex::build(&zs, 8, NeighborStrategy::Grouped);
        assert_eq!(grouped.mode_name(), "grouped");
        let exact = NeighborIndex::build(&zs, 8, NeighborStrategy::Exact);
        assert_eq!(grouped.adjacency(), exact.adjacency());
        assert_eq!(grouped.degrees(), exact.degrees());
        for min_size in [1usize, 4, 8, 16] {
            assert_eq!(grouped.peel(min_size), exact.peel(min_size));
        }
    }

    #[test]
    fn empty_sample_is_complete_graph() {
        // Sabotaged leaders publish empty samples: every z-vector is empty,
        // all pairs are within any threshold, one big cluster results.
        let zs = vec![BitVec::zeros(0); 9];
        for strategy in [
            NeighborStrategy::Exact,
            NeighborStrategy::Banded,
            NeighborStrategy::Grouped,
        ] {
            let idx = NeighborIndex::build(&zs, 0, strategy);
            assert_eq!(idx.mode_name(), "complete");
            let c = idx.peel(3);
            assert!(c.is_partition());
            assert_eq!(c.clusters.len(), 1);
            assert_eq!(c.clusters[0].len(), 9);
        }
    }

    #[test]
    fn banded_prune_is_sound_near_threshold() {
        // Pairs at distance exactly τ and τ+1: the band pigeonhole must
        // keep the former and may only drop the latter.
        let len = 160;
        let tau = 6;
        let mut rng = SmallRng::seed_from_u64(11);
        let base = BitVec::random(&mut rng, len);
        let mut at_tau = base.clone();
        for i in 0..tau {
            at_tau.flip(i * 17);
        }
        let mut past_tau = base.clone();
        for i in 0..tau + 1 {
            past_tau.flip(i * 17);
        }
        let zs = vec![base, at_tau, past_tau];
        let idx = NeighborIndex::build(&zs, tau, NeighborStrategy::Banded);
        assert_eq!(idx.mode_name(), "banded");
        assert_eq!(idx.neighbors_of(0), vec![1]);
        assert_eq!(idx.neighbors_of(2), vec![1]); // dist(1,2)=1
    }
}
