//! Step 1.d: neighbor graph over sample vectors and greedy cluster peeling
//! (§6.5, Lemmas 8–9).

use byzscore_bitset::{BitVec, Bits};
use byzscore_board::par::par_map_players;

/// A clustering of the players.
#[derive(Clone, Debug)]
pub struct Clustering {
    /// For each player, the index of its cluster.
    pub assignment: Vec<u32>,
    /// Member lists (each sorted ascending).
    pub clusters: Vec<Vec<u32>>,
}

impl Clustering {
    /// Members of `player`'s cluster.
    pub fn cluster_of(&self, player: u32) -> &[u32] {
        &self.clusters[self.assignment[player as usize] as usize]
    }

    /// Size of the smallest cluster (Lemma 9 property 2: ≥ n/B).
    pub fn min_size(&self) -> usize {
        self.clusters.iter().map(Vec::len).min().unwrap_or(0)
    }

    /// Everyone in exactly one cluster (Lemma 9 property 1).
    pub fn is_partition(&self) -> bool {
        let n = self.assignment.len();
        let mut seen = vec![false; n];
        for members in &self.clusters {
            for &p in members {
                if seen[p as usize] {
                    return false;
                }
                seen[p as usize] = true;
            }
        }
        seen.into_iter().all(|s| s)
    }
}

/// Build the neighbor graph: `(p, q)` is an edge iff
/// `|z(p) − z(q)| ≤ threshold` (Lemma 8). `O(n²)` bounded-distance
/// comparisons, parallel over rows with early-exit popcounts.
pub fn neighbor_graph(zvecs: &[BitVec], threshold: usize) -> Vec<Vec<u32>> {
    let n = zvecs.len();
    par_map_players(n, |p| {
        let mut adj = Vec::new();
        let zp = &zvecs[p];
        for (q, zq) in zvecs.iter().enumerate() {
            if q != p && zp.hamming_within(zq, threshold).is_some() {
                adj.push(q as u32);
            }
        }
        adj
    })
}

/// Greedy peeling of §6.5:
///
/// 1. While some remaining player has ≥ `min_size − 1` remaining neighbors,
///    peel it and its neighbors off as a new cluster.
/// 2. Attach every leftover player to a cluster that contains one of its
///    original neighbors (the paper's argument: its degree only dropped
///    because neighbors were peeled).
/// 3. Total-function fallbacks for degenerate inputs the lemmas exclude
///    (no cluster formed at all, a leftover with no surviving neighbor):
///    join the cluster whose first member's `z` is closest. Wrong-diameter
///    guesses produce such inputs routinely; their candidates are discarded
///    later by `RSelect`.
pub fn peel_clusters(zvecs: &[BitVec], adjacency: &[Vec<u32>], min_size: usize) -> Clustering {
    let n = zvecs.len();
    assert!(n > 0, "cannot cluster zero players");
    let need = min_size.saturating_sub(1);

    let mut alive = vec![true; n];
    let mut degree: Vec<usize> = adjacency.iter().map(Vec::len).collect();
    let mut assignment: Vec<Option<u32>> = vec![None; n];
    let mut clusters: Vec<Vec<u32>> = Vec::new();

    // Phase 1: peel seeds with enough remaining neighbors. Highest current
    // degree first — any qualifying seed satisfies Lemma 9; max-degree makes
    // the run deterministic and compact.
    loop {
        let seed = (0..n)
            .filter(|&p| alive[p] && degree[p] >= need)
            .max_by_key(|&p| (degree[p], std::cmp::Reverse(p)));
        let Some(seed) = seed else { break };
        let mut members: Vec<u32> = vec![seed as u32];
        members.extend(
            adjacency[seed]
                .iter()
                .copied()
                .filter(|&q| alive[q as usize]),
        );
        members.sort_unstable();
        let id = clusters.len() as u32;
        for &m in &members {
            alive[m as usize] = false;
            assignment[m as usize] = Some(id);
        }
        // Update residual degrees of everyone adjacent to the peeled set.
        for &m in &members {
            for &q in &adjacency[m as usize] {
                if alive[q as usize] {
                    degree[q as usize] = degree[q as usize].saturating_sub(1);
                }
            }
        }
        clusters.push(members);
    }

    // Phase 2: leftovers attach to a cluster containing an original
    // neighbor (lowest cluster id), else to the z-nearest cluster seed.
    for p in 0..n {
        if assignment[p].is_some() {
            continue;
        }
        let via_neighbor = adjacency[p]
            .iter()
            .filter_map(|&q| assignment[q as usize])
            .min();
        let id = via_neighbor.unwrap_or_else(|| {
            if clusters.is_empty() {
                clusters.push(Vec::new());
            }
            // Nearest cluster by z-distance to the cluster's first member.
            (0..clusters.len() as u32)
                .min_by_key(|&c| {
                    clusters[c as usize]
                        .first()
                        .map_or(usize::MAX, |&m| zvecs[p].hamming(&zvecs[m as usize]))
                })
                .expect("at least one cluster exists")
        });
        assignment[p] = Some(id);
        let members = &mut clusters[id as usize];
        let pos = members.partition_point(|&m| m < p as u32);
        members.insert(pos, p as u32);
    }

    Clustering {
        assignment: assignment
            .into_iter()
            .map(|a| a.expect("assigned"))
            .collect(),
        clusters,
    }
}

/// Convenience: graph + peel in one call.
pub fn cluster_players(zvecs: &[BitVec], threshold: usize, min_size: usize) -> Clustering {
    let adj = neighbor_graph(zvecs, threshold);
    peel_clusters(zvecs, &adj, min_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Two tight camps far apart.
    fn two_camps(len: usize, per_camp: usize, seed: u64) -> Vec<BitVec> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = BitVec::random(&mut rng, len);
        let b = a.complement();
        let mut out = Vec::new();
        for i in 0..2 * per_camp {
            let mut v = if i < per_camp { a.clone() } else { b.clone() };
            v.flip_random_distinct(&mut rng, 2);
            out.push(v);
        }
        out
    }

    #[test]
    fn neighbor_graph_thresholds() {
        let zs = two_camps(128, 8, 1);
        let adj = neighbor_graph(&zs, 4);
        // Within-camp distance ≤ 4; cross-camp ≈ 128.
        for (p, neighbors) in adj.iter().enumerate().take(8) {
            assert!(
                neighbors.iter().all(|&q| q < 8),
                "camp A player {p} linked out"
            );
            assert_eq!(neighbors.len(), 7, "camp A is a clique under the threshold");
        }
        for neighbors in adj.iter().take(16).skip(8) {
            assert!(neighbors.iter().all(|&q| q >= 8));
        }
    }

    #[test]
    fn peeling_recovers_camps() {
        let zs = two_camps(128, 8, 2);
        let c = cluster_players(&zs, 4, 8);
        assert!(c.is_partition());
        assert_eq!(c.clusters.len(), 2);
        assert_eq!(c.min_size(), 8);
        // Camp purity.
        let id0 = c.assignment[0];
        for p in 0..8 {
            assert_eq!(c.assignment[p], id0);
        }
        for p in 8..16 {
            assert_ne!(c.assignment[p], id0);
        }
    }

    #[test]
    fn leftovers_attach_via_neighbors() {
        // Chain: clique of 5 + one pendant attached to a clique member.
        let mut zs = Vec::new();
        let mut rng = SmallRng::seed_from_u64(3);
        let center = BitVec::random(&mut rng, 64);
        for _ in 0..5 {
            zs.push(center.clone());
        }
        let mut pendant = center.clone();
        pendant.flip_random_distinct(&mut rng, 3); // within threshold of clique
        zs.push(pendant);
        let c = cluster_players(&zs, 3, 5);
        assert!(c.is_partition());
        assert_eq!(c.clusters.len(), 1);
        assert_eq!(c.clusters[0].len(), 6);
    }

    #[test]
    fn no_qualifying_seed_degenerates_gracefully() {
        // All-far players, min_size larger than any neighborhood.
        let mut rng = SmallRng::seed_from_u64(4);
        let zs: Vec<BitVec> = (0..6).map(|_| BitVec::random(&mut rng, 256)).collect();
        let c = cluster_players(&zs, 2, 4);
        assert!(c.is_partition());
        assert!(!c.clusters.is_empty());
        let total: usize = c.clusters.iter().map(Vec::len).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn assignment_matches_membership() {
        let zs = two_camps(64, 6, 5);
        let c = cluster_players(&zs, 4, 6);
        for (p, &a) in c.assignment.iter().enumerate() {
            assert!(c.clusters[a as usize].contains(&(p as u32)));
        }
        for (&p, members) in c.assignment.iter().zip(std::iter::repeat(&())) {
            let _ = (p, members);
        }
    }

    #[test]
    fn singleton_input() {
        let zs = vec![BitVec::zeros(8)];
        let c = cluster_players(&zs, 1, 1);
        assert!(c.is_partition());
        assert_eq!(c.clusters.len(), 1);
        assert_eq!(c.cluster_of(0), &[0]);
    }
}
