//! Baseline algorithms the paper compares against (§1, §4, §6.2).
//!
//! * [`naive_sampling`] — the "natural approach" of §6.2 and our proxy for
//!   the prior state of the art \[2,3\]: every player *directly probes* a
//!   fixed public sample of `Θ(B log n)` objects (no collaborative
//!   compression), clusters on raw sample distances, and shares work
//!   **without redundancy** (single probe per object — prior art claimed no
//!   Byzantine tolerance). With a fixed-size sample the distance resolution
//!   is only `m/(B log n) · log n ≈ m/B`, which is exactly why this family
//!   is a `B`-approximation rather than a constant-factor one.
//! * [`solo`] — no collaboration: probe `B log n` random objects yourself,
//!   fill the rest with the global majority of everyone's posted probes.
//! * [`global_majority`] — one big cluster: majority-vote every object over
//!   the whole population (ignores all preference structure).
//! * [`oracle_clusters`] — skyline: work-sharing on the *planted* clusters
//!   (discovery is free and perfect). No real algorithm can beat it; it
//!   anchors the approximation ratios of E7/E11.

use byzscore_adversary::Phase;
use byzscore_bitset::{BitVec, ColumnCounter};
use byzscore_blocks::Ctx;
use byzscore_board::par::par_map_players;
use byzscore_model::Planted;
use byzscore_random::{choose_k, tags};

use crate::cluster::{Clustering, GroupCache, WarmStart};
use crate::fused::FusedSelect;
use crate::share::share_work;
use crate::ProtocolParams;

/// §6.2's "natural approach" / prior-art proxy (see module docs).
pub fn naive_sampling(ctx: &Ctx<'_>, params: &ProtocolParams) -> Vec<BitVec> {
    naive_sampling_with(ctx, params, None)
}

/// [`naive_sampling`] with an optional cross-round [`WarmStart`] slot.
///
/// Unlike Figure 2, the naive sample `R` is drawn **once** — the z-vectors
/// are the same for every diameter guess, only the edge threshold `τ`
/// changes. So hash-grouping is done once in a [`GroupCache`] and each
/// guess merely re-bands the group representatives for its `τ`, instead of
/// redoing the full `n`-row discovery `guesses` times. With `warm` set
/// (the `DynamicWorld` round loop), the previous round's cache is refreshed
/// against the new z-vectors — rows whose bits did not change keep their
/// cached hash — and handed back for the next round.
pub fn naive_sampling_with(
    ctx: &Ctx<'_>,
    params: &ProtocolParams,
    warm: Option<&WarmStart>,
) -> Vec<BitVec> {
    let n = ctx.n();
    let m = ctx.oracle.objects();
    let b = params.budget();
    let ln_n = (n.max(2) as f64).ln();

    // Fixed public sample R of Θ(B log n) objects.
    let r_size = ((params.naive_sample_mult * b as f64 * ln_n).ceil() as usize).clamp(1, m);
    let mut rng = ctx.beacon.sub_rng(&[tags::SAMPLE, 0x7a1e]);
    let sample = choose_k(&mut rng, m, r_size);

    // Every player probes all of R directly.
    let zvecs: Vec<BitVec> = par_map_players(n, |p| {
        let p32 = p as u32;
        if ctx.behaviors.is_dishonest(p32) {
            ctx.behaviors
                .vector_claim(Phase::ClusterFormation, p32, &sample)
        } else {
            BitVec::from_fn(sample.len(), |k| ctx.oracle.probe(p32, sample[k]))
        }
    });

    // Group the z-vectors ONCE — they are guess-invariant (see above).
    // Warm path: refresh last round's cache instead of regrouping cold.
    let (cache, reused) = match warm.and_then(|w| w.take(params.neighbor_strategy)) {
        Some(mut cache) if cache.n() == n => {
            let reused = cache.refresh(&zvecs);
            (cache, reused)
        }
        _ => (GroupCache::build(&zvecs, params.neighbor_strategy), 0),
    };

    // Doubling diameter guesses on raw sample distances; share work with
    // NO redundancy (prior art's non-robust sharing). Each guess's
    // candidate streams straight into the per-player RSelect tournaments,
    // so only surviving candidates stay resident.
    let min_cluster = params.peel_min_size(n);
    let all_objects: Vec<u32> = (0..m as u32).collect();
    let select_pool = warm.map(|w| w.take_select_pool()).unwrap_or_default();
    let mut fused = FusedSelect::with_pool(ctx, &[0x7a1e], select_pool);
    for (di, &diameter) in params.diameter_guesses(n, m).iter().enumerate() {
        // Expected sample distance of a D-pair is |R|·D/m; edge at 3×.
        let tau = ((3.0 * sample.len() as f64 * diameter as f64 / m as f64).ceil() as usize).max(1);
        let clustering = cache.cluster(tau, min_cluster);
        let w_d = share_work(ctx, &clustering, m, 1, &[0x7a1e, di as u64], false);
        fused.absorb(ctx, w_d, &all_objects);
        // This guess's vote record is dead once its candidate is absorbed.
        ctx.board.retire_prefix(&[0x7a1e, di as u64]);
    }

    let (rows, spent) = fused.finish_recycling(ctx, &all_objects);
    if let Some(w) = warm {
        w.put(cache, reused);
        w.put_select_pool(spent);
    }
    rows
}

/// No collaboration beyond a public pool of probe results.
pub fn solo(ctx: &Ctx<'_>, params: &ProtocolParams) -> Vec<BitVec> {
    let n = ctx.n();
    let m = ctx.oracle.objects();
    let ln_n = (n.max(2) as f64).ln();
    let budget = ((params.budget() as f64 * ln_n).ceil() as usize).clamp(1, m);

    // Everyone probes their own random objects and posts the results.
    let scope = ctx.board.scope(&[0x5010]);
    let probes: Vec<Vec<(u32, bool)>> = par_map_players(n, |p| {
        let p32 = p as u32;
        let mut rng = ctx.player_rng(p32, &[0x5010]);
        let picks = choose_k(&mut rng, m, budget);
        picks
            .into_iter()
            .map(|o| {
                let v = if ctx.behaviors.is_dishonest(p32) {
                    ctx.behaviors.bit_claim(Phase::WorkSharing, p32, o)
                } else {
                    ctx.oracle.probe(p32, o)
                };
                scope.post_claim(p32, o, v);
                (o, v)
            })
            .collect()
    });

    // Global per-object majority over all posted claims.
    let mut counter = ColumnCounter::new(m);
    for player_probes in &probes {
        for &(o, v) in player_probes {
            counter.add_bit(o as usize, v, 1);
        }
    }
    let majority = counter.majority(false);

    par_map_players(n, |p| {
        let mut out = majority.clone();
        for &(o, v) in &probes[p] {
            out.set(o as usize, v);
        }
        out
    })
}

/// Majority vote over the whole population for every object.
pub fn global_majority(ctx: &Ctx<'_>, params: &ProtocolParams) -> Vec<BitVec> {
    let n = ctx.n();
    let m = ctx.oracle.objects();
    let clustering = Clustering {
        assignment: vec![0; n],
        clusters: vec![(0..n as u32).collect()],
    };
    share_work(ctx, &clustering, m, params.probe_reps(n), &[0x610b], false)
}

/// Skyline: perfect, free cluster discovery from the planted structure.
pub fn oracle_clusters(
    ctx: &Ctx<'_>,
    params: &ProtocolParams,
    planted: Option<&Planted>,
) -> Vec<BitVec> {
    let n = ctx.n();
    let m = ctx.oracle.objects();
    let clustering = match planted {
        Some(planted) => Clustering {
            assignment: planted.assignment.clone(),
            clusters: planted.clusters.clone(),
        },
        None => Clustering {
            assignment: vec![0; n],
            clusters: vec![(0..n as u32).collect()],
        },
    };
    share_work(
        ctx,
        &clustering,
        m,
        params.probe_reps(n),
        &[0x0e_ac1e],
        false,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzscore_adversary::Behaviors;
    use byzscore_bitset::Bits;
    use byzscore_board::{Board, Oracle};
    use byzscore_model::{Balance, Instance, Workload};
    use byzscore_random::Beacon;

    fn world(seed: u64) -> (Instance, ProtocolParams) {
        let inst = Workload::PlantedClusters {
            players: 64,
            objects: 64,
            clusters: 2,
            diameter: 4,
            balance: Balance::Even,
        }
        .generate(seed);
        (inst, ProtocolParams::with_budget(4))
    }

    #[test]
    fn oracle_clusters_is_tight() {
        let (inst, params) = world(3);
        let oracle = Oracle::new(inst.truth());
        let board = Board::new();
        let behaviors = Behaviors::all_honest(inst.truth());
        let ctx = Ctx::new(
            &oracle,
            &board,
            &behaviors,
            Beacon::honest(1),
            &params.blocks,
        );
        let out = oracle_clusters(&ctx, &params, inst.planted());
        let worst = (0..64)
            .map(|p| out[p].hamming(&inst.truth().row(p)))
            .max()
            .unwrap();
        assert!(worst <= 2 * 4, "skyline error {worst} > 2D");
    }

    #[test]
    fn solo_probes_its_budget_and_keeps_probed_bits() {
        let (inst, params) = world(5);
        let oracle = Oracle::new(inst.truth());
        let board = Board::new();
        let behaviors = Behaviors::all_honest(inst.truth());
        let ctx = Ctx::new(
            &oracle,
            &board,
            &behaviors,
            Beacon::honest(2),
            &params.blocks,
        );
        let out = solo(&ctx, &params);
        assert_eq!(out.len(), 64);
        // Solo probes min(m, B ln n) = 17 objects here, once each.
        let expected = ((4.0 * (64f64).ln()).ceil() as u64).min(64);
        assert_eq!(oracle.ledger().max(), expected);
        assert_eq!(oracle.ledger().total(), expected * 64);
    }

    #[test]
    fn global_majority_ignores_structure() {
        let inst = Workload::Anticorrelated {
            players: 32,
            objects: 40,
        }
        .generate(7);
        let params = ProtocolParams::with_budget(4);
        let oracle = Oracle::new(inst.truth());
        let board = Board::new();
        let behaviors = Behaviors::all_honest(inst.truth());
        let ctx = Ctx::new(
            &oracle,
            &board,
            &behaviors,
            Beacon::honest(3),
            &params.blocks,
        );
        let out = global_majority(&ctx, &params);
        // Anti-correlated camps: the global majority is ~half wrong for
        // every player (that is the point of this baseline).
        let err0 = out[0].hamming(&inst.truth().row(0));
        let err_last = out[31].hamming(&inst.truth().row(31));
        assert_eq!(err0 + err_last, 40, "camps split the majority exactly");
    }

    #[test]
    fn naive_sampling_runs_and_bounds_probes() {
        let (inst, params) = world(9);
        let oracle = Oracle::new(inst.truth());
        let board = Board::new();
        let behaviors = Behaviors::all_honest(inst.truth());
        let ctx = Ctx::new(
            &oracle,
            &board,
            &behaviors,
            Beacon::honest(4),
            &params.blocks,
        );
        let out = naive_sampling(&ctx, &params);
        assert_eq!(out.len(), 64);
        let worst = (0..64)
            .map(|p| out[p].hamming(&inst.truth().row(p)))
            .max()
            .unwrap();
        // B-approximation regime: allow B·D but expect sane behavior here.
        assert!(worst <= 4 * 4 * 4, "naive baseline error {worst} too large");
    }
}
