//! Step 1.e: redundant work sharing with majority voting (§6.6, Lemmas 10
//! and 13).
//!
//! For every cluster and every object, `Θ(log n)` cluster members are drawn
//! from the shared beacon and assigned to probe the object; each member of
//! the cluster adopts the majority of the posted claims. Redundancy is the
//! Byzantine defense: with ≤ 1/3 of a cluster dishonest, the honest
//! assignees out-vote the liars on every object where the honest members
//! broadly agree (Lemma 13 bounds the damage on the remaining "strange"
//! objects by `O(D)`).

use byzscore_adversary::Phase;
use byzscore_bitset::{BitVec, ColumnCounter};
use byzscore_blocks::Ctx;
use byzscore_board::par::par_map_items;
use byzscore_board::scope_id;
use byzscore_random::{choose_k, tags};

use crate::cluster::Clustering;

/// Execute the work-sharing phase for one diameter guess.
///
/// Returns one predicted vector per *cluster* (all members adopt their
/// cluster's vector, as in the paper) plus the per-player expansion.
/// Claims are posted on the board under a scope derived from `scope_path`
/// so experiments can audit the vote record.
/// `rig` models the strongest "biased shared randomness" attack §7.1 is
/// about: a dishonest elected leader crafts the published bits so that the
/// step-1.e assignment always lands on dishonest cluster members first. The
/// Θ(log n)-repetition + `RSelect` wrapper must absorb such repetitions.
pub fn share_work(
    ctx: &Ctx<'_>,
    clustering: &Clustering,
    n_objects: usize,
    reps: usize,
    scope_path: &[u64],
    rig: bool,
) -> Vec<BitVec> {
    let indexed: Vec<usize> = (0..clustering.clusters.len()).collect();
    let per_cluster: Vec<BitVec> = par_map_items(&indexed, |&ci| {
        cluster_majority(
            ctx,
            &clustering.clusters[ci],
            ci,
            n_objects,
            reps,
            scope_path,
            rig,
        )
    });

    clustering
        .assignment
        .iter()
        .map(|&c| per_cluster[c as usize].clone())
        .collect()
}

/// One cluster's majority vector over all objects.
#[allow(clippy::too_many_arguments)]
fn cluster_majority(
    ctx: &Ctx<'_>,
    members: &[u32],
    cluster_index: usize,
    n_objects: usize,
    reps: usize,
    scope_path: &[u64],
    rig: bool,
) -> BitVec {
    if members.is_empty() {
        return BitVec::zeros(n_objects);
    }
    let scope = ctx
        .board
        .scope(&[scope_path, &[tags::ASSIGN, cluster_index as u64]].concat());
    let path_tag = scope_id(scope_path);
    let mut counter = ColumnCounter::new(n_objects);
    let k = reps.min(members.len()).max(1);

    // Rigged beacons pick dishonest members first (stable order after that).
    let rigged_order: Option<Vec<u32>> = rig.then(|| {
        let (bad, good): (Vec<u32>, Vec<u32>) = members
            .iter()
            .partition(|&&p| ctx.behaviors.is_dishonest(p));
        [bad, good].concat()
    });

    for o in 0..n_objects as u32 {
        // Assignment comes from the shared beacon: dishonest players cannot
        // steer who probes what (§7.1's whole point) — unless the beacon
        // itself came from a dishonest leader (`rig`).
        let picks: Vec<u32> = match &rigged_order {
            Some(_) => (0..k as u32).collect(),
            None => {
                let mut rng = ctx.beacon.sub_rng(&[
                    tags::ASSIGN,
                    path_tag,
                    cluster_index as u64,
                    u64::from(o),
                ]);
                choose_k(&mut rng, members.len(), k)
            }
        };
        for &ix in &picks {
            let p = match &rigged_order {
                Some(order) => order[ix as usize],
                None => members[ix as usize],
            };
            let claim = if ctx.behaviors.is_dishonest(p) {
                ctx.behaviors.bit_claim(Phase::WorkSharing, p, o)
            } else {
                ctx.oracle.probe(p, o)
            };
            scope.post_claim(p, o, claim);
            counter.add_bit(o as usize, claim, 1);
        }
    }
    counter.majority(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzscore_adversary::{AntiMajority, Behaviors, Corruption, Inverter};
    use byzscore_bitset::Bits;
    use byzscore_blocks::BlockParams;
    use byzscore_board::{Board, Oracle};
    use byzscore_model::{Balance, Instance, Workload};
    use byzscore_random::Beacon;

    fn clone_world(players: usize, objects: usize, classes: usize, seed: u64) -> Instance {
        Workload::CloneClasses {
            players,
            objects,
            classes,
            balance: Balance::Even,
        }
        .generate(seed)
    }

    fn planted_clustering(inst: &Instance) -> Clustering {
        let planted = inst.planted().unwrap();
        Clustering {
            assignment: planted.assignment.clone(),
            clusters: planted.clusters.clone(),
        }
    }

    #[test]
    fn clones_get_exact_answers() {
        let inst = clone_world(48, 96, 3, 7);
        let clustering = planted_clustering(&inst);
        let oracle = Oracle::new(inst.truth());
        let board = Board::new();
        let behaviors = Behaviors::all_honest(inst.truth());
        let params = BlockParams::with_budget(3);
        let ctx = Ctx::new(&oracle, &board, &behaviors, Beacon::honest(11), &params);
        let out = share_work(&ctx, &clustering, 96, 5, &[1], false);
        for (p, w) in out.iter().enumerate() {
            assert_eq!(
                w.hamming(&inst.truth().row(p)),
                0,
                "player {p} got wrong majority"
            );
        }
    }

    #[test]
    fn probes_per_player_are_balanced() {
        let inst = clone_world(64, 256, 2, 9);
        let clustering = planted_clustering(&inst);
        let oracle = Oracle::new(inst.truth());
        let board = Board::new();
        let behaviors = Behaviors::all_honest(inst.truth());
        let params = BlockParams::with_budget(2);
        let ctx = Ctx::new(&oracle, &board, &behaviors, Beacon::honest(13), &params);
        let reps = 5;
        share_work(&ctx, &clustering, 256, reps, &[2], false);
        // Expected per player: reps · objects / cluster_size = 5·256/32 = 40.
        let max = oracle.ledger().max();
        assert!(
            max <= 4 * 40,
            "max probes {max} far above the balanced expectation"
        );
        let total = oracle.ledger().total();
        assert_eq!(total, (reps * 256 * 2) as u64, "every slot probed once");
    }

    #[test]
    fn inverting_minority_is_outvoted() {
        let inst = clone_world(60, 120, 2, 21);
        let clustering = planted_clustering(&inst);
        // 1/5 of each cluster dishonest (< 1/3).
        let dishonest = Corruption::Count { count: 12 }.select(&inst, 3);
        let behaviors = Behaviors::new(inst.truth(), dishonest, &Inverter);
        let oracle = Oracle::new(inst.truth());
        let board = Board::new();
        let params = BlockParams::with_budget(2);
        let ctx = Ctx::new(&oracle, &board, &behaviors, Beacon::honest(17), &params);
        let out = share_work(&ctx, &clustering, 120, 9, &[3], false);
        let mut worst = 0;
        for p in 0..60u32 {
            if !behaviors.is_dishonest(p) {
                worst = worst.max(out[p as usize].hamming(&inst.truth().row(p as usize)));
            }
        }
        // Clone clusters: honest members agree on *every* object, so
        // Lemma 13's "strange object" set is empty — errors only from
        // unlucky assignment draws. Allow a small residue.
        assert!(worst <= 6, "inverters corrupted {worst} objects");
    }

    #[test]
    fn anti_majority_no_better_than_inverter_on_clones() {
        let inst = clone_world(60, 120, 2, 23);
        let clustering = planted_clustering(&inst);
        let dishonest = Corruption::Count { count: 12 }.select(&inst, 5);
        let behaviors = Behaviors::new(inst.truth(), dishonest, &AntiMajority);
        let oracle = Oracle::new(inst.truth());
        let board = Board::new();
        let params = BlockParams::with_budget(2);
        let ctx = Ctx::new(&oracle, &board, &behaviors, Beacon::honest(19), &params);
        let out = share_work(&ctx, &clustering, 120, 9, &[4], false);
        let mut worst = 0;
        for p in 0..60u32 {
            if !behaviors.is_dishonest(p) {
                worst = worst.max(out[p as usize].hamming(&inst.truth().row(p as usize)));
            }
        }
        assert!(worst <= 6, "anti-majority corrupted {worst} objects");
    }

    #[test]
    fn claims_are_audited_on_board() {
        let inst = clone_world(16, 8, 1, 31);
        let clustering = planted_clustering(&inst);
        let oracle = Oracle::new(inst.truth());
        let board = Board::new();
        let behaviors = Behaviors::all_honest(inst.truth());
        let params = BlockParams::with_budget(1);
        let ctx = Ctx::new(&oracle, &board, &behaviors, Beacon::honest(23), &params);
        share_work(&ctx, &clustering, 8, 3, &[7], false);
        let scope = scope_id(&[7, tags::ASSIGN, 0]);
        for o in 0..8 {
            assert_eq!(board.claims(scope, o).len(), 3, "object {o} missing votes");
        }
    }

    #[test]
    fn empty_cluster_yields_zeros() {
        let inst = clone_world(4, 6, 1, 37);
        let clustering = Clustering {
            assignment: vec![0, 0, 0, 0],
            clusters: vec![vec![0, 1, 2, 3], vec![]],
        };
        let oracle = Oracle::new(inst.truth());
        let board = Board::new();
        let behaviors = Behaviors::all_honest(inst.truth());
        let params = BlockParams::with_budget(1);
        let ctx = Ctx::new(&oracle, &board, &behaviors, Beacon::honest(29), &params);
        let out = share_work(&ctx, &clustering, 6, 3, &[8], false);
        assert_eq!(out.len(), 4);
        // Players are all in cluster 0; the empty cluster is unused but
        // must not panic.
        let _ = out;
    }

    #[test]
    fn rigged_beacon_lets_dishonest_control_votes() {
        let inst = clone_world(30, 40, 1, 41);
        let clustering = planted_clustering(&inst);
        let dishonest = Corruption::FirstK { count: 6 }.select(&inst, 0);
        let behaviors = Behaviors::new(inst.truth(), dishonest, &Inverter);
        let oracle = Oracle::new(inst.truth());
        let board = Board::new();
        let params = BlockParams::with_budget(1);
        let ctx = Ctx::new(&oracle, &board, &behaviors, Beacon::dishonest(5), &params);
        // reps=5 ≤ 6 dishonest: a rigged assignment uses only liars.
        let out = share_work(&ctx, &clustering, 40, 5, &[9], true);
        let honest_player = 15;
        let err = out[honest_player].hamming(&inst.truth().row(honest_player));
        assert_eq!(err, 40, "rigged assignment must fully invert the cluster");
        // Control: unrigged beacon with the same adversary is fine.
        let out_fair = share_work(&ctx, &clustering, 40, 9, &[10], false);
        let err_fair = out_fair[honest_player].hamming(&inst.truth().row(honest_player));
        assert!(
            err_fair <= 4,
            "fair assignment out-votes the liars (err {err_fair})"
        );
    }
}
