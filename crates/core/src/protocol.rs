//! `CalculatePreferences` — **Figure 2**, the paper's main protocol (§6).

use byzscore_bitset::BitVec;
use byzscore_blocks::{small_radius, Ctx};
use byzscore_random::Provenance;

use crate::cluster::cluster_players_with;
use crate::fused::FusedSelect;
use crate::sampling::choose_sample;
use crate::share::share_work;
use crate::ProtocolParams;

/// Scope-path tag for `CalculatePreferences` invocations.
const CALC_TAG: u64 = 0xca1c;

/// Run Figure 2 once under the context's beacon, producing one output
/// vector per player (over all objects).
///
/// For each diameter guess `D = 2^d` (step 1): draw the shared sample `S`
/// (1.b), recover every player's sample vector with `SmallRadius` (1.c),
/// build the neighbor graph and peel clusters (1.d), and share the probing
/// work with majority votes (1.e), yielding candidate `w_d`. Step 2: each
/// player runs `RSelect` over its candidates.
///
/// `scope_path` distinguishes repetitions in the robust wrapper (board
/// scopes and private streams are derived from it).
///
/// If the beacon is dishonest-provenance and `params.leader_sabotage` is
/// set, the sample comes out empty and the work-sharing assignment is
/// rigged toward dishonest members — modeling a leader who published
/// adversarial bits. Honest-leader repetitions plus the final `RSelect`
/// are what §7.1 relies on to survive this.
pub fn calculate_preferences(
    ctx: &Ctx<'_>,
    params: &ProtocolParams,
    scope_path: &[u64],
) -> Vec<BitVec> {
    let n = ctx.n();
    let m = ctx.oracle.objects();
    let sabotaged = params.leader_sabotage && ctx.beacon.provenance() == Provenance::Dishonest;

    let guesses = params.diameter_guesses(n, m);
    let sr_diameter = params.sample_diameter(n);
    let edge_threshold = params.edge_threshold(n);
    let min_cluster = params.peel_min_size(n);
    let reps = params.probe_reps(n);
    let players: Vec<u32> = (0..n as u32).collect();

    // Step 1: one candidate per diameter guess, fed straight into the
    // per-player streaming RSelect (step 2) so only surviving candidates
    // stay resident — the batch path kept all `guesses` of them. The
    // sample is redrawn per guess (diameter-tagged beacon stream), so the
    // z-vectors change and the cross-guess `GroupCache` does not apply
    // here — see `naive_sampling` for the invariant-z case.
    let all_objects: Vec<u32> = (0..m as u32).collect();
    let mut fused = FusedSelect::new(ctx, &[CALC_TAG, scope_path.first().copied().unwrap_or(0)]);
    for (di, &diameter) in guesses.iter().enumerate() {
        let mut path = Vec::with_capacity(scope_path.len() + 2);
        path.extend_from_slice(scope_path);
        path.push(CALC_TAG);
        path.push(di as u64);

        // 1.b: shared sample (empty under a sabotaging dishonest leader —
        // "no information published").
        let sample = if sabotaged {
            Vec::new()
        } else {
            choose_sample(&ctx.beacon, n, m, diameter, params.c_sample)
        };

        // 1.c: every player's preferences on the sample. With an empty
        // sample all z-vectors are empty ⇒ the neighbor graph is complete
        // ⇒ one big cluster: the degenerate candidate RSelect later weighs.
        let z = small_radius(ctx, &players, &sample, sr_diameter, &path);

        // 1.d: neighbor discovery + greedy peeling, under the params'
        // strategy (all strategies yield the identical Lemma-8 edge set).
        let clustering =
            cluster_players_with(&z, edge_threshold, min_cluster, params.neighbor_strategy);

        // 1.e: redundant probing with majority votes, streamed into the
        // step-2 tournaments.
        let w_d = share_work(ctx, &clustering, m, reps, &path, sabotaged);
        fused.absorb(ctx, w_d, &all_objects);

        // Everything this guess posted (SmallRadius vectors, work-sharing
        // claims) is consumed: the surviving candidates live in memory and
        // step 2's RSelect only probes. Retiring keeps the board's live
        // set at one diameter guess instead of accumulating all of them
        // per run.
        ctx.board.retire_prefix(&path);
    }

    // Step 2 epilogue: close the per-player tournaments (honest winners
    // and dishonest vector claims, exactly as the batch RSelect ended).
    fused.finish(ctx, &all_objects)
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzscore_adversary::Behaviors;
    use byzscore_bitset::Bits;
    use byzscore_board::{Board, Oracle};
    use byzscore_model::{Balance, Workload};
    use byzscore_random::Beacon;

    #[test]
    fn recovers_planted_clusters_with_small_error() {
        let d = 8;
        let inst = Workload::PlantedClusters {
            players: 128,
            objects: 128,
            clusters: 4,
            diameter: d,
            balance: Balance::Even,
        }
        .generate(3);
        let params = ProtocolParams::with_budget(4);
        let oracle = Oracle::new(inst.truth());
        let board = Board::new();
        let behaviors = Behaviors::all_honest(inst.truth());
        let ctx = Ctx::new(
            &oracle,
            &board,
            &behaviors,
            Beacon::honest(11),
            &params.blocks,
        );
        let out = calculate_preferences(&ctx, &params, &[0]);
        let mut worst = 0;
        for (p, w) in out.iter().enumerate() {
            worst = worst.max(w.hamming(&inst.truth().row(p)));
        }
        assert!(worst <= 4 * d, "worst error {worst} > 4D");
    }

    #[test]
    fn clone_world_is_exact() {
        let inst = Workload::CloneClasses {
            players: 96,
            objects: 96,
            classes: 3,
            balance: Balance::Even,
        }
        .generate(9);
        let params = ProtocolParams::with_budget(3);
        let oracle = Oracle::new(inst.truth());
        let board = Board::new();
        let behaviors = Behaviors::all_honest(inst.truth());
        let ctx = Ctx::new(
            &oracle,
            &board,
            &behaviors,
            Beacon::honest(13),
            &params.blocks,
        );
        let out = calculate_preferences(&ctx, &params, &[0]);
        let worst = (0..96)
            .map(|p| out[p].hamming(&inst.truth().row(p)))
            .max()
            .unwrap();
        assert!(worst <= 2, "clone world should be near-exact, got {worst}");
    }

    #[test]
    fn sabotaged_beacon_still_terminates() {
        let inst = Workload::CloneClasses {
            players: 32,
            objects: 32,
            classes: 2,
            balance: Balance::Even,
        }
        .generate(15);
        let params = ProtocolParams::with_budget(4);
        let oracle = Oracle::new(inst.truth());
        let board = Board::new();
        let behaviors = Behaviors::all_honest(inst.truth());
        let ctx = Ctx::new(
            &oracle,
            &board,
            &behaviors,
            Beacon::dishonest(13),
            &params.blocks,
        );
        let out = calculate_preferences(&ctx, &params, &[1]);
        assert_eq!(out.len(), 32);
        // With everyone honest even a sabotaged beacon yields the global
        // majority per cluster — still decent on a 2-clone world, but the
        // contract here is only totality.
    }
}
