//! SplitMix64: seed derivation and a minimal PRNG core.

/// SplitMix64 PRNG (Steele, Lea & Flood 2014).
///
/// Used only for *seed derivation* — mixing a master seed with purpose tags
/// into sub-stream seeds. Statistical quality is more than sufficient for
/// that; protocol-visible randomness then flows through `rand::SmallRng`
/// seeded from the derived value.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// New generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Derive a sub-seed from a base seed and a sequence of purpose tags.
///
/// Distinct tag sequences yield (with overwhelming probability) independent
/// seeds; identical sequences yield identical seeds. This is the agreement
/// mechanism behind every shared random choice in the protocol.
pub fn derive_seed(base: u64, tags: &[u64]) -> u64 {
    let mut mixer = SplitMix64::new(base ^ 0xd1b5_4a32_d192_ed03);
    let mut acc = mixer.next_u64();
    for &t in tags {
        // Feed each tag through the mixer state so order matters.
        let mut m = SplitMix64::new(acc ^ t.wrapping_mul(0xff51_afd7_ed55_8ccd));
        acc = m.next_u64();
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(1);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn derive_seed_depends_on_tags_and_order() {
        let base = 42;
        assert_eq!(derive_seed(base, &[1, 2]), derive_seed(base, &[1, 2]));
        assert_ne!(derive_seed(base, &[1, 2]), derive_seed(base, &[2, 1]));
        assert_ne!(derive_seed(base, &[1]), derive_seed(base, &[1, 0]));
        assert_ne!(derive_seed(base, &[]), derive_seed(base + 1, &[]));
    }

    #[test]
    fn splitmix_known_values() {
        // Reference values for seed 0 (from the published algorithm).
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(g.next_u64(), 0x6e78_9e6a_a1b9_65f4);
    }

    #[test]
    fn stream_is_roughly_balanced() {
        let mut g = SplitMix64::new(7);
        let ones: u32 = (0..1000).map(|_| g.next_u64().count_ones()).sum();
        // 64,000 bits; expect ~32,000 ones. Allow wide slack.
        assert!((28_000..36_000).contains(&ones), "ones = {ones}");
    }
}
