//! Deterministic randomness for protocol simulation.
//!
//! `CalculatePreferences` (paper §7.1) depends on *shared* random choices —
//! the sample set `S`, the `ZeroRadius` partitions, and the probe
//! assignments of step (1.e) must be identical at every honest player. The
//! paper realizes this with an elected leader who publishes random bits to
//! the bulletin board. This crate models those published bits as a
//! [`Beacon`]: a seed plus a *provenance* flag (honest leaders publish
//! uniform bits; dishonest leaders publish bits of their choosing), from
//! which any number of independent, purpose-tagged sub-streams are derived
//! via [`Beacon::sub_rng`].
//!
//! Tagged derivation gives two properties the simulation needs:
//!
//! 1. **Agreement** — every honest player derives exactly the same choices
//!    from the same beacon, with no cross-thread coordination.
//! 2. **Reproducibility** — a whole experiment is a pure function of its
//!    master seed, regardless of thread count or execution order.
//!
//! The crate also provides the sampling primitives the protocol text uses:
//! Bernoulli subsets (`S`), exact-`k` subsets (Floyd), random halvings
//! (`ZeroRadius` step 2), and `s`-way partitions (`SmallRadius` step 1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod beacon;
mod sampling;
mod splitmix;

pub use beacon::{tags, Beacon, Provenance};
pub use sampling::{bernoulli_subset, choose_k, halve, partition_into, shuffled};
pub use splitmix::{derive_seed, SplitMix64};
