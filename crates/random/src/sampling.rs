//! Sampling primitives used by the protocol text.

use rand::seq::SliceRandom;
use rand::Rng;

/// Bernoulli subset of `[0, n)`: each element included independently with
/// probability `p` (`CalculatePreferences` step 1.b, "add each object
/// independently with probability 10 ln(n)/D").
pub fn bernoulli_subset<R: Rng + ?Sized>(rng: &mut R, n: usize, p: f64) -> Vec<u32> {
    let p = p.clamp(0.0, 1.0);
    (0..n as u32).filter(|_| rng.gen_bool(p)).collect()
}

/// Exactly `k` distinct elements of `[0, n)`, sorted (Floyd's algorithm).
///
/// Used for probe assignments ("choose Θ(log n) of the players from the
/// cluster uniformly at random") and `RSelect`'s coordinate samples.
pub fn choose_k<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<u32> {
    assert!(k <= n, "cannot choose {k} from {n}");
    let mut chosen = std::collections::HashSet::with_capacity(k);
    for j in (n - k)..n {
        let t = rng.gen_range(0..=j) as u32;
        if chosen.contains(&t) {
            chosen.insert(j as u32);
        } else {
            chosen.insert(t);
        }
    }
    let mut out: Vec<u32> = chosen.into_iter().collect();
    out.sort_unstable();
    out
}

/// Random halving of `items`: each element lands in the left or right part
/// with probability 1/2 (`ZeroRadius` step 2).
///
/// Either part may be empty for tiny inputs; `ZeroRadius`'s base case fires
/// before that matters.
pub fn halve<R: Rng + ?Sized, T: Copy>(rng: &mut R, items: &[T]) -> (Vec<T>, Vec<T>) {
    let mut left = Vec::with_capacity(items.len() / 2 + 1);
    let mut right = Vec::with_capacity(items.len() / 2 + 1);
    for &it in items {
        if rng.gen_bool(0.5) {
            left.push(it);
        } else {
            right.push(it);
        }
    }
    (left, right)
}

/// Partition `items` into exactly `s` (possibly empty) groups uniformly at
/// random (`SmallRadius` step 1, "partition the objects O randomly into s
/// disjoint subsets").
pub fn partition_into<R: Rng + ?Sized, T: Copy>(rng: &mut R, items: &[T], s: usize) -> Vec<Vec<T>> {
    assert!(s >= 1, "need at least one group");
    let mut groups: Vec<Vec<T>> = (0..s).map(|_| Vec::new()).collect();
    for &it in items {
        groups[rng.gen_range(0..s)].push(it);
    }
    groups
}

/// A uniformly shuffled copy of `[0, n)`.
pub fn shuffled<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<u32> {
    let mut v: Vec<u32> = (0..n as u32).collect();
    v.shuffle(rng);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn bernoulli_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(bernoulli_subset(&mut rng, 50, 0.0).is_empty());
        assert_eq!(bernoulli_subset(&mut rng, 50, 1.0).len(), 50);
    }

    #[test]
    fn bernoulli_rate_roughly_respected() {
        let mut rng = SmallRng::seed_from_u64(2);
        let s = bernoulli_subset(&mut rng, 100_000, 0.3);
        let rate = s.len() as f64 / 100_000.0;
        assert!((0.28..0.32).contains(&rate), "rate {rate}");
    }

    #[test]
    fn choose_k_edge_cases() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(choose_k(&mut rng, 10, 0).is_empty());
        let all = choose_k(&mut rng, 10, 10);
        assert_eq!(all, (0..10u32).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "cannot choose")]
    fn choose_k_too_many_panics() {
        choose_k(&mut SmallRng::seed_from_u64(0), 3, 4);
    }

    #[test]
    fn halve_partitions_everything() {
        let mut rng = SmallRng::seed_from_u64(4);
        let items: Vec<u32> = (0..1000).collect();
        let (l, r) = halve(&mut rng, &items);
        assert_eq!(l.len() + r.len(), 1000);
        // Roughly balanced (binomial(1000, 1/2) is within ±200 whp).
        assert!((300..700).contains(&l.len()), "left size {}", l.len());
        let mut merged = [l, r].concat();
        merged.sort_unstable();
        assert_eq!(merged, items);
    }

    proptest! {
        #[test]
        fn prop_choose_k_distinct_sorted_in_range(seed in 0u64..200, n in 1usize..300, frac in 0.0f64..1.0) {
            let k = ((n as f64) * frac) as usize;
            let mut rng = SmallRng::seed_from_u64(seed);
            let s = choose_k(&mut rng, n, k);
            prop_assert_eq!(s.len(), k);
            prop_assert!(s.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(s.iter().all(|&x| (x as usize) < n));
        }

        #[test]
        fn prop_partition_into_is_partition(seed in 0u64..200, n in 0usize..200, s in 1usize..10) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let items: Vec<u32> = (0..n as u32).collect();
            let groups = partition_into(&mut rng, &items, s);
            prop_assert_eq!(groups.len(), s);
            let mut merged: Vec<u32> = groups.concat();
            merged.sort_unstable();
            prop_assert_eq!(merged, items);
        }

        #[test]
        fn prop_shuffled_is_permutation(seed in 0u64..200, n in 0usize..200) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut s = shuffled(&mut rng, n);
            s.sort_unstable();
            prop_assert_eq!(s, (0..n as u32).collect::<Vec<_>>());
        }
    }
}
