//! The shared-randomness beacon: modeled leader-published bits.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::derive_seed;

/// Who supplied the beacon's bits.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Provenance {
    /// An honest leader: bits are uniform and independent of the adversary.
    Honest,
    /// A dishonest leader: bits were chosen by the adversary (the seed may
    /// have been searched to harm the protocol). §7.1 tolerates this by
    /// repeating the election Θ(log n) times and selecting with `RSelect`.
    Dishonest,
}

/// A source of shared random bits, standing in for the random string a
/// leader writes to the bulletin board (paper §7.1).
///
/// All honest players hold the same `Beacon` and derive identical
/// purpose-tagged sub-streams from it.
#[derive(Clone, Debug)]
pub struct Beacon {
    seed: u64,
    provenance: Provenance,
}

impl Beacon {
    /// Beacon published by an honest leader.
    pub fn honest(seed: u64) -> Self {
        Beacon {
            seed,
            provenance: Provenance::Honest,
        }
    }

    /// Beacon published by a dishonest leader who chose `seed` adversarially.
    pub fn dishonest(seed: u64) -> Self {
        Beacon {
            seed,
            provenance: Provenance::Dishonest,
        }
    }

    /// Provenance of the bits.
    pub fn provenance(&self) -> Provenance {
        self.provenance
    }

    /// Raw seed (exposed for adversaries that inspect published bits; honest
    /// code uses [`Beacon::sub_rng`]).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive the sub-stream for a purpose identified by `tags`.
    ///
    /// Honest players calling with equal tags get identical streams — this
    /// is how "the same partition is chosen by all players" (`ZeroRadius`
    /// step 2) is realized.
    pub fn sub_rng(&self, tags: &[u64]) -> SmallRng {
        SmallRng::seed_from_u64(derive_seed(self.seed, tags))
    }

    /// Derive a child beacon for a nested protocol scope (e.g. one diameter
    /// guess iteration), preserving provenance.
    pub fn child(&self, tags: &[u64]) -> Beacon {
        Beacon {
            seed: derive_seed(self.seed, tags),
            provenance: self.provenance,
        }
    }
}

/// Well-known purpose tags so call sites cannot collide by accident.
pub mod tags {
    /// Sample-set selection (`CalculatePreferences` step 1.b).
    pub const SAMPLE: u64 = 0x5a4d;
    /// `ZeroRadius` player/object halving (step 2).
    pub const ZR_PARTITION: u64 = 0x2b90;
    /// `SmallRadius` object partition (step 1).
    pub const SR_PARTITION: u64 = 0x51c3;
    /// Work-sharing probe assignment (step 1.e).
    pub const ASSIGN: u64 = 0xa51e;
    /// Leader-election bin choices.
    pub const ELECTION: u64 = 0xe1ec;
    /// Per-player private stream derivation.
    pub const PLAYER: u64 = 0x91a7;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn equal_tags_equal_streams() {
        let b = Beacon::honest(5);
        let x: u64 = b.sub_rng(&[tags::SAMPLE, 3]).gen();
        let y: u64 = b.sub_rng(&[tags::SAMPLE, 3]).gen();
        assert_eq!(x, y);
    }

    #[test]
    fn different_tags_differ() {
        let b = Beacon::honest(5);
        let x: u64 = b.sub_rng(&[tags::SAMPLE, 3]).gen();
        let y: u64 = b.sub_rng(&[tags::SAMPLE, 4]).gen();
        let z: u64 = b.sub_rng(&[tags::ASSIGN, 3]).gen();
        assert_ne!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn child_preserves_provenance() {
        let h = Beacon::honest(1).child(&[7]);
        let d = Beacon::dishonest(1).child(&[7]);
        assert_eq!(h.provenance(), Provenance::Honest);
        assert_eq!(d.provenance(), Provenance::Dishonest);
        // Same seed + same tags ⇒ same derived seed, independent of provenance.
        assert_eq!(h.seed(), d.seed());
    }

    #[test]
    fn children_with_distinct_tags_are_independent() {
        let b = Beacon::honest(9);
        assert_ne!(b.child(&[0]).seed(), b.child(&[1]).seed());
    }
}
