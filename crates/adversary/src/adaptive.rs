//! Adaptive corruption: an adversary that re-targets between repetitions.
//!
//! The paper's fault model fixes the dishonest set before the execution;
//! trust-score systems in the wild face something stronger — participants
//! who *watch the scoring* and shift their behaviour in response (Ignat et
//! al., "The Influence of Trust Score on Cooperative Behavior"). This
//! module models the between-repetition version of that adversary: after
//! each protocol execution the attacker observes the surviving clustering
//! and the honest error scores ([`Observation`], distilled from the same
//! omniscient world view [`crate::AdvCtx`] exposes during a run), and
//! re-selects *which* players are corrupted for the next repetition —
//! e.g. concentrating its whole budget on the smallest surviving group,
//! where each vote matters most.
//!
//! [`AdaptiveCorruption`] wraps a static [`Corruption`] (which fixes the
//! *budget*: the adaptive adversary never corrupts more players than its
//! static base would). The observation `window` bounds how much history
//! the adversary may consult; a window of **zero reduces it exactly to
//! the wrapped static model** — the property `tests/dynamic_world.rs`
//! pins, and the control arm every adaptive experiment compares against.

use byzscore_model::Planted;

use crate::corruption::Corruption;

/// What the adversary observed from one completed repetition.
///
/// Index `g` refers to group `g` of the repetition's planted/recovered
/// structure. Built by the dynamic-world runner from the omniscient
/// post-run view (the same truth access [`crate::AdvCtx`] grants
/// strategies mid-run).
#[derive(Clone, Debug, PartialEq)]
pub struct Observation {
    /// Honest survivors per group: members that were not corrupted in the
    /// observed repetition.
    pub group_survivors: Vec<usize>,
    /// Mean prediction error of the honest members per group, when the
    /// observed run materialized its output (dense sink); `None` under a
    /// streaming sink.
    pub group_mean_err: Option<Vec<f64>>,
}

impl Observation {
    /// Observation carrying only the surviving-group sizes.
    pub fn sizes(group_survivors: Vec<usize>) -> Self {
        Observation {
            group_survivors,
            group_mean_err: None,
        }
    }
}

/// How the adversary converts observations into a target group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdaptivePolicy {
    /// Concentrate the budget on the smallest surviving group (fewest
    /// honest survivors, ties to the lowest index) — the fewer honest
    /// votes a group casts, the cheaper its majority is to flip.
    SmallestGroup,
    /// Concentrate on the group whose honest members already showed the
    /// highest mean error — kick the group that is already stumbling.
    /// Falls back to [`AdaptivePolicy::SmallestGroup`] when no observation
    /// in the window carries error scores.
    HighestError,
}

/// A corruption model that re-targets after observing previous
/// repetitions.
#[derive(Clone, Debug)]
pub struct AdaptiveCorruption {
    /// The static model supplying the corruption *budget* (and the
    /// fallback selection when nothing has been observed).
    pub base: Corruption,
    /// How many of the most recent observations the adversary may
    /// consult. `0` disables adaptation entirely: selection is exactly
    /// `base`, whatever the history says.
    pub window: usize,
    /// Target-selection policy.
    pub policy: AdaptivePolicy,
}

impl AdaptiveCorruption {
    /// Adaptive wrapper around `base`.
    pub fn new(base: Corruption, window: usize, policy: AdaptivePolicy) -> Self {
        AdaptiveCorruption {
            base,
            window,
            policy,
        }
    }

    /// The non-adaptive control: window 0, selection ≡ `base`.
    pub fn off(base: Corruption) -> Self {
        AdaptiveCorruption::new(base, 0, AdaptivePolicy::SmallestGroup)
    }

    /// Produce the dishonest mask for the next repetition, given the
    /// observations gathered so far (oldest first).
    ///
    /// Deterministic in `(n, planted, seed, visible history)`. With an
    /// empty visible window — `window == 0`, or no history yet — this is
    /// **bit-identical** to `base.select_mask(n, planted, seed)`.
    pub fn select_mask(
        &self,
        n: usize,
        planted: Option<&Planted>,
        seed: u64,
        history: &[Observation],
    ) -> Vec<bool> {
        self.select_mask_with_target(n, planted, seed, history).0
    }

    /// [`AdaptiveCorruption::select_mask`], also reporting which group was
    /// targeted (`None` when selection fell through to the static base).
    pub fn select_mask_with_target(
        &self,
        n: usize,
        planted: Option<&Planted>,
        seed: u64,
        history: &[Observation],
    ) -> (Vec<bool>, Option<usize>) {
        let base_mask = self.base.select_mask(n, planted, seed);
        let visible = &history[history.len() - self.window.min(history.len())..];
        if self.window == 0 || visible.is_empty() {
            return (base_mask, None);
        }
        let Some(planted) = planted else {
            // Nothing to aim at without group structure.
            return (base_mask, None);
        };
        let Some(target) = self.pick_target(visible) else {
            return (base_mask, None);
        };
        // Same budget as the static base, re-aimed at the target group.
        let budget = base_mask.iter().filter(|&&d| d).count();
        let mask = Corruption::InCluster {
            cluster: target,
            count: budget,
        }
        .select_mask(n, Some(planted), seed);
        (mask, Some(target))
    }

    /// Aggregate the visible observations into one target group.
    fn pick_target(&self, visible: &[Observation]) -> Option<usize> {
        let groups = visible
            .iter()
            .map(|o| o.group_survivors.len())
            .min()
            .unwrap_or(0);
        if groups == 0 {
            return None;
        }
        if self.policy == AdaptivePolicy::HighestError {
            // Mean of the observed per-group mean errors, over the
            // observations that carry scores for every group in play
            // (both fields are public, so a caller-built observation may
            // be shorter than its survivor list — treat it as unscored
            // rather than indexing past it).
            let scored: Vec<&Observation> = visible
                .iter()
                .filter(|o| o.group_mean_err.as_ref().is_some_and(|v| v.len() >= groups))
                .collect();
            if !scored.is_empty() {
                let mut best = 0usize;
                let mut best_err = f64::MIN;
                for g in 0..groups {
                    let err: f64 = scored
                        .iter()
                        .map(|o| o.group_mean_err.as_ref().unwrap()[g])
                        .sum::<f64>()
                        / scored.len() as f64;
                    if err > best_err {
                        best_err = err;
                        best = g;
                    }
                }
                return Some(best);
            }
            // No scores anywhere in the window: fall through to sizes.
        }
        // Smallest surviving group: fewest aggregated honest survivors,
        // preferring groups that still have anyone left to deceive.
        let survivors: Vec<usize> = (0..groups)
            .map(|g| visible.iter().map(|o| o.group_survivors[g]).sum())
            .collect();
        let candidate = |alive: bool| {
            survivors
                .iter()
                .enumerate()
                .filter(|(_, &s)| (s > 0) == alive)
                .min_by_key(|(_, &s)| s)
                .map(|(g, _)| g)
        };
        candidate(true).or_else(|| candidate(false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzscore_model::{Balance, Workload};

    fn planted() -> Planted {
        Workload::PlantedClusters {
            players: 32,
            objects: 32,
            clusters: 4,
            diameter: 4,
            balance: Balance::Even,
        }
        .generate(1)
        .planted()
        .unwrap()
        .clone()
    }

    fn obs(sizes: &[usize]) -> Observation {
        Observation::sizes(sizes.to_vec())
    }

    #[test]
    fn zero_window_is_exactly_the_base() {
        let p = planted();
        let base = Corruption::Count { count: 6 };
        let adaptive = AdaptiveCorruption::off(base.clone());
        let history = vec![obs(&[1, 2, 3, 4]), obs(&[4, 3, 2, 1])];
        for seed in 0..8 {
            assert_eq!(
                adaptive.select_mask(32, Some(&p), seed, &history),
                base.select_mask(32, Some(&p), seed),
            );
        }
    }

    #[test]
    fn empty_history_is_the_base_even_with_a_window() {
        let p = planted();
        let base = Corruption::Count { count: 5 };
        let adaptive = AdaptiveCorruption::new(base.clone(), 3, AdaptivePolicy::SmallestGroup);
        let (mask, target) = adaptive.select_mask_with_target(32, Some(&p), 7, &[]);
        assert_eq!(mask, base.select_mask(32, Some(&p), 7));
        assert_eq!(target, None);
    }

    #[test]
    fn targets_the_smallest_surviving_group_with_base_budget() {
        let p = planted(); // 4 clusters of 8
        let adaptive = AdaptiveCorruption::new(
            Corruption::Count { count: 5 },
            1,
            AdaptivePolicy::SmallestGroup,
        );
        let history = vec![obs(&[8, 8, 8, 8]), obs(&[8, 3, 8, 0])];
        // Window 1: only the last observation is visible; group 3 has no
        // survivors, so the smallest *surviving* group is 1.
        let (mask, target) = adaptive.select_mask_with_target(32, Some(&p), 9, &history);
        assert_eq!(target, Some(1));
        assert_eq!(mask.iter().filter(|&&d| d).count(), 5, "budget preserved");
        for (player, &d) in mask.iter().enumerate() {
            if d {
                assert_eq!(p.assignment[player], 1, "player {player} off-target");
            }
        }
    }

    #[test]
    fn window_aggregates_multiple_observations() {
        let p = planted();
        let adaptive = AdaptiveCorruption::new(
            Corruption::Count { count: 4 },
            2,
            AdaptivePolicy::SmallestGroup,
        );
        // Summed over the window: [10, 4, 16, 9] ⇒ group 1.
        let history = vec![obs(&[2, 2, 8, 1]), obs(&[8, 2, 8, 8])];
        let (_, target) = adaptive.select_mask_with_target(32, Some(&p), 3, &history);
        assert_eq!(target, Some(1));
    }

    #[test]
    fn highest_error_policy_follows_scores_and_falls_back() {
        let p = planted();
        let adaptive = AdaptiveCorruption::new(
            Corruption::Count { count: 4 },
            1,
            AdaptivePolicy::HighestError,
        );
        let scored = Observation {
            group_survivors: vec![8, 8, 8, 8],
            group_mean_err: Some(vec![0.5, 9.0, 1.0, 2.0]),
        };
        let (_, target) = adaptive.select_mask_with_target(32, Some(&p), 4, &[scored]);
        assert_eq!(target, Some(1), "chases the highest observed error");
        // Without scores the policy degrades to smallest-group.
        let (_, target) = adaptive.select_mask_with_target(32, Some(&p), 4, &[obs(&[8, 8, 2, 8])]);
        assert_eq!(target, Some(2));
        // A caller-built observation with fewer scores than groups is
        // treated as unscored, never indexed past.
        let short = Observation {
            group_survivors: vec![8, 8, 2, 8],
            group_mean_err: Some(vec![9.0]),
        };
        let (_, target) = adaptive.select_mask_with_target(32, Some(&p), 4, &[short]);
        assert_eq!(target, Some(2), "short score vector falls back to sizes");
    }

    #[test]
    fn no_planted_structure_means_no_retarget() {
        let adaptive = AdaptiveCorruption::new(
            Corruption::FirstK { count: 3 },
            2,
            AdaptivePolicy::SmallestGroup,
        );
        let (mask, target) = adaptive.select_mask_with_target(16, None, 5, &[obs(&[4, 1])]);
        assert_eq!(target, None);
        assert_eq!(
            mask,
            Corruption::FirstK { count: 3 }.select_mask(16, None, 5)
        );
    }

    #[test]
    fn deterministic_in_seed_and_history() {
        let p = planted();
        let adaptive = AdaptiveCorruption::new(
            Corruption::Count { count: 6 },
            2,
            AdaptivePolicy::SmallestGroup,
        );
        let history = vec![obs(&[5, 2, 7, 8])];
        let a = adaptive.select_mask(32, Some(&p), 11, &history);
        let b = adaptive.select_mask(32, Some(&p), 11, &history);
        let c = adaptive.select_mask(32, Some(&p), 12, &history);
        assert_eq!(a, b);
        assert_ne!(a, c, "distinct seeds pick distinct members");
    }
}
