//! Corruption models and dishonest-player strategies.
//!
//! The paper's fault model (§2, §7): up to `n/(3B)` players "may ignore the
//! protocol, lying about [their] preferences and attempting to improperly
//! influence the output", possibly *colluding*. They cannot forge honest
//! players' bulletin-board entries (enforced by the board's authenticated
//! slots), but everything they post themselves is attacker-chosen.
//!
//! We implement the strongest admissible adversary: **omniscient** (reads
//! the whole hidden truth matrix and the set of corrupted players) and
//! **coordinated** (strategies share a [`CollusionState`] scratchpad). The
//! paper's guarantees must — and, per experiment E9, do — hold against it.
//!
//! * [`Corruption`] selects *which* players are dishonest (random fraction,
//!   exact count, targeted inside a planted cluster for hijack experiments,
//!   or an explicit precomputed mask).
//! * [`AdaptiveCorruption`] goes beyond the paper's static set: it observes
//!   completed repetitions ([`Observation`]: surviving group sizes, honest
//!   error scores) and re-targets its budget — e.g. onto the smallest
//!   surviving group — subject to an observation window; window 0 reduces
//!   exactly to the wrapped static model.
//! * [`Strategy`] decides *what* a dishonest player posts at each protocol
//!   phase; implementations range from control (behave honestly) through
//!   random lying to targeted cluster hijacking (the attack Lemma 13 is
//!   about).
//! * [`Behaviors`] bundles the mask and strategy behind the single call
//!   surface the protocol crates use.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
mod behaviors;
mod corruption;
mod strategy;

pub use adaptive::{AdaptiveCorruption, AdaptivePolicy, Observation};
pub use behaviors::Behaviors;
pub use corruption::Corruption;
pub use strategy::{
    AdvCtx, AntiMajority, ClusterHijacker, CollusionState, Inverter, Phase, RandomLiar, Sleeper,
    Strategy, Truthful,
};
