//! Selecting the corrupted player set.

use byzscore_model::{Instance, Planted};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// How the dishonest player set is chosen.
///
/// The paper's bound tolerates *any* set of up to `n/(3B)` dishonest
/// players; experiments therefore exercise random sets (average case),
/// prefix sets (deterministic reproduction), and sets planted inside one
/// target cluster (the hardest case for the Lemma 13 argument: maximal
/// per-cluster contamination).
#[derive(Clone, Debug)]
pub enum Corruption {
    /// Everybody honest.
    None,
    /// A uniformly random subset of exactly `count` players.
    Count {
        /// Number of dishonest players.
        count: usize,
    },
    /// A uniformly random subset: each player dishonest with probability
    /// `fraction` (binomially distributed total).
    RandomFraction {
        /// Per-player corruption probability in `[0,1]`.
        fraction: f64,
    },
    /// Players `0..count` are dishonest (deterministic; useful in unit
    /// tests).
    FirstK {
        /// Number of dishonest players.
        count: usize,
    },
    /// `count` dishonest players planted *inside planted cluster `cluster`*
    /// (falls back to random players if the cluster is smaller). Requires a
    /// planted instance.
    InCluster {
        /// Index of the targeted planted cluster.
        cluster: usize,
        /// Number of dishonest players.
        count: usize,
    },
    /// Exactly this precomputed mask, verbatim. The escape hatch for
    /// drivers that compute masks outside the enum — the dynamic-world
    /// runner's [`crate::AdaptiveCorruption`] re-targets per repetition and
    /// injects the result here.
    Explicit {
        /// The dishonest mask (must cover all `n` players).
        mask: Vec<bool>,
    },
}

impl Corruption {
    /// Produce the dishonest mask for `instance`, deterministically from
    /// `seed`.
    pub fn select(&self, instance: &Instance, seed: u64) -> Vec<bool> {
        self.select_mask(instance.players(), instance.planted(), seed)
    }

    /// Produce the dishonest mask for a world of `n` players with optional
    /// planted structure — the [`Instance`]-free entry point used by
    /// sessions whose truth never materializes (procedural backends).
    /// Bit-identical to [`Corruption::select`] for the same inputs.
    pub fn select_mask(&self, n: usize, planted: Option<&Planted>, seed: u64) -> Vec<bool> {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xbad0_5eed_0000_0001);
        let mut mask = vec![false; n];
        match *self {
            Corruption::None => {}
            Corruption::Explicit { mask: ref m } => {
                assert_eq!(m.len(), n, "explicit mask must cover all {n} players");
                mask.copy_from_slice(m);
            }
            Corruption::Count { count } => {
                assert!(count <= n, "cannot corrupt {count} of {n}");
                let mut ids: Vec<usize> = (0..n).collect();
                ids.shuffle(&mut rng);
                for &p in &ids[..count] {
                    mask[p] = true;
                }
            }
            Corruption::RandomFraction { fraction } => {
                use rand::Rng;
                assert!((0.0..=1.0).contains(&fraction), "fraction in [0,1]");
                for m in mask.iter_mut() {
                    *m = rng.gen_bool(fraction);
                }
            }
            Corruption::FirstK { count } => {
                assert!(count <= n, "cannot corrupt {count} of {n}");
                for m in mask.iter_mut().take(count) {
                    *m = true;
                }
            }
            Corruption::InCluster { cluster, count } => {
                let planted = planted.expect("InCluster corruption requires a planted instance");
                let mut members: Vec<u32> =
                    planted.clusters.get(cluster).cloned().unwrap_or_default();
                members.shuffle(&mut rng);
                let in_cluster = members.len().min(count);
                for &p in &members[..in_cluster] {
                    mask[p as usize] = true;
                }
                // Overflow spills onto random players outside the cluster.
                if in_cluster < count {
                    let mut rest: Vec<usize> = (0..n).filter(|&p| !mask[p]).collect();
                    rest.shuffle(&mut rng);
                    for &p in rest.iter().take(count - in_cluster) {
                        mask[p] = true;
                    }
                }
            }
        }
        mask
    }

    /// The paper's tolerance threshold `n/(3B)` for `n` players and budget
    /// `B`.
    pub fn paper_threshold(n: usize, budget: usize) -> usize {
        n / (3 * budget.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzscore_model::Workload;

    fn inst() -> Instance {
        Workload::PlantedClusters {
            players: 32,
            objects: 32,
            clusters: 4,
            diameter: 4,
            balance: byzscore_model::Balance::Even,
        }
        .generate(1)
    }

    #[test]
    fn none_corrupts_nobody() {
        let m = Corruption::None.select(&inst(), 0);
        assert!(m.iter().all(|&d| !d));
    }

    #[test]
    fn count_exact() {
        let m = Corruption::Count { count: 5 }.select(&inst(), 3);
        assert_eq!(m.iter().filter(|&&d| d).count(), 5);
    }

    #[test]
    fn count_deterministic_in_seed() {
        let a = Corruption::Count { count: 7 }.select(&inst(), 9);
        let b = Corruption::Count { count: 7 }.select(&inst(), 9);
        let c = Corruption::Count { count: 7 }.select(&inst(), 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn first_k_prefix() {
        let m = Corruption::FirstK { count: 3 }.select(&inst(), 0);
        assert_eq!(m[..4], [true, true, true, false]);
    }

    #[test]
    fn in_cluster_targets_cluster() {
        let instance = inst();
        let planted = instance.planted().unwrap().clone();
        let m = Corruption::InCluster {
            cluster: 1,
            count: 4,
        }
        .select(&instance, 5);
        let corrupted: Vec<usize> = (0..32).filter(|&p| m[p]).collect();
        assert_eq!(corrupted.len(), 4);
        for &p in &corrupted {
            assert_eq!(planted.assignment[p], 1, "player {p} not in cluster 1");
        }
    }

    #[test]
    fn in_cluster_overflows_gracefully() {
        let instance = inst(); // clusters of size 8
        let m = Corruption::InCluster {
            cluster: 0,
            count: 12,
        }
        .select(&instance, 5);
        assert_eq!(m.iter().filter(|&&d| d).count(), 12);
    }

    #[test]
    fn explicit_mask_is_returned_verbatim() {
        let want = vec![true, false, true, false];
        let m = Corruption::Explicit { mask: want.clone() }.select_mask(4, None, 9);
        assert_eq!(m, want);
    }

    #[test]
    #[should_panic(expected = "cover all")]
    fn explicit_mask_length_is_checked() {
        Corruption::Explicit {
            mask: vec![true; 3],
        }
        .select_mask(4, None, 0);
    }

    #[test]
    fn threshold_matches_paper() {
        assert_eq!(Corruption::paper_threshold(300, 10), 10);
        assert_eq!(Corruption::paper_threshold(100, 4), 8);
        assert_eq!(Corruption::paper_threshold(10, 0), 3, "budget clamps to 1");
    }

    #[test]
    #[should_panic(expected = "cannot corrupt")]
    fn count_too_large_panics() {
        Corruption::Count { count: 33 }.select(&inst(), 0);
    }
}
