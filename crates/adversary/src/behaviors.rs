//! The [`Behaviors`] table: who is dishonest and what they post.

use std::sync::OnceLock;

use byzscore_bitset::BitVec;
use byzscore_board::TruthSource;

use crate::strategy::{AdvCtx, CollusionState, Phase, Strategy, Truthful};

static TRUTHFUL: Truthful = Truthful;

/// Per-execution behaviour table consulted by the protocol runtime.
///
/// Honest players never appear here — they probe the oracle and post
/// truthfully. Whenever a *dishonest* player must post a bit or a vector,
/// the runtime routes the request through [`Behaviors::bit_claim`] /
/// [`Behaviors::vector_claim`], which consult the installed [`Strategy`]
/// with full omniscient context. Truth access is through the
/// [`TruthSource`] trait, so the table works over any substrate backend.
pub struct Behaviors<'a> {
    truth: &'a dyn TruthSource,
    dishonest: Vec<bool>,
    strategy: &'a dyn Strategy,
    collusion: CollusionState,
    majority_cell: OnceLock<BitVec>,
}

impl<'a> Behaviors<'a> {
    /// Table with the given dishonest mask and strategy.
    pub fn new(
        truth: &'a dyn TruthSource,
        dishonest: Vec<bool>,
        strategy: &'a dyn Strategy,
    ) -> Self {
        assert_eq!(dishonest.len(), truth.players(), "mask covers all players");
        Behaviors {
            truth,
            dishonest,
            strategy,
            collusion: CollusionState::new(),
            majority_cell: OnceLock::new(),
        }
    }

    /// Everybody honest.
    pub fn all_honest(truth: &'a dyn TruthSource) -> Self {
        Behaviors::new(truth, vec![false; truth.players()], &TRUTHFUL)
    }

    /// Is `player` dishonest?
    #[inline]
    pub fn is_dishonest(&self, player: u32) -> bool {
        self.dishonest[player as usize]
    }

    /// The dishonest mask.
    pub fn dishonest_mask(&self) -> &[bool] {
        &self.dishonest
    }

    /// Complement mask (honest players), for metric filtering.
    pub fn honest_mask(&self) -> Vec<bool> {
        self.dishonest.iter().map(|&d| !d).collect()
    }

    /// Number of dishonest players.
    pub fn dishonest_count(&self) -> usize {
        self.dishonest.iter().filter(|&&d| d).count()
    }

    /// Installed strategy's name.
    pub fn strategy_name(&self) -> &'static str {
        self.strategy.name()
    }

    fn ctx(&self) -> AdvCtx<'_> {
        AdvCtx::new(
            self.truth,
            &self.dishonest,
            &self.collusion,
            &self.majority_cell,
        )
    }

    /// The bit a **dishonest** `player` posts about `object` in `phase`.
    ///
    /// Panics in debug builds if called for an honest player — honest posts
    /// must flow through the probe oracle instead.
    pub fn bit_claim(&self, phase: Phase, player: u32, object: u32) -> bool {
        debug_assert!(
            self.is_dishonest(player),
            "bit_claim consulted for honest player {player}"
        );
        let truth = self.truth.value(player, object);
        self.strategy
            .claim_bit(&self.ctx(), phase, player, object, truth)
    }

    /// The vector a **dishonest** `player` posts over `objects` (global
    /// indices) in `phase`.
    pub fn vector_claim(&self, phase: Phase, player: u32, objects: &[u32]) -> BitVec {
        debug_assert!(
            self.is_dishonest(player),
            "vector_claim consulted for honest player {player}"
        );
        let truth = BitVec::from_fn(objects.len(), |k| self.truth.value(player, objects[k]));
        self.strategy
            .claim_vector(&self.ctx(), phase, player, objects, &truth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Inverter;
    use byzscore_bitset::{BitMatrix, Bits};

    fn truth() -> BitMatrix {
        BitMatrix::from_rows(&[
            BitVec::from_bools(&[true, false, true, false]),
            BitVec::from_bools(&[false, true, false, true]),
        ])
    }

    #[test]
    fn all_honest_table() {
        let t = truth();
        let b = Behaviors::all_honest(&t);
        assert!(!b.is_dishonest(0));
        assert!(!b.is_dishonest(1));
        assert_eq!(b.dishonest_count(), 0);
        assert_eq!(b.honest_mask(), vec![true, true]);
        assert_eq!(b.strategy_name(), "truthful");
    }

    #[test]
    fn dishonest_claims_go_through_strategy() {
        let t = truth();
        let b = Behaviors::new(&t, vec![false, true], &Inverter);
        // Player 1's truth on object 1 is `true`; Inverter claims false.
        assert!(!b.bit_claim(Phase::Other, 1, 1));
        let v = b.vector_claim(Phase::Other, 1, &[0, 1]);
        assert!(v.get(0)); // truth false -> inverted true
        assert!(!v.get(1));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "honest player")]
    fn honest_claim_panics_in_debug() {
        let t = truth();
        let b = Behaviors::new(&t, vec![false, true], &Inverter);
        b.bit_claim(Phase::Other, 0, 0);
    }

    #[test]
    #[should_panic(expected = "mask covers all players")]
    fn short_mask_panics() {
        let t = truth();
        Behaviors::new(&t, vec![false], &Inverter);
    }
}
