//! Dishonest-player strategies.

use std::collections::HashMap;
use std::sync::OnceLock;

use byzscore_bitset::{BitVec, Bits, ColumnCounter};
use byzscore_board::TruthSource;
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Which protocol stage a dishonest post belongs to.
///
/// Strategies key their behaviour on this: the interesting attacks differ
/// between *cluster formation* (worm into a victim's cluster by mimicking
/// it on the sample) and *work sharing* (corrupt the majority votes of
/// step 1.e once inside).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// Sample-set evaluation: `SmallRadius`/`ZeroRadius` posts used to build
    /// the neighbor graph (steps 1.b–1.d).
    ClusterFormation,
    /// Redundant probing and majority voting (step 1.e).
    WorkSharing,
    /// Anything else (final candidate publication, auxiliary traffic).
    Other,
}

/// Shared scratchpad for colluding strategies.
///
/// The paper explicitly allows the dishonest players to collude (§7.2); this
/// mutex-guarded state is their coordination channel. Keys are
/// strategy-defined.
#[derive(Default)]
pub struct CollusionState {
    notes: Mutex<HashMap<u64, u64>>,
}

impl CollusionState {
    /// Fresh empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a note (last write wins).
    pub fn put(&self, key: u64, value: u64) {
        self.notes.lock().insert(key, value);
    }

    /// Read a note.
    pub fn get(&self, key: u64) -> Option<u64> {
        self.notes.lock().get(&key).copied()
    }
}

/// Read-only world view handed to strategies: the omniscient adversary.
///
/// Dishonest players know the full hidden truth (strictly stronger than any
/// realizable adversary, hence a sound stress test) and who their fellow
/// conspirators are. Truth access goes through the [`TruthSource`] trait,
/// so the same strategies run against dense matrices and streaming
/// procedural worlds alike.
pub struct AdvCtx<'a> {
    /// The hidden truth.
    pub truth: &'a dyn TruthSource,
    /// Dishonest mask over players.
    pub dishonest: &'a [bool],
    /// Collusion scratchpad.
    pub collusion: &'a CollusionState,
    /// Cache cell for the honest-majority vector (owned by the caller so it
    /// survives across per-call context construction).
    majority_cell: &'a OnceLock<BitVec>,
}

impl<'a> AdvCtx<'a> {
    /// New context.
    pub fn new(
        truth: &'a dyn TruthSource,
        dishonest: &'a [bool],
        collusion: &'a CollusionState,
        majority_cell: &'a OnceLock<BitVec>,
    ) -> Self {
        AdvCtx {
            truth,
            dishonest,
            collusion,
            majority_cell,
        }
    }

    /// Majority preference of the *honest* population per object (computed
    /// once, lazily). The strongest vote-attack target: claiming its
    /// complement maximizes disagreement pressure.
    pub fn honest_majority(&self) -> &BitVec {
        self.majority_cell.get_or_init(|| {
            let mut counter = ColumnCounter::new(self.truth.objects());
            for p in 0..self.truth.players() {
                if !self.dishonest[p] {
                    counter.add(&self.truth.row(p as u32), 1);
                }
            }
            counter.majority(false)
        })
    }

    /// Deterministic per-(player, phase, salt) RNG for randomized strategies.
    pub fn rng(&self, player: u32, salt: u64) -> SmallRng {
        SmallRng::seed_from_u64(
            0xad5e_u64
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(u64::from(player))
                .rotate_left(17)
                ^ salt,
        )
    }
}

/// A dishonest player's posting policy.
///
/// The runtime consults the strategy whenever a *dishonest* player must
/// post; honest players never reach these code paths (they probe the oracle
/// and post truthfully, per the model's wlog assumption). `Send + Sync` so
/// sessions can own strategies behind `Arc` and sweep points can execute
/// concurrently.
pub trait Strategy: Send + Sync {
    /// Strategy name for reports.
    fn name(&self) -> &'static str;

    /// Bit to claim when player `player` is assigned to report on `object`.
    /// `truth` is the player's real preference (omniscience).
    fn claim_bit(
        &self,
        ctx: &AdvCtx<'_>,
        phase: Phase,
        player: u32,
        object: u32,
        truth: bool,
    ) -> bool;

    /// Vector to claim when `player` must publish preferences over
    /// `objects` (global object indices). `truth` is the player's real
    /// restriction to those objects.
    ///
    /// Default: claim bit-by-bit via [`Strategy::claim_bit`].
    fn claim_vector(
        &self,
        ctx: &AdvCtx<'_>,
        phase: Phase,
        player: u32,
        objects: &[u32],
        truth: &BitVec,
    ) -> BitVec {
        BitVec::from_fn(objects.len(), |k| {
            self.claim_bit(ctx, phase, player, objects[k], truth.get(k))
        })
    }
}

/// Control strategy: dishonest players that follow the protocol. Useful to
/// separate "having corrupted players" from "corrupted players attacking".
pub struct Truthful;

impl Strategy for Truthful {
    fn name(&self) -> &'static str {
        "truthful"
    }

    fn claim_bit(&self, _: &AdvCtx<'_>, _: Phase, _: u32, _: u32, truth: bool) -> bool {
        truth
    }
}

/// Flip each claimed bit independently with probability `flip_prob` — the
/// paper's "too busy" reviewer who answers (partly) at random.
pub struct RandomLiar {
    /// Per-bit flip probability.
    pub flip_prob: f64,
}

impl Strategy for RandomLiar {
    fn name(&self) -> &'static str {
        "random-liar"
    }

    fn claim_bit(&self, ctx: &AdvCtx<'_>, _: Phase, player: u32, object: u32, truth: bool) -> bool {
        let mut rng = ctx.rng(
            player,
            u64::from(object).wrapping_mul(0x2545_f491_4f6c_dd1d),
        );
        if rng.gen_bool(self.flip_prob) {
            !truth
        } else {
            truth
        }
    }
}

/// Always claim the complement of the truth.
pub struct Inverter;

impl Strategy for Inverter {
    fn name(&self) -> &'static str {
        "inverter"
    }

    fn claim_bit(&self, _: &AdvCtx<'_>, _: Phase, _: u32, _: u32, truth: bool) -> bool {
        !truth
    }
}

/// Vote against the honest population's majority on every object — the
/// maximally contrarian vote-attack on step 1.e's majorities.
pub struct AntiMajority;

impl Strategy for AntiMajority {
    fn name(&self) -> &'static str {
        "anti-majority"
    }

    fn claim_bit(&self, ctx: &AdvCtx<'_>, _: Phase, _: u32, object: u32, _: bool) -> bool {
        !ctx.honest_majority().get(object as usize)
    }
}

/// The cluster-hijack attack Lemma 13 defends against.
///
/// During cluster formation the hijacker perfectly mimics the victim's
/// preferences, guaranteeing itself an edge to the victim in the neighbor
/// graph (it looks like a clone). Once inside the victim's cluster it flips
/// every work-sharing vote, trying to poison the majority for the whole
/// cluster.
pub struct ClusterHijacker {
    /// The player whose cluster is being infiltrated.
    pub victim: u32,
}

impl Strategy for ClusterHijacker {
    fn name(&self) -> &'static str {
        "cluster-hijacker"
    }

    fn claim_bit(
        &self,
        ctx: &AdvCtx<'_>,
        phase: Phase,
        _player: u32,
        object: u32,
        _truth: bool,
    ) -> bool {
        let victim_pref = ctx.truth.value(self.victim, object);
        match phase {
            Phase::ClusterFormation => victim_pref, // look like a clone
            Phase::WorkSharing | Phase::Other => !victim_pref, // poison votes
        }
    }
}

/// Honest during cluster formation, malicious (inverting) afterwards —
/// a reputation-building sleeper agent.
pub struct Sleeper;

impl Strategy for Sleeper {
    fn name(&self) -> &'static str {
        "sleeper"
    }

    fn claim_bit(&self, _: &AdvCtx<'_>, phase: Phase, _: u32, _: u32, truth: bool) -> bool {
        match phase {
            Phase::ClusterFormation => truth,
            Phase::WorkSharing | Phase::Other => !truth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzscore_bitset::BitMatrix;

    fn setup() -> (BitMatrix, Vec<bool>, OnceLock<BitVec>) {
        let rows = vec![
            BitVec::from_bools(&[true, true, false, false]),
            BitVec::from_bools(&[true, true, true, false]),
            BitVec::from_bools(&[true, false, false, false]),
            BitVec::from_bools(&[false, false, true, true]), // dishonest
        ];
        (
            BitMatrix::from_rows(&rows),
            vec![false, false, false, true],
            OnceLock::new(),
        )
    }

    #[test]
    fn truthful_is_identity() {
        let (m, d, cell) = setup();
        let cs = CollusionState::new();
        let ctx = AdvCtx::new(&m, &d, &cs, &cell);
        assert!(Truthful.claim_bit(&ctx, Phase::Other, 3, 0, true));
        assert!(!Truthful.claim_bit(&ctx, Phase::Other, 3, 0, false));
    }

    #[test]
    fn inverter_flips() {
        let (m, d, cell) = setup();
        let cs = CollusionState::new();
        let ctx = AdvCtx::new(&m, &d, &cs, &cell);
        assert!(!Inverter.claim_bit(&ctx, Phase::Other, 3, 0, true));
        assert!(Inverter.claim_bit(&ctx, Phase::Other, 3, 0, false));
    }

    #[test]
    fn random_liar_extremes() {
        let (m, d, cell) = setup();
        let cs = CollusionState::new();
        let ctx = AdvCtx::new(&m, &d, &cs, &cell);
        let always = RandomLiar { flip_prob: 1.0 };
        let never = RandomLiar { flip_prob: 0.0 };
        for o in 0..4 {
            assert!(!always.claim_bit(&ctx, Phase::Other, 3, o, true));
            assert!(never.claim_bit(&ctx, Phase::Other, 3, o, true));
        }
    }

    #[test]
    fn random_liar_is_deterministic_per_object() {
        let (m, d, cell) = setup();
        let cs = CollusionState::new();
        let ctx = AdvCtx::new(&m, &d, &cs, &cell);
        let liar = RandomLiar { flip_prob: 0.5 };
        let a = liar.claim_bit(&ctx, Phase::Other, 3, 7, true);
        let b = liar.claim_bit(&ctx, Phase::Other, 3, 7, true);
        assert_eq!(a, b, "same (player, object) must give same claim");
    }

    #[test]
    fn anti_majority_opposes_honest_consensus() {
        let (m, d, cell) = setup();
        let cs = CollusionState::new();
        let ctx = AdvCtx::new(&m, &d, &cs, &cell);
        // Honest rows: objects 0 and 1 are majority-liked (2–3 of 3 ones on
        // object 0; object 1: 2 of 3). Object 3: 0 of 3.
        assert!(!AntiMajority.claim_bit(&ctx, Phase::WorkSharing, 3, 0, true));
        assert!(AntiMajority.claim_bit(&ctx, Phase::WorkSharing, 3, 3, false));
    }

    #[test]
    fn hijacker_mimics_then_poisons() {
        let (m, d, cell) = setup();
        let cs = CollusionState::new();
        let ctx = AdvCtx::new(&m, &d, &cs, &cell);
        let h = ClusterHijacker { victim: 0 };
        // Victim 0 likes object 0.
        assert!(h.claim_bit(&ctx, Phase::ClusterFormation, 3, 0, false));
        assert!(!h.claim_bit(&ctx, Phase::WorkSharing, 3, 0, false));
        // Victim 0 dislikes object 3.
        assert!(!h.claim_bit(&ctx, Phase::ClusterFormation, 3, 3, true));
        assert!(h.claim_bit(&ctx, Phase::WorkSharing, 3, 3, true));
    }

    #[test]
    fn sleeper_wakes_for_work_sharing() {
        let (m, d, cell) = setup();
        let cs = CollusionState::new();
        let ctx = AdvCtx::new(&m, &d, &cs, &cell);
        assert!(Sleeper.claim_bit(&ctx, Phase::ClusterFormation, 3, 0, true));
        assert!(!Sleeper.claim_bit(&ctx, Phase::WorkSharing, 3, 0, true));
    }

    #[test]
    fn claim_vector_uses_claim_bit() {
        let (m, d, cell) = setup();
        let cs = CollusionState::new();
        let ctx = AdvCtx::new(&m, &d, &cs, &cell);
        let truth = BitVec::from_bools(&[true, false]);
        let v = Inverter.claim_vector(&ctx, Phase::Other, 3, &[0, 2], &truth);
        assert!(!v.get(0));
        assert!(v.get(1));
    }

    #[test]
    fn collusion_state_roundtrip() {
        let cs = CollusionState::new();
        assert!(cs.get(1).is_none());
        cs.put(1, 99);
        assert_eq!(cs.get(1), Some(99));
        cs.put(1, 100);
        assert_eq!(cs.get(1), Some(100));
    }
}
