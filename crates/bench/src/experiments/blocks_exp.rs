//! E1–E4: the Figure-1 building-block claims.

use byzscore::sampling::{choose_sample, sample_distances};
use byzscore_bitset::{BitMatrix, BitVec, Bits};
use byzscore_blocks::{rselect, small_radius, zero_radius, BlockParams};
use byzscore_model::{Balance, Workload};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::stats::mean;
use crate::table::{f2, Table};
use crate::{experiments::Harness, Scale};

/// **E1 / Theorem 3** — `RSelect` returns a candidate within a constant
/// factor of the best, with `O(k² log n)` probes.
///
/// World: one evaluating player, `k` candidates: the best planted at
/// distance `δ` from the player's truth, the rest at `8δ, 12δ, 16δ, …`.
pub fn e01_rselect(scale: Scale) -> Vec<Table> {
    let n = 512usize;
    let m = 2048usize;
    let delta = 8usize;
    let trials = scale.pick(5, 20);
    let ks = scale.pick(vec![2usize, 4, 8, 16], vec![2, 4, 8, 16, 32]);

    let mut table = Table::new(
        format!("E1 (Thm 3): RSelect — n={n}, m={m}, best candidate at δ={delta}"),
        &[
            "k",
            "err/δ (mean)",
            "err/δ (max)",
            "probes (mean)",
            "probes/(k²·ln n)",
        ],
    );

    let ln_n = (n as f64).ln();
    for &k in &ks {
        let mut ratios = Vec::new();
        let mut probes = Vec::new();
        for t in 0..trials {
            let mut rng = SmallRng::seed_from_u64(1000 + t as u64);
            let truth_row = BitVec::random(&mut rng, m);
            let mut rows = vec![truth_row.clone()];
            rows.extend((1..n).map(|_| BitVec::random(&mut rng, m)));
            let truth = BitMatrix::from_rows(&rows);

            let mut cands = Vec::with_capacity(k);
            let mut best = truth_row.clone();
            best.flip_random_distinct(&mut rng, delta);
            cands.push(best);
            for j in 1..k {
                let mut far = truth_row.clone();
                far.flip_random_distinct(&mut rng, delta * (4 + 4 * j).min(m / delta));
                cands.push(far);
            }

            let h = Harness::honest(&truth, BlockParams::with_budget(8), 77 + t as u64);
            let ctx = h.ctx();
            let objects: Vec<u32> = (0..m as u32).collect();
            let mut prng = SmallRng::seed_from_u64(9 + t as u64);
            let won = rselect(&ctx, 0, &cands, &objects, &mut prng);
            let err = cands[won].hamming(&truth_row);
            ratios.push(err as f64 / delta as f64);
            probes.push(h.oracle.ledger().count(0) as f64);
        }
        table.row(vec![
            k.to_string(),
            f2(mean(&ratios)),
            f2(ratios.iter().copied().fold(0.0, f64::max)),
            f2(mean(&probes)),
            f2(mean(&probes) / ((k * k) as f64 * ln_n)),
        ]);
    }
    vec![table]
}

/// **E2 / Theorem 4** — `ZeroRadius` recovers exact clone classes with
/// `O(B' log n)` probes; scaling sweep over `n`.
pub fn e02_zero_radius(scale: Scale) -> Vec<Table> {
    let bprime = 4usize;
    let ns = scale.pick(vec![128usize, 256, 512], vec![128, 256, 512, 1024, 2048]);
    let trials = scale.pick(2, 5);

    let mut table = Table::new(
        format!("E2 (Thm 4): ZeroRadius — B'={bprime}, clone classes"),
        &[
            "n",
            "wrong players",
            "max probes",
            "max/(B'·ln²n)",
            "total probes",
        ],
    );

    for &n in &ns {
        let mut wrongs = 0usize;
        let mut max_probes = Vec::new();
        let mut totals = Vec::new();
        for t in 0..trials {
            let inst = Workload::CloneClasses {
                players: n,
                objects: n,
                classes: bprime,
                balance: Balance::Even,
            }
            .generate(50 + t as u64);
            let h = Harness::honest(inst.truth(), BlockParams::with_budget(bprime), t as u64);
            let ctx = h.ctx();
            let players: Vec<u32> = (0..n as u32).collect();
            let objects: Vec<u32> = (0..n as u32).collect();
            let out = zero_radius(&ctx, &players, &objects, bprime, &[t as u64]);
            wrongs += (0..n)
                .filter(|&p| out[p].hamming(&inst.truth().row(p)) != 0)
                .count();
            max_probes.push(h.oracle.ledger().max() as f64);
            totals.push(h.oracle.ledger().total() as f64);
        }
        let ln2 = (n as f64).ln().powi(2);
        table.row(vec![
            n.to_string(),
            wrongs.to_string(),
            f2(mean(&max_probes)),
            f2(mean(&max_probes) / (bprime as f64 * ln2)),
            f2(mean(&totals)),
        ]);
    }
    vec![table]
}

/// **E3 / Theorem 5** — `SmallRadius` error ≤ 5D with
/// `O(B·log n·D^{3/2}(D+log n))` probes; sweep over `D`.
pub fn e03_small_radius(scale: Scale) -> Vec<Table> {
    let n = 256usize;
    let b = 4usize;
    let ds = scale.pick(vec![2usize, 4, 8, 16], vec![2, 4, 8, 16, 32]);
    let trials = scale.pick(2, 5);

    let mut table = Table::new(
        format!("E3 (Thm 5): SmallRadius — n={n}, B={b}"),
        &[
            "D",
            "worst err",
            "err/D",
            "5D bound",
            "max probes",
            "probes/bound",
        ],
    );

    let ln_n = (n as f64).ln();
    for &d in &ds {
        let mut worst = 0usize;
        let mut probes = Vec::new();
        for t in 0..trials {
            let inst = Workload::PlantedClusters {
                players: n,
                objects: n,
                clusters: b,
                diameter: d,
                balance: Balance::Even,
            }
            .generate(80 + t as u64);
            let h = Harness::honest(inst.truth(), BlockParams::with_budget(b), 5 + t as u64);
            let ctx = h.ctx();
            let players: Vec<u32> = (0..n as u32).collect();
            let objects: Vec<u32> = (0..n as u32).collect();
            let out = small_radius(&ctx, &players, &objects, d, &[t as u64]);
            for (p, w) in out.iter().enumerate() {
                worst = worst.max(w.hamming(&inst.truth().row(p)));
            }
            probes.push(h.oracle.ledger().max() as f64);
        }
        let theorem_bound = b as f64 * ln_n * (d as f64).powf(1.5).max(1.0) * (d as f64 + ln_n);
        table.row(vec![
            d.to_string(),
            worst.to_string(),
            f2(worst as f64 / d.max(1) as f64),
            (5 * d).to_string(),
            f2(mean(&probes)),
            f2(mean(&probes) / theorem_bound),
        ]);
    }
    vec![table]
}

/// **E4 / Lemma 6** — sample-set distance separation: close pairs
/// (distance ≤ D) vs far pairs (distance ≥ 3D) on a rate-`c·ln n/D`
/// sample.
pub fn e04_sample_concentration(scale: Scale) -> Vec<Table> {
    let n = 512usize;
    let c_sample = 4.0;
    let ds = scale.pick(vec![16usize, 32, 64], vec![8, 16, 32, 64, 128]);
    let trials = scale.pick(3, 10);

    let mut table = Table::new(
        format!("E4 (Lemma 6): sample separation — n={n}, rate {c_sample}·ln n/D"),
        &["D", "|S| (mean)", "close max", "far min", "separated runs"],
    );

    for &d in &ds {
        let mut sizes = Vec::new();
        let mut close_max = 0usize;
        let mut far_min = usize::MAX;
        let mut separated = 0usize;
        for t in 0..trials {
            let inst = Workload::PlantedClusters {
                players: n,
                objects: n,
                clusters: 8,
                diameter: d,
                balance: Balance::Even,
            }
            .generate(500 + t as u64);
            let beacon = byzscore_random::Beacon::honest(700 + t as u64);
            let sample = choose_sample(&beacon, n, n, d, c_sample);
            sizes.push(sample.len() as f64);
            let planted = inst.planted().unwrap();
            let close: Vec<(u32, u32)> = planted.clusters[0]
                .windows(2)
                .map(|w| (w[0], w[1]))
                .take(30)
                .collect();
            let far: Vec<(u32, u32)> = planted.clusters[0]
                .iter()
                .zip(&planted.clusters[1])
                .map(|(&a, &b)| (a, b))
                .take(30)
                .collect();
            let cd = sample_distances(inst.truth(), &sample, &close);
            let fd = sample_distances(inst.truth(), &sample, &far);
            let cmax = cd.iter().copied().max().unwrap_or(0);
            let fmin = fd.iter().copied().min().unwrap_or(usize::MAX);
            close_max = close_max.max(cmax);
            far_min = far_min.min(fmin);
            if cmax < fmin {
                separated += 1;
            }
        }
        table.row(vec![
            d.to_string(),
            f2(mean(&sizes)),
            close_max.to_string(),
            far_min.to_string(),
            format!("{separated}/{trials}"),
        ]);
    }
    vec![table]
}
