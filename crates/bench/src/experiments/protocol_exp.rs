//! E5–E8, E12: whole-protocol claims (honest analysis, §6 + Claim 2).

use byzscore::cluster::cluster_players_with;
use byzscore::sampling::choose_sample;
use byzscore::{Algorithm, ProtocolParams, Session, SweepPoint};
use byzscore_bitset::{BitVec, Bits};
use byzscore_blocks::small_radius;
use byzscore_model::metrics::{approx_ratios, cluster_quality, opt_bounds};
use byzscore_model::{Balance, Workload};

use crate::stats::{loglog_slope, mean};
use crate::table::{f2, f3, Table};
use crate::{experiments::Harness, Scale};

/// **E5 / Lemmas 7–9** — neighbor-graph clustering quality: cluster count,
/// min size vs `n/B`, true diameter vs `O(D)`.
pub fn e05_clustering(scale: Scale) -> Vec<Table> {
    let n = 256usize;
    let m = 512usize;
    let b = 8usize;
    let ds = scale.pick(vec![4usize, 8, 16, 32], vec![4, 8, 16, 32, 64]);
    let trials = scale.pick(2, 5);

    let mut table = Table::new(
        format!(
            "E5 (Lemmas 7–9): clustering — n={n}, m={m}, B={b} (n/B = {})",
            n / b
        ),
        &[
            "D",
            "clusters",
            "min size",
            "max true diam",
            "diam/D",
            "runs ok",
        ],
    );

    for &d in &ds {
        let mut counts = Vec::new();
        let mut min_sizes = Vec::new();
        let mut max_diams = Vec::new();
        let mut ok_runs = 0;
        for t in 0..trials {
            let inst = Workload::PlantedClusters {
                players: n,
                objects: m,
                clusters: b,
                diameter: d,
                balance: Balance::Even,
            }
            .generate(900 + t as u64);
            let pp = ProtocolParams::with_budget(b);
            let h = Harness::honest(inst.truth(), pp.blocks.clone(), 31 + t as u64);
            let ctx = h.ctx();
            let players: Vec<u32> = (0..n as u32).collect();
            let sample = choose_sample(&ctx.beacon, n, m, d, pp.c_sample);
            let z = small_radius(&ctx, &players, &sample, pp.sample_diameter(n), &[t as u64]);
            let clustering = cluster_players_with(
                &z,
                pp.edge_threshold(n),
                pp.peel_min_size(n),
                pp.neighbor_strategy,
            );
            let q = cluster_quality(inst.truth(), &clustering.clusters);
            counts.push(q.count as f64);
            min_sizes.push(q.min_size as f64);
            max_diams.push(q.max_diameter as f64);
            if q.min_size >= pp.peel_min_size(n) && q.max_diameter <= 8 * d {
                ok_runs += 1;
            }
        }
        table.row(vec![
            d.to_string(),
            f2(mean(&counts)),
            f2(mean(&min_sizes)),
            f2(mean(&max_diams)),
            f2(mean(&max_diams) / d as f64),
            format!("{ok_runs}/{trials}"),
        ]);
    }
    vec![table]
}

/// **E6 / Lemmas 10–11** — full-protocol probe complexity: max honest
/// probes as `n` scales (the claim: `O(B·polylog n)`, so the log-log slope
/// against `n` must be ≪ 1 — compare `Solo`'s slope of ~0 with an
/// "everyone probes everything" slope of 1).
pub fn e06_probe_complexity(scale: Scale) -> Vec<Table> {
    let b = 8usize;
    let d = 8usize;
    let ns = scale.pick(vec![64usize, 128, 256], vec![64, 128, 256, 512, 1024]);

    let mut table = Table::new(
        format!("E6 (Lemmas 10–11): probe complexity vs n — B={b}, planted D={d}"),
        &[
            "n",
            "max honest probes",
            "probes/(B·ln³n)",
            "total probes",
            crate::elapsed_header(),
        ],
    );

    let mut points = Vec::new();
    for &n in &ns {
        let inst = Workload::PlantedClusters {
            players: n,
            objects: n,
            clusters: b.min(n / 8).max(1),
            diameter: d,
            balance: Balance::Even,
        }
        .generate(1100 + n as u64);
        let sys = Session::builder().instance(&inst).budget(b).build();
        let out = sys.run(Algorithm::CalculatePreferences, 3);
        let ln3 = (n as f64).ln().powi(3);
        points.push((n as f64, out.max_honest_probes as f64));
        table.row(vec![
            n.to_string(),
            out.max_honest_probes.to_string(),
            f3(out.max_honest_probes as f64 / (b as f64 * ln3)),
            out.probes.total().to_string(),
            out.elapsed.as_millis().to_string(),
        ]);
    }
    table.note(format!(
        "log-log slope of max-honest-probes vs n: {:.3}  (≈0 ⇒ polylog; 1 ⇒ linear)",
        loglog_slope(&points)
    ));

    // E6b: at default constants B·ln³n ≳ n for n ≤ 2¹⁰, so the memoized
    // per-player count saturates at m and the slope above reads ~1. With
    // lightened constants and larger n the sublinear shape emerges: the
    // probed fraction of m falls as n grows.
    let mut table_b = Table::new(
        "E6b: probe fraction vs n — B=2, lightened constants (crossover into the polylog regime)",
        &[
            "n",
            "max honest probes",
            "fraction of m",
            "max err",
            crate::elapsed_header(),
        ],
    );
    let ns_b = scale.pick(vec![512usize, 1024, 2048], vec![1024, 2048, 4096]);
    let mut points_b = Vec::new();
    for &n in &ns_b {
        let inst = Workload::PlantedClusters {
            players: n,
            objects: n,
            clusters: 2,
            diameter: d,
            balance: Balance::Even,
        }
        .generate(1150 + n as u64);
        let mut pp = ProtocolParams::with_budget(2);
        pp.blocks.c_zr_base = 1.5;
        pp.blocks.c_sr_iters = 0.3;
        pp.blocks.sr_subset_scale = 96.0;
        pp.c_sample = 1.5;
        pp.c_probe_rep = 0.8;
        let out = Session::builder()
            .instance(&inst)
            .params(pp)
            .build()
            .run(Algorithm::CalculatePreferences, 3);
        points_b.push((n as f64, out.max_honest_probes as f64));
        table_b.row(vec![
            n.to_string(),
            out.max_honest_probes.to_string(),
            f3(out.max_honest_probes as f64 / n as f64),
            out.errors.max.to_string(),
            out.elapsed.as_millis().to_string(),
        ]);
    }
    table_b.note(format!(
        "log-log slope of E6b probes vs n: {:.3}  (<1 and falling ⇒ sublinear)",
        loglog_slope(&points_b)
    ));
    vec![table, table_b]
}

/// **E7 / Lemma 12 + Theorem 14 (honest)** — output error scales linearly
/// with the planted diameter `D`, within a constant factor of OPT.
pub fn e07_error_vs_d(scale: Scale) -> Vec<Table> {
    let n = 192usize;
    let m = 768usize;
    let b = 6usize;
    let ds = scale.pick(vec![4usize, 8, 16, 32], vec![4, 8, 16, 32, 64]);
    let trials = scale.pick(2, 5);

    let mut table = Table::new(
        format!("E7 (Lemma 12/Thm 14): error vs D — n={n}, m={m}, B={b}"),
        &[
            "D",
            "max err",
            "mean err",
            "err/D",
            "OPT ub (max)",
            "approx vs OPT-ub",
            "skyline max err",
        ],
    );

    let mut points = Vec::new();
    for &d in &ds {
        let mut max_errs = Vec::new();
        let mut mean_errs = Vec::new();
        let mut ratios = Vec::new();
        let mut opt_ub_max = 0usize;
        let mut sky = Vec::new();
        for t in 0..trials {
            let inst = Workload::PlantedClusters {
                players: n,
                objects: m,
                clusters: b,
                diameter: d,
                balance: Balance::Even,
            }
            .generate(1300 + t as u64);
            let sys = Session::builder().instance(&inst).budget(b).build();
            // Protocol + skyline are independent sweep points of one world.
            let outs = sys.run_sweep(&[
                SweepPoint::new(Algorithm::CalculatePreferences, 7 + t as u64),
                SweepPoint::new(Algorithm::OracleClusters, 7 + t as u64),
            ]);
            let (out, sky_out) = (&outs[0], &outs[1]);
            max_errs.push(out.errors.max as f64);
            mean_errs.push(out.errors.mean);
            let bounds = opt_bounds(inst.truth(), n / b);
            let (_, vs_upper) = approx_ratios(&out.errors.per_player, &bounds);
            ratios.push(vs_upper);
            opt_ub_max = opt_ub_max.max(bounds.upper.iter().copied().max().unwrap_or(0));
            sky.push(sky_out.errors.max as f64);
        }
        points.push((d as f64, mean(&max_errs).max(0.5)));
        table.row(vec![
            d.to_string(),
            f2(mean(&max_errs)),
            f2(mean(&mean_errs)),
            f2(mean(&max_errs) / d as f64),
            opt_ub_max.to_string(),
            f2(mean(&ratios)),
            f2(mean(&sky)),
        ]);
    }
    table.note(format!(
        "log-log slope of max-err vs D: {:.3}  (Lemma 12 predicts ≈1: error = O(D))",
        loglog_slope(&points)
    ));
    vec![table]
}

/// **E8 / Claim 2** — the lower-bound distribution: on the special set `S`
/// (|S| = D), *no* algorithm can beat error D/4 for the planted cluster's
/// members; our protocol and every baseline sit at ≈ D/2 on `S` (random
/// guessing), confirming the floor.
pub fn e08_lower_bound(scale: Scale) -> Vec<Table> {
    let n = 256usize;
    let b = 8usize;
    let ds = scale.pick(vec![24usize, 48], vec![24, 48, 60]);
    let trials = scale.pick(2, 5);

    let mut table = Table::new(
        format!(
            "E8 (Claim 2): lower-bound distribution — n=m={n}, B={b}, cluster size {}",
            n / b
        ),
        &[
            "D",
            "D/4 floor",
            "algorithm",
            "err on S (min)",
            "err on S (mean)",
            "full err (mean)",
        ],
    );

    let algs = [
        Algorithm::CalculatePreferences,
        Algorithm::OracleClusters,
        Algorithm::Solo,
    ];
    for &d in &ds {
        // One session per trial world; all three algorithms are independent
        // sweep points of it.
        let mut insts = Vec::with_capacity(trials);
        let mut per_alg: Vec<Vec<byzscore::Outcome>> = vec![Vec::new(); algs.len()];
        for t in 0..trials {
            let inst = Workload::LowerBound {
                players: n,
                objects: n,
                budget_b: b,
                diameter: d,
            }
            .generate(1500 + t as u64);
            let sys = Session::builder().instance(&inst).budget(b).build();
            let points: Vec<SweepPoint> = algs
                .iter()
                .map(|&alg| SweepPoint::new(alg, 11 + t as u64))
                .collect();
            for (ai, out) in sys.run_sweep(&points).into_iter().enumerate() {
                per_alg[ai].push(out);
            }
            insts.push(inst);
        }
        for (ai, alg) in algs.iter().enumerate() {
            let mut s_min = usize::MAX;
            let mut s_errs = Vec::new();
            let mut full_errs = Vec::new();
            for (t, out) in per_alg[ai].iter().enumerate() {
                let inst = &insts[t];
                let planted = inst.planted().unwrap();
                let special = planted.special_objects.clone().unwrap();
                let mask = BitVec::from_indices(n, &special);
                for &p in &planted.clusters[0] {
                    let err_s = out
                        .output()
                        .row(p as usize)
                        .hamming_masked(&inst.truth().row(p as usize), &mask);
                    s_min = s_min.min(err_s);
                    s_errs.push(err_s as f64);
                    full_errs.push(
                        out.output()
                            .row(p as usize)
                            .hamming(&inst.truth().row(p as usize)) as f64,
                    );
                }
            }
            table.row(vec![
                d.to_string(),
                (d / 4).to_string(),
                alg.name(),
                s_min.to_string(),
                f2(mean(&s_errs)),
                f2(mean(&full_errs)),
            ]);
        }
    }
    vec![table]
}

/// **E12 / §8 budgets** — sensitivity to the budget `B`: probes fall and
/// error stays `O(D)` as clusters grow (`n/B` members each).
pub fn e12_budgets(scale: Scale) -> Vec<Table> {
    let n = 256usize;
    let m = 512usize;
    let d = 8usize;
    let bs = scale.pick(vec![2usize, 4, 8, 16], vec![2, 4, 8, 16, 32]);

    let mut table = Table::new(
        format!("E12 (§8): budget sweep — n={n}, m={m}, planted D={d}"),
        &[
            "B",
            "n/B",
            "max err",
            "mean err",
            "max honest probes",
            crate::elapsed_header(),
        ],
    );

    for &b in &bs {
        let inst = Workload::PlantedClusters {
            players: n,
            objects: m,
            clusters: b,
            diameter: d,
            balance: Balance::Even,
        }
        .generate(1700 + b as u64);
        let sys = Session::builder().instance(&inst).budget(b).build();
        let out = sys.run(Algorithm::CalculatePreferences, 13);
        table.row(vec![
            b.to_string(),
            (n / b).to_string(),
            out.errors.max.to_string(),
            f2(out.errors.mean),
            out.max_honest_probes.to_string(),
            out.elapsed.as_millis().to_string(),
        ]);
    }
    vec![table]
}
