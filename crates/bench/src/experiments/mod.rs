//! One experiment per paper claim (DESIGN.md §5).
//!
//! Every function builds and **returns** its tables without printing;
//! rendering (markdown and/or `BENCH_*.json`) is the job of the
//! [`crate::cli`] engine, driven by [`crate::registry::REGISTRY`]. That
//! split is what lets `--json` emit clean artifacts and lets `run_all`
//! regenerate the complete evaluation that EXPERIMENTS.md quotes.

mod ablations;
mod blocks_exp;
mod byzantine_exp;
mod compaction_exp;
mod dynamic_exp;
mod protocol_exp;
mod recovery_exp;
mod scale_exp;
mod service_exp;

pub use ablations::{a1_select, a2_votes, a3_threshold};
pub use blocks_exp::{e01_rselect, e02_zero_radius, e03_small_radius, e04_sample_concentration};
pub use byzantine_exp::{e09_byzantine, e10_election, e11_comparison};
pub use compaction_exp::e19_compaction;
pub use dynamic_exp::{e14_churn_robust, e15_adaptive_corruption, e16_drifting_truth};
pub use protocol_exp::{
    e05_clustering, e06_probe_complexity, e07_error_vs_d, e08_lower_bound, e12_budgets,
};
pub use recovery_exp::e18_fault_recovery;
pub use scale_exp::e13_scale_frontier;
pub use service_exp::e17_service_throughput;

use byzscore::{Outcome, Session, SweepPoint};
use byzscore_adversary::Behaviors;
use byzscore_bitset::BitMatrix;
use byzscore_blocks::{BlockParams, Ctx};
use byzscore_board::{Board, Oracle};
use byzscore_random::Beacon;

/// Run sweep points under the current timing mode: one parallel
/// [`Session::run_sweep`] (shared — throughput, contended `elapsed ms`),
/// or one cell at a time with the whole worker budget to itself
/// (isolated). Results are bit-identical either way; experiments with
/// timed columns route their sweeps through this.
pub(crate) fn run_points(session: &Session, points: &[SweepPoint]) -> Vec<Outcome> {
    match crate::timing_mode() {
        crate::TimingMode::Shared => session.run_sweep(points),
        crate::TimingMode::Isolated => points
            .iter()
            .map(|pt| session.run(pt.algorithm, pt.seed))
            .collect(),
    }
}

/// A self-owned honest-world harness around a truth matrix: oracle, board,
/// behaviours, and params, with a [`Harness::ctx`] accessor. Keeps the
/// block-level experiments free of lifetime plumbing.
pub struct Harness<'a> {
    /// Probe oracle over the instance truth.
    pub oracle: Oracle,
    /// Bulletin board.
    pub board: Board,
    /// Behaviour table.
    pub behaviors: Behaviors<'a>,
    /// Block constants.
    pub params: BlockParams,
    /// Beacon seed.
    pub seed: u64,
}

impl<'a> Harness<'a> {
    /// All-honest harness.
    pub fn honest(truth: &'a BitMatrix, params: BlockParams, seed: u64) -> Self {
        Harness {
            oracle: Oracle::new(truth),
            board: Board::new(),
            behaviors: Behaviors::all_honest(truth),
            params,
            seed,
        }
    }

    /// Harness with an installed adversary.
    pub fn adversarial(
        truth: &'a BitMatrix,
        dishonest: Vec<bool>,
        strategy: &'a dyn byzscore_adversary::Strategy,
        params: BlockParams,
        seed: u64,
    ) -> Self {
        Harness {
            oracle: Oracle::new(truth),
            board: Board::new(),
            behaviors: Behaviors::new(truth, dishonest, strategy),
            params,
            seed,
        }
    }

    /// Execution context.
    pub fn ctx(&self) -> Ctx<'_> {
        Ctx::new(
            &self.oracle,
            &self.board,
            &self.behaviors,
            Beacon::honest(self.seed),
            &self.params,
        )
    }
}
