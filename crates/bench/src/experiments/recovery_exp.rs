//! E18 — fault-injected crash recovery (DESIGN.md §4.15).
//!
//! The robustness claim behind the journaled service: **a crash at any
//! point, and any injected fault, changes no answer**. Table 1 kills an
//! in-process journaled engine at a seeded schedule of op indices over
//! the committed quick trace — in both crash phases: between ops, and
//! after an op's journal append but before its execution — recovers
//! from the journal, finishes the trace, and gates the concatenated
//! response digest against the `traces/DIGESTS` pin. Table 2 drives
//! the TCP front-end through the deterministic fault plans (worker
//! panic, barrier panic, connection drop, admission stall) with the
//! resilient client and gates the same digest plus the typed-retry
//! counters. Every cell is deterministic and CI-gated; there are no
//! report-only columns.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use byzscore_service::net::{replay_with_options, request_shutdown, request_stats, ReplayOptions};
use byzscore_service::{
    combined_digest, mix, parse_digests, FaultPlan, JournaledEngine, NetConfig, Request, Response,
    Server, Trace, DEFAULT_SHARDS,
};

use crate::table::Table;
use crate::Scale;

/// The committed quick trace and its pinned digest — the same pair the
/// e17 socket table, the determinism suite, and CI's e2e jobs gate.
fn committed_trace() -> (Trace, u64) {
    let trace_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../traces/service_quick.trace"
    );
    let manifest_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../traces/DIGESTS");
    let trace =
        Trace::from_text(&std::fs::read_to_string(trace_path).expect("committed trace readable"))
            .expect("committed trace parses");
    let pinned = parse_digests(&std::fs::read_to_string(manifest_path).expect("DIGESTS readable"))
        .expect("DIGESTS parses")
        .into_iter()
        .find(|(name, _)| name == "service_quick.trace")
        .map(|(_, d)| d)
        .expect("service_quick.trace pinned in traces/DIGESTS");
    (trace, pinned)
}

fn journal_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("byzscore_e18_{tag}_{}", std::process::id()))
}

/// Kill the engine at op `kill_at`, recover, finish — returning the
/// full response vector and how many ops the recovery replayed. With
/// `mid_op`, the crash lands *after* op `kill_at`'s journal append but
/// *before* its execution (the window the durability contract exists
/// for); the client-side resend of that op must then dedupe instead of
/// double-applying.
fn killed_run(ops: &[Request], kill_at: usize, mid_op: bool, tag: &str) -> (Vec<Response>, usize) {
    let path = journal_path(tag);
    let _ = std::fs::remove_file(&path);
    let mut responses = Vec::with_capacity(ops.len());
    {
        let mut engine =
            JournaledEngine::create(&path, DEFAULT_SHARDS).expect("journal create succeeds");
        for (seq, op) in ops[..kill_at].iter().enumerate() {
            responses.push(
                engine
                    .submit(seq as u64, op)
                    .expect("journal append succeeds"),
            );
        }
        if mid_op && ops[kill_at].is_mutating() {
            engine
                .journal_without_execute(kill_at as u64, &ops[kill_at])
                .expect("journal append succeeds");
        }
        // Dropping the engine IS the kill: nothing beyond the fsynced
        // journal survives.
    }
    let (mut engine, replayed) =
        JournaledEngine::recover(&path, DEFAULT_SHARDS).expect("recovery succeeds");
    for (seq, op) in ops.iter().enumerate().skip(kill_at) {
        responses.push(
            engine
                .submit(seq as u64, op)
                .expect("journal append succeeds"),
        );
    }
    let _ = std::fs::remove_file(&path);
    (responses, replayed)
}

/// One fault-injected socket run over the committed trace: returns the
/// response digest, client retry counters, and server rebuild count.
struct FaultRun {
    digest: u64,
    retryable_retries: u64,
    reconnects: u64,
    rebuilds: u64,
}

fn faulted_socket_run(
    ops: &[Request],
    plan: FaultPlan,
    options: ReplayOptions,
    tag: &str,
) -> FaultRun {
    let path = journal_path(tag);
    let _ = std::fs::remove_file(&path);
    let server = Server::bind(
        "127.0.0.1:0",
        NetConfig {
            journal: Some(path.clone()),
            fault: Arc::new(plan),
            ..NetConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    let running = std::thread::spawn(move || server.run());
    let replay = replay_with_options(addr, ops, options).expect("faulted replay completes");
    let stats = request_stats(addr).expect("stats");
    request_shutdown(addr).expect("server acknowledges shutdown");
    running.join().expect("server thread exits cleanly");
    let _ = std::fs::remove_file(&path);
    FaultRun {
        digest: combined_digest(&replay.responses),
        retryable_retries: replay.retryable_retries,
        reconnects: replay.reconnects,
        rebuilds: stats.rebuilds,
    }
}

/// E18: kill-anywhere crash recovery and injected-fault determinism
/// over the committed quick trace.
pub fn e18_fault_recovery(scale: Scale) -> Vec<Table> {
    let (trace, pinned) = committed_trace();
    let ops = &trace.ops;
    let len = ops.len();

    // Table 1 — crash recovery: boundary kill points (right after the
    // first op, right before the last) plus a seeded interior schedule,
    // each in both crash phases.
    let mut kill_points = vec![1, len - 1];
    let interior = scale.pick(4, 8);
    for i in 0..interior {
        kill_points.push(1 + (mix(0xe18, i as u64) as usize) % (len - 2));
    }
    kill_points.sort_unstable();
    kill_points.dedup();

    let mut rec = Table::new(
        "E18: crash recovery from the journal (committed trace, kill @ op k)",
        &[
            "kill at",
            "crash phase",
            "recovered ops",
            "digest",
            "matches traces/DIGESTS",
        ],
    );
    rec.row(vec![
        "-".into(),
        "uninterrupted".into(),
        "0".into(),
        format!("{pinned:016x}"),
        "yes".into(),
    ]);
    for &k in &kill_points {
        for (mid_op, phase) in [(false, "between ops"), (true, "mid-op (journaled)")] {
            let tag = format!("kill{k}_{}", if mid_op { "mid" } else { "between" });
            let (responses, replayed) = killed_run(ops, k, mid_op, &tag);
            let digest = combined_digest(&responses);
            rec.row(vec![
                k.to_string(),
                phase.into(),
                replayed.to_string(),
                format!("{digest:016x}"),
                if digest == pinned {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ]);
        }
    }
    rec.note(
        "every admitted mutating op is fsynced to the journal before it executes; recovery \
         replays the journal (itself a valid byzscore-trace/v1 file) and the mid-op resend \
         dedupes by (session, seq, op) — the digest is the traces/DIGESTS pin at every kill \
         point, in both crash phases; every cell is gated",
    );

    // Table 2 — injected faults through the TCP front-end, one fault
    // per run, resilient client (deadline + seeded backoff + reconnect).
    let probe_at = ops
        .iter()
        .position(|o| matches!(o, Request::SubmitProbes { .. }));
    let query_at = ops
        .iter()
        .position(|o| matches!(o, Request::QueryPreferences { .. }));
    let barrier_at = ops
        .iter()
        .position(|o| !o.is_shardable() && o.session().is_some());
    let late_barrier_at = ops.iter().rposition(|o| !o.is_shardable());
    let (probe_at, query_at, barrier_at, late_barrier_at) = (
        probe_at.expect("trace has probes"),
        query_at.expect("trace has queries"),
        barrier_at.expect("trace has non-open barriers"),
        late_barrier_at.expect("trace has barriers"),
    );

    let mut faults = Table::new(
        "E18: injected faults vs the resilient client (byzscore-wire/v1 loopback)",
        &[
            "fault",
            "retryable retries",
            "reconnected",
            "rebuilds",
            "digest",
            "matches traces/DIGESTS",
        ],
    );
    let deadline = ReplayOptions {
        deadline: Some(Duration::from_millis(250)),
        ..ReplayOptions::default()
    };
    let runs: Vec<(String, FaultPlan, ReplayOptions)> = vec![
        (
            format!("panic-worker@{probe_at} (probe)"),
            FaultPlan::parse(&format!("panic-worker@{probe_at}")).expect("plan parses"),
            ReplayOptions::default(),
        ),
        (
            format!("panic-worker@{query_at} (query)"),
            FaultPlan::parse(&format!("panic-worker@{query_at}")).expect("plan parses"),
            ReplayOptions::default(),
        ),
        (
            format!("panic-barrier@{barrier_at}"),
            FaultPlan::parse(&format!("panic-barrier@{barrier_at}")).expect("plan parses"),
            ReplayOptions::default(),
        ),
        (
            format!("drop-conn@{probe_at}"),
            FaultPlan::parse(&format!("drop-conn@{probe_at}")).expect("plan parses"),
            ReplayOptions::default(),
        ),
        (
            format!("stall@{late_barrier_at}:900"),
            FaultPlan::parse(&format!("stall@{late_barrier_at}:900")).expect("plan parses"),
            deadline,
        ),
    ];
    for (index, (label, plan, options)) in runs.into_iter().enumerate() {
        let run = faulted_socket_run(ops, plan, options, &format!("fault{index}"));
        faults.row(vec![
            label,
            run.retryable_retries.to_string(),
            if run.reconnects > 0 {
                "yes".into()
            } else {
                "no".into()
            },
            run.rebuilds.to_string(),
            format!("{:016x}", run.digest),
            if run.digest == pinned {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    faults.note(
        "one fault per run, one connection (dispatcher indices = trace indices): worker panics \
         answer typed Retryable and the client's seeded-backoff resend lands the exact answer; \
         a barrier panic rebuilds the engine from the journal and the resend dedupes; drops \
         and stalls are absorbed by reconnect/deadline — the digest is the traces/DIGESTS pin \
         in every row; every cell is gated",
    );

    vec![rec, faults]
}
