//! A1–A3: ablations of the reconstruction decisions flagged in DESIGN.md §4.

use byzscore::{Algorithm, ProtocolParams, Session};
use byzscore_adversary::{Corruption, Inverter};
use byzscore_bitset::Bits;
use byzscore_blocks::{small_radius, zero_radius, BlockParams};
use byzscore_model::{Balance, Workload};

use crate::stats::mean;
use crate::table::{f2, Table};
use crate::{experiments::Harness, Scale};

/// **A1** — `Select` reconstruction knobs: batch size (`c_select`) and
/// elimination margin. Measured on `SmallRadius` accuracy (its heaviest
/// `Select` consumer).
pub fn a1_select(scale: Scale) -> Vec<Table> {
    let n = 128usize;
    let b = 4usize;
    let d = 8usize;
    let trials = scale.pick(2, 5);
    let c_selects = [1.0, 2.0, 3.0, 5.0];
    let margins = [0.2, 1.0 / 3.0, 0.5];

    let mut table = Table::new(
        format!("A1: Select reconstruction ablation — SmallRadius on n={n}, B={b}, D={d}"),
        &["c_select", "margin", "worst err", "err/D", "max probes"],
    );

    for &c_select in &c_selects {
        for &margin in &margins {
            let mut worst = 0usize;
            let mut probes = Vec::new();
            for t in 0..trials {
                let inst = Workload::PlantedClusters {
                    players: n,
                    objects: n,
                    clusters: b,
                    diameter: d,
                    balance: Balance::Even,
                }
                .generate(4100 + t as u64);
                let mut params = BlockParams::with_budget(b);
                params.c_select = c_select;
                params.select_margin = margin;
                let h = Harness::honest(inst.truth(), params, 41 + t as u64);
                let ctx = h.ctx();
                let players: Vec<u32> = (0..n as u32).collect();
                let objects: Vec<u32> = (0..n as u32).collect();
                let out = small_radius(&ctx, &players, &objects, d, &[t as u64]);
                for (p, w) in out.iter().enumerate() {
                    worst = worst.max(w.hamming(&inst.truth().row(p)));
                }
                probes.push(h.oracle.ledger().max() as f64);
            }
            table.row(vec![
                f2(c_select),
                f2(margin),
                worst.to_string(),
                f2(worst as f64 / d as f64),
                f2(mean(&probes)),
            ]);
        }
    }
    vec![table]
}

/// **A2** — `ZeroRadius` vote-threshold denominator (paper: 2) and the
/// candidate-cap generosity: failure rate under a 10% inverter minority.
pub fn a2_votes(scale: Scale) -> Vec<Table> {
    let n = 128usize;
    let bprime = 4usize;
    let trials = scale.pick(3, 8);
    let denoms = [1.0, 2.0, 4.0, 8.0];

    let mut table = Table::new(
        format!("A2: ZeroRadius vote-threshold ablation — n={n}, B'={bprime}, 10% inverters"),
        &["zr_vote_denom", "wrong players (mean)", "max probes (mean)"],
    );

    for &denom in &denoms {
        let mut wrongs = Vec::new();
        let mut probes = Vec::new();
        for t in 0..trials {
            let inst = Workload::CloneClasses {
                players: n,
                objects: n,
                classes: bprime,
                balance: Balance::Even,
            }
            .generate(4300 + t as u64);
            let dishonest = Corruption::Count { count: n / 10 }.select(&inst, t as u64);
            let mut params = BlockParams::with_budget(bprime);
            params.zr_vote_denom = denom;
            let h = Harness::adversarial(inst.truth(), dishonest, &Inverter, params, 43 + t as u64);
            let ctx = h.ctx();
            let players: Vec<u32> = (0..n as u32).collect();
            let objects: Vec<u32> = (0..n as u32).collect();
            let out = zero_radius(&ctx, &players, &objects, bprime, &[t as u64]);
            let wrong = (0..n)
                .filter(|&p| {
                    !h.behaviors.is_dishonest(p as u32) && out[p].hamming(&inst.truth().row(p)) != 0
                })
                .count();
            wrongs.push(wrong as f64);
            probes.push(
                h.oracle
                    .ledger()
                    .snapshot()
                    .max_where(&h.behaviors.honest_mask()) as f64,
            );
        }
        table.row(vec![f2(denom), f2(mean(&wrongs)), f2(mean(&probes))]);
    }
    vec![table]
}

/// **A3** — neighbor-graph edge threshold (`edge_mult`; paper: 22×):
/// too low shatters clusters, too high merges them; both inflate error.
pub fn a3_threshold(scale: Scale) -> Vec<Table> {
    // m = n makes cross-cluster sample distances ≈ m/2 ≈ 96: thresholds
    // above that merge clusters and the error jumps — the trade-off the
    // paper's 220 ln n constant hides at asymptotic scale.
    let n = 192usize;
    let m = 192usize;
    let b = 6usize;
    let d = 16usize;
    let trials = scale.pick(1, 3);
    let mults = [1.5, 3.0, 6.0, 12.0, 22.0];

    let mut table = Table::new(
        format!("A3: edge-threshold ablation — n={n}, m={m}, B={b}, D={d}"),
        &["edge_mult", "τ", "max err", "mean err", "max honest probes"],
    );

    for &mult in &mults {
        let mut max_errs = Vec::new();
        let mut mean_errs = Vec::new();
        let mut probes = Vec::new();
        let mut tau = 0usize;
        for t in 0..trials {
            let inst = Workload::PlantedClusters {
                players: n,
                objects: m,
                clusters: b,
                diameter: d,
                balance: Balance::Even,
            }
            .generate(4500 + t as u64);
            let mut params = ProtocolParams::with_budget(b);
            params.edge_mult = mult;
            tau = params.edge_threshold(n);
            let out = Session::builder()
                .instance(&inst)
                .params(params)
                .build()
                .run(Algorithm::CalculatePreferences, 47 + t as u64);
            max_errs.push(out.errors.max as f64);
            mean_errs.push(out.errors.mean);
            probes.push(out.max_honest_probes as f64);
        }
        table.row(vec![
            f2(mult),
            tau.to_string(),
            f2(mean(&max_errs)),
            f2(mean(&mean_errs)),
            f2(mean(&probes)),
        ]);
    }
    vec![table]
}
