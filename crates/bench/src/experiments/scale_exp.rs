//! E13: the scale frontier — the procedural truth backend at player counts
//! a materialized matrix cannot reach comfortably.

use byzscore::{Algorithm, ClusterSpec, ProtocolParams, Session, SweepPoint};

use crate::table::{f2, Table};
use crate::Scale;

/// **E13 / ROADMAP "scale the substrate past simulation sizes"** — sweep
/// `n` up to 10⁵ players on [`byzscore::ProceduralTruth`]: truth bits are
/// regenerated on demand from `(seed, cluster model)`, so no `n × m` truth
/// matrix is ever materialized. `GlobalMajority` runs at every size;
/// `NaiveSampling` (whose neighbor-graph clustering is `O(n²)` — the
/// ROADMAP hot-path item) is capped. Each size's algorithms execute as one
/// parallel [`Session::run_sweep`].
pub fn e13_scale_frontier(scale: Scale) -> Vec<Table> {
    let m = 1024usize;
    let b = 8usize;
    let d = 16usize;
    let ns = scale.pick(
        vec![1_000usize, 10_000, 100_000],
        vec![1_000, 10_000, 100_000, 200_000],
    );
    let naive_cap = 10_000usize;

    let mut table = Table::new(
        format!(
            "E13: scale frontier — ProceduralTruth (no materialized matrix), m={m}, B={b}, D={d}"
        ),
        &[
            "n",
            "algorithm",
            "max honest probes",
            "max err",
            "mean err",
            "peak claim slots",
            "claim posts",
            "elapsed ms",
        ],
    );

    for &n in &ns {
        let spec = ClusterSpec {
            players: n,
            objects: m,
            clusters: b,
            diameter: d,
            seed: 0xe13 + n as u64,
        };
        let session = Session::builder()
            .procedural(spec)
            .params(ProtocolParams::with_budget(b))
            .build();

        let mut points = vec![SweepPoint::new(Algorithm::GlobalMajority, 41)];
        if n <= naive_cap {
            points.push(SweepPoint::new(Algorithm::NaiveSampling, 43));
        }
        for out in session.run_sweep(&points) {
            table.row(vec![
                n.to_string(),
                out.algorithm.clone(),
                out.max_honest_probes.to_string(),
                out.errors.max.to_string(),
                f2(out.errors.mean),
                out.board.peak_claim_slots.to_string(),
                out.board.claim_posts.to_string(),
                out.elapsed.as_millis().to_string(),
            ]);
        }
    }
    table.note(format!(
        "NaiveSampling capped at n={naive_cap}: neighbor-graph clustering is O(n²) \
         (ROADMAP hot-path item). Dense truth at n=100000, m={m} would be \
         {:.1} MB per run; the procedural backend stores only {b} cluster \
         centers. elapsed ms is wall-clock under concurrent sweep execution.",
        100_000.0 * m as f64 / 8.0 / 1.0e6
    ));
    vec![table]
}
