//! E13: the scale frontier — the procedural truth backend at player counts
//! a materialized matrix cannot reach comfortably.

use byzscore::{Algorithm, ClusterSpec, ProtocolParams, Session, SweepPoint};

use crate::table::{f2, Table};
use crate::{Scale, TimingMode};

/// **E13 / ROADMAP "scale the substrate past simulation sizes"** — sweep
/// `n` up to 10⁵ players (2·10⁵ at full scale) on
/// [`byzscore::ProceduralTruth`]: truth bits are regenerated on demand from
/// `(seed, cluster model)`, so no `n × m` truth matrix is ever
/// materialized, and outcomes stream per-player errors
/// ([`byzscore::OutputSink::ErrorStream`]) instead of holding dense output
/// matrices. `GlobalMajority` and `NaiveSampling` run at every size;
/// neighbor discovery goes through the grouped `NeighborIndex` strategy —
/// bit-identical `z`-vectors (planted clusters collapse sample outputs
/// heavily) are deduplicated before banding, so every diameter guess,
/// including the mid-`τ` ones that used to fall onto the `O(n²)` blocked
/// scan, runs over a group graph orders of magnitude smaller than `n`
/// (DESIGN.md §4.8). Each size's algorithms execute as one parallel
/// [`Session::run_sweep`] (serially under `--timing isolated`).
pub fn e13_scale_frontier(scale: Scale) -> Vec<Table> {
    let m = 1024usize;
    let b = 8usize;
    let d = 16usize;
    let ns = scale.pick(
        vec![1_000usize, 10_000, 100_000],
        vec![1_000, 10_000, 100_000, 200_000],
    );

    let mut table = Table::new(
        format!(
            "E13: scale frontier — ProceduralTruth (no materialized matrix), m={m}, B={b}, D={d}"
        ),
        &[
            "n",
            "algorithm",
            "max honest probes",
            "max err",
            "mean err",
            "peak claim slots",
            "claim posts",
            "peak candidate bytes",
            crate::elapsed_header(),
        ],
    );

    for &n in &ns {
        let spec = ClusterSpec {
            players: n,
            objects: m,
            clusters: b,
            diameter: d,
            seed: 0xe13 + n as u64,
        };
        let session = Session::builder()
            .procedural(spec)
            .params(ProtocolParams::with_budget(b))
            .output_sink(byzscore::OutputSink::ErrorStream)
            .build();

        let points = vec![
            SweepPoint::new(Algorithm::GlobalMajority, 41),
            SweepPoint::new(Algorithm::NaiveSampling, 43),
        ];
        for out in super::run_points(&session, &points) {
            table.row(vec![
                n.to_string(),
                out.algorithm.clone(),
                out.max_honest_probes.to_string(),
                out.errors.max.to_string(),
                f2(out.errors.mean),
                out.board.peak_claim_slots.to_string(),
                out.board.claim_posts.to_string(),
                out.peak_candidate_bytes.to_string(),
                out.elapsed.as_millis().to_string(),
            ]);
        }
    }
    table.note(format!(
        "NaiveSampling is uncapped (was n≤10⁴): discovery groups \
         bit-identical z-vectors first (planted clusters collapse sample \
         outputs, so the group graph is far smaller than n), prunes the \
         group graph with τ+1 bit-bands — single-bit-flip multi-probe \
         bands at mid-τ, popcount-prefiltered scan beyond — and peels \
         lazily: per-player adjacency is never materialized, so each \
         planted cluster's clique (~{:.1}e8 adjacency-list entries at \
         n=100000) costs no memory. Dense truth at n=100000, m={m} would \
         be {:.1} MB per run; the procedural backend stores only {b} \
         cluster centers, and the ErrorStream sink drops output rows once \
         their errors are folded. Peak candidate bytes is the summed \
         per-player peak residency of the streaming RSelect tournaments — \
         fused into the guess loop it stays near n·m/8 instead of the \
         batch path's n·guesses·m/8 (zero for GlobalMajority, which runs \
         no tournament). {}",
        (100_000.0 / b as f64).powi(2) / 1.0e8,
        100_000.0 * m as f64 / 8.0 / 1.0e6,
        match crate::timing_mode() {
            TimingMode::Shared =>
                "elapsed ms is wall-clock under concurrent sweep execution \
                 (rerun with --timing isolated for uncontended cells).",
            TimingMode::Isolated =>
                "elapsed ms (isolated) is wall-clock with each cell run \
                 serially, the full worker budget to itself.",
        }
    ));
    vec![table]
}
