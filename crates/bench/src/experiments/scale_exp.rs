//! E13: the scale frontier — the procedural truth backend at player counts
//! a materialized matrix cannot reach comfortably.

use byzscore::{Algorithm, ClusterSpec, ProtocolParams, Session, SweepPoint};

use crate::table::{f2, Table};
use crate::Scale;

/// **E13 / ROADMAP "scale the substrate past simulation sizes"** — sweep
/// `n` up to 10⁵ players (2·10⁵ at full scale) on
/// [`byzscore::ProceduralTruth`]: truth bits are regenerated on demand from
/// `(seed, cluster model)`, so no `n × m` truth matrix is ever
/// materialized. `GlobalMajority` and `NaiveSampling` run at every size —
/// the former PR's n=10⁴ cap on `NaiveSampling` is gone: neighbor
/// discovery goes through `NeighborIndex`, so the Lemma-8 adjacency
/// (~1.6·10⁸ list entries per planted clique) is never materialized, and
/// wide-band diameter guesses are pruned sub-quadratically (mid-τ guesses
/// fall back to the unmaterialized blocked scan — see DESIGN.md §4.8).
/// Each size's algorithms execute as one parallel [`Session::run_sweep`].
pub fn e13_scale_frontier(scale: Scale) -> Vec<Table> {
    let m = 1024usize;
    let b = 8usize;
    let d = 16usize;
    let ns = scale.pick(
        vec![1_000usize, 10_000, 100_000],
        vec![1_000, 10_000, 100_000, 200_000],
    );

    let mut table = Table::new(
        format!(
            "E13: scale frontier — ProceduralTruth (no materialized matrix), m={m}, B={b}, D={d}"
        ),
        &[
            "n",
            "algorithm",
            "max honest probes",
            "max err",
            "mean err",
            "peak claim slots",
            "claim posts",
            "elapsed ms",
        ],
    );

    for &n in &ns {
        let spec = ClusterSpec {
            players: n,
            objects: m,
            clusters: b,
            diameter: d,
            seed: 0xe13 + n as u64,
        };
        let session = Session::builder()
            .procedural(spec)
            .params(ProtocolParams::with_budget(b))
            .build();

        let points = vec![
            SweepPoint::new(Algorithm::GlobalMajority, 41),
            SweepPoint::new(Algorithm::NaiveSampling, 43),
        ];
        for out in session.run_sweep(&points) {
            table.row(vec![
                n.to_string(),
                out.algorithm.clone(),
                out.max_honest_probes.to_string(),
                out.errors.max.to_string(),
                f2(out.errors.mean),
                out.board.peak_claim_slots.to_string(),
                out.board.claim_posts.to_string(),
                out.elapsed.as_millis().to_string(),
            ]);
        }
    }
    table.note(format!(
        "NaiveSampling is uncapped (was n≤10⁴): neighbor discovery routes \
         through NeighborIndex, which prunes wide-band diameter guesses with \
         τ+1 bit-bands (sound by pigeonhole, survivors verified exactly), \
         degrades to an unmaterialized blocked scan for mid-τ guesses, and \
         peels lazily — adjacency is never materialized, so each planted \
         cluster's clique (~{:.1}e8 adjacency-list entries at n=100000) costs \
         no memory. Dense truth at n=100000, m={m} would be {:.1} MB per run; \
         the procedural backend stores only {b} cluster centers. elapsed ms \
         is wall-clock under concurrent sweep execution.",
        (100_000.0 / b as f64).powi(2) / 1.0e8,
        100_000.0 * m as f64 / 8.0 / 1.0e6
    ));
    vec![table]
}
