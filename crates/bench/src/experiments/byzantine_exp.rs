//! E9–E11: the Byzantine claims (§7) and the headline comparison (§1).

use std::sync::Arc;

use byzscore::{Algorithm, Session, SweepPoint};
use byzscore_adversary::{
    AntiMajority, ClusterHijacker, Corruption, Inverter, RandomLiar, Strategy,
};
use byzscore_election::{
    elect, BinStrategy, ElectionParams, FollowCrowd, GreedyInfiltrate, HonestLike, StallForcer,
};
use byzscore_model::{Balance, Instance, Workload};

use crate::stats::mean;
use crate::table::{f2, f3, Table};
use crate::Scale;

fn planted(n: usize, m: usize, clusters: usize, d: usize, seed: u64) -> Instance {
    Workload::PlantedClusters {
        players: n,
        objects: m,
        clusters,
        diameter: d,
        balance: Balance::Even,
    }
    .generate(seed)
}

/// **E9 / Lemma 13 + Theorem 14 (Byzantine)** — honest error as the number
/// of dishonest players sweeps through the paper's `n/(3B)` threshold, for
/// each attack strategy. The asymptotic claim: error stays `O(D)` up to the
/// threshold.
pub fn e09_byzantine(scale: Scale) -> Vec<Table> {
    let n = 144usize;
    let m = 288usize;
    let b = 4usize;
    let d = 8usize;
    let threshold = Corruption::paper_threshold(n, b); // n/(3B) = 12
    let counts = scale.pick(
        vec![0usize, threshold / 2, threshold, 2 * threshold],
        vec![
            0,
            threshold / 2,
            threshold,
            3 * threshold / 2,
            2 * threshold,
            3 * threshold,
        ],
    );
    let trials = scale.pick(1, 3);

    let mut table = Table::new(
        format!(
            "E9 (Lemma 13/Thm 14): Byzantine sweep — n={n}, m={m}, B={b}, D={d}, threshold n/(3B)={threshold}"
        ),
        &["strategy", "dishonest", "vs n/(3B)", "max honest err", "mean honest err", "err/D"],
    );

    let strategies: Vec<(&str, Arc<dyn Strategy>)> = vec![
        ("inverter", Arc::new(Inverter)),
        ("anti-majority", Arc::new(AntiMajority)),
        ("random-liar", Arc::new(RandomLiar { flip_prob: 0.5 })),
    ];

    for (name, strategy) in &strategies {
        for &count in &counts {
            let mut max_errs = Vec::new();
            let mut mean_errs = Vec::new();
            for t in 0..trials {
                let inst = planted(n, m, b, d, 2100 + t as u64);
                let out = Session::builder()
                    .instance(&inst)
                    .budget(b)
                    .adversary_shared(Corruption::Count { count }, strategy.clone())
                    .build()
                    .run(Algorithm::CalculatePreferences, 17 + t as u64);
                max_errs.push(out.errors.max as f64);
                mean_errs.push(out.errors.mean);
            }
            table.row(vec![
                name.to_string(),
                count.to_string(),
                f2(count as f64 / threshold as f64),
                f2(mean(&max_errs)),
                f2(mean(&mean_errs)),
                f2(mean(&max_errs) / d as f64),
            ]);
        }
    }

    // The targeted hijack: all dishonest players planted inside one cluster,
    // mimicking a victim (the attack Lemma 13 rules out).
    let mut hijack = Table::new(
        format!(
            "E9b: cluster hijack — all dishonest inside the victim's cluster (n={n}, B={b}, D={d})"
        ),
        &[
            "dishonest in cluster",
            "max honest err",
            "victim cluster mean err",
            "err/D",
        ],
    );
    for &count in &counts {
        let mut max_errs = Vec::new();
        let mut victim_errs = Vec::new();
        for t in 0..trials {
            let inst = planted(n, m, b, d, 2200 + t as u64);
            let victim = inst.planted().unwrap().clusters[0][0];
            let out = Session::builder()
                .instance(&inst)
                .budget(b)
                .adversary(
                    Corruption::InCluster { cluster: 0, count },
                    ClusterHijacker { victim },
                )
                .build()
                .run(Algorithm::CalculatePreferences, 23 + t as u64);
            max_errs.push(out.errors.max as f64);
            // Mean error of honest members of the victim's cluster.
            let planted_info = inst.planted().unwrap();
            let honest_members: Vec<f64> = planted_info.clusters[0]
                .iter()
                .filter(|&&p| out.probes.counts()[p as usize] > 0) // honest proxy
                .map(|&p| {
                    use byzscore_bitset::Bits;
                    out.output()
                        .row(p as usize)
                        .hamming(&inst.truth().row(p as usize)) as f64
                })
                .collect();
            victim_errs.push(mean(&honest_members));
        }
        hijack.row(vec![
            count.to_string(),
            f2(mean(&max_errs)),
            f2(mean(&victim_errs)),
            f2(mean(&max_errs) / d as f64),
        ]);
    }
    vec![table, hijack]
}

/// **E10 / §7.1 (Feige \[10\])** — lightest-bin election: honest-win
/// probability vs the dishonest fraction, against the Ω(δ^1.65) reference;
/// plus the Θ(log n)-repetition amplification.
pub fn e10_election(scale: Scale) -> Vec<Table> {
    let n = 256usize;
    let trials = scale.pick(150, 600);
    let fractions = [0.05, 0.15, 0.25, 0.35, 0.45];

    let mut table = Table::new(
        format!("E10 (§7.1): lightest-bin election — n={n}, {trials} trials"),
        &[
            "byz fraction",
            "δ=1−f",
            "δ^1.65",
            "honest-like",
            "follow-crowd",
            "greedy",
            "stall-forcer",
        ],
    );

    let strategies: Vec<(&str, &dyn BinStrategy)> = vec![
        ("honest-like", &HonestLike),
        ("follow-crowd", &FollowCrowd),
        ("greedy", &GreedyInfiltrate),
        ("stall-forcer", &StallForcer),
    ];
    let params = ElectionParams::for_players(n);

    for &f in &fractions {
        let count = ((n as f64) * f).round() as usize;
        let delta = 1.0 - f;
        let mut cells = vec![f2(f), f2(delta), f3(delta.powf(1.65))];
        for (_, strat) in &strategies {
            // Dishonest get low indices: worst case for the index fallback.
            let dishonest: Vec<bool> = (0..n).map(|p| p < count).collect();
            let wins = (0..trials)
                .filter(|&t| elect(&dishonest, *strat, &params, 3000 + t as u64).leader_honest)
                .count();
            cells.push(f3(wins as f64 / trials as f64));
        }
        table.row(cells);
    }

    // Amplification: probability that r independent elections ALL return
    // dishonest leaders, at fraction 0.25 under the greedy adversary.
    let mut amp = Table::new(
        format!("E10b: repetition amplification — n={n}, byz fraction 0.25, greedy adversary"),
        &[
            "repetitions r",
            "P(no honest leader) measured",
            "(1−p̂)^r predicted",
        ],
    );
    let count = n / 4;
    let dishonest: Vec<bool> = (0..n).map(|p| p < count).collect();
    let single_wins = (0..trials)
        .filter(|&t| elect(&dishonest, &GreedyInfiltrate, &params, 4000 + t as u64).leader_honest)
        .count();
    let p_hat = single_wins as f64 / trials as f64;
    for r in [1usize, 2, 4, 8] {
        let groups = trials / r;
        let all_bad = (0..groups)
            .filter(|&g| {
                (0..r).all(|i| {
                    !elect(
                        &dishonest,
                        &GreedyInfiltrate,
                        &params,
                        5000 + (g * r + i) as u64,
                    )
                    .leader_honest
                })
            })
            .count();
        amp.row(vec![
            r.to_string(),
            f3(all_bad as f64 / groups.max(1) as f64),
            f3((1.0 - p_hat).powi(r as i32)),
        ]);
    }
    vec![table, amp]
}

/// **E11 / §1 headline** — ours vs prior art and naive baselines, honest
/// and under attack at the tolerance threshold: "improves in both
/// performance and accuracy over prior collaborative scoring protocols
/// that provided no robustness".
pub fn e11_comparison(scale: Scale) -> Vec<Table> {
    let n = 192usize;
    let m = 576usize;
    let b = 6usize;
    let d = 12usize;
    let trials = scale.pick(1, 3);
    let threshold = Corruption::paper_threshold(n, b); // ≈ 10

    let algorithms = [
        Algorithm::CalculatePreferences,
        Algorithm::Robust,
        Algorithm::NaiveSampling,
        Algorithm::Solo,
        Algorithm::GlobalMajority,
        Algorithm::OracleClusters,
        Algorithm::DirectSmallRadius(d),
    ];

    let mut honest = Table::new(
        format!("E11a: comparison, all honest — n={n}, m={m}, B={b}, D={d}"),
        &[
            "algorithm",
            "max err",
            "mean err",
            "max probes",
            "peak claim slots",
            crate::elapsed_header(),
        ],
    );
    let mut byz = Table::new(
        format!(
            "E11b: comparison under inverters at n/(3B)={threshold} — n={n}, m={m}, B={b}, D={d}"
        ),
        &[
            "algorithm",
            "max honest err",
            "mean honest err",
            "max honest probes",
            "peak claim slots",
            crate::elapsed_header(),
        ],
    );

    // All algorithms are independent sweep points of each trial's worlds;
    // aggregate per algorithm across trials afterwards. Under `--timing
    // isolated` each cell runs serially instead (identical results, clean
    // wall-clock).
    let mut h_outs: Vec<Vec<byzscore::Outcome>> = vec![Vec::new(); algorithms.len()];
    let mut b_outs: Vec<Vec<byzscore::Outcome>> = vec![Vec::new(); algorithms.len()];
    for t in 0..trials {
        let inst = planted(n, m, b, d, 2500 + t as u64);
        let honest_sys = Session::builder().instance(&inst).budget(b).build();
        let byz_sys = Session::builder()
            .instance(&inst)
            .budget(b)
            .adversary(Corruption::Count { count: threshold }, Inverter)
            .build();
        let h_points: Vec<SweepPoint> = algorithms
            .iter()
            .map(|&alg| SweepPoint::new(alg, 31 + t as u64))
            .collect();
        let b_points: Vec<SweepPoint> = algorithms
            .iter()
            .map(|&alg| SweepPoint::new(alg, 37 + t as u64))
            .collect();
        for (ai, out) in super::run_points(&honest_sys, &h_points)
            .into_iter()
            .enumerate()
        {
            h_outs[ai].push(out);
        }
        for (ai, out) in super::run_points(&byz_sys, &b_points)
            .into_iter()
            .enumerate()
        {
            b_outs[ai].push(out);
        }
    }

    let stat = |outs: &[byzscore::Outcome], f: &dyn Fn(&byzscore::Outcome) -> f64| -> f64 {
        mean(&outs.iter().map(f).collect::<Vec<f64>>())
    };
    for (ai, alg) in algorithms.iter().enumerate() {
        honest.row(vec![
            alg.name(),
            f2(stat(&h_outs[ai], &|o| o.errors.max as f64)),
            f2(stat(&h_outs[ai], &|o| o.errors.mean)),
            f2(stat(&h_outs[ai], &|o| o.max_honest_probes as f64)),
            f2(stat(&h_outs[ai], &|o| o.board.peak_claim_slots as f64)),
            f2(stat(&h_outs[ai], &|o| o.elapsed.as_millis() as f64)),
        ]);
        byz.row(vec![
            alg.name(),
            f2(stat(&b_outs[ai], &|o| o.errors.max as f64)),
            f2(stat(&b_outs[ai], &|o| o.errors.mean)),
            f2(stat(&b_outs[ai], &|o| o.max_honest_probes as f64)),
            f2(stat(&b_outs[ai], &|o| o.board.peak_claim_slots as f64)),
            f2(stat(&b_outs[ai], &|o| o.elapsed.as_millis() as f64)),
        ]);
    }
    for t in [&mut honest, &mut byz] {
        t.note(match crate::timing_mode() {
            crate::TimingMode::Shared => {
                "elapsed ms is wall-clock while the sweep's other algorithms run \
                 concurrently (contended); rerun with --timing isolated for \
                 uncontended per-cell timings."
            }
            crate::TimingMode::Isolated => {
                "elapsed ms (isolated): each cell ran serially with the full \
                 worker budget to itself."
            }
        });
    }
    vec![honest, byz]
}
