//! E19 — checkpointed WAL compaction (DESIGN.md §4.16).
//!
//! The bounded-recovery claim behind compaction: **a checkpoint +
//! truncate cycle bounds the replayable journal tail by the compaction
//! threshold without changing a single answer**. Table 1 drives the
//! committed quick trace through a journaled engine under `every=N`
//! policies — uninterrupted and killed at a seeded op schedule — and
//! gates that the tail stays ≤ N ops, that cycles actually ran, and
//! that the concatenated response digest is the `traces/DIGESTS` pin
//! (recovery now starts from the checkpoint, not op 0). Table 2 gates
//! the failure edges: a torn primary checkpoint (footer lost) falls
//! back to the rotated previous checkpoint, an offline `compact` cycle
//! leaves an empty recoverable tail, and the post-truncation journal is
//! still a valid `byzscore-trace/v1` file. Every cell is deterministic
//! and CI-gated; there are no report-only columns.

use std::path::PathBuf;

use byzscore_service::checkpoint::{checkpoint_path, previous_checkpoint_path};
use byzscore_service::{
    combined_digest, mix, parse_digests, CompactionPolicy, JournaledEngine, RecoverySource,
    Request, Response, Trace, DEFAULT_SHARDS,
};

use crate::table::Table;
use crate::Scale;

/// The committed quick trace and its pinned digest — the same pair
/// e17/e18, the determinism suite, and CI's e2e jobs gate.
fn committed_trace() -> (Trace, u64) {
    let trace_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../traces/service_quick.trace"
    );
    let manifest_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../traces/DIGESTS");
    let trace =
        Trace::from_text(&std::fs::read_to_string(trace_path).expect("committed trace readable"))
            .expect("committed trace parses");
    let pinned = parse_digests(&std::fs::read_to_string(manifest_path).expect("DIGESTS readable"))
        .expect("DIGESTS parses")
        .into_iter()
        .find(|(name, _)| name == "service_quick.trace")
        .map(|(_, d)| d)
        .expect("service_quick.trace pinned in traces/DIGESTS");
    (trace, pinned)
}

fn journal_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("byzscore_e19_{tag}_{}", std::process::id()))
}

/// Remove the journal and both checkpoint generations.
fn scrub(path: &PathBuf) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(checkpoint_path(path));
    let _ = std::fs::remove_file(previous_checkpoint_path(path));
}

/// What one compacting run (possibly killed and recovered) measured.
struct CompactRun {
    responses: Vec<Response>,
    checkpoints: u64,
    truncated_ops: u64,
    tail_ops: u64,
    source: Option<RecoverySource>,
}

/// Drive the trace through a journaled engine with `every`-op
/// compaction; `kill_at = Some(k)` drops the engine after op `k-1`
/// (the kill), recovers from whatever checkpoint + tail the crash
/// left, and finishes. `tear_primary` truncates the primary checkpoint
/// to two thirds before recovering — the torn-footer window — so
/// recovery must fall back to the rotated previous checkpoint.
fn compacting_run(
    ops: &[Request],
    every: u64,
    kill_at: Option<usize>,
    tear_primary: bool,
    tag: &str,
) -> CompactRun {
    let policy = CompactionPolicy {
        every: Some(every),
        bytes: None,
    };
    let path = journal_path(tag);
    scrub(&path);
    let split = kill_at.unwrap_or(ops.len());
    let mut responses = Vec::with_capacity(ops.len());
    let (mut checkpoints, mut truncated_ops);
    {
        let mut engine = JournaledEngine::create_with(&path, DEFAULT_SHARDS, policy)
            .expect("journal create succeeds");
        for (seq, op) in ops[..split].iter().enumerate() {
            responses.push(
                engine
                    .submit(seq as u64, op)
                    .expect("journal append succeeds"),
            );
        }
        checkpoints = engine.checkpoints();
        truncated_ops = engine.truncated_ops();
        if kill_at.is_none() {
            let tail_ops = engine.tail_ops();
            scrub(&path);
            return CompactRun {
                responses,
                checkpoints,
                truncated_ops,
                tail_ops,
                source: None,
            };
        }
        // Dropping the engine IS the kill: nothing beyond the fsynced
        // journal + installed checkpoints survives.
    }
    if tear_primary {
        // Keep the fallback generation covering the journal base (the
        // rotation a real cycle performs), then lose the primary's
        // footer — the partial-write the footer exists to detect.
        let primary = checkpoint_path(&path);
        let bytes = std::fs::read(&primary).expect("primary checkpoint exists");
        std::fs::copy(&primary, previous_checkpoint_path(&path)).expect("rotate prev");
        std::fs::write(&primary, &bytes[..bytes.len() * 2 / 3]).expect("tear primary");
    }
    let (mut engine, report) =
        JournaledEngine::recover_with(&path, DEFAULT_SHARDS, policy).expect("recovery succeeds");
    for (seq, op) in ops.iter().enumerate().skip(split) {
        responses.push(
            engine
                .submit(seq as u64, op)
                .expect("journal append succeeds"),
        );
    }
    checkpoints += engine.checkpoints();
    truncated_ops += engine.truncated_ops();
    let tail_ops = engine.tail_ops();
    scrub(&path);
    CompactRun {
        responses,
        checkpoints,
        truncated_ops,
        tail_ops,
        source: Some(report.source),
    }
}

fn yes_no(ok: bool) -> String {
    if ok {
        "yes".into()
    } else {
        "NO".into()
    }
}

/// E19: checkpointed compaction bounds recovery over the committed
/// quick trace, with bit-identical digests.
pub fn e19_compaction(scale: Scale) -> Vec<Table> {
    let (trace, pinned) = committed_trace();
    let ops = &trace.ops;
    let len = ops.len();
    let mutating = ops.iter().filter(|o| o.is_mutating()).count() as u64;

    // Table 1 — thresholds × kill points. Kill points are seeded
    // interior ops plus the last op; the threshold sweep shows the
    // tail bound following the knob.
    let thresholds: &[u64] = if scale.pick(true, false) {
        &[4, 8]
    } else {
        &[4, 8, 16]
    };
    let mut bound = Table::new(
        "E19: compaction bounds the replayable tail (committed trace, every=N)",
        &[
            "every",
            "kill at",
            "checkpoints",
            "truncated ops",
            "tail ops",
            "tail \u{2264} every",
            "digest",
            "matches traces/DIGESTS",
        ],
    );
    for (t, &every) in thresholds.iter().enumerate() {
        let mut kills: Vec<Option<usize>> = vec![None, Some(len - 1)];
        for i in 0..scale.pick(1, 2) {
            kills.push(Some(
                1 + (mix(0xe19 + every, (t * 8 + i) as u64) as usize) % (len - 2),
            ));
        }
        for kill_at in kills {
            let tag = format!(
                "every{every}_{}",
                kill_at.map_or("none".to_string(), |k| k.to_string())
            );
            let run = compacting_run(ops, every, kill_at, false, &tag);
            let digest = combined_digest(&run.responses);
            // Compaction fires the moment the tail reaches the
            // threshold, so the tail can never exceed it; the full
            // trace always crosses it at least floor(mutating/every)-1
            // times even when a kill drops one in-flight tail.
            let min_cycles = (mutating / every).saturating_sub(1).max(1);
            bound.row(vec![
                every.to_string(),
                kill_at.map_or("-".to_string(), |k| k.to_string()),
                run.checkpoints.to_string(),
                run.truncated_ops.to_string(),
                run.tail_ops.to_string(),
                yes_no(run.tail_ops <= every && run.checkpoints >= min_cycles),
                format!("{digest:016x}"),
                yes_no(digest == pinned),
            ]);
        }
    }
    bound.note(
        "a checkpoint + truncate cycle runs whenever the journal tail reaches `every` mutating \
         ops, so recovery replays at most one threshold's worth of ops on top of the decoded \
         checkpoint; kills land between ops and recovery resumes from the newest usable \
         checkpoint — the digest is the traces/DIGESTS pin in every row; every cell is gated",
    );

    // Table 2 — failure edges: torn primary falls back to the rotated
    // previous checkpoint; an offline cycle leaves an empty tail; the
    // truncated journal is still a valid trace file.
    let mut edges = Table::new(
        "E19: checkpoint failure edges (torn footer, offline compact, tail validity)",
        &["scenario", "recovery source", "tail ops", "digest", "gate"],
    );

    // Torn primary: kill late enough that >= 2 cycles completed, then
    // lose the primary's footer — recovery must use the previous
    // checkpoint and still land the pin.
    let torn_kill = len - 2;
    let torn = compacting_run(ops, 4, Some(torn_kill), true, "torn");
    let torn_digest = combined_digest(&torn.responses);
    edges.row(vec![
        format!("torn primary ckpt (kill @ {torn_kill}, every=4)"),
        torn.source.map_or("-".into(), |s| s.describe().to_string()),
        torn.tail_ops.to_string(),
        format!("{torn_digest:016x}"),
        yes_no(torn.source == Some(RecoverySource::PreviousCheckpoint) && torn_digest == pinned),
    ]);

    // Offline compact: run without a policy, cycle once by hand, and
    // gate that recovery comes from the checkpoint with nothing to
    // replay.
    let path = journal_path("offline");
    scrub(&path);
    {
        let mut engine = JournaledEngine::create(&path, DEFAULT_SHARDS).expect("create");
        for (seq, op) in ops.iter().enumerate() {
            engine.submit(seq as u64, op).expect("submit");
        }
        engine.compact().expect("offline compact");
    }
    let (engine, report) =
        JournaledEngine::recover_with(&path, DEFAULT_SHARDS, CompactionPolicy::default())
            .expect("recover after offline compact");
    edges.row(vec![
        "offline `scored compact` cycle".into(),
        report.source.describe().to_string(),
        engine.tail_ops().to_string(),
        "-".into(),
        yes_no(
            report.source == RecoverySource::Checkpoint
                && report.replayed == 0
                && engine.history_ops() == mutating,
        ),
    ]);

    // Tail validity: the truncated journal must parse as a trace whose
    // op count is the (empty) tail.
    let tail_text = std::fs::read_to_string(&path).expect("truncated journal readable");
    let tail_trace = Trace::from_text(&tail_text);
    let tail_ok = tail_trace.as_ref().map_or(0, |t| t.ops.len());
    edges.row(vec![
        "post-truncation journal parses as byzscore-trace/v1".into(),
        "-".into(),
        tail_ok.to_string(),
        "-".into(),
        yes_no(tail_trace.is_ok() && tail_ok == 0),
    ]);
    scrub(&path);
    edges.note(
        "the footer (length + digest) turns a partial checkpoint write into a detected tear \
         with a rotated fallback, never a wrong answer; the `# ckpt ops=K` base marker is a \
         trace comment, so the truncated tail replays with stock tooling; every cell is gated",
    );

    vec![bound, edges]
}
