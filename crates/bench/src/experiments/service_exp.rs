//! E17 — scoring-as-a-service throughput (DESIGN.md §4.13).
//!
//! The service engine answers a recorded request trace; the experiment
//! measures sustained request throughput and per-op latency while CI
//! gates only the deterministic cells: the combined response digest
//! (bit-identical at any `--threads`, any shard count, and any batch
//! split of the same trace) and the rejected-op count. `reqs/sec` and
//! the latency percentiles are machine-dependent and report-only.

use std::time::Instant;

use byzscore_service::net::{replay_over_socket, request_shutdown};
use byzscore_service::{
    combined_digest, parse_digests, NetConfig, OpMix, Response, Server, ServiceAlgorithm,
    ServiceEngine, Trace, TraceSpec, DEFAULT_SHARDS,
};

use crate::table::{f2, Table};
use crate::Scale;

/// Ops per `execute` call during the timed replay. Responses are
/// independent of this split (the engine flushes shardable batches at
/// barriers either way); it only sets the latency sampling granularity.
const BATCH: usize = 1024;

/// Replay `trace` on a fresh engine with `shards` logical workers and
/// fold the answers: `(digest, rejected ops)`.
fn replay_with_shards(trace: &Trace, shards: usize) -> (u64, usize) {
    let responses = ServiceEngine::with_shards(shards).execute(&trace.ops);
    let rejected = responses
        .iter()
        .filter(|r| matches!(r, Response::Rejected(_)))
        .count();
    (combined_digest(&responses), rejected)
}

/// One timed replay in [`BATCH`]-sized `execute` calls.
struct Timed {
    digest: u64,
    rejected: usize,
    reqs_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
}

fn timed_replay(trace: &Trace, shards: usize) -> Timed {
    let mut engine = ServiceEngine::with_shards(shards);
    let mut responses = Vec::with_capacity(trace.ops.len());
    // Per-batch mean op latency, weighted by batch size — enough for
    // p50/p99 without storing one sample per op at full scale.
    let mut batches: Vec<(u64, usize)> = Vec::with_capacity(trace.ops.len() / BATCH + 1);
    let start = Instant::now();
    for chunk in trace.ops.chunks(BATCH) {
        let t = Instant::now();
        responses.extend(engine.execute(chunk));
        let ns = t.elapsed().as_nanos() as u64;
        batches.push((ns / chunk.len() as u64, chunk.len()));
    }
    let seconds = start.elapsed().as_secs_f64().max(1e-9);
    batches.sort_unstable();
    let total: usize = trace.ops.len();
    let percentile = |q_num: usize, q_den: usize| -> f64 {
        let target = total * q_num / q_den;
        let mut seen = 0usize;
        for &(ns, k) in &batches {
            seen += k;
            if seen > target {
                return ns as f64 / 1e6;
            }
        }
        batches.last().map_or(0.0, |&(ns, _)| ns as f64 / 1e6)
    };
    let rejected = responses
        .iter()
        .filter(|r| matches!(r, Response::Rejected(_)))
        .count();
    Timed {
        digest: combined_digest(&responses),
        rejected,
        reqs_per_sec: total as f64 / seconds,
        p50_ms: percentile(1, 2),
        p99_ms: percentile(99, 100),
    }
}

/// Latency cell: milliseconds with enough precision for µs-scale ops.
fn ms4(x: f64) -> String {
    format!("{x:.4}")
}

/// E17: resident service engine replaying recorded workloads — digest
/// determinism across shard layouts, then sustained throughput at
/// 10⁵ (quick) / 10⁶ (full) requests.
pub fn e17_service_throughput(scale: Scale) -> Vec<Table> {
    // Table 1 — determinism: small mixed traces, each replayed under
    // three shard layouts; every deterministic cell is CI-gated.
    let mut det = Table::new(
        "E17: service trace determinism (digest vs shard layout)",
        &[
            "seed",
            "sessions",
            "ops",
            "rejected",
            "digest",
            "shards 1/8/16 agree",
        ],
    );
    for seed in [1u64, 2] {
        let spec = TraceSpec::small(seed);
        let trace = Trace::generate(&spec);
        let (digest, rejected) = replay_with_shards(&trace, DEFAULT_SHARDS);
        let (d1, _) = replay_with_shards(&trace, 1);
        let (d16, _) = replay_with_shards(&trace, 16);
        det.row(vec![
            seed.to_string(),
            spec.sessions.to_string(),
            trace.ops.len().to_string(),
            rejected.to_string(),
            format!("{digest:016x}"),
            if d1 == digest && d16 == digest {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    det.note("digest folds every response in request order; identical at any --threads, shard count, and execute() batch split");

    // Table 2 — throughput: a read-heavy steady-state trace (probes and
    // queries dominate; churn/epoch recomputes are ~1% of ops).
    let ops = scale.pick(100_000, 1_000_000);
    let spec = TraceSpec {
        sessions: 4,
        ops,
        players: 96,
        objects: 192,
        clusters: 4,
        diameter: 4,
        budget: 4,
        corrupt: 6,
        drift_ppm: 1_000,
        algorithm: ServiceAlgorithm::Naive,
        mix: OpMix {
            probe: 120,
            query: 60,
            churn: 1,
            epoch: 1,
        },
        skew: 2,
        seed: 17,
    };
    let trace = Trace::generate(&spec);
    let mut thr = Table::new(
        "E17: service throughput @scale",
        &[
            "shards", "ops", "rejected", "reqs/sec", "p50 ms", "p99 ms", "digest",
        ],
    );
    for shards in [1usize, DEFAULT_SHARDS] {
        let t = timed_replay(&trace, shards);
        thr.row(vec![
            shards.to_string(),
            trace.ops.len().to_string(),
            t.rejected.to_string(),
            f2(t.reqs_per_sec),
            ms4(t.p50_ms),
            ms4(t.p99_ms),
            format!("{:016x}", t.digest),
        ]);
    }
    thr.note(format!(
        "{} requests over {} sessions (n={}, m={}, {} corrupt, {} ppm drift, skew {}); \
         reqs/sec and latency percentiles are report-only, digest and rejected are gated \
         and equal across the shard rows",
        trace.ops.len(),
        spec.sessions,
        spec.players,
        spec.objects,
        spec.corrupt,
        spec.drift_ppm,
        spec.skew,
    ));

    vec![det, thr, socket_replay_table()]
}

/// Table 3 — socket replay: the committed quick trace through the
/// `byzscore-wire/v1` TCP front-end (loopback) at one and four client
/// connections. The digest must equal the manifest pin in
/// traces/DIGESTS — the same cell the in-process replay, the
/// determinism suite, and CI's service-e2e job gate — proving the
/// socket path (framing, admission, per-shard workers, merge cells)
/// adds no observable state. Busy retries are structurally zero here:
/// the client pipelines at most 64 ops against a 256-deep queue.
fn socket_replay_table() -> Table {
    let trace_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../traces/service_quick.trace"
    );
    let manifest_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../traces/DIGESTS");
    let trace =
        Trace::from_text(&std::fs::read_to_string(trace_path).expect("committed trace readable"))
            .expect("committed trace parses");
    let pinned = parse_digests(&std::fs::read_to_string(manifest_path).expect("DIGESTS readable"))
        .expect("DIGESTS parses")
        .into_iter()
        .find(|(name, _)| name == "service_quick.trace")
        .map(|(_, d)| d)
        .expect("service_quick.trace pinned in traces/DIGESTS");

    let mut tab = Table::new(
        "E17: socket replay of the committed trace (byzscore-wire/v1 loopback)",
        &[
            "connections",
            "ops",
            "rejected",
            "busy retries",
            "reqs/sec",
            "digest",
            "matches traces/DIGESTS",
        ],
    );
    for connections in [1usize, 4] {
        let server = Server::bind("127.0.0.1:0", NetConfig::default()).expect("bind loopback");
        let addr = server.local_addr();
        let running = std::thread::spawn(move || server.run());
        let start = Instant::now();
        let replay =
            replay_over_socket(addr, &trace.ops, connections).expect("socket replay succeeds");
        let seconds = start.elapsed().as_secs_f64().max(1e-9);
        request_shutdown(addr).expect("server acknowledges shutdown");
        running.join().expect("server thread exits cleanly");
        let digest = combined_digest(&replay.responses);
        let rejected = replay
            .responses
            .iter()
            .filter(|r| matches!(r, Response::Rejected(_)))
            .count();
        tab.row(vec![
            connections.to_string(),
            replay.responses.len().to_string(),
            rejected.to_string(),
            replay.busy_retries.to_string(),
            f2(replay.responses.len() as f64 / seconds),
            format!("{digest:016x}"),
            if digest == pinned {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    tab.note(
        "loopback TCP, default NetConfig (8 shard workers, queue depth 256); every cell except \
         reqs/sec is gated — the digest is pinned in traces/DIGESTS and bit-identical to the \
         in-process and stdin replays at any connection count",
    );
    tab
}
