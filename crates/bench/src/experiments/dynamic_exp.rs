//! E14–E16: the dynamic-world plane — churn, adaptive corruption, and
//! drifting truth (DESIGN.md §4.11).
//!
//! The paper's guarantees are proved against a static adversary on a
//! fixed planted clustering; these experiments measure what survives when
//! the world moves between repetitions. Every scenario is a pure function
//! of its seeds (rounds are sequential, but each round's internals use
//! the full worker budget), so all non-timing cells are gated by
//! `check_bench.py` like any static experiment.

use byzscore::graded::{score_graded_drift, DriftingGrades, GradeMatrix};
use byzscore::{
    Algorithm, ChurnSchedule, ClusterSpec, DriftLocality, DriftSchedule, DynamicWorld, OutputSink,
    ProtocolParams,
};
use byzscore_adversary::{AdaptiveCorruption, AdaptivePolicy, Corruption, Inverter};

use crate::table::{f2, Table};
use crate::Scale;

/// **E14 / ROADMAP "scenario growth" (churn)** — population turnover
/// between repetitions: each round retires a seeded slice of the active
/// players and joins fresh pool identities under deterministic remapping
/// ([`byzscore::RemappedTruth`], cf. Solidago's churning-population
/// pipeline). Every round is a full static execution over the current
/// population, so the per-round guarantee holds *for clustered players* —
/// what churn actually moves is the cluster balance: joiners from a taste
/// community still below the `n/B` peel threshold are transiently
/// under-clustered, and the trajectory records exactly those rounds.
pub fn e14_churn_robust(scale: Scale) -> Vec<Table> {
    let n = 96usize;
    let m = 192usize;
    let b = 4usize;
    let d = 6usize;
    let turnover = 12usize;
    let rounds = scale.pick(4usize, 8);
    let churn = ChurnSchedule::replacement(turnover, 0xc0de);
    let pool = n + churn.joins_over(rounds);

    let mut table = Table::new(
        format!(
            "E14: churn robustness — n={n} active of a {pool}-identity pool, \
             turnover {turnover}/round, m={m}, B={b}, D={d}, inverters at 8"
        ),
        &[
            "algorithm",
            "round",
            "players",
            "joined",
            "max honest err",
            "mean honest err",
            "max honest probes",
        ],
    );

    for algorithm in [Algorithm::CalculatePreferences, Algorithm::GlobalMajority] {
        let world = DynamicWorld::builder()
            .pool(ClusterSpec {
                players: pool,
                objects: m,
                clusters: b,
                diameter: d,
                seed: 0xe14,
            })
            .active(n)
            .params(ProtocolParams::with_budget(b))
            .churn(churn)
            .adversary(
                AdaptiveCorruption::off(Corruption::Count { count: 8 }),
                Inverter,
            )
            .build();
        let run = world.run(algorithm, rounds, 0x14);
        for report in &run.rounds {
            table.row(vec![
                report.outcome.algorithm.clone(),
                report.round.to_string(),
                report.players.to_string(),
                report.joined.len().to_string(),
                report.outcome.errors.max.to_string(),
                f2(report.outcome.errors.mean),
                report.outcome.max_honest_probes.to_string(),
            ]);
        }
    }
    table.note(
        "Joiners take fresh pool identities (survivors keep relative order), \
         so each round is an ordinary static execution over the remapped \
         population. The pool's 4th taste community has no members in the \
         initial active window; as its identities churn in, they sit below \
         the n/B peel threshold for a round or two — the max-err spike in \
         the CalculatePreferences trajectory is exactly that cold-start \
         cohort, and it dissolves once the community reaches critical \
         mass. The substrate adapter is backend-agnostic — \
         tests/dynamic_world.rs pins dense ≡ procedural trajectories.",
    );
    vec![table]
}

/// **E15 / ROADMAP "scenario growth" (adaptive corruption)** — the
/// adversary re-selects its corrupted set between repetitions after
/// observing the previous round's surviving groups and honest error
/// scores (Ignat et al.: behaviour co-evolves with the score). Window 0
/// is the paper's static adversary (the control arm — selection is
/// bit-identical to the wrapped `Corruption`); wider windows concentrate
/// the same budget on the smallest surviving group or the highest-error
/// group.
pub fn e15_adaptive_corruption(scale: Scale) -> Vec<Table> {
    let n = 144usize;
    let m = 288usize;
    let b = 4usize;
    let d = 8usize;
    let budget = Corruption::paper_threshold(n, b); // n/(3B) = 12
    let rounds = scale.pick(3usize, 5);

    let configs: Vec<(&str, AdaptiveCorruption)> = {
        let base = Corruption::Count { count: budget };
        let mut v = vec![("static (window 0)", AdaptiveCorruption::off(base.clone()))];
        for window in scale.pick(vec![1usize, 3], vec![1, 3, 5]) {
            v.push((
                "smallest-group",
                AdaptiveCorruption::new(base.clone(), window, AdaptivePolicy::SmallestGroup),
            ));
        }
        v.push((
            "highest-error",
            AdaptiveCorruption::new(base, 1, AdaptivePolicy::HighestError),
        ));
        v
    };

    let mut table = Table::new(
        format!(
            "E15: adaptive corruption — n={n}, m={m}, B={b}, D={d}, \
             budget n/(3B)={budget} inverters, re-targeted between rounds"
        ),
        &[
            "adversary",
            "window",
            "round",
            "target group",
            "max honest err",
            "mean honest err",
            "err/D",
        ],
    );

    for (name, corruption) in configs {
        let window = corruption.window;
        let world = DynamicWorld::builder()
            .pool(ClusterSpec {
                players: n,
                objects: m,
                clusters: b,
                diameter: d,
                seed: 0xe15,
            })
            .params(ProtocolParams::with_budget(b))
            .adversary(corruption, Inverter)
            .build();
        let run = world.run(Algorithm::CalculatePreferences, rounds, 0x15);
        for report in &run.rounds {
            table.row(vec![
                name.to_string(),
                window.to_string(),
                report.round.to_string(),
                report
                    .target_group
                    .map_or("-".to_string(), |g| g.to_string()),
                report.outcome.errors.max.to_string(),
                f2(report.outcome.errors.mean),
                f2(report.outcome.errors.max as f64 / d as f64),
            ]);
        }
    }
    table.note(
        "All arms spend the identical budget (n/(3B) players); only the \
         targeting differs. Round 0 has nothing to observe, so every arm's \
         first row coincides with the static adversary — divergence from \
         round 1 on is pure adaptivity. The Lemma 13 redundancy argument \
         is per-cluster, so even a fully concentrated budget stays below \
         the cluster's vote threshold — max honest err should hold at O(D) \
         in every arm.",
    );
    vec![table]
}

/// **E16 / ROADMAP "TruthSource backend with drifting preferences"** —
/// time-varying truth on the procedural `@scale` backend, plus the
/// multi-bit graded drift trajectory. Round `r` executes at drift epoch
/// `r`: preferences flip per epoch at a seeded rate inside a locality
/// window, so the planted structure erodes while the protocol keeps
/// scoring against the *current* world
/// ([`byzscore::DriftingTruth::materialize_at`] is the pinned dense twin).
pub fn e16_drifting_truth(scale: Scale) -> Vec<Table> {
    let m = 1024usize;
    let b = 8usize;
    let d = 16usize;
    let rounds = 3usize;
    let ns = scale.pick(vec![1_000usize, 10_000], vec![1_000, 10_000, 100_000]);

    let mut table = Table::new(
        format!(
            "E16: drifting truth — ProceduralTruth pool, m={m}, B={b}, D={d}, \
             drift rate 5e-4 on the first {half} objects, {rounds} epochs",
            half = m / 2
        ),
        &[
            "n",
            "algorithm",
            "epoch",
            "max honest err",
            "mean honest err",
            "max honest probes",
        ],
    );

    for &n in &ns {
        let spec = ClusterSpec {
            players: n,
            objects: m,
            clusters: b,
            diameter: d,
            seed: 0xe16 + n as u64,
        };
        let drift = DriftSchedule::new(
            5e-4,
            DriftLocality::Window {
                start: 0,
                len: m / 2,
            },
            0xd1f7 + n as u64,
        );
        let mut algorithms = vec![Algorithm::GlobalMajority];
        if n <= 10_000 {
            algorithms.push(Algorithm::NaiveSampling);
        }
        for algorithm in algorithms {
            let world = DynamicWorld::builder()
                .pool(spec.clone())
                .params(ProtocolParams::with_budget(b))
                .drift(drift.clone())
                .output_sink(OutputSink::ErrorStream)
                .build();
            let run = world.run(algorithm, rounds, 0x16);
            for report in &run.rounds {
                table.row(vec![
                    n.to_string(),
                    report.outcome.algorithm.clone(),
                    report.epoch.to_string(),
                    report.outcome.errors.max.to_string(),
                    f2(report.outcome.errors.mean),
                    report.outcome.max_honest_probes.to_string(),
                ]);
            }
        }
    }
    table.note(format!(
        "Each epoch is an immutable snapshot (the protocol never sees a \
         mid-run flip) scored against its own epoch's truth; cumulative \
         drift inflates the effective intra-cluster diameter by ~2·rate·\
         epoch·window ≈ {:.1} bits/epoch, so the error trajectory tracks \
         the eroding planted structure. NaiveSampling rides the grouped \
         neighbor index at n=10⁴; n=10⁵ runs GlobalMajority on the \
         streaming sink.",
        2.0 * 5e-4 * (m / 2) as f64
    ));

    // Multi-bit plane: grades drift as independent per-plane walks.
    let players = 48usize;
    let objects = 96usize;
    let bits = 2u32;
    let epochs = scale.pick(3u64, 5);
    let mut graded = Table::new(
        format!(
            "E16b: graded drift — {players}×{objects} grades in 0..2^{bits}, \
             3 clone classes, rate 5e-3/plane, CalculatePreferences per epoch"
        ),
        &["epoch", "max L1 err", "mean L1 err", "plane max errs"],
    );
    // Clone-class grade world: members share grade rows, so every plane
    // starts as a clone world and drift erodes it from there.
    let prototypes: Vec<Vec<u8>> = (0..3)
        .map(|c| {
            (0..objects)
                .map(|o| {
                    (byzscore_random::derive_seed(0xe16b, &[c as u64, o as u64]) % (1 << bits))
                        as u8
                })
                .collect()
        })
        .collect();
    let base = GradeMatrix::from_fn(players, objects, bits, |p, o| prototypes[p % 3][o]);
    let world = DriftingGrades::new(&base, &DriftSchedule::uniform(5e-3, 0xe16b));
    let trajectory = score_graded_drift(
        &world,
        &ProtocolParams::with_budget(4),
        Algorithm::CalculatePreferences,
        epochs,
        0x16b,
    );
    for (t, out) in trajectory.iter().enumerate() {
        let plane_errs: Vec<String> = out
            .planes
            .iter()
            .map(|p| p.errors.max.to_string())
            .collect();
        graded.row(vec![
            t.to_string(),
            out.max_l1.to_string(),
            f2(out.mean_l1),
            plane_errs.join("/"),
        ]);
    }
    graded.note(
        "Grades decompose into bit planes that drift under independently \
         derived seeds; the recombined L1 error is bounded by Σ 2^j × \
         plane-j error at every epoch (byzscore::graded), so the graded \
         plane inherits the binary trajectory's guarantees.",
    );
    vec![table, graded]
}
