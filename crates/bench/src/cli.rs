//! The unified experiment CLI shared by `run_all` and every
//! per-experiment binary.
//!
//! ```text
//! run_all --list                 # registry index
//! run_all                        # run everything at the quick scale
//! run_all --only e07,e09         # subset by id or name
//! run_all --only @byzantine      # subset by tag
//! run_all --scale full           # EXPERIMENTS.md sweep sizes
//! run_all --threads 4            # cap phase parallelism (default: all cores)
//! run_all --only e01 --json      # + BENCH_e01.json artifact
//! run_all --json results.json    # one combined JSON document
//! run_all --trace t.trace        # replay a recorded service trace
//! ```
//!
//! The per-experiment binaries (`e01_rselect`, …) accept the same flags
//! minus `--only` (their experiment is fixed), so every former entry
//! point keeps working while all behavior lives here, driven by
//! [`crate::registry::REGISTRY`].

use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Instant;

use byzscore_board::par::par_map_coarse;

use crate::registry::{self, Experiment, REGISTRY};
use crate::table::{json_string, json_string_array, Table};
use crate::{Scale, TimingMode};

/// Where JSON output goes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JsonOut {
    /// Bare `--json`: one `BENCH_<id>.json` artifact per experiment run.
    PerExperiment,
    /// `--json PATH`: one combined document at the given path.
    Path(PathBuf),
}

/// Parsed command line.
#[derive(Debug, Default)]
pub struct Options {
    /// `--list`: print the registry index and exit.
    pub list: bool,
    /// `--only` selectors (ids, names, or `@tag`s); empty = all.
    pub only: Vec<String>,
    /// `--scale`; `None` falls back to the `BYZ_FULL` environment switch.
    pub scale: Option<Scale>,
    /// `--threads`: cap on total worker threads (hierarchical budget).
    pub threads: Option<usize>,
    /// `--timing`: how timed sweep cells measure `elapsed ms`.
    pub timing: TimingMode,
    /// `--json` artifact destination.
    pub json: Option<JsonOut>,
    /// `--trace`: replay a recorded service trace file instead of
    /// running registry experiments.
    pub trace: Option<PathBuf>,
}

/// Usage text for `prog`; per-experiment binaries (`fixed` set) don't
/// advertise `--only`, which they reject.
fn usage(prog: &str, fixed: Option<&str>) -> String {
    let only_synopsis = if fixed.is_none() {
        " [--only SEL[,SEL…]]"
    } else {
        ""
    };
    let only_help = if fixed.is_none() {
        "  --only SEL        run a subset: experiment id (e07), name (byzantine),\n                    \
         or @tag; repeatable and comma-separable\n"
    } else {
        ""
    };
    let fixed_note = match fixed {
        Some(id) => format!("\nThis binary is fixed to experiment {id}; use run_all for subsets."),
        None => String::new(),
    };
    format!(
        "usage: {prog} [--list]{only_synopsis} [--scale quick|full] [--threads N] \
         [--timing shared|isolated] [--json [PATH]]\n\n  \
         --list            print the experiment registry and exit\n{only_help}  \
         --scale SCALE     quick (default) or full (EXPERIMENTS.md sweep sizes;\n                    \
         BYZ_FULL=1 is the env equivalent)\n  \
         --threads N       cap total worker threads across all nested parallelism\n                    \
         (default: all cores)\n  \
         --timing MODE     shared (default): timed cells run concurrently, elapsed ms\n                    \
         includes contention; isolated: each timed cell reruns serially\n                    \
         with the full budget, column labeled \"elapsed ms (isolated)\"\n  \
         --json [PATH]     write JSON tables: bare --json emits one BENCH_<id>.json\n                    \
         per experiment; with PATH (or --json=PATH), one combined document\n  \
         --trace PATH      replay a recorded byzscore-trace/v1 service workload and\n                    \
         print its op count and combined response digest (honors\n                    \
         --threads; the digest is thread-count invariant)\n  \
         --help            this text{fixed_note}"
    )
}

/// The flag's value: inline (`--flag=value`) or the next token.
fn flag_value(
    flag: &str,
    inline: &mut Option<String>,
    it: &mut std::iter::Peekable<impl Iterator<Item = String>>,
    expects: &str,
) -> Result<String, String> {
    inline
        .take()
        .or_else(|| it.next())
        .ok_or_else(|| format!("{flag} needs {expects}"))
}

/// Parse `args` (without the program name). Flags accept both
/// `--flag value` and `--flag=value` forms.
pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.into_iter().peekable();
    while let Some(arg) = it.next() {
        let (key, mut inline) = match arg.split_once('=') {
            Some((k, v)) if k.starts_with("--") => (k.to_string(), Some(v.to_string())),
            _ => (arg, None),
        };
        match key.as_str() {
            "--list" | "-l" => opts.list = true,
            "--only" => {
                let v = flag_value("--only", &mut inline, &mut it, "a selector list")?;
                opts.only.extend(
                    v.split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(String::from),
                );
            }
            "--scale" => {
                let v = flag_value("--scale", &mut inline, &mut it, "quick|full")?;
                opts.scale = Some(match v.as_str() {
                    "quick" => Scale::Quick,
                    "full" => Scale::Full,
                    other => return Err(format!("unknown scale {other:?} (quick|full)")),
                });
            }
            "--threads" => {
                let v = flag_value("--threads", &mut inline, &mut it, "a count")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--threads: not a count: {v:?}"))?;
                if n == 0 {
                    return Err("--threads must be ≥ 1".into());
                }
                opts.threads = Some(n);
            }
            "--timing" => {
                let v = flag_value("--timing", &mut inline, &mut it, "shared|isolated")?;
                opts.timing = match v.as_str() {
                    "shared" => TimingMode::Shared,
                    "isolated" => TimingMode::Isolated,
                    other => {
                        return Err(format!("unknown timing mode {other:?} (shared|isolated)"))
                    }
                };
            }
            "--json" => {
                // Optional value: inline, or a following token that is not
                // a flag. A positional value that names a registry entry is
                // almost certainly a mistyped `--only` (it would silently
                // run EVERY experiment and write to a file named e.g.
                // "e07"), so reject it; `--json=PATH` forces any path.
                if inline.as_deref() == Some("") {
                    return Err("--json= needs a non-empty path".into());
                }
                let path = inline.take().map(Ok).or_else(|| {
                    it.next_if(|next| !next.starts_with('-')).map(|p| {
                        if registry::find(&p).is_some() || p.starts_with('@') {
                            Err(format!(
                                "--json {p:?} names an experiment; did you mean \
                                 `--only {p} --json`? (use --json=PATH to force a \
                                 path with that name)"
                            ))
                        } else {
                            Ok(p)
                        }
                    })
                });
                opts.json = Some(match path.transpose()? {
                    Some(p) => JsonOut::Path(PathBuf::from(p)),
                    None => JsonOut::PerExperiment,
                });
            }
            "--trace" => {
                let v = flag_value("--trace", &mut inline, &mut it, "a trace file path")?;
                opts.trace = Some(PathBuf::from(v));
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument {other:?} (--help for usage)")),
        }
        if let Some(v) = inline {
            return Err(format!("{key} takes no value (got {v:?})"));
        }
    }
    Ok(opts)
}

/// Resolve `--only` selectors to registry entries, preserving registry
/// order and deduplicating.
pub fn resolve(only: &[String]) -> Result<Vec<&'static Experiment>, String> {
    if only.is_empty() {
        return Ok(REGISTRY.iter().collect());
    }
    let mut picked: Vec<&'static Experiment> = Vec::new();
    for sel in only {
        let hits = registry::select(sel);
        if hits.is_empty() {
            return Err(format!(
                "unknown experiment selector {sel:?} (run --list for the index)"
            ));
        }
        for hit in hits {
            if !picked.iter().any(|have| std::ptr::eq(*have, hit)) {
                picked.push(hit);
            }
        }
    }
    picked.sort_by_key(|x| {
        REGISTRY
            .iter()
            .position(|r| std::ptr::eq(r, *x))
            .expect("registry entry")
    });
    Ok(picked)
}

/// Render the `--list` index.
pub fn render_list() -> String {
    let mut t = Table::new(
        format!("experiment registry ({} experiments)", REGISTRY.len()),
        &["id", "name", "tags", "description"],
    );
    for x in REGISTRY {
        t.row(vec![
            x.id.to_string(),
            x.name.to_string(),
            x.tags.join(","),
            x.description.to_string(),
        ]);
    }
    t.render()
}

/// One experiment's results, as produced by [`run`].
pub struct RunRecord {
    /// The registry entry that ran.
    pub experiment: &'static Experiment,
    /// Wall-clock seconds spent in the runner.
    pub seconds: f64,
    /// Tables the runner produced.
    pub tables: Vec<Table>,
}

/// Execute `experiments` under the current timing mode — concurrently for
/// [`TimingMode::Shared`] (they are independent pure functions of their
/// hard-coded seeds, sharing the hierarchical worker budget), strictly
/// serially for [`TimingMode::Isolated`] (an isolated timing cell must
/// not share the machine with sibling *experiments* either) — and return
/// records in registry order. Renders nothing — the printing layer is
/// [`run`]; tests compare records across thread counts through this.
pub fn collect(experiments: &[&'static Experiment], scale: Scale) -> Vec<RunRecord> {
    collect_each(experiments, scale, &|_, _| {})
}

/// Core executor behind [`collect`]/[`run`]: runs the experiments per the
/// timing mode and invokes `done(index, record)` exactly once per record,
/// in registry order, as soon as the completed prefix allows (under an
/// internal lock, so callbacks never interleave) — long runs stream
/// finished experiments instead of buffering everything to the end.
fn collect_each(
    experiments: &[&'static Experiment],
    scale: Scale,
    done: &(dyn Fn(usize, &RunRecord) + Sync),
) -> Vec<RunRecord> {
    let n = experiments.len();
    let progress: Mutex<(Vec<Option<RunRecord>>, usize)> =
        Mutex::new(((0..n).map(|_| None).collect(), 0));
    let indices: Vec<usize> = (0..n).collect();
    let exec = |&i: &usize| {
        let x = experiments[i];
        let t = Instant::now();
        let tables = (x.runner)(scale);
        let record = RunRecord {
            experiment: x,
            seconds: t.elapsed().as_secs_f64(),
            tables,
        };
        let mut guard = progress.lock().expect("a runner panicked");
        let (slots, flushed) = &mut *guard;
        slots[i] = Some(record);
        while *flushed < n {
            let Some(rec) = &slots[*flushed] else { break };
            done(*flushed, rec);
            *flushed += 1;
        }
    };
    match crate::timing_mode() {
        TimingMode::Shared => {
            par_map_coarse(&indices, exec);
        }
        TimingMode::Isolated => indices.iter().for_each(exec),
    }
    progress
        .into_inner()
        .expect("a runner panicked")
        .0
        .into_iter()
        .map(|slot| slot.expect("every experiment recorded"))
        .collect()
}

/// Execute `experiments` via [`collect_each`], rendering each table as
/// markdown to stdout and per-experiment timing to stderr — streamed in
/// registry order as experiments complete, so output is deterministic
/// regardless of which experiment finishes first and a long run shows
/// progress; returns the records for serialization.
pub fn run(experiments: &[&'static Experiment], scale: Scale) -> Vec<RunRecord> {
    let start = Instant::now();
    println!(
        "# byzscore evaluation — scale: {scale:?}, {} experiment(s)",
        experiments.len()
    );
    let records = collect_each(experiments, scale, &|_, rec| {
        for table in &rec.tables {
            table.print();
        }
        eprintln!(
            "[{}] {} done in {:.1}s",
            rec.experiment.id, rec.experiment.name, rec.seconds
        );
    });
    eprintln!(
        "all {} experiment(s) done in {:.1}s",
        experiments.len(),
        start.elapsed().as_secs_f64()
    );
    records
}

/// Serialize records as the versioned JSON document written to
/// `BENCH_*.json`.
///
/// Schema history: `byzscore-bench/v2` extends v1 with board-memory
/// columns — tables produced by runs now carry the `BoardStats` scope
/// accounting (`peak claim slots`, `claim posts`) wherever board traffic is
/// reported (E11, E13). Structure (schema/scale/threads/experiments/tables)
/// is unchanged from v1.
pub fn json_document(records: &[RunRecord], scale: Scale, threads: Option<usize>) -> String {
    let mut out = String::from("{\"schema\":\"byzscore-bench/v2\"");
    out.push_str(&format!(
        ",\"scale\":{}",
        json_string(&format!("{scale:?}").to_ascii_lowercase())
    ));
    out.push_str(",\"threads\":");
    match threads {
        Some(n) => out.push_str(&n.to_string()),
        None => out.push_str("null"),
    }
    out.push_str(",\"experiments\":[");
    for (i, rec) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let x = rec.experiment;
        out.push_str(&format!(
            "{{\"id\":{},\"name\":{},\"description\":{},\"tags\":{},\"seconds\":{:.3},\"tables\":[",
            json_string(x.id),
            json_string(x.name),
            json_string(x.description),
            json_string_array(x.tags),
            rec.seconds,
        ));
        for (j, table) in rec.tables.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&table.to_json());
        }
        out.push_str("]}");
    }
    out.push_str("]}\n");
    out
}

/// Write the requested JSON artifacts; returns the paths written.
pub fn write_json(
    records: &[RunRecord],
    out: &JsonOut,
    scale: Scale,
    threads: Option<usize>,
) -> std::io::Result<Vec<PathBuf>> {
    let mut written = Vec::new();
    match out {
        JsonOut::Path(path) => {
            std::fs::write(path, json_document(records, scale, threads))?;
            written.push(path.clone());
        }
        JsonOut::PerExperiment => {
            for rec in records {
                let path = PathBuf::from(format!("BENCH_{}.json", rec.experiment.id));
                std::fs::write(
                    &path,
                    json_document(std::slice::from_ref(rec), scale, threads),
                )?;
                written.push(path);
            }
        }
    }
    Ok(written)
}

/// Full engine pass over parsed options. Returns an error message for
/// invalid selections or I/O failures.
pub fn execute(opts: Options) -> Result<(), String> {
    if opts.list {
        print!("{}", render_list());
        return Ok(());
    }
    if let Some(path) = &opts.trace {
        if !opts.only.is_empty() || opts.json.is_some() {
            return Err(
                "--trace replays a workload; it does not combine with --only or --json".into(),
            );
        }
        byzscore_board::par::set_thread_limit(opts.threads);
        return replay_trace(path);
    }
    let experiments = resolve(&opts.only)?;
    if let Some(JsonOut::Path(path)) = &opts.json {
        // Fail fast: a full-scale run can take hours, and discovering an
        // unwritable destination only at the end would discard the
        // artifact the run was launched for.
        std::fs::OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| format!("cannot write --json path {}: {e}", path.display()))?;
    }
    byzscore_board::par::set_thread_limit(opts.threads);
    crate::set_timing_mode(opts.timing);
    let scale = opts.scale.unwrap_or_else(Scale::from_env);
    let records = run(&experiments, scale);
    if let Some(json) = &opts.json {
        let paths = write_json(&records, json, scale, opts.threads)
            .map_err(|e| format!("writing JSON: {e}"))?;
        for p in paths {
            eprintln!("wrote {}", p.display());
        }
    }
    Ok(())
}

/// `--trace` mode: parse and replay a recorded service workload on a
/// fresh [`byzscore_service::ServiceEngine`], printing the op count,
/// the rejection count, and the combined response digest (the digest is
/// the cell CI pins — identical at any `--threads`).
fn replay_trace(path: &std::path::Path) -> Result<(), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read trace {}: {e}", path.display()))?;
    let trace = byzscore_service::Trace::from_text(&text).map_err(|e| e.to_string())?;
    let start = Instant::now();
    let responses = byzscore_service::ServiceEngine::new().execute(&trace.ops);
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    let rejected = responses
        .iter()
        .filter(|r| matches!(r, byzscore_service::Response::Rejected(_)))
        .count();
    println!(
        "replayed {} ops in {elapsed_ms:.1} ms ({rejected} rejected)",
        responses.len()
    );
    println!(
        "digest {:016x}",
        byzscore_service::combined_digest(&responses)
    );
    Ok(())
}

/// Shared `main` body: parse `std::env::args`, force the experiment to
/// `fixed` when given (per-experiment binaries), run, exit non-zero on
/// error.
fn main_with(fixed: Option<&str>) {
    let prog = std::env::args()
        .next()
        .map(|p| {
            PathBuf::from(p)
                .file_name()
                .map(|f| f.to_string_lossy().into_owned())
                .unwrap_or_else(|| "run_all".into())
        })
        .unwrap_or_else(|| "run_all".into());
    let parsed = parse(std::env::args().skip(1));
    let mut opts = match parsed {
        Ok(opts) => opts,
        Err(msg) => {
            let usage = usage(&prog, fixed);
            if msg.is_empty() {
                println!("{usage}");
                return;
            }
            eprintln!("{prog}: {msg}\n{usage}");
            std::process::exit(2);
        }
    };
    if let Some(id) = fixed {
        if !opts.only.is_empty() {
            eprintln!("{prog}: this binary is fixed to experiment {id}; use run_all for --only");
            std::process::exit(2);
        }
        opts.only = vec![id.to_string()];
    }
    if let Err(msg) = execute(opts) {
        eprintln!("{prog}: {msg}");
        std::process::exit(2);
    }
}

/// `main` for `run_all`.
pub fn run_all_main() {
    main_with(None);
}

/// `main` for a per-experiment binary fixed to registry id `id`.
pub fn single_main(id: &str) {
    debug_assert!(registry::find(id).is_some(), "unregistered id {id}");
    main_with(Some(id));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_the_acceptance_surface() {
        let o = parse(args(&["--list"])).unwrap();
        assert!(o.list);

        let o = parse(args(&[
            "--only",
            "e07,e09",
            "--scale",
            "full",
            "--threads",
            "3",
        ]))
        .unwrap();
        assert_eq!(o.only, vec!["e07", "e09"]);
        assert_eq!(o.scale, Some(Scale::Full));
        assert_eq!(o.threads, Some(3));

        let o = parse(args(&["--only", "e01", "--json"])).unwrap();
        assert_eq!(o.json, Some(JsonOut::PerExperiment));
        assert_eq!(o.timing, TimingMode::Shared);

        let o = parse(args(&["--timing", "isolated"])).unwrap();
        assert_eq!(o.timing, TimingMode::Isolated);
        let o = parse(args(&["--timing=shared"])).unwrap();
        assert_eq!(o.timing, TimingMode::Shared);
        assert!(parse(args(&["--timing", "fast"])).is_err());

        let o = parse(args(&["--json", "out.json"])).unwrap();
        assert_eq!(o.json, Some(JsonOut::Path(PathBuf::from("out.json"))));
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(parse(args(&["--scale", "medium"])).is_err());
        assert!(parse(args(&["--threads", "0"])).is_err());
        assert!(parse(args(&["--threads", "many"])).is_err());
        assert!(parse(args(&["--frobnicate"])).is_err());
        assert_eq!(parse(args(&["--help"])).unwrap_err(), "");
    }

    #[test]
    fn parse_accepts_equals_forms() {
        let o = parse(args(&["--scale=full", "--threads=3", "--only=e07,e09"])).unwrap();
        assert_eq!(o.scale, Some(Scale::Full));
        assert_eq!(o.threads, Some(3));
        assert_eq!(o.only, vec!["e07", "e09"]);
        assert!(
            parse(args(&["--list=yes"])).is_err(),
            "--list takes no value"
        );
    }

    #[test]
    fn json_guards_against_mistyped_only() {
        // `--json e07` is almost certainly a mistyped `--only e07 --json`:
        // it would run ALL experiments and write a file named "e07".
        let err = parse(args(&["--json", "e07"])).unwrap_err();
        assert!(err.contains("--only e07"), "unhelpful message: {err}");
        assert!(parse(args(&["--json", "@byzantine"])).is_err());
        // The inline form forces any path; non-selector tokens pass.
        let o = parse(args(&["--json=e07"])).unwrap();
        assert_eq!(o.json, Some(JsonOut::Path(PathBuf::from("e07"))));
        let o = parse(args(&["--json", "e07.json"])).unwrap();
        assert_eq!(o.json, Some(JsonOut::Path(PathBuf::from("e07.json"))));
        assert!(
            parse(args(&["--json="])).is_err(),
            "empty inline path must be rejected, not deferred to write time"
        );
    }

    #[test]
    fn execute_fails_fast_on_unwritable_json_path() {
        let err = execute(Options {
            only: vec!["e01".into()],
            json: Some(JsonOut::Path(PathBuf::from(
                "/nonexistent-dir-byzscore/x.json",
            ))),
            ..Options::default()
        })
        .unwrap_err();
        assert!(
            err.contains("cannot write --json path"),
            "should fail before running experiments: {err}"
        );
    }

    #[test]
    fn usage_matches_binary_kind() {
        let all = usage("run_all", None);
        assert!(all.contains("--only"));
        let fixed = usage("e07_error_vs_d", Some("e07"));
        assert!(!fixed.contains("--only"), "fixed binaries reject --only");
        assert!(fixed.contains("fixed to experiment e07"));
    }

    #[test]
    fn resolve_orders_and_dedupes() {
        let picked = resolve(&args(&["e09", "e07", "byzantine"])).unwrap();
        let ids: Vec<&str> = picked.iter().map(|x| x.id).collect();
        assert_eq!(ids, vec!["e07", "e09"]);
        assert!(resolve(&args(&["e99"])).is_err());
        assert_eq!(resolve(&[]).unwrap().len(), REGISTRY.len());
    }

    #[test]
    fn list_covers_every_experiment() {
        let listing = render_list();
        for x in REGISTRY {
            assert!(listing.contains(x.id), "{} missing from --list", x.id);
            assert!(
                listing.contains(x.description),
                "{} description missing from --list",
                x.id
            );
        }
    }

    #[test]
    fn trace_flag_parses_and_replays() {
        let o = parse(args(&["--trace", "t.trace", "--threads", "2"])).unwrap();
        assert_eq!(o.trace, Some(PathBuf::from("t.trace")));
        let o = parse(args(&["--trace=t.trace"])).unwrap();
        assert_eq!(o.trace, Some(PathBuf::from("t.trace")));
        assert!(parse(args(&["--trace"])).is_err(), "--trace needs a path");

        // Replay mode is exclusive with experiment selection/artifacts.
        let err = execute(Options {
            trace: Some(PathBuf::from("t.trace")),
            only: vec!["e01".into()],
            ..Options::default()
        })
        .unwrap_err();
        assert!(err.contains("--trace"), "unhelpful message: {err}");

        // Missing files fail with a readable message, not a panic.
        let err = execute(Options {
            trace: Some(PathBuf::from("/nonexistent-dir-byzscore/t.trace")),
            ..Options::default()
        })
        .unwrap_err();
        assert!(err.contains("cannot read trace"), "{err}");

        // A real round trip: generate, write, replay through the engine path.
        let path = std::env::temp_dir().join("byzscore_cli_trace_test.trace");
        let trace = byzscore_service::Trace::generate(&byzscore_service::TraceSpec::small(5));
        std::fs::write(&path, trace.to_text()).unwrap();
        execute(Options {
            trace: Some(path.clone()),
            ..Options::default()
        })
        .unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn json_document_is_well_formed() {
        let mut table = Table::new("t", &["h"]);
        table.row(vec!["v".into()]);
        table.note("n");
        let records = vec![RunRecord {
            experiment: &REGISTRY[0],
            seconds: 0.25,
            tables: vec![table],
        }];
        let doc = json_document(&records, Scale::Quick, Some(2));
        assert!(doc.starts_with("{\"schema\":\"byzscore-bench/v2\""));
        assert!(doc.contains("\"scale\":\"quick\""));
        assert!(doc.contains("\"threads\":2"));
        assert!(doc.contains("\"id\":\"e01\""));
        assert!(doc.contains("\"rows\":[[\"v\"]]"));
        // Balanced braces/brackets ⇒ structurally sound for this
        // quote-free payload.
        for (open, close) in [('{', '}'), ('[', ']')] {
            let opens = doc.matches(open).count();
            let closes = doc.matches(close).count();
            assert_eq!(opens, closes, "unbalanced {open}{close}");
        }
        let none = json_document(&[], Scale::Full, None);
        assert!(none.contains("\"threads\":null"));
        assert!(none.contains("\"scale\":\"full\""));
    }
}
