//! Regenerate every table of the evaluation (DESIGN.md §5) in one run.
//! `BYZ_FULL=1` switches to the full sweeps recorded in EXPERIMENTS.md.

use byzscore_bench::{experiments as e, Scale};

fn main() {
    let scale = Scale::from_env();
    println!("# byzscore evaluation — scale: {scale:?}\n");
    let start = std::time::Instant::now();
    for (name, f) in [
        (
            "E1",
            e::e01_rselect as fn(Scale) -> Vec<byzscore_bench::table::Table>,
        ),
        ("E2", e::e02_zero_radius),
        ("E3", e::e03_small_radius),
        ("E4", e::e04_sample_concentration),
        ("E5", e::e05_clustering),
        ("E6", e::e06_probe_complexity),
        ("E7", e::e07_error_vs_d),
        ("E8", e::e08_lower_bound),
        ("E9", e::e09_byzantine),
        ("E10", e::e10_election),
        ("E11", e::e11_comparison),
        ("E12", e::e12_budgets),
        ("A1", e::a1_select),
        ("A2", e::a2_votes),
        ("A3", e::a3_threshold),
    ] {
        let t = std::time::Instant::now();
        f(scale);
        eprintln!("[{name}] done in {:.1}s", t.elapsed().as_secs_f64());
    }
    eprintln!(
        "all experiments done in {:.1}s",
        start.elapsed().as_secs_f64()
    );
}
