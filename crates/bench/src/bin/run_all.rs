//! The evaluation driver: run any subset of the experiment registry
//! (DESIGN.md §5) with unified flags.
//!
//! ```text
//! run_all --list
//! run_all --only e07,e09 --scale full --threads 4 --json results.json
//! ```
fn main() {
    byzscore_bench::cli::run_all_main();
}
