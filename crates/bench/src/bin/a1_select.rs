//! Experiment binary: fixed to registry entry `a1` (see `run_all --list`).
//! Accepts the shared engine flags: `--scale`, `--threads`, `--json`.
fn main() {
    byzscore_bench::cli::single_main("a1");
}
