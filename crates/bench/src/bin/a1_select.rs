//! Experiment binary: see DESIGN.md §5. `BYZ_FULL=1` for the full sweep.
fn main() {
    byzscore_bench::experiments::a1_select(byzscore_bench::Scale::from_env());
}
