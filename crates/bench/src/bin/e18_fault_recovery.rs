//! Entry point for experiment `e18` (fault recovery).

fn main() {
    byzscore_bench::cli::single_main("e18");
}
