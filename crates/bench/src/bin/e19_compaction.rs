//! Entry point for experiment `e19` (checkpointed WAL compaction).

fn main() {
    byzscore_bench::cli::single_main("e19");
}
