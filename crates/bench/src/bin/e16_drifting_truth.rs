//! Entry point for experiment `e16` (drifting truth).

fn main() {
    byzscore_bench::cli::single_main("e16");
}
