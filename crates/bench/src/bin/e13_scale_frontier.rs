//! Entry point for experiment `e13` (scale frontier on procedural truth).

fn main() {
    byzscore_bench::cli::single_main("e13");
}
