//! Entry point for experiment `e17` (service throughput).

fn main() {
    byzscore_bench::cli::single_main("e17");
}
