//! Entry point for experiment `e15` (adaptive corruption).

fn main() {
    byzscore_bench::cli::single_main("e15");
}
