//! Entry point for experiment `e14` (churn robust).

fn main() {
    byzscore_bench::cli::single_main("e14");
}
