//! Experiment binary: fixed to registry entry `e05` (see `run_all --list`).
//! Accepts the shared engine flags: `--scale`, `--threads`, `--json`.
fn main() {
    byzscore_bench::cli::single_main("e05");
}
