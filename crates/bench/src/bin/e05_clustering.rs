//! Experiment binary: see DESIGN.md §5. `BYZ_FULL=1` for the full sweep.
fn main() {
    byzscore_bench::experiments::e05_clustering(byzscore_bench::Scale::from_env());
}
