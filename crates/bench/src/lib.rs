//! Experiment harness for the byzscore reproduction.
//!
//! The paper is a theory paper: its "evaluation" is a set of quantitative
//! claims (theorems, lemmas, the Claim-2 lower bound, and the §1 comparison
//! with prior art). Each claim has one experiment here — declared once in
//! the [`registry`] (see DESIGN.md §5 for the index) and driven by the
//! unified [`cli`] engine:
//!
//! ```text
//! cargo run -p byzscore-bench --release --bin run_all -- --list
//! cargo run -p byzscore-bench --release --bin run_all -- --only e07,e09
//! cargo run -p byzscore-bench --release --bin e07_error_vs_d
//! ```
//!
//! Experiment runners are plain functions `fn(Scale) -> Vec<Table>`; they
//! never print. The engine renders markdown to stdout and, with `--json`,
//! serializes the same tables into `BENCH_*.json` artifacts so runs are
//! diffable across commits.
//!
//! Scale: experiments default to a quick preset that finishes in seconds to
//! a few minutes each; `--scale full` (or `BYZ_FULL=1`) selects the larger
//! sweeps recorded in EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod experiments;
pub mod registry;
pub mod stats;
pub mod table;

/// Experiment scale, selected by `--scale` or the `BYZ_FULL` environment
/// variable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Seconds-scale smoke sizes.
    Quick,
    /// The sizes recorded in EXPERIMENTS.md.
    Full,
}

impl Scale {
    /// Read the scale from the environment (`BYZ_FULL=1` ⇒ `Full`).
    pub fn from_env() -> Scale {
        if std::env::var("BYZ_FULL").map(|v| v == "1").unwrap_or(false) {
            Scale::Full
        } else {
            Scale::Quick
        }
    }

    /// Pick `q` under Quick and `f` under Full.
    pub fn pick<T>(self, q: T, f: T) -> T {
        match self {
            Scale::Quick => q,
            Scale::Full => f,
        }
    }
}

/// How experiments time their per-cell `elapsed ms` columns, selected by
/// the CLI's `--timing` flag.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TimingMode {
    /// Cells run as concurrent sweep points: throughput-oriented, but a
    /// cell's wall-clock includes contention from its siblings (and, with
    /// concurrent experiments, from other experiments).
    #[default]
    Shared,
    /// Each timed cell is executed serially, one at a time with the whole
    /// worker budget to itself, so `elapsed ms` is an isolated measurement.
    /// Results are bit-identical either way (runs are pure functions of
    /// their seeds); only the timing column and its label change.
    Isolated,
}

static TIMING_ISOLATED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Set the process-wide timing mode (the engine calls this from `--timing`).
pub fn set_timing_mode(mode: TimingMode) {
    TIMING_ISOLATED.store(
        mode == TimingMode::Isolated,
        std::sync::atomic::Ordering::Relaxed,
    );
}

/// The timing mode experiments should honor for timed sweep cells.
pub fn timing_mode() -> TimingMode {
    if TIMING_ISOLATED.load(std::sync::atomic::Ordering::Relaxed) {
        TimingMode::Isolated
    } else {
        TimingMode::Shared
    }
}

/// The header for wall-clock columns under the current [`timing_mode`] —
/// isolated timings are labeled as such so JSON artifacts from different
/// modes cannot be confused.
pub fn elapsed_header() -> &'static str {
    match timing_mode() {
        TimingMode::Shared => "elapsed ms",
        TimingMode::Isolated => "elapsed ms (isolated)",
    }
}
