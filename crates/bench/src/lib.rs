//! Experiment harness for the byzscore reproduction.
//!
//! The paper is a theory paper: its "evaluation" is a set of quantitative
//! claims (theorems, lemmas, the Claim-2 lower bound, and the §1 comparison
//! with prior art). Each claim has one experiment here — declared once in
//! the [`registry`] (see DESIGN.md §5 for the index) and driven by the
//! unified [`cli`] engine:
//!
//! ```text
//! cargo run -p byzscore-bench --release --bin run_all -- --list
//! cargo run -p byzscore-bench --release --bin run_all -- --only e07,e09
//! cargo run -p byzscore-bench --release --bin e07_error_vs_d
//! ```
//!
//! Experiment runners are plain functions `fn(Scale) -> Vec<Table>`; they
//! never print. The engine renders markdown to stdout and, with `--json`,
//! serializes the same tables into `BENCH_*.json` artifacts so runs are
//! diffable across commits.
//!
//! Scale: experiments default to a quick preset that finishes in seconds to
//! a few minutes each; `--scale full` (or `BYZ_FULL=1`) selects the larger
//! sweeps recorded in EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod experiments;
pub mod registry;
pub mod stats;
pub mod table;

/// Experiment scale, selected by `--scale` or the `BYZ_FULL` environment
/// variable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Seconds-scale smoke sizes.
    Quick,
    /// The sizes recorded in EXPERIMENTS.md.
    Full,
}

impl Scale {
    /// Read the scale from the environment (`BYZ_FULL=1` ⇒ `Full`).
    pub fn from_env() -> Scale {
        if std::env::var("BYZ_FULL").map(|v| v == "1").unwrap_or(false) {
            Scale::Full
        } else {
            Scale::Quick
        }
    }

    /// Pick `q` under Quick and `f` under Full.
    pub fn pick<T>(self, q: T, f: T) -> T {
        match self {
            Scale::Quick => q,
            Scale::Full => f,
        }
    }
}
