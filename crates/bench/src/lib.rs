//! Experiment harness for the byzscore reproduction.
//!
//! The paper is a theory paper: its "evaluation" is a set of quantitative
//! claims (theorems, lemmas, the Claim-2 lower bound, and the §1 comparison
//! with prior art). Each claim has one experiment here — see DESIGN.md §5
//! for the index — and each experiment is exposed both as a library
//! function (so `run_all` can regenerate every table in one go) and as its
//! own binary (`cargo run -p byzscore-bench --release --bin e07_error_vs_d`).
//!
//! Scale: experiments default to a quick preset that finishes in seconds to
//! a few minutes each; set `BYZ_FULL=1` for the larger sweeps recorded in
//! EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod stats;
pub mod table;

/// Experiment scale, selected by the `BYZ_FULL` environment variable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Seconds-scale smoke sizes.
    Quick,
    /// The sizes recorded in EXPERIMENTS.md.
    Full,
}

impl Scale {
    /// Read the scale from the environment (`BYZ_FULL=1` ⇒ `Full`).
    pub fn from_env() -> Scale {
        if std::env::var("BYZ_FULL").map(|v| v == "1").unwrap_or(false) {
            Scale::Full
        } else {
            Scale::Quick
        }
    }

    /// Pick `q` under Quick and `f` under Full.
    pub fn pick<T>(self, q: T, f: T) -> T {
        match self {
            Scale::Quick => q,
            Scale::Full => f,
        }
    }
}
