//! The experiment registry: one entry per paper claim (DESIGN.md §5).
//!
//! Every experiment of the evaluation is described here once — id, human
//! name, claim description, tags, and runner function — and everything
//! else (the `run_all` CLI, the per-experiment binaries, DESIGN.md's
//! index, the JSON artifacts) is driven off this table. Adding an
//! experiment means adding one [`Experiment`] row and one
//! `src/bin/<id>_<name>.rs` two-liner.

use crate::table::Table;
use crate::{experiments as e, Scale};

/// One registered experiment.
pub struct Experiment {
    /// Short stable id (`e01` … `e19`, `a1` … `a3`), the `--only` key.
    pub id: &'static str,
    /// Human-readable slug (`rselect`, `byzantine`, …).
    pub name: &'static str,
    /// What the experiment measures and which paper claim it backs.
    pub description: &'static str,
    /// Free-form labels for filtering (`--only @tag` selects by tag).
    pub tags: &'static [&'static str],
    /// The measurement function. Runners build tables and return them
    /// without printing; rendering is the engine's job. Runners execute
    /// *concurrently* with other registry entries (`cli::collect`), so
    /// they must be pure functions of `(scale, hard-coded seeds)` — no
    /// shared mutable state beyond the process-wide knobs the engine sets
    /// before the fan-out (thread budget, timing mode).
    pub runner: fn(Scale) -> Vec<Table>,
}

/// All experiments, in evaluation order.
///
/// A `static` (not `const`) so every reference into the table shares one
/// address and entries can be compared by identity.
pub static REGISTRY: &[Experiment] = &[
    Experiment {
        id: "e01",
        name: "rselect",
        description: "Thm 3: RSelect lands within O(1) of the best candidate in O(k²·log n) probes",
        tags: &["blocks", "honest"],
        runner: e::e01_rselect,
    },
    Experiment {
        id: "e02",
        name: "zero-radius",
        description: "Thm 4: ZeroRadius exactly recovers clone classes with O(B'·log n) probes",
        tags: &["blocks", "honest"],
        runner: e::e02_zero_radius,
    },
    Experiment {
        id: "e03",
        name: "small-radius",
        description: "Thm 5: SmallRadius error stays ≤ 5D on diameter-D clusters",
        tags: &["blocks", "honest"],
        runner: e::e03_small_radius,
    },
    Experiment {
        id: "e04",
        name: "sample-concentration",
        description: "Lemma 6: sampled Hamming distances separate close pairs from far pairs",
        tags: &["blocks", "honest"],
        runner: e::e04_sample_concentration,
    },
    Experiment {
        id: "e05",
        name: "clustering",
        description: "Lemmas 7–9: neighbor-graph clustering recovers the planted clusters",
        tags: &["protocol", "honest"],
        runner: e::e05_clustering,
    },
    Experiment {
        id: "e06",
        name: "probe-complexity",
        description: "Lemmas 10–11: max honest probes grow polylogarithmically in n",
        tags: &["protocol", "honest", "perf"],
        runner: e::e06_probe_complexity,
    },
    Experiment {
        id: "e07",
        name: "error-vs-d",
        description: "Lemma 12 / Thm 14: output error scales linearly with the planted diameter D",
        tags: &["protocol", "honest"],
        runner: e::e07_error_vs_d,
    },
    Experiment {
        id: "e08",
        name: "lower-bound",
        description:
            "Claim 2: on the lower-bound distribution every protocol pays Ω(n/B) probes or errs",
        tags: &["protocol", "bounds"],
        runner: e::e08_lower_bound,
    },
    Experiment {
        id: "e09",
        name: "byzantine",
        description:
            "Lemma 13 / Thm 14: honest error under growing Byzantine fractions and strategies",
        tags: &["byzantine", "protocol"],
        runner: e::e09_byzantine,
    },
    Experiment {
        id: "e10",
        name: "election",
        description: "§7.1: lightest-bin election honest-win probability vs rushing adversaries",
        tags: &["byzantine", "election"],
        runner: e::e10_election,
    },
    Experiment {
        id: "e11",
        name: "comparison",
        description: "§1: CalculatePreferences vs prior-art proxies and naive baselines",
        tags: &["protocol", "baselines"],
        runner: e::e11_comparison,
    },
    Experiment {
        id: "e12",
        name: "budgets",
        description: "§8: sensitivity of probes and error to the cluster budget B",
        tags: &["protocol", "ablation"],
        runner: e::e12_budgets,
    },
    Experiment {
        id: "e13",
        name: "scale_frontier",
        description:
            "Scale frontier: procedural O(1)-memory truth backend sweeps n up to 1e5 players",
        tags: &["scale", "baselines", "perf"],
        runner: e::e13_scale_frontier,
    },
    Experiment {
        id: "e14",
        name: "churn_robust",
        description:
            "Dynamic worlds: per-round error trajectory under seeded population churn (retire/join identity remap)",
        tags: &["dynamic", "protocol"],
        runner: e::e14_churn_robust,
    },
    Experiment {
        id: "e15",
        name: "adaptive_corruption",
        description:
            "Dynamic worlds: adversary re-targets its n/(3B) budget after observing each repetition's clustering/scores",
        tags: &["dynamic", "byzantine"],
        runner: e::e15_adaptive_corruption,
    },
    Experiment {
        id: "e16",
        name: "drifting_truth",
        description:
            "Dynamic worlds: drifting preferences on the procedural @scale backend, plus the multi-bit graded drift trajectory",
        tags: &["dynamic", "scale", "graded"],
        runner: e::e16_drifting_truth,
    },
    Experiment {
        id: "e17",
        name: "service_throughput",
        description:
            "Scoring as a service: resident sharded engine replaying recorded request traces — reqs/sec, p50/p99 latency, gated response digests",
        tags: &["service", "scale", "perf"],
        runner: e::e17_service_throughput,
    },
    Experiment {
        id: "e18",
        name: "fault_recovery",
        description:
            "Fault-injected crash recovery: journaled engine killed at a seeded op schedule resumes with bit-identical digests; injected worker/barrier/connection faults are absorbed by typed retries",
        tags: &["service", "robustness"],
        runner: e::e18_fault_recovery,
    },
    Experiment {
        id: "e19",
        name: "compaction",
        description:
            "Checkpointed WAL compaction: session snapshots bound the replayable journal tail by the compaction threshold, torn checkpoints fall back to the rotated previous generation, and every recovery lands the pinned digest",
        tags: &["service", "robustness"],
        runner: e::e19_compaction,
    },
    Experiment {
        id: "a1",
        name: "select-ablation",
        description: "Ablation: Select batch size and elimination constants",
        tags: &["ablation", "blocks"],
        runner: e::a1_select,
    },
    Experiment {
        id: "a2",
        name: "votes-ablation",
        description: "Ablation: ZeroRadius vote-threshold denominator",
        tags: &["ablation", "blocks"],
        runner: e::a2_votes,
    },
    Experiment {
        id: "a3",
        name: "threshold-ablation",
        description: "Ablation: neighbor-graph edge threshold multiplier",
        tags: &["ablation", "protocol"],
        runner: e::a3_threshold,
    },
];

/// Look one experiment up by id, name, or the `<id>_<name>` binary-file
/// form (`e13_scale_frontier`), case-insensitively.
pub fn find(key: &str) -> Option<&'static Experiment> {
    let k = key.to_ascii_lowercase();
    REGISTRY.iter().find(|x| {
        x.id == k || x.name.eq_ignore_ascii_case(&k) || format!("{}_{}", x.id, x.name) == k
    })
}

/// Resolve one `--only` selector to experiments: an id (`e07`), a name
/// (`byzantine`), or `@tag` (all experiments carrying the tag).
pub fn select(selector: &str) -> Vec<&'static Experiment> {
    if let Some(tag) = selector.strip_prefix('@') {
        let t = tag.to_ascii_lowercase();
        REGISTRY
            .iter()
            .filter(|x| x.tags.iter().any(|have| *have == t))
            .collect()
    } else {
        find(selector).into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_described() {
        let mut seen = std::collections::HashSet::new();
        for x in REGISTRY {
            assert!(seen.insert(x.id), "duplicate id {}", x.id);
            assert!(seen.insert(x.name), "name collides: {}", x.name);
            assert!(!x.description.is_empty(), "{} lacks a description", x.id);
            assert!(!x.tags.is_empty(), "{} lacks tags", x.id);
        }
        assert_eq!(REGISTRY.len(), 22);
    }

    #[test]
    fn find_matches_id_and_name() {
        assert!(std::ptr::eq(
            find("e09").unwrap(),
            find("byzantine").unwrap()
        ));
        assert!(find("E09").is_some(), "ids are case-insensitive");
        assert!(find("nope").is_none());
        // The binary-file form works too (acceptance surface of e13).
        assert!(std::ptr::eq(
            find("e13_scale_frontier").unwrap(),
            find("e13").unwrap()
        ));
    }

    #[test]
    fn tag_selection() {
        let byz = select("@byzantine");
        assert_eq!(byz.len(), 3);
        assert!(byz.iter().any(|x| x.id == "e10"));
        assert!(byz.iter().any(|x| x.id == "e15"));
        let dynamic = select("@dynamic");
        assert_eq!(dynamic.len(), 3, "e14–e16 carry the dynamic tag");
        assert_eq!(select("e07").len(), 1);
        assert!(select("@nope").is_empty());
    }
}
