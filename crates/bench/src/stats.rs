//! Tiny statistics helpers for experiment aggregation.

/// Mean of a sample (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Maximum (0 for empty input).
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(0.0, f64::max)
}

/// Linear-regression slope of `log2(y)` against `log2(x)` — the empirical
/// polynomial degree of a scaling curve. Used to verify shapes like
/// "probes grow polylogarithmically, error grows linearly in D".
pub fn loglog_slope(points: &[(f64, f64)]) -> f64 {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(x, y)| x > 0.0 && y > 0.0)
        .map(|&(x, y)| (x.log2(), y.log2()))
        .collect();
    if pts.len() < 2 {
        return 0.0;
    }
    let mx = mean(&pts.iter().map(|p| p.0).collect::<Vec<_>>());
    let my = mean(&pts.iter().map(|p| p.1).collect::<Vec<_>>());
    let num: f64 = pts.iter().map(|&(x, y)| (x - mx) * (y - my)).sum();
    let den: f64 = pts.iter().map(|&(x, _)| (x - mx).powi(2)).sum();
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert_eq!(max(&[1.0, 9.0, 3.0]), 9.0);
    }

    #[test]
    fn slope_of_power_law() {
        // y = x²: slope 2 in log-log.
        let pts: Vec<(f64, f64)> = (1..=8).map(|i| (i as f64, (i * i) as f64)).collect();
        assert!((loglog_slope(&pts) - 2.0).abs() < 1e-9);
        // y = const: slope 0.
        let flat: Vec<(f64, f64)> = (1..=8).map(|i| (i as f64, 7.0)).collect();
        assert!(loglog_slope(&flat).abs() < 1e-9);
    }

    #[test]
    fn slope_ignores_nonpositive() {
        assert_eq!(loglog_slope(&[(0.0, 1.0), (1.0, 0.0)]), 0.0);
    }
}
