//! Result tables: aligned markdown rendering plus JSON serialization (no
//! external dependencies).
//!
//! Experiments build [`Table`]s and return them; the experiment engine
//! ([`crate::cli`]) decides how to render — markdown to stdout for humans,
//! `BENCH_*.json` artifacts for the perf trajectory and downstream tooling.

/// A simple result table: title, column headers, string cells, and
/// free-form note lines rendered after the table body.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// New table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append one row; must match the header arity.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Append a note line, rendered after the table body and carried into
    /// the JSON artifact (used for derived quantities such as log-log
    /// slopes).
    pub fn note(&mut self, line: impl Into<String>) {
        self.notes.push(line.into());
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Data rows, in insertion order.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string (markdown pipe table with aligned columns,
    /// followed by any notes).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n### {}\n\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let body: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            format!("| {} |\n", body.join(" | "))
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("| {} |\n", sep.join(" | ")));
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        for note in &self.notes {
            out.push_str(&format!("\n{note}\n"));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Serialize as a JSON object
    /// `{"title": …, "headers": […], "rows": [[…]], "notes": […]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str("\"title\":");
        out.push_str(&json_string(&self.title));
        out.push_str(",\"headers\":");
        out.push_str(&json_string_array(&self.headers));
        out.push_str(",\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string_array(row));
        }
        out.push_str("],\"notes\":");
        out.push_str(&json_string_array(&self.notes));
        out.push('}');
        out
    }
}

/// Escape and quote one string as a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Serialize a slice of strings as a JSON array of string literals.
pub fn json_string_array<S: AsRef<str>>(items: &[S]) -> String {
    let body: Vec<String> = items.iter().map(|s| json_string(s.as_ref())).collect();
    format!("[{}]", body.join(","))
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("demo", &["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "x".into()]);
        let s = t.render();
        assert!(s.contains("### demo"));
        assert!(s.contains("| long-header |"));
        assert!(s.contains("| 100 |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.title(), "demo");
    }

    #[test]
    fn notes_render_after_body() {
        let mut t = Table::new("n", &["a"]);
        t.row(vec!["1".into()]);
        t.note("slope ≈ 1.0");
        let s = t.render();
        let body_at = s.find("| 1 |").unwrap();
        let note_at = s.find("slope ≈ 1.0").unwrap();
        assert!(note_at > body_at);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("bad", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(f3(2.0 / 3.0), "0.667");
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn json_roundtrip_shape() {
        let mut t = Table::new("t\"1", &["h1", "h2"]);
        t.row(vec!["a".into(), "b".into()]);
        t.note("note");
        let j = t.to_json();
        assert_eq!(
            j,
            "{\"title\":\"t\\\"1\",\"headers\":[\"h1\",\"h2\"],\
             \"rows\":[[\"a\",\"b\"]],\"notes\":[\"note\"]}"
        );
    }
}
