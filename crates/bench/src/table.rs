//! Minimal aligned-table printer (no external dependencies).

/// A simple text table: collected rows, printed with aligned columns in
/// GitHub-markdown-compatible form.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row; must match the header arity.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string (markdown pipe table with aligned columns).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n### {}\n\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let body: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            format!("| {} |\n", body.join(" | "))
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("| {} |\n", sep.join(" | ")));
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("demo", &["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "x".into()]);
        let s = t.render();
        assert!(s.contains("### demo"));
        assert!(s.contains("| long-header |"));
        assert!(s.contains("| 100 |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("bad", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(f3(2.0 / 3.0), "0.667");
    }
}
