//! Criterion microbenchmarks for the hot kernels (experiment K, part 1):
//! Hamming distance (full / bounded / masked), majority folds, vote
//! tallies, and neighbor discovery — the primitives every protocol phase
//! leans on. The `neighbor_index` group measures the graph level: exact
//! `O(n²)` discovery+peel against the banded (sound LSH prune, lazy peel)
//! strategy on planted-cluster inputs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use byzscore::cluster::{neighbor_graph, GroupCache, NeighborIndex, NeighborStrategy};
use byzscore_bitset::{majority_fold, BitVec, Bits};
use byzscore_blocks::VoteTally;

fn bench_hamming(c: &mut Criterion) {
    let mut group = c.benchmark_group("hamming");
    for bits in [1024usize, 4096, 16384] {
        let mut rng = SmallRng::seed_from_u64(1);
        let a = BitVec::random(&mut rng, bits);
        let b = BitVec::random(&mut rng, bits);
        let mask = BitVec::random(&mut rng, bits);
        group.throughput(Throughput::Bytes((bits / 8) as u64));
        group.bench_with_input(BenchmarkId::new("full", bits), &bits, |bench, _| {
            bench.iter(|| std::hint::black_box(a.hamming(&b)));
        });
        group.bench_with_input(BenchmarkId::new("within-64", bits), &bits, |bench, _| {
            bench.iter(|| std::hint::black_box(a.hamming_within(&b, 64)));
        });
        group.bench_with_input(BenchmarkId::new("masked", bits), &bits, |bench, _| {
            bench.iter(|| std::hint::black_box(a.hamming_masked(&b, &mask)));
        });
    }
    group.finish();
}

fn bench_majority(c: &mut Criterion) {
    let mut group = c.benchmark_group("majority_fold");
    for voters in [8usize, 64, 256] {
        let mut rng = SmallRng::seed_from_u64(2);
        let vs: Vec<BitVec> = (0..voters)
            .map(|_| BitVec::random(&mut rng, 2048))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(voters), &voters, |bench, _| {
            bench.iter(|| std::hint::black_box(majority_fold(&vs, false)));
        });
    }
    group.finish();
}

fn bench_vote_tally(c: &mut Criterion) {
    let mut group = c.benchmark_group("vote_tally");
    for classes in [2usize, 8, 32] {
        let mut rng = SmallRng::seed_from_u64(3);
        let reps: Vec<BitVec> = (0..classes)
            .map(|_| BitVec::random(&mut rng, 512))
            .collect();
        let votes: Vec<BitVec> = (0..512).map(|i| reps[i % classes].clone()).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(classes),
            &classes,
            |bench, _| {
                bench.iter(|| std::hint::black_box(VoteTally::tally(votes.iter()).entries.len()));
            },
        );
    }
    group.finish();
}

/// Planted-cluster sample vectors: `camps` tight camps of `per_camp`
/// players each, pairwise within-camp distance ≤ 2·`spread`.
fn camps(len: usize, camps: usize, per_camp: usize, spread: usize, seed: u64) -> Vec<BitVec> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let centers: Vec<BitVec> = (0..camps).map(|_| BitVec::random(&mut rng, len)).collect();
    let mut out = Vec::with_capacity(camps * per_camp);
    for center in &centers {
        for _ in 0..per_camp {
            let mut v = center.clone();
            v.flip_random_distinct(&mut rng, spread);
            out.push(v);
        }
    }
    out
}

fn bench_neighbor_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("neighbor_graph");
    group.sample_size(10);
    for players in [128usize, 512] {
        let zs = camps(1024, 1, players, 32, 4);
        group.bench_with_input(
            BenchmarkId::from_parameter(players),
            &players,
            |bench, _| {
                bench.iter(|| std::hint::black_box(neighbor_graph(&zs, 48).len()));
            },
        );
    }
    group.finish();
}

/// Graph-level: full neighbor discovery + peel, exact vs the lazy
/// strategies, on many-small-cluster inputs (where pruning pays off most).
fn bench_neighbor_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("neighbor_index");
    group.sample_size(10);
    for (players, camps_n) in [(1024usize, 16usize), (4096, 64)] {
        let per = players / camps_n;
        let zs = camps(512, camps_n, per, 4, 5);
        for (label, strategy) in [
            ("exact", NeighborStrategy::Exact),
            ("banded", NeighborStrategy::Banded),
            ("grouped", NeighborStrategy::Grouped),
        ] {
            group.bench_with_input(BenchmarkId::new(label, players), &players, |bench, _| {
                bench.iter(|| {
                    let idx = NeighborIndex::build(&zs, 10, strategy);
                    std::hint::black_box(idx.peel(per / 2).clusters.len())
                });
            });
        }
    }
    // The grouped strategy's intended regime: heavy z-vector collapse
    // (SmallRadius outputs inside planted clusters), here modeled as camps
    // of exact duplicates — the group graph has 64 nodes for 4096 players.
    {
        let players = 4096usize;
        let zs = camps(512, 64, players / 64, 0, 7);
        for (label, strategy) in [
            ("exact-dup", NeighborStrategy::Exact),
            ("grouped-dup", NeighborStrategy::Grouped),
        ] {
            group.bench_with_input(BenchmarkId::new(label, players), &players, |bench, _| {
                bench.iter(|| {
                    let idx = NeighborIndex::build(&zs, 10, strategy);
                    std::hint::black_box(idx.peel(32).clusters.len())
                });
            });
        }
    }
    // Mid-τ regime (512/(48+1) = 10-bit exact bands would be too narrow):
    // single-bit-flip multi-probe bucketing vs the old blocked-scan answer
    // (exact) and the grouped route on duplicate-heavy input.
    {
        let players = 2048usize;
        let tau = 48usize;
        let zs = camps(512, 32, players / 32, 4, 6);
        for (label, strategy) in [
            ("exact-mid-tau", NeighborStrategy::Exact),
            ("multi-probe", NeighborStrategy::Banded),
            ("grouped-mid-tau", NeighborStrategy::Grouped),
        ] {
            group.bench_with_input(BenchmarkId::new(label, players), &players, |bench, _| {
                bench.iter(|| {
                    let idx = NeighborIndex::build(&zs, tau, strategy);
                    std::hint::black_box(idx.peel(players / 64).clusters.len())
                });
            });
        }
    }
    group.finish();
}

/// Cross-guess re-banding: the naive baseline's guess loop runs discovery
/// once per diameter guess over the SAME z-vectors, only τ doubling. Cold
/// = a fresh `NeighborIndex::build` per guess (grouping redone every
/// time); warm = one `GroupCache` built up front, each guess re-banding
/// the cached group representatives via `cache.cluster(τ, ·)`. Same τ
/// sweep, same peels — the gap is the per-guess hash-grouping work. The
/// input is the grouped strategy's collapse regime (duplicate camps, as
/// SmallRadius z-vectors inside planted clusters): there discovery per
/// guess *is* mostly the grouping pass, so warm runs the sweep in
/// roughly one guess's worth of grouping instead of |guesses| of them.
fn bench_rebanding(c: &mut Criterion) {
    let mut group = c.benchmark_group("rebanding");
    group.sample_size(10);
    let players = 16384usize;
    let zs = camps(512, 64, players / 64, 0, 9);
    let taus = [1usize, 2, 4, 8, 16, 32, 64, 128];
    let min_size = 32usize;
    group.bench_with_input(BenchmarkId::new("cold", players), &players, |bench, _| {
        bench.iter(|| {
            let mut total = 0usize;
            for &tau in &taus {
                let idx = NeighborIndex::build(&zs, tau, NeighborStrategy::Grouped);
                total += idx.peel(min_size).clusters.len();
            }
            std::hint::black_box(total)
        });
    });
    group.bench_with_input(BenchmarkId::new("warm", players), &players, |bench, _| {
        bench.iter(|| {
            let cache = GroupCache::build(&zs, NeighborStrategy::Grouped);
            let mut total = 0usize;
            for &tau in &taus {
                total += cache.cluster(tau, min_size).clusters.len();
            }
            std::hint::black_box(total)
        });
    });
    // Discovery phase only (pack + hash + group + band, no peel): the
    // peel above is clustering work both paths repeat per guess, so the
    // end-to-end pair understates the discovery drop. This pair isolates
    // it — cold rebuilds the cache per τ, warm builds once and re-bands.
    group.bench_with_input(
        BenchmarkId::new("discovery-cold", players),
        &players,
        |bench, _| {
            bench.iter(|| {
                for &tau in &taus {
                    let cache = GroupCache::build(&zs, NeighborStrategy::Grouped);
                    std::hint::black_box(cache.index(tau));
                }
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new("discovery-warm", players),
        &players,
        |bench, _| {
            bench.iter(|| {
                let cache = GroupCache::build(&zs, NeighborStrategy::Grouped);
                for &tau in &taus {
                    std::hint::black_box(cache.index(tau));
                }
            });
        },
    );
    group.finish();
}

criterion_group!(
    kernels,
    bench_hamming,
    bench_majority,
    bench_vote_tally,
    bench_neighbor_graph,
    bench_neighbor_index,
    bench_rebanding
);
criterion_main!(kernels);
