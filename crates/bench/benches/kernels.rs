//! Criterion microbenchmarks for the hot kernels (experiment K, part 1):
//! Hamming distance, bounded distance, majority folds, vote tallies, and
//! neighbor-graph construction — the primitives every protocol phase leans
//! on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use byzscore::cluster::neighbor_graph;
use byzscore_bitset::{majority_fold, BitVec, Bits};
use byzscore_blocks::VoteTally;

fn bench_hamming(c: &mut Criterion) {
    let mut group = c.benchmark_group("hamming");
    for bits in [1024usize, 4096, 16384] {
        let mut rng = SmallRng::seed_from_u64(1);
        let a = BitVec::random(&mut rng, bits);
        let b = BitVec::random(&mut rng, bits);
        group.throughput(Throughput::Bytes((bits / 8) as u64));
        group.bench_with_input(BenchmarkId::new("full", bits), &bits, |bench, _| {
            bench.iter(|| std::hint::black_box(a.hamming(&b)));
        });
        group.bench_with_input(BenchmarkId::new("within-64", bits), &bits, |bench, _| {
            bench.iter(|| std::hint::black_box(a.hamming_within(&b, 64)));
        });
    }
    group.finish();
}

fn bench_majority(c: &mut Criterion) {
    let mut group = c.benchmark_group("majority_fold");
    for voters in [8usize, 64, 256] {
        let mut rng = SmallRng::seed_from_u64(2);
        let vs: Vec<BitVec> = (0..voters)
            .map(|_| BitVec::random(&mut rng, 2048))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(voters), &voters, |bench, _| {
            bench.iter(|| std::hint::black_box(majority_fold(&vs, false)));
        });
    }
    group.finish();
}

fn bench_vote_tally(c: &mut Criterion) {
    let mut group = c.benchmark_group("vote_tally");
    for classes in [2usize, 8, 32] {
        let mut rng = SmallRng::seed_from_u64(3);
        let reps: Vec<BitVec> = (0..classes)
            .map(|_| BitVec::random(&mut rng, 512))
            .collect();
        let votes: Vec<BitVec> = (0..512).map(|i| reps[i % classes].clone()).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(classes),
            &classes,
            |bench, _| {
                bench.iter(|| std::hint::black_box(VoteTally::tally(votes.iter()).entries.len()));
            },
        );
    }
    group.finish();
}

fn bench_neighbor_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("neighbor_graph");
    group.sample_size(10);
    for players in [128usize, 512] {
        let mut rng = SmallRng::seed_from_u64(4);
        let center = BitVec::random(&mut rng, 1024);
        let zs: Vec<BitVec> = (0..players)
            .map(|_| {
                let mut v = center.clone();
                v.flip_random_distinct(&mut rng, 32);
                v
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(players),
            &players,
            |bench, _| {
                bench.iter(|| std::hint::black_box(neighbor_graph(&zs, 48).len()));
            },
        );
    }
    group.finish();
}

criterion_group!(
    kernels,
    bench_hamming,
    bench_majority,
    bench_vote_tally,
    bench_neighbor_graph
);
criterion_main!(kernels);
