//! Criterion benchmarks for whole protocol phases (experiment K, part 2):
//! `ZeroRadius`, `SmallRadius`, the full `CalculatePreferences`, the robust
//! wrapper, the baselines, and the leader election.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use byzscore::{Algorithm, Session};
use byzscore_adversary::Behaviors;
use byzscore_blocks::{small_radius, zero_radius, BlockParams, Ctx};
use byzscore_board::{Board, Oracle};
use byzscore_election::{elect, ElectionParams, GreedyInfiltrate};
use byzscore_model::{Balance, Instance, Workload};
use byzscore_random::Beacon;

fn clone_instance(n: usize) -> Instance {
    Workload::CloneClasses {
        players: n,
        objects: n,
        classes: 4,
        balance: Balance::Even,
    }
    .generate(9)
}

fn planted_instance(n: usize, m: usize) -> Instance {
    Workload::PlantedClusters {
        players: n,
        objects: m,
        clusters: 4,
        diameter: 8,
        balance: Balance::Even,
    }
    .generate(9)
}

fn bench_zero_radius(c: &mut Criterion) {
    let mut group = c.benchmark_group("zero_radius");
    group.sample_size(10);
    for n in [128usize, 256] {
        let inst = clone_instance(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            let players: Vec<u32> = (0..n as u32).collect();
            let objects: Vec<u32> = (0..n as u32).collect();
            let params = BlockParams::with_budget(4);
            bench.iter(|| {
                let oracle = Oracle::new(inst.truth());
                let board = Board::new();
                let behaviors = Behaviors::all_honest(inst.truth());
                let ctx = Ctx::new(&oracle, &board, &behaviors, Beacon::honest(3), &params);
                std::hint::black_box(zero_radius(&ctx, &players, &objects, 4, &[1]).len())
            });
        });
    }
    group.finish();
}

fn bench_small_radius(c: &mut Criterion) {
    let mut group = c.benchmark_group("small_radius");
    group.sample_size(10);
    for n in [128usize, 256] {
        let inst = planted_instance(n, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            let players: Vec<u32> = (0..n as u32).collect();
            let objects: Vec<u32> = (0..n as u32).collect();
            let params = BlockParams::with_budget(4);
            bench.iter(|| {
                let oracle = Oracle::new(inst.truth());
                let board = Board::new();
                let behaviors = Behaviors::all_honest(inst.truth());
                let ctx = Ctx::new(&oracle, &board, &behaviors, Beacon::honest(5), &params);
                std::hint::black_box(small_radius(&ctx, &players, &objects, 8, &[1]).len())
            });
        });
    }
    group.finish();
}

fn bench_full_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("calculate_preferences");
    group.sample_size(10);
    for n in [64usize, 128] {
        let inst = planted_instance(n, 2 * n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            let sys = Session::builder().instance(&inst).budget(4).build();
            bench.iter(|| {
                std::hint::black_box(sys.run(Algorithm::CalculatePreferences, 7).errors.max)
            });
        });
    }
    group.finish();
}

fn bench_robust(c: &mut Criterion) {
    let mut group = c.benchmark_group("robust");
    group.sample_size(10);
    let n = 64usize;
    let inst = planted_instance(n, 2 * n);
    group.bench_function(BenchmarkId::from_parameter(n), |bench| {
        let sys = Session::builder().instance(&inst).budget(4).build();
        bench.iter(|| std::hint::black_box(sys.run(Algorithm::Robust, 7).errors.max));
    });
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    let n = 128usize;
    let inst = planted_instance(n, 2 * n);
    let sys = Session::builder().instance(&inst).budget(4).build();
    for (name, alg) in [
        ("naive-sampling", Algorithm::NaiveSampling),
        ("solo", Algorithm::Solo),
        ("global-majority", Algorithm::GlobalMajority),
        ("oracle-clusters", Algorithm::OracleClusters),
    ] {
        group.bench_function(name, |bench| {
            bench.iter(|| std::hint::black_box(sys.run(alg, 7).errors.max));
        });
    }
    group.finish();
}

fn bench_election(c: &mut Criterion) {
    let mut group = c.benchmark_group("election");
    for n in [256usize, 1024] {
        let dishonest: Vec<bool> = (0..n).map(|p| p % 5 == 0).collect();
        let params = ElectionParams::for_players(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            let mut seed = 0u64;
            bench.iter(|| {
                seed += 1;
                std::hint::black_box(elect(&dishonest, &GreedyInfiltrate, &params, seed).leader)
            });
        });
    }
    group.finish();
}

criterion_group!(
    protocol,
    bench_zero_radius,
    bench_small_radius,
    bench_full_protocol,
    bench_robust,
    bench_baselines,
    bench_election
);
criterion_main!(protocol);
