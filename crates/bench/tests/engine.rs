//! Engine-level determinism: registry experiments run *concurrently*
//! (`cli::collect` fans them out under the hierarchical worker budget),
//! and their tables must be bit-identical to each other under any thread
//! count — the experiment-level analogue of the sweep- and phase-level
//! fences in `tests/determinism.rs`.

use byzscore_bench::cli::{collect, resolve};
use byzscore_bench::Scale;
use byzscore_board::par::set_thread_limit;

/// Strip timing cells (same marker rule as `scripts/check_bench.py`):
/// wall-clock is the one column allowed to differ between runs.
fn stable_cells(records: &[byzscore_bench::cli::RunRecord]) -> Vec<Vec<Vec<String>>> {
    records
        .iter()
        .map(|rec| {
            rec.tables
                .iter()
                .map(|t| {
                    let keep: Vec<usize> = t
                        .headers()
                        .iter()
                        .enumerate()
                        .filter(|(_, h)| {
                            let h = h.to_lowercase();
                            h != "ms"
                                && !h.contains("elapsed")
                                && !h.contains(" ms")
                                && !h.contains("seconds")
                        })
                        .map(|(i, _)| i)
                        .collect();
                    let mut cells = vec![t.title().to_string()];
                    cells.extend(keep.iter().map(|&i| t.headers()[i].clone()));
                    for row in t.rows() {
                        cells.extend(keep.iter().map(|&i| row[i].clone()));
                    }
                    cells
                })
                .collect()
        })
        .collect()
}

#[test]
fn concurrent_experiments_are_bit_identical_across_thread_counts() {
    // A cheap but heterogeneous slice of the registry: block-level,
    // protocol-level, and election experiments, all with sub-second quick
    // runs. They execute concurrently inside one `collect` call.
    let picked = resolve(&[
        "e01".to_string(),
        "e02".to_string(),
        "e04".to_string(),
        "e10".to_string(),
    ])
    .expect("selectors resolve");

    set_thread_limit(Some(1));
    let reference = stable_cells(&collect(&picked, Scale::Quick));
    assert_eq!(reference.len(), 4, "one record per experiment, in order");

    for threads in [2usize, 8] {
        set_thread_limit(Some(threads));
        let got = stable_cells(&collect(&picked, Scale::Quick));
        assert_eq!(
            got, reference,
            "experiment tables differ at {threads} worker thread(s)"
        );
    }
    set_thread_limit(None);
}
