//! Row-major packed bit matrix (players × objects).

use rand::Rng;

use crate::{tail_mask, words_for, BitVec, Bits, WORD_BITS};

/// A dense binary matrix stored row-major with word-aligned rows.
///
/// Row `p` is player `p`'s preference vector over all objects (paper §2).
/// Rows are word-aligned so a [`RowRef`] borrows a contiguous `&[u64]` and
/// every [`Bits`] kernel applies to rows without copying.
#[derive(Clone, PartialEq, Eq)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    stride: usize,
    data: Vec<u64>,
}

/// Borrowed view of one matrix row.
#[derive(Clone, Copy)]
pub struct RowRef<'a> {
    len: usize,
    words: &'a [u64],
}

impl Bits for RowRef<'_> {
    #[inline]
    fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn words(&self) -> &[u64] {
        self.words
    }
}

impl BitMatrix {
    /// All-zero matrix with `rows` rows and `cols` columns.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let stride = words_for(cols);
        BitMatrix {
            rows,
            cols,
            stride,
            data: vec![0u64; rows * stride],
        }
    }

    /// Matrix with every entry sampled uniformly at random.
    pub fn random<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize) -> Self {
        let mut m = BitMatrix::zeros(rows, cols);
        let mask = tail_mask(cols);
        for r in 0..rows {
            let row = m.row_words_mut(r);
            for w in row.iter_mut() {
                *w = rng.gen();
            }
            if let Some(last) = row.last_mut() {
                *last &= mask;
            }
        }
        m
    }

    /// Build from owned row vectors; all rows must share one length.
    pub fn from_rows(rows: &[BitVec]) -> Self {
        let cols = rows.first().map_or(0, |r| r.len());
        let mut m = BitMatrix::zeros(rows.len(), cols);
        for (r, v) in rows.iter().enumerate() {
            assert_eq!(v.len(), cols, "row {r} has mismatched length");
            m.set_row(r, v);
        }
        m
    }

    /// Number of rows (players).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (objects).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `r` as a [`Bits`] view.
    #[inline]
    pub fn row(&self, r: usize) -> RowRef<'_> {
        assert!(r < self.rows, "row {r} out of range {}", self.rows);
        RowRef {
            len: self.cols,
            words: &self.data[r * self.stride..(r + 1) * self.stride],
        }
    }

    /// Entry at (`r`, `c`).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        assert!(c < self.cols, "col {c} out of range {}", self.cols);
        self.row(r).get(c)
    }

    /// Set entry (`r`, `c`).
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: bool) {
        assert!(r < self.rows && c < self.cols, "({r},{c}) out of range");
        let w = &mut self.data[r * self.stride + c / WORD_BITS];
        let mask = 1u64 << (c % WORD_BITS);
        if value {
            *w |= mask;
        } else {
            *w &= !mask;
        }
    }

    /// Overwrite row `r` with `v`.
    pub fn set_row<B: Bits + ?Sized>(&mut self, r: usize, v: &B) {
        assert_eq!(v.len(), self.cols, "row length mismatch");
        self.row_words_mut(r).copy_from_slice(v.words());
    }

    /// Hamming distance between rows `a` and `b`.
    #[inline]
    pub fn row_distance(&self, a: usize, b: usize) -> usize {
        self.row(a).hamming(&self.row(b))
    }

    /// Mutable words of row `r` (internal; callers must preserve the tail
    /// invariant).
    #[inline]
    fn row_words_mut(&mut self, r: usize) -> &mut [u64] {
        assert!(r < self.rows, "row {r} out of range {}", self.rows);
        &mut self.data[r * self.stride..(r + 1) * self.stride]
    }

    /// Clone row `r` into an owned [`BitVec`].
    pub fn row_to_bitvec(&self, r: usize) -> BitVec {
        self.row(r).to_bitvec()
    }

    /// Iterator over all rows as views.
    pub fn iter_rows(&self) -> impl Iterator<Item = RowRef<'_>> + '_ {
        (0..self.rows).map(move |r| self.row(r))
    }

    /// Maximum pairwise row distance within the row subset `members`
    /// (the paper's diameter `D(P)`); 0 for sets of size < 2.
    pub fn diameter_of(&self, members: &[u32]) -> usize {
        let mut best = 0;
        for (i, &a) in members.iter().enumerate() {
            for &b in &members[i + 1..] {
                best = best.max(self.row_distance(a as usize, b as usize));
            }
        }
        best
    }
}

impl std::fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BitMatrix[{}x{}]", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_shape() {
        let m = BitMatrix::zeros(3, 100);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 100);
        assert_eq!(m.row(2).count_ones(), 0);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut m = BitMatrix::zeros(2, 70);
        m.set(1, 69, true);
        assert!(m.get(1, 69));
        assert!(!m.get(0, 69));
        m.set(1, 69, false);
        assert!(!m.get(1, 69));
    }

    #[test]
    fn from_rows_and_row_roundtrip() {
        let mut rng = SmallRng::seed_from_u64(1);
        let rows: Vec<BitVec> = (0..4).map(|_| BitVec::random(&mut rng, 90)).collect();
        let m = BitMatrix::from_rows(&rows);
        for (i, r) in rows.iter().enumerate() {
            assert!(m.row(i).bits_eq(r));
            assert!(m.row_to_bitvec(i).bits_eq(r));
        }
    }

    #[test]
    fn row_distance_matches_bitvec() {
        let mut rng = SmallRng::seed_from_u64(2);
        let a = BitVec::random(&mut rng, 333);
        let b = BitVec::random(&mut rng, 333);
        let m = BitMatrix::from_rows(&[a.clone(), b.clone()]);
        assert_eq!(m.row_distance(0, 1), a.hamming(&b));
    }

    #[test]
    fn diameter_of_small_sets() {
        let rows = vec![
            BitVec::from_bools(&[false, false, false]),
            BitVec::from_bools(&[true, false, false]),
            BitVec::from_bools(&[true, true, true]),
        ];
        let m = BitMatrix::from_rows(&rows);
        assert_eq!(m.diameter_of(&[]), 0);
        assert_eq!(m.diameter_of(&[1]), 0);
        assert_eq!(m.diameter_of(&[0, 1]), 1);
        assert_eq!(m.diameter_of(&[0, 1, 2]), 3);
    }

    #[test]
    fn random_rows_respect_tail() {
        let mut rng = SmallRng::seed_from_u64(3);
        let m = BitMatrix::random(&mut rng, 5, 65);
        for r in 0..5 {
            // Bit 65..128 of the row must be zero: count over full words.
            assert!(m.row(r).count_ones() <= 65);
        }
    }

    proptest! {
        #[test]
        fn prop_set_row_then_read(seed in 0u64..100, rows in 1usize..8, cols in 1usize..200) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut m = BitMatrix::zeros(rows, cols);
            let v = BitVec::random(&mut rng, cols);
            let r = (seed as usize) % rows;
            m.set_row(r, &v);
            prop_assert!(m.row(r).bits_eq(&v));
        }

        #[test]
        fn prop_matrix_get_matches_row_get(seed in 0u64..100, cols in 1usize..150) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let m = BitMatrix::random(&mut rng, 4, cols);
            for r in 0..4 {
                for c in (0..cols).step_by(7) {
                    prop_assert_eq!(m.get(r, c), m.row(r).get(c));
                }
            }
        }
    }
}
