//! Dense bit-vector and bit-matrix kernels for collaborative scoring.
//!
//! The SPAA 2010 paper "Collaborative Scoring with Dishonest Participants"
//! models every player's opinion as a binary preference vector over `n`
//! objects, and *all* of its quantitative machinery is Hamming-distance
//! arithmetic over such vectors: candidate elimination (`RSelect`), clone
//! voting (`ZeroRadius`), neighbor graphs over sampled coordinates
//! (Lemmas 6–8), and majority folds over redundant probes (step 4 of
//! `CalculatePreferences`).
//!
//! This crate provides the high-performance substrate for all of that:
//!
//! * [`BitVec`] — an owned, word-packed bit vector with popcount-based
//!   Hamming distance, bounded (early-exit) distance, masked distance,
//!   projection onto index subsets, and in-place boolean ops.
//! * [`Bits`] — a read-only view trait so [`BitMatrix`] rows and [`BitVec`]s
//!   share one implementation of every distance/query kernel.
//! * [`BitMatrix`] — a row-major packed matrix (players × objects) with
//!   cache-friendly row views.
//! * [`ColumnCounter`] / [`majority_fold`] — weighted per-column vote
//!   accumulation and majority extraction, the kernel behind every
//!   "value probed by a majority of the assigned players" step.
//!
//! All kernels are branch-light loops over `u64` words so LLVM can keep them
//! in registers and auto-vectorize; the innermost XOR-popcount loops live in
//! [`kernel`] as explicit u64×4-unrolled passes (four independent popcount
//! accumulators), with `std::simd` variants behind the nightly-only
//! `unstable-simd` feature. Distance computations on 4096-bit rows are a few
//! dozen `popcnt`s; [`majority_fold`] is bit-sliced (plane-encoded column
//! counts with word-wide ripple-carry).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(feature = "unstable-simd", feature(portable_simd))]

mod bits;
mod counter;
pub mod kernel;
mod matrix;
mod ops;
mod vec;

pub use bits::Bits;
pub use counter::{majority_fold, ColumnCounter};
pub use matrix::{BitMatrix, RowRef};
pub use ops::disagreement_indices;
pub use vec::BitVec;

/// Number of bits in one storage word.
pub const WORD_BITS: usize = 64;

/// Number of `u64` words needed to store `len` bits.
#[inline]
pub const fn words_for(len: usize) -> usize {
    len.div_ceil(WORD_BITS)
}

/// Mask covering the valid bits of the final word of a `len`-bit vector.
///
/// Returns `u64::MAX` when `len` is a multiple of 64 (the final word is
/// fully used).
#[inline]
pub const fn tail_mask(len: usize) -> u64 {
    let rem = len % WORD_BITS;
    if rem == 0 {
        u64::MAX
    } else {
        (1u64 << rem) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_for_boundaries() {
        assert_eq!(words_for(0), 0);
        assert_eq!(words_for(1), 1);
        assert_eq!(words_for(63), 1);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
        assert_eq!(words_for(128), 2);
        assert_eq!(words_for(129), 3);
    }

    #[test]
    fn tail_mask_boundaries() {
        assert_eq!(tail_mask(64), u64::MAX);
        assert_eq!(tail_mask(128), u64::MAX);
        assert_eq!(tail_mask(1), 1);
        assert_eq!(tail_mask(3), 0b111);
        assert_eq!(tail_mask(63), u64::MAX >> 1);
    }
}
