//! Word-level distance kernels: u64×4-unrolled scalar loops, with a
//! `std::simd` variant behind the `unstable-simd` feature (nightly only).
//!
//! These are the innermost loops of every quantitative step in the paper —
//! neighbor-graph thresholding (Lemma 8), `RSelect` candidate elimination,
//! vote tallies — and the [`Bits`](crate::Bits) trait routes its distance
//! methods through them so `BitVec`s and matrix rows share one hot path.
//!
//! The 4-wide unroll keeps four independent popcount accumulators live so
//! the CPU can retire one `xor`+`popcnt` pair per cycle instead of
//! serializing on a single accumulator; on 16-word (1024-bit) rows this is
//! a ~2–4× win over the naive fold, and LLVM can lift the unrolled body
//! into vector registers where the target supports it.

/// XOR-popcount over two equal-length word slices: the Hamming distance of
/// the bit strings they pack. Callers guarantee `a.len() == b.len()`.
#[cfg(not(feature = "unstable-simd"))]
#[inline]
pub fn hamming_words(a: &[u64], b: &[u64]) -> usize {
    let quads = a.len() / 4 * 4;
    let (a4, at) = a.split_at(quads);
    let (b4, bt) = b.split_at(quads);
    // Four independent accumulators: no loop-carried dependency on one sum.
    let mut acc = [0usize; 4];
    for (ca, cb) in a4.chunks_exact(4).zip(b4.chunks_exact(4)) {
        acc[0] += (ca[0] ^ cb[0]).count_ones() as usize;
        acc[1] += (ca[1] ^ cb[1]).count_ones() as usize;
        acc[2] += (ca[2] ^ cb[2]).count_ones() as usize;
        acc[3] += (ca[3] ^ cb[3]).count_ones() as usize;
    }
    let tail: usize = at
        .iter()
        .zip(bt)
        .map(|(x, y)| (x ^ y).count_ones() as usize)
        .sum();
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// `std::simd` variant of [`hamming_words`] (nightly, `unstable-simd`).
#[cfg(feature = "unstable-simd")]
#[inline]
pub fn hamming_words(a: &[u64], b: &[u64]) -> usize {
    use std::simd::num::SimdUint;
    use std::simd::u64x4;
    let quads = a.len() / 4 * 4;
    let (a4, at) = a.split_at(quads);
    let (b4, bt) = b.split_at(quads);
    let mut acc = 0u64;
    for (ca, cb) in a4.chunks_exact(4).zip(b4.chunks_exact(4)) {
        let va = u64x4::from_slice(ca);
        let vb = u64x4::from_slice(cb);
        acc += (va ^ vb).count_ones().reduce_sum();
    }
    let tail: u64 = at
        .iter()
        .zip(bt)
        .map(|(x, y)| (x ^ y).count_ones() as u64)
        .sum();
    (acc + tail) as usize
}

/// Bounded Hamming distance over word slices: `Some(d)` if `d <= limit`,
/// `None` as soon as the running total provably exceeds `limit`.
///
/// The limit is re-checked once per 16-word (kibibit) block — one branch
/// per kibibit, with the block itself running through the unrolled
/// [`hamming_words`] kernel. The check cadence affects only speed, never
/// the result: any partial sum above `limit` implies the total is too.
#[inline]
pub fn hamming_within_words(a: &[u64], b: &[u64], limit: usize) -> Option<usize> {
    const BLOCK: usize = 16;
    let mut acc = 0usize;
    let mut i = 0;
    while i + BLOCK <= a.len() {
        acc += hamming_words(&a[i..i + BLOCK], &b[i..i + BLOCK]);
        if acc > limit {
            return None;
        }
        i += BLOCK;
    }
    if i < a.len() {
        acc += hamming_words(&a[i..], &b[i..]);
    }
    (acc <= limit).then_some(acc)
}

/// Masked Hamming distance over word slices: popcount of `(a ^ b) & m`.
/// Callers guarantee all three slices share one length.
#[inline]
pub fn hamming_masked_words(a: &[u64], b: &[u64], m: &[u64]) -> usize {
    let quads = a.len() / 4 * 4;
    let mut acc = [0usize; 4];
    for i in (0..quads).step_by(4) {
        acc[0] += ((a[i] ^ b[i]) & m[i]).count_ones() as usize;
        acc[1] += ((a[i + 1] ^ b[i + 1]) & m[i + 1]).count_ones() as usize;
        acc[2] += ((a[i + 2] ^ b[i + 2]) & m[i + 2]).count_ones() as usize;
        acc[3] += ((a[i + 3] ^ b[i + 3]) & m[i + 3]).count_ones() as usize;
    }
    let mut tail = 0usize;
    for i in quads..a.len() {
        tail += ((a[i] ^ b[i]) & m[i]).count_ones() as usize;
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn words(seed: u64, n: usize) -> Vec<u64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen()).collect()
    }

    fn naive(a: &[u64], b: &[u64]) -> usize {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x ^ y).count_ones() as usize)
            .sum()
    }

    #[test]
    fn empty_slices() {
        assert_eq!(hamming_words(&[], &[]), 0);
        assert_eq!(hamming_within_words(&[], &[], 0), Some(0));
        assert_eq!(hamming_masked_words(&[], &[], &[]), 0);
    }

    proptest! {
        #[test]
        fn prop_hamming_matches_naive(s1 in 0u64..100, s2 in 0u64..100, n in 0usize..70) {
            let a = words(s1, n);
            let b = words(s2 + 1000, n);
            prop_assert_eq!(hamming_words(&a, &b), naive(&a, &b));
        }

        #[test]
        fn prop_within_matches_naive(s1 in 0u64..100, s2 in 0u64..100, n in 0usize..70, limit in 0usize..4500) {
            let a = words(s1, n);
            let b = words(s2 + 1000, n);
            let d = naive(&a, &b);
            let got = hamming_within_words(&a, &b, limit);
            if d <= limit {
                prop_assert_eq!(got, Some(d));
            } else {
                prop_assert_eq!(got, None);
            }
        }

        #[test]
        fn prop_masked_matches_naive(s1 in 0u64..100, s2 in 0u64..100, s3 in 0u64..100, n in 0usize..70) {
            let a = words(s1, n);
            let b = words(s2 + 1000, n);
            let m = words(s3 + 2000, n);
            let naive_masked: usize = (0..n).map(|i| ((a[i] ^ b[i]) & m[i]).count_ones() as usize).sum();
            prop_assert_eq!(hamming_masked_words(&a, &b, &m), naive_masked);
        }
    }
}
