//! Owned, word-packed bit vector.

use rand::Rng;

use crate::bits::check_tail_invariant;
use crate::{tail_mask, words_for, Bits, WORD_BITS};

/// An owned, densely packed vector of bits.
///
/// Represents a preference vector `v(p) ∈ {0,1}^n` (paper §2) or any derived
/// candidate/output vector. Bits above `len` in the final word are kept zero
/// (see [`Bits`] invariant).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    len: usize,
    words: Box<[u64]>,
}

impl Bits for BitVec {
    #[inline]
    fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn words(&self) -> &[u64] {
        &self.words
    }
}

impl BitVec {
    /// All-zero vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            len,
            words: vec![0u64; words_for(len)].into_boxed_slice(),
        }
    }

    /// All-one vector of `len` bits.
    pub fn ones(len: usize) -> Self {
        let mut words = vec![u64::MAX; words_for(len)];
        if let Some(last) = words.last_mut() {
            *last &= tail_mask(len);
        }
        BitVec {
            len,
            words: words.into_boxed_slice(),
        }
    }

    /// Build from raw words. Trailing bits above `len` are cleared.
    pub fn from_words(mut words: Vec<u64>, len: usize) -> Self {
        assert_eq!(words.len(), words_for(len), "word count must match len");
        if let Some(last) = words.last_mut() {
            *last &= tail_mask(len);
        }
        BitVec {
            len,
            words: words.into_boxed_slice(),
        }
    }

    /// Build from a slice of booleans.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut v = BitVec::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                v.set(i, true);
            }
        }
        v
    }

    /// Build a `len`-bit vector whose bit `i` is `f(i)`.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut v = BitVec::zeros(len);
        for i in 0..len {
            if f(i) {
                v.set(i, true);
            }
        }
        v
    }

    /// Build a `len`-bit vector with ones exactly at `indices`.
    pub fn from_indices(len: usize, indices: &[u32]) -> Self {
        let mut v = BitVec::zeros(len);
        for &i in indices {
            v.set(i as usize, true);
        }
        v
    }

    /// Uniformly random vector: each bit is 1 with probability 1/2.
    pub fn random<R: Rng + ?Sized>(rng: &mut R, len: usize) -> Self {
        let mut words: Vec<u64> = (0..words_for(len)).map(|_| rng.gen()).collect();
        if let Some(last) = words.last_mut() {
            *last &= tail_mask(len);
        }
        BitVec {
            len,
            words: words.into_boxed_slice(),
        }
    }

    /// Random vector where each bit is 1 independently with probability `p`.
    pub fn random_dense<R: Rng + ?Sized>(rng: &mut R, len: usize, p: f64) -> Self {
        BitVec::from_fn(len, |_| rng.gen_bool(p))
    }

    /// Set bit `i` to `value`. Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let w = &mut self.words[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        if value {
            *w |= mask;
        } else {
            *w &= !mask;
        }
    }

    /// Flip bit `i`. Panics if `i >= len`.
    #[inline]
    pub fn flip(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / WORD_BITS] ^= 1u64 << (i % WORD_BITS);
    }

    /// Flip exactly `k` *distinct* random positions (Fisher–Yates over a
    /// reservoir of indices). Panics if `k > len`.
    ///
    /// This is how planted workloads place a member at exact Hamming
    /// distance `k` from its cluster center.
    pub fn flip_random_distinct<R: Rng + ?Sized>(&mut self, rng: &mut R, k: usize) {
        assert!(
            k <= self.len,
            "cannot flip {k} distinct bits of {}",
            self.len
        );
        // Floyd's algorithm: k distinct samples from [0, len).
        let mut chosen = std::collections::HashSet::with_capacity(k);
        for j in (self.len - k)..self.len {
            let t = rng.gen_range(0..=j);
            let pick = if chosen.contains(&t) { j } else { t };
            chosen.insert(pick);
            self.flip(pick);
        }
    }

    /// In-place XOR with `other`. Panics if lengths differ.
    pub fn xor_with<B: Bits + ?Sized>(&mut self, other: &B) {
        assert_eq!(self.len, other.len());
        for (w, o) in self.words.iter_mut().zip(other.words()) {
            *w ^= o;
        }
    }

    /// In-place AND with `other`. Panics if lengths differ.
    pub fn and_with<B: Bits + ?Sized>(&mut self, other: &B) {
        assert_eq!(self.len, other.len());
        for (w, o) in self.words.iter_mut().zip(other.words()) {
            *w &= o;
        }
    }

    /// In-place OR with `other`. Panics if lengths differ.
    pub fn or_with<B: Bits + ?Sized>(&mut self, other: &B) {
        assert_eq!(self.len, other.len());
        for (w, o) in self.words.iter_mut().zip(other.words()) {
            *w |= o;
        }
    }

    /// Bitwise complement (within `len`).
    pub fn complement(&self) -> BitVec {
        let mut words: Vec<u64> = self.words.iter().map(|w| !w).collect();
        if let Some(last) = words.last_mut() {
            *last &= tail_mask(self.len);
        }
        BitVec {
            len: self.len,
            words: words.into_boxed_slice(),
        }
    }

    /// Write the bits of compact `src` (length `indices.len()`) into `self`
    /// at positions `indices`: the inverse of [`Bits::project`].
    ///
    /// Used to paste a recursion node's output back into a full-length
    /// vector.
    pub fn scatter_from<B: Bits + ?Sized>(&mut self, src: &B, indices: &[u32]) {
        assert_eq!(src.len(), indices.len(), "source/index length mismatch");
        for (k, &i) in indices.iter().enumerate() {
            self.set(i as usize, src.get(k));
        }
    }

    /// Clear all bits.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Debug-assert the trailing-bits-zero invariant (no-op in release
    /// builds). Exposed as a debugging aid for downstream property tests.
    pub fn check_invariant(&self) {
        check_tail_invariant(&self.words, self.len);
    }
}

impl std::fmt::Debug for BitVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BitVec[{}; ", self.len)?;
        let show = self.len.min(64);
        for i in 0..show {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        if self.len > show {
            write!(f, "…")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_ones_counts() {
        assert_eq!(BitVec::zeros(100).count_ones(), 0);
        assert_eq!(BitVec::ones(100).count_ones(), 100);
        assert_eq!(BitVec::ones(64).count_ones(), 64);
        assert_eq!(BitVec::ones(65).count_ones(), 65);
    }

    #[test]
    fn set_flip_roundtrip() {
        let mut v = BitVec::zeros(130);
        v.set(129, true);
        assert!(v.get(129));
        v.flip(129);
        assert!(!v.get(129));
        v.flip(0);
        assert!(v.get(0));
        v.check_invariant();
    }

    #[test]
    fn from_indices_and_bools_agree() {
        let a = BitVec::from_indices(6, &[1, 4]);
        let b = BitVec::from_bools(&[false, true, false, false, true, false]);
        assert!(a.bits_eq(&b));
    }

    #[test]
    fn flip_random_distinct_exact_distance() {
        let mut rng = SmallRng::seed_from_u64(7);
        for k in [0usize, 1, 5, 50, 200] {
            let base = BitVec::random(&mut rng, 300);
            let mut v = base.clone();
            v.flip_random_distinct(&mut rng, k);
            assert_eq!(base.hamming(&v), k, "k={k}");
        }
    }

    #[test]
    fn complement_distance_is_len() {
        let mut rng = SmallRng::seed_from_u64(3);
        let v = BitVec::random(&mut rng, 777);
        assert_eq!(v.hamming(&v.complement()), 777);
        v.complement().check_invariant();
    }

    #[test]
    fn scatter_inverts_project() {
        let mut rng = SmallRng::seed_from_u64(11);
        let v = BitVec::random(&mut rng, 128);
        let idx: Vec<u32> = vec![3, 17, 64, 90, 127];
        let proj = v.project(&idx);
        let mut back = BitVec::zeros(128);
        back.scatter_from(&proj, &idx);
        for &i in &idx {
            assert_eq!(back.get(i as usize), v.get(i as usize));
        }
    }

    #[test]
    fn boolean_ops() {
        let a = BitVec::from_bools(&[true, true, false, false]);
        let b = BitVec::from_bools(&[true, false, true, false]);
        let mut x = a.clone();
        x.xor_with(&b);
        assert!(x.bits_eq(&BitVec::from_bools(&[false, true, true, false])));
        let mut y = a.clone();
        y.and_with(&b);
        assert!(y.bits_eq(&BitVec::from_bools(&[true, false, false, false])));
        let mut z = a.clone();
        z.or_with(&b);
        assert!(z.bits_eq(&BitVec::from_bools(&[true, true, true, false])));
    }

    #[test]
    fn random_dense_extremes() {
        let mut rng = SmallRng::seed_from_u64(5);
        assert_eq!(BitVec::random_dense(&mut rng, 64, 0.0).count_ones(), 0);
        assert_eq!(BitVec::random_dense(&mut rng, 64, 1.0).count_ones(), 64);
    }

    proptest! {
        #[test]
        fn prop_hamming_symmetric(seed1 in 0u64..1000, seed2 in 0u64..1000, len in 1usize..500) {
            let a = BitVec::random(&mut SmallRng::seed_from_u64(seed1), len);
            let b = BitVec::random(&mut SmallRng::seed_from_u64(seed2), len);
            prop_assert_eq!(a.hamming(&b), b.hamming(&a));
        }

        #[test]
        fn prop_hamming_triangle(s1 in 0u64..100, s2 in 0u64..100, s3 in 0u64..100, len in 1usize..300) {
            let a = BitVec::random(&mut SmallRng::seed_from_u64(s1), len);
            let b = BitVec::random(&mut SmallRng::seed_from_u64(s2 + 1000), len);
            let c = BitVec::random(&mut SmallRng::seed_from_u64(s3 + 2000), len);
            prop_assert!(a.hamming(&c) <= a.hamming(&b) + b.hamming(&c));
        }

        #[test]
        fn prop_hamming_equals_naive(s1 in 0u64..100, s2 in 0u64..100, len in 1usize..300) {
            let a = BitVec::random(&mut SmallRng::seed_from_u64(s1), len);
            let b = BitVec::random(&mut SmallRng::seed_from_u64(s2 + 500), len);
            let naive = (0..len).filter(|&i| a.get(i) != b.get(i)).count();
            prop_assert_eq!(a.hamming(&b), naive);
        }

        #[test]
        fn prop_hamming_within_agrees(s1 in 0u64..100, s2 in 0u64..100, len in 1usize..300, limit in 0usize..350) {
            let a = BitVec::random(&mut SmallRng::seed_from_u64(s1), len);
            let b = BitVec::random(&mut SmallRng::seed_from_u64(s2 + 500), len);
            let d = a.hamming(&b);
            let got = a.hamming_within(&b, limit);
            if d <= limit {
                prop_assert_eq!(got, Some(d));
            } else {
                prop_assert_eq!(got, None);
            }
        }

        #[test]
        fn prop_diff_indices_count_is_hamming(s1 in 0u64..100, s2 in 0u64..100, len in 1usize..300) {
            let a = BitVec::random(&mut SmallRng::seed_from_u64(s1), len);
            let b = BitVec::random(&mut SmallRng::seed_from_u64(s2 + 500), len);
            let d = a.diff_indices(&b);
            prop_assert_eq!(d.len(), a.hamming(&b));
            // Indices sorted and in range.
            prop_assert!(d.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(d.iter().all(|&i| (i as usize) < len));
        }

        #[test]
        fn prop_iter_ones_matches_count(seed in 0u64..200, len in 1usize..400) {
            let v = BitVec::random(&mut SmallRng::seed_from_u64(seed), len);
            prop_assert_eq!(v.iter_ones().count(), v.count_ones());
        }

        #[test]
        fn prop_project_preserves_bits(seed in 0u64..200, len in 10usize..200) {
            let v = BitVec::random(&mut SmallRng::seed_from_u64(seed), len);
            let idx: Vec<u32> = (0..len as u32).step_by(3).collect();
            let p = v.project(&idx);
            for (k, &i) in idx.iter().enumerate() {
                prop_assert_eq!(p.get(k), v.get(i as usize));
            }
        }

        #[test]
        fn prop_xor_count_is_distance(s1 in 0u64..100, s2 in 0u64..100, len in 1usize..300) {
            let a = BitVec::random(&mut SmallRng::seed_from_u64(s1), len);
            let b = BitVec::random(&mut SmallRng::seed_from_u64(s2 + 500), len);
            let mut x = a.clone();
            x.xor_with(&b);
            prop_assert_eq!(x.count_ones(), a.hamming(&b));
        }
    }
}
