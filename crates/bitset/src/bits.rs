//! The [`Bits`] read-only view trait and its distance/query kernels.

use crate::kernel::{hamming_masked_words, hamming_within_words, hamming_words};
use crate::{tail_mask, BitVec, WORD_BITS};

/// Read-only view of a packed bit sequence.
///
/// Implemented by [`BitVec`](crate::BitVec) and matrix row views
/// ([`RowRef`](crate::RowRef)); every distance and query kernel is a provided
/// method so the two share one implementation.
///
/// # Invariant
///
/// Implementations must keep all bits above `len()` in the final word zero.
/// Every kernel relies on this to skip tail masking.
pub trait Bits {
    /// Number of valid bits.
    fn len(&self) -> usize;

    /// Backing words; exactly `words_for(self.len())` entries, trailing bits
    /// above `len()` zero.
    fn words(&self) -> &[u64];

    /// True if the view contains no bits.
    #[inline]
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Value of bit `i`. Panics if `i >= len()`.
    #[inline]
    fn get(&self, i: usize) -> bool {
        assert!(i < self.len(), "bit index {i} out of range {}", self.len());
        (self.words()[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Number of set bits.
    #[inline]
    fn count_ones(&self) -> usize {
        self.words().iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Hamming distance to `other`. Panics if lengths differ.
    ///
    /// This is the paper's `|v(p) - v(q)|`, routed through the unrolled
    /// [`hamming_words`](crate::kernel::hamming_words) kernel.
    #[inline]
    fn hamming<B: Bits + ?Sized>(&self, other: &B) -> usize {
        assert_eq!(
            self.len(),
            other.len(),
            "hamming distance requires equal lengths"
        );
        hamming_words(self.words(), other.words())
    }

    /// Hamming distance, but stop early once it is known to exceed `limit`,
    /// returning `None` in that case.
    ///
    /// Neighbor-graph construction (Lemma 8) performs `n²/2` threshold
    /// comparisons `|z(p) − z(q)| ≤ 220 ln n`; early exit makes far pairs
    /// cheap.
    #[inline]
    fn hamming_within<B: Bits + ?Sized>(&self, other: &B, limit: usize) -> Option<usize> {
        assert_eq!(self.len(), other.len());
        hamming_within_words(self.words(), other.words(), limit)
    }

    /// Hamming distance restricted to positions where `mask` is set.
    #[inline]
    fn hamming_masked<B: Bits + ?Sized, M: Bits + ?Sized>(&self, other: &B, mask: &M) -> usize {
        assert_eq!(self.len(), other.len());
        assert_eq!(self.len(), mask.len());
        hamming_masked_words(self.words(), other.words(), mask.words())
    }

    /// Number of positions on which the two views agree.
    #[inline]
    fn agreement<B: Bits + ?Sized>(&self, other: &B) -> usize {
        self.len() - self.hamming(other)
    }

    /// Indices where the two views differ, in increasing order.
    ///
    /// `RSelect` step 1: "Let X be the set of objects on which w and w'
    /// differ."
    fn diff_indices<B: Bits + ?Sized>(&self, other: &B) -> Vec<u32> {
        assert_eq!(self.len(), other.len());
        let mut out = Vec::new();
        for (wi, (x, y)) in self.words().iter().zip(other.words()).enumerate() {
            let mut d = x ^ y;
            while d != 0 {
                let bit = d.trailing_zeros() as usize;
                out.push((wi * WORD_BITS + bit) as u32);
                d &= d - 1;
            }
        }
        out
    }

    /// Iterator over indices of set bits, in increasing order.
    fn iter_ones(&self) -> OnesIter<'_> {
        OnesIter {
            words: self.words(),
            word_idx: 0,
            current: self.words().first().copied().unwrap_or(0),
        }
    }

    /// Copy this view into an owned [`BitVec`].
    fn to_bitvec(&self) -> BitVec {
        BitVec::from_words(self.words().to_vec(), self.len())
    }

    /// Extract the bits at `indices` (each `< len()`) into a new compact
    /// [`BitVec`] of length `indices.len()`.
    ///
    /// Used to restrict preference vectors to a sample set `S` or to a
    /// recursion node's object subset.
    fn project(&self, indices: &[u32]) -> BitVec {
        let mut out = BitVec::zeros(indices.len());
        for (k, &i) in indices.iter().enumerate() {
            if self.get(i as usize) {
                out.set(k, true);
            }
        }
        out
    }

    /// 64-bit FNV-1a content hash of `(len, words)`.
    ///
    /// Used for grouping identical claimed vectors when tallying votes
    /// (`ZeroRadius` step 4), avoiding `O(k²)` full comparisons.
    fn content_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        mix(self.len() as u64);
        for &w in self.words() {
            mix(w);
        }
        h
    }

    /// True if the two views are bit-for-bit identical.
    fn bits_eq<B: Bits + ?Sized>(&self, other: &B) -> bool {
        self.len() == other.len() && self.words() == other.words()
    }
}

impl<B: Bits + ?Sized> Bits for &B {
    #[inline]
    fn len(&self) -> usize {
        (**self).len()
    }

    #[inline]
    fn words(&self) -> &[u64] {
        (**self).words()
    }
}

/// Iterator over the set-bit indices of a [`Bits`] view.
pub struct OnesIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for OnesIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * WORD_BITS + bit)
    }
}

/// Debug-check the trailing-bits-zero invariant.
pub(crate) fn check_tail_invariant(words: &[u64], len: usize) {
    if let Some(&last) = words.last() {
        debug_assert_eq!(
            last & !tail_mask(len),
            0,
            "bits above len={len} must be zero"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv(bits: &[bool]) -> BitVec {
        BitVec::from_bools(bits)
    }

    #[test]
    fn get_and_count() {
        let v = bv(&[true, false, true, true]);
        assert!(v.get(0));
        assert!(!v.get(1));
        assert_eq!(v.count_ones(), 3);
        assert_eq!(v.len(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        bv(&[true]).get(1);
    }

    #[test]
    fn hamming_basic() {
        let a = bv(&[true, false, true, false]);
        let b = bv(&[true, true, false, false]);
        assert_eq!(a.hamming(&b), 2);
        assert_eq!(a.hamming(&a), 0);
        assert_eq!(a.agreement(&b), 2);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn hamming_length_mismatch_panics() {
        bv(&[true]).hamming(&bv(&[true, false]));
    }

    #[test]
    fn hamming_within_respects_limit() {
        let a = BitVec::zeros(2000);
        let mut b = BitVec::zeros(2000);
        for i in 0..50 {
            b.set(i * 37, true);
        }
        assert_eq!(a.hamming_within(&b, 50), Some(50));
        assert_eq!(a.hamming_within(&b, 49), None);
        assert_eq!(a.hamming_within(&b, 2000), Some(50));
    }

    #[test]
    fn hamming_masked_restricts() {
        let a = bv(&[true, true, false, false]);
        let b = bv(&[false, false, true, true]);
        let m = bv(&[true, false, true, false]);
        // Differ everywhere; mask keeps positions 0 and 2.
        assert_eq!(a.hamming_masked(&b, &m), 2);
    }

    #[test]
    fn diff_indices_matches_naive() {
        let a = bv(&[true, false, true, false, true]);
        let b = bv(&[false, false, true, true, true]);
        assert_eq!(a.diff_indices(&b), vec![0, 3]);
    }

    #[test]
    fn iter_ones_crosses_words() {
        let mut v = BitVec::zeros(200);
        for &i in &[0usize, 63, 64, 127, 199] {
            v.set(i, true);
        }
        let got: Vec<usize> = v.iter_ones().collect();
        assert_eq!(got, vec![0, 63, 64, 127, 199]);
    }

    #[test]
    fn project_gathers() {
        let v = bv(&[true, false, true, true, false]);
        let p = v.project(&[0, 2, 4]);
        assert_eq!(p.len(), 3);
        assert!(p.get(0));
        assert!(p.get(1));
        assert!(!p.get(2));
    }

    #[test]
    fn content_hash_distinguishes_and_matches() {
        let a = bv(&[true, false, true]);
        let b = bv(&[true, false, true]);
        let c = bv(&[true, true, true]);
        assert_eq!(a.content_hash(), b.content_hash());
        assert_ne!(a.content_hash(), c.content_hash());
        assert!(a.bits_eq(&b));
        assert!(!a.bits_eq(&c));
    }

    #[test]
    fn empty_views() {
        let e = BitVec::zeros(0);
        assert!(e.is_empty());
        assert_eq!(e.count_ones(), 0);
        assert_eq!(e.hamming(&BitVec::zeros(0)), 0);
        assert_eq!(e.iter_ones().count(), 0);
    }
}
