//! Multi-vector kernels.

use crate::{Bits, WORD_BITS};

/// Positions where the given equal-length vectors do **not** all agree,
/// in increasing order.
///
/// This is the disagreement set `C` of `ZeroRadius` step 4 ("the set of
/// objects for which there are different votes") and the probing frontier
/// of `Select`: computed as an OR-fold of XORs against the first vector, so
/// it costs one pass of word ops regardless of how many vectors there are.
pub fn disagreement_indices<B: Bits>(vs: &[B]) -> Vec<u32> {
    let Some(first) = vs.first() else {
        return Vec::new();
    };
    let words0 = first.words();
    let mut out = Vec::new();
    for (wi, &w0) in words0.iter().enumerate() {
        let mut diff = 0u64;
        for v in &vs[1..] {
            diff |= v.words()[wi] ^ w0;
        }
        while diff != 0 {
            let bit = diff.trailing_zeros() as usize;
            out.push((wi * WORD_BITS + bit) as u32);
            diff &= diff - 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BitVec;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn empty_and_single() {
        assert!(disagreement_indices::<BitVec>(&[]).is_empty());
        let v = BitVec::from_bools(&[true, false]);
        assert!(disagreement_indices(&[v]).is_empty());
    }

    #[test]
    fn identical_vectors_agree() {
        let v = BitVec::from_bools(&[true, false, true]);
        assert!(disagreement_indices(&[v.clone(), v.clone(), v]).is_empty());
    }

    #[test]
    fn three_way_disagreement() {
        let a = BitVec::from_bools(&[true, false, false, true]);
        let b = BitVec::from_bools(&[true, true, false, true]);
        let c = BitVec::from_bools(&[true, false, true, true]);
        assert_eq!(disagreement_indices(&[a, b, c]), vec![1, 2]);
    }

    proptest! {
        #[test]
        fn prop_matches_naive(seed in 0u64..100, k in 2usize..6, len in 1usize..200) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let vs: Vec<BitVec> = (0..k).map(|_| BitVec::random(&mut rng, len)).collect();
            let fast = disagreement_indices(&vs);
            let naive: Vec<u32> = (0..len as u32)
                .filter(|&i| {
                    let b0 = vs[0].get(i as usize);
                    vs[1..].iter().any(|v| v.get(i as usize) != b0)
                })
                .collect();
            prop_assert_eq!(fast, naive);
        }
    }
}
