//! Per-column vote accumulation and majority extraction.

use crate::{BitVec, Bits};

/// Accumulates weighted per-column votes over bit vectors and extracts the
/// majority vector.
///
/// This is the kernel behind step 4 of `CalculatePreferences` ("sets its
/// output to the value probed by a *majority* of the assigned players") and
/// the popular-vector tallies in `ZeroRadius`/`SmallRadius`. A column's vote
/// balance is `(#one-votes) − (#zero-votes)`, kept as `i32` per column.
pub struct ColumnCounter {
    balance: Vec<i32>,
    total_weight: i64,
}

impl ColumnCounter {
    /// New counter over `len` columns with zero balance.
    pub fn new(len: usize) -> Self {
        ColumnCounter {
            balance: vec![0; len],
            total_weight: 0,
        }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.balance.len()
    }

    /// True if the counter tracks no columns.
    pub fn is_empty(&self) -> bool {
        self.balance.is_empty()
    }

    /// Total weight added so far.
    pub fn total_weight(&self) -> i64 {
        self.total_weight
    }

    /// Add `weight` votes of vector `v`: each 1-bit adds `+weight` to its
    /// column balance, each 0-bit adds `−weight`.
    pub fn add<B: Bits + ?Sized>(&mut self, v: &B, weight: i32) {
        assert_eq!(v.len(), self.balance.len(), "vector length mismatch");
        // Subtract weight everywhere, then add 2*weight at set bits:
        // equivalent, but touches each balance once plus popcount adds.
        for b in self.balance.iter_mut() {
            *b -= weight;
        }
        for i in v.iter_ones() {
            self.balance[i] += 2 * weight;
        }
        self.total_weight += i64::from(weight);
    }

    /// Add a single vote at one column.
    pub fn add_bit(&mut self, column: usize, value: bool, weight: i32) {
        let delta = if value { weight } else { -weight };
        self.balance[column] += delta;
    }

    /// Majority vector: bit `i` is 1 iff its balance is positive.
    /// Ties (balance 0) resolve to `tie_value`.
    pub fn majority(&self, tie_value: bool) -> BitVec {
        BitVec::from_fn(self.balance.len(), |i| match self.balance[i].cmp(&0) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => tie_value,
        })
    }

    /// Column balance (ones minus zeros, weighted).
    pub fn balance(&self, column: usize) -> i32 {
        self.balance[column]
    }

    /// Columns whose absolute balance is at most `margin` — the "contested"
    /// objects an adversary can swing (Lemma 13's *strange* objects).
    pub fn contested(&self, margin: i32) -> Vec<u32> {
        self.balance
            .iter()
            .enumerate()
            .filter(|(_, &b)| b.abs() <= margin)
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Reset all balances to zero, keeping the column count.
    pub fn reset(&mut self) {
        self.balance.iter_mut().for_each(|b| *b = 0);
        self.total_weight = 0;
    }
}

/// Majority-fold a non-empty collection of equal-length vectors:
/// bit `i` of the result is the majority of bit `i` across `vs`
/// (ties resolve to `tie_value`).
pub fn majority_fold<B: Bits>(vs: &[B], tie_value: bool) -> BitVec {
    assert!(!vs.is_empty(), "majority_fold of empty slice");
    let mut c = ColumnCounter::new(vs[0].len());
    for v in vs {
        c.add(v, 1);
    }
    c.majority(tie_value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn simple_majority() {
        let vs = vec![
            BitVec::from_bools(&[true, true, false]),
            BitVec::from_bools(&[true, false, false]),
            BitVec::from_bools(&[false, true, false]),
        ];
        let m = majority_fold(&vs, false);
        assert!(m.bits_eq(&BitVec::from_bools(&[true, true, false])));
    }

    #[test]
    fn tie_resolution() {
        let vs = vec![
            BitVec::from_bools(&[true, false]),
            BitVec::from_bools(&[false, true]),
        ];
        assert!(majority_fold(&vs, true).bits_eq(&BitVec::from_bools(&[true, true])));
        assert!(majority_fold(&vs, false).bits_eq(&BitVec::from_bools(&[false, false])));
    }

    #[test]
    fn weighted_votes() {
        let mut c = ColumnCounter::new(2);
        c.add(&BitVec::from_bools(&[true, true]), 1);
        c.add(&BitVec::from_bools(&[false, false]), 3);
        assert!(c
            .majority(false)
            .bits_eq(&BitVec::from_bools(&[false, false])));
        assert_eq!(c.total_weight(), 4);
        assert_eq!(c.balance(0), -2);
    }

    #[test]
    fn add_bit_votes() {
        let mut c = ColumnCounter::new(3);
        c.add_bit(1, true, 2);
        c.add_bit(1, false, 1);
        c.add_bit(2, false, 1);
        let m = c.majority(false);
        assert!(!m.get(0));
        assert!(m.get(1));
        assert!(!m.get(2));
    }

    #[test]
    fn contested_columns() {
        let mut c = ColumnCounter::new(3);
        c.add(&BitVec::from_bools(&[true, true, false]), 5);
        c.add(&BitVec::from_bools(&[true, false, false]), 4);
        // balances: +9, +1, −9
        assert_eq!(c.contested(1), vec![1]);
        assert_eq!(c.contested(9), vec![0, 1, 2]);
    }

    #[test]
    fn reset_clears() {
        let mut c = ColumnCounter::new(2);
        c.add(&BitVec::from_bools(&[true, true]), 7);
        c.reset();
        assert_eq!(c.total_weight(), 0);
        assert_eq!(c.balance(0), 0);
        assert_eq!(c.balance(1), 0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn majority_fold_empty_panics() {
        majority_fold::<BitVec>(&[], false);
    }

    proptest! {
        #[test]
        fn prop_majority_matches_naive(seed in 0u64..200, n_vecs in 1usize..9, len in 1usize..120) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let vs: Vec<BitVec> = (0..n_vecs).map(|_| BitVec::random(&mut rng, len)).collect();
            let m = majority_fold(&vs, false);
            for i in 0..len {
                let ones = vs.iter().filter(|v| v.get(i)).count();
                let expect = 2 * ones > n_vecs;
                prop_assert_eq!(m.get(i), expect, "column {}", i);
            }
        }

        #[test]
        fn prop_unanimous_is_identity(seed in 0u64..200, copies in 1usize..6, len in 1usize..120) {
            let v = BitVec::random(&mut SmallRng::seed_from_u64(seed), len);
            let vs = vec![v.clone(); copies];
            prop_assert!(majority_fold(&vs, false).bits_eq(&v));
        }
    }
}
