//! Per-column vote accumulation and majority extraction.

use crate::{words_for, BitVec, Bits};

/// Accumulates weighted per-column votes over bit vectors and extracts the
/// majority vector.
///
/// This is the kernel behind step 4 of `CalculatePreferences` ("sets its
/// output to the value probed by a *majority* of the assigned players") and
/// the popular-vector tallies in `ZeroRadius`/`SmallRadius`. A column's vote
/// balance is `(#one-votes) − (#zero-votes)`, kept as `i32` per column.
pub struct ColumnCounter {
    balance: Vec<i32>,
    total_weight: i64,
}

impl ColumnCounter {
    /// New counter over `len` columns with zero balance.
    pub fn new(len: usize) -> Self {
        ColumnCounter {
            balance: vec![0; len],
            total_weight: 0,
        }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.balance.len()
    }

    /// True if the counter tracks no columns.
    pub fn is_empty(&self) -> bool {
        self.balance.is_empty()
    }

    /// Total weight added so far.
    pub fn total_weight(&self) -> i64 {
        self.total_weight
    }

    /// Add `weight` votes of vector `v`: each 1-bit adds `+weight` to its
    /// column balance, each 0-bit adds `−weight`.
    pub fn add<B: Bits + ?Sized>(&mut self, v: &B, weight: i32) {
        assert_eq!(v.len(), self.balance.len(), "vector length mismatch");
        // Subtract weight everywhere, then add 2*weight at set bits:
        // equivalent, but touches each balance once plus popcount adds.
        for b in self.balance.iter_mut() {
            *b -= weight;
        }
        for i in v.iter_ones() {
            self.balance[i] += 2 * weight;
        }
        self.total_weight += i64::from(weight);
    }

    /// Add a single vote at one column.
    pub fn add_bit(&mut self, column: usize, value: bool, weight: i32) {
        let delta = if value { weight } else { -weight };
        self.balance[column] += delta;
    }

    /// Majority vector: bit `i` is 1 iff its balance is positive.
    /// Ties (balance 0) resolve to `tie_value`.
    pub fn majority(&self, tie_value: bool) -> BitVec {
        BitVec::from_fn(self.balance.len(), |i| match self.balance[i].cmp(&0) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => tie_value,
        })
    }

    /// Column balance (ones minus zeros, weighted).
    pub fn balance(&self, column: usize) -> i32 {
        self.balance[column]
    }

    /// Columns whose absolute balance is at most `margin` — the "contested"
    /// objects an adversary can swing (Lemma 13's *strange* objects).
    pub fn contested(&self, margin: i32) -> Vec<u32> {
        self.balance
            .iter()
            .enumerate()
            .filter(|(_, &b)| b.abs() <= margin)
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Reset all balances to zero, keeping the column count.
    pub fn reset(&mut self) {
        self.balance.iter_mut().for_each(|b| *b = 0);
        self.total_weight = 0;
    }
}

/// Majority-fold a non-empty collection of equal-length vectors:
/// bit `i` of the result is the majority of bit `i` across `vs`
/// (ties resolve to `tie_value`).
///
/// Bit-sliced: per-column one-counts are kept as binary *planes*
/// (`planes[j]` holds bit `j` of every column's count), so adding a vector
/// is a word-wide ripple-carry over ≤ `log₂ k` planes and the final
/// majority is a word-wide comparison of the counts against `⌊k/2⌋` —
/// `O(k · len/64 · log k)` word ops instead of per-bit balance updates.
pub fn majority_fold<B: Bits>(vs: &[B], tie_value: bool) -> BitVec {
    assert!(!vs.is_empty(), "majority_fold of empty slice");
    let len = vs[0].len();
    let nw = words_for(len);
    let mut planes: Vec<Vec<u64>> = Vec::new();
    let mut carry = vec![0u64; nw];
    for v in vs {
        assert_eq!(v.len(), len, "vector length mismatch");
        carry.copy_from_slice(v.words());
        for plane in planes.iter_mut() {
            // Half-adder per word: plane ⊕ carry is the new plane bit,
            // plane ∧ carry ripples up.
            let mut pending = 0u64;
            for (pw, cw) in plane.iter_mut().zip(carry.iter_mut()) {
                let up = *pw & *cw;
                *pw ^= *cw;
                *cw = up;
                pending |= up;
            }
            if pending == 0 {
                break;
            }
        }
        if carry.iter().any(|&w| w != 0) {
            planes.push(carry.clone());
            carry.iter_mut().for_each(|w| *w = 0);
        }
    }

    // Column majority: count > ⌊k/2⌋ sets the bit; count == k/2 (only
    // possible for even k) is the tie case. Compare the plane-encoded
    // counts against the constant threshold MSB-first, treating plane
    // bits above what any column reached as zero.
    let k = vs.len();
    let t = k / 2;
    let t_bits = (usize::BITS - t.leading_zeros()) as usize;
    let mut gt = vec![0u64; nw];
    let mut eq = vec![u64::MAX; nw];
    for j in (0..planes.len().max(t_bits)).rev() {
        let t_bit = (t >> j) & 1;
        match planes.get(j) {
            Some(plane) => {
                if t_bit == 1 {
                    for (e, p) in eq.iter_mut().zip(plane) {
                        *e &= p;
                    }
                } else {
                    for ((g, e), p) in gt.iter_mut().zip(eq.iter_mut()).zip(plane) {
                        *g |= *e & p;
                        *e &= !p;
                    }
                }
            }
            // Count bit j is 0 everywhere: a 1 in the threshold there
            // rules out equality; a 0 changes nothing.
            None => {
                if t_bit == 1 {
                    eq.iter_mut().for_each(|e| *e = 0);
                }
            }
        }
    }
    let out: Vec<u64> = if k % 2 == 0 && tie_value {
        gt.iter().zip(&eq).map(|(g, e)| g | e).collect()
    } else {
        gt
    };
    BitVec::from_words(out, len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn simple_majority() {
        let vs = vec![
            BitVec::from_bools(&[true, true, false]),
            BitVec::from_bools(&[true, false, false]),
            BitVec::from_bools(&[false, true, false]),
        ];
        let m = majority_fold(&vs, false);
        assert!(m.bits_eq(&BitVec::from_bools(&[true, true, false])));
    }

    #[test]
    fn tie_resolution() {
        let vs = vec![
            BitVec::from_bools(&[true, false]),
            BitVec::from_bools(&[false, true]),
        ];
        assert!(majority_fold(&vs, true).bits_eq(&BitVec::from_bools(&[true, true])));
        assert!(majority_fold(&vs, false).bits_eq(&BitVec::from_bools(&[false, false])));
    }

    #[test]
    fn weighted_votes() {
        let mut c = ColumnCounter::new(2);
        c.add(&BitVec::from_bools(&[true, true]), 1);
        c.add(&BitVec::from_bools(&[false, false]), 3);
        assert!(c
            .majority(false)
            .bits_eq(&BitVec::from_bools(&[false, false])));
        assert_eq!(c.total_weight(), 4);
        assert_eq!(c.balance(0), -2);
    }

    #[test]
    fn add_bit_votes() {
        let mut c = ColumnCounter::new(3);
        c.add_bit(1, true, 2);
        c.add_bit(1, false, 1);
        c.add_bit(2, false, 1);
        let m = c.majority(false);
        assert!(!m.get(0));
        assert!(m.get(1));
        assert!(!m.get(2));
    }

    #[test]
    fn contested_columns() {
        let mut c = ColumnCounter::new(3);
        c.add(&BitVec::from_bools(&[true, true, false]), 5);
        c.add(&BitVec::from_bools(&[true, false, false]), 4);
        // balances: +9, +1, −9
        assert_eq!(c.contested(1), vec![1]);
        assert_eq!(c.contested(9), vec![0, 1, 2]);
    }

    #[test]
    fn reset_clears() {
        let mut c = ColumnCounter::new(2);
        c.add(&BitVec::from_bools(&[true, true]), 7);
        c.reset();
        assert_eq!(c.total_weight(), 0);
        assert_eq!(c.balance(0), 0);
        assert_eq!(c.balance(1), 0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn majority_fold_empty_panics() {
        majority_fold::<BitVec>(&[], false);
    }

    proptest! {
        #[test]
        fn prop_majority_matches_naive(seed in 0u64..200, n_vecs in 1usize..9, len in 1usize..120) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let vs: Vec<BitVec> = (0..n_vecs).map(|_| BitVec::random(&mut rng, len)).collect();
            let m = majority_fold(&vs, false);
            for i in 0..len {
                let ones = vs.iter().filter(|v| v.get(i)).count();
                let expect = 2 * ones > n_vecs;
                prop_assert_eq!(m.get(i), expect, "column {}", i);
            }
        }

        #[test]
        fn prop_unanimous_is_identity(seed in 0u64..200, copies in 1usize..6, len in 1usize..120) {
            let v = BitVec::random(&mut SmallRng::seed_from_u64(seed), len);
            let vs = vec![v.clone(); copies];
            prop_assert!(majority_fold(&vs, false).bits_eq(&v));
        }

        #[test]
        fn prop_large_folds_match_counter(seed in 0u64..50, n_vecs in 1usize..200, len in 1usize..300) {
            // Exercise many ripple planes (k up to 200 ⇒ 8 planes) and both
            // tie resolutions against the balance-counter reference.
            let mut rng = SmallRng::seed_from_u64(seed);
            let vs: Vec<BitVec> = (0..n_vecs).map(|_| BitVec::random(&mut rng, len)).collect();
            let mut c = ColumnCounter::new(len);
            for v in &vs {
                c.add(v, 1);
            }
            prop_assert!(majority_fold(&vs, false).bits_eq(&c.majority(false)));
            prop_assert!(majority_fold(&vs, true).bits_eq(&c.majority(true)));
        }
    }
}
