//! The execution substrate of the paper's model (§2): a probe oracle with
//! per-player metering, a shared bulletin board, and a phase-parallel
//! player runtime.
//!
//! The paper's players proceed in synchronous rounds; in each round a player
//! may probe one object (learning its *own* preference for it) and may read
//! and write a public bulletin board. Dishonest players may write anything
//! into their own slots but **cannot modify data written by honest players**.
//!
//! This crate realizes that model in-process:
//!
//! * [`TruthSource`] — the pluggable hidden-preference substrate:
//!   [`DenseTruth`] owns a materialized matrix, [`ProceduralTruth`]
//!   regenerates planted-cluster bits on the fly from a [`ClusterSpec`] in
//!   `O(1)` memory per player (the `n ≥ 10⁵` backend). Dynamic worlds
//!   compose adapters over any base: [`DriftingTruth`] pins one epoch of a
//!   seeded preference-drift law (advance with [`DriftingTruth::at_epoch`]),
//!   and [`RemappedTruth`] views a pool source through a churn identity
//!   map — each snapshot stays immutable, so the purity contract (and every
//!   determinism test) survives time-varying scenarios.
//! * [`Oracle`] — the only path to the hidden truth; every probe is
//!   counted against the probing player in a lock-free [`ProbeLedger`].
//!   Probe complexity is the paper's sole cost measure, so the ledger is the
//!   measurement instrument for every experiment.
//! * [`Board`] — an authenticated-slot bulletin board: one vector post per
//!   `(scope, author)` slot and one bit claim per `(scope, object, author)`
//!   slot, so a Byzantine player can lie but can neither forge another
//!   player's entry nor stuff ballot boxes with duplicates. Sharded mutexes
//!   (parking_lot) make concurrent phase writes cheap; reads return
//!   author-sorted snapshots so downstream code is deterministic. Scopes
//!   opened with [`Board::scope`] can be *retired* when their step
//!   completes, so long runs hold only the current step's working set
//!   ([`BoardStats`] reports the peak).
//! * [`par::par_map_players`] — scoped-thread data parallelism over players
//!   with deterministic, index-ordered results: simulation speed without
//!   giving up reproducibility.
//!
//! Synchrony is modeled at *phase* granularity rather than per-probe
//! lockstep: every protocol step of Figures 1–2 is a bulk "all players do X,
//! then all read the results" phase, which is exactly how the paper's
//! algorithms consume the round structure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bulletin;
mod drift;
mod ledger;
mod oracle;
pub mod par;
mod truth;

pub use bulletin::{scope_id, Board, BoardStats, ScopeHandle};
pub use drift::{DriftLocality, DriftSchedule, DriftingTruth};
pub use ledger::{LedgerSnapshot, ProbeLedger};
pub use oracle::Oracle;
pub use truth::{
    ClusterSpec, DenseTruth, IntoTruthSource, ProceduralTruth, RemappedTruth, TruthSource,
};
