//! Authenticated-slot bulletin board with scope lifecycle.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};

use byzscore_bitset::BitVec;
use parking_lot::Mutex;

const SHARD_COUNT: usize = 64;

/// Claims about one object in one scope: `(author, claimed bit)` pairs.
type ClaimSlot = Vec<(u32, bool)>;

/// A public bulletin board with authenticated single-writer slots.
///
/// The paper's model: "Players have access to a public bulletin board…
/// A dishonest player cannot modify the data written by honest players."
/// We realize this with *slots*: a vector slot is keyed by
/// `(scope, author)`, a claim slot by `(scope, object, author)`. The runtime
/// passes the author id on behalf of the executing player, so impersonation
/// is impossible by construction, and one-slot-per-author means a Byzantine
/// player can lie but cannot vote twice in any tally.
///
/// Writes from concurrently executing players land in sharded hash maps;
/// reads return snapshots sorted by author id so every consumer is
/// deterministic regardless of scheduling.
///
/// # Scope lifecycle
///
/// `scope` values identify a protocol step instance (e.g. one `ZeroRadius`
/// recursion node in one diameter iteration). Producers open scopes with
/// [`Board::scope`], which *registers* the scope's path; a finished step's
/// posts are then released with [`ScopeHandle::retire`] or — for whole
/// subtrees, e.g. one robust-mode repetition — [`Board::retire_prefix`].
/// Without retirement a long run accumulates every phase's posts forever;
/// with it, live slots track the *working set* of the current step, and
/// [`BoardStats`] reports the peak, which is the board's real memory
/// high-water mark. (Raw `scope_id` posting still works and is still
/// audit-readable; unregistered scopes simply cannot be retired by prefix.)
pub struct Board {
    vectors: Vec<Mutex<HashMap<(u64, u32), BitVec>>>,
    claims: Vec<Mutex<HashMap<(u64, u32), ClaimSlot>>>,
    vector_posts: AtomicU64,
    claim_posts: AtomicU64,
    live_vector_slots: AtomicU64,
    live_claim_slots: AtomicU64,
    peak_vector_slots: AtomicU64,
    peak_claim_slots: AtomicU64,
    retired_scopes: AtomicU64,
    /// Registered scopes: id → creation path (for prefix retirement).
    registry: Mutex<HashMap<u64, Vec<u64>>>,
}

/// Counters describing board traffic and memory (communication-cost
/// reporting, §8's open question about communication complexity, and the
/// ROADMAP memory-scaling item).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BoardStats {
    /// Total vector posts accepted (including slot overwrites).
    pub vector_posts: u64,
    /// Total claim posts accepted.
    pub claim_posts: u64,
    /// Vector slots currently occupied (posts minus retired/overwritten).
    pub live_vector_slots: u64,
    /// Claim slots currently occupied.
    pub live_claim_slots: u64,
    /// High-water mark of simultaneously occupied vector slots.
    pub peak_vector_slots: u64,
    /// High-water mark of simultaneously occupied claim slots.
    pub peak_claim_slots: u64,
    /// Number of scopes retired over the board's lifetime.
    pub retired_scopes: u64,
}

impl BoardStats {
    /// Total currently occupied slots of either kind — the board's live
    /// working set, the quantity a well-behaved session lifecycle must
    /// return to its pre-open level on close.
    pub fn live_slots(&self) -> u64 {
        self.live_vector_slots + self.live_claim_slots
    }
}

/// A registered posting scope on a [`Board`].
///
/// Cheap to copy (a board reference plus the scope id); post through it
/// during the step, read back for tallies/audits, and [`ScopeHandle::retire`]
/// when the step's posts are dead. Handles for the same path are
/// interchangeable — the scope id is the identity.
#[derive(Clone, Copy)]
pub struct ScopeHandle<'b> {
    board: &'b Board,
    id: u64,
}

impl<'b> ScopeHandle<'b> {
    /// The scope id (usable with the raw [`Board`] read methods).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Post (or overwrite) `author`'s vector in this scope's slot.
    pub fn post_vector(&self, author: u32, v: BitVec) {
        self.board.post_vector(self.id, author, v);
    }

    /// Post `author`'s bit claim about `object` in this scope.
    pub fn post_claim(&self, author: u32, object: u32, value: bool) {
        self.board.post_claim(self.id, author, object, value);
    }

    /// All vectors posted in this scope, sorted by author id.
    pub fn vectors(&self) -> Vec<(u32, BitVec)> {
        self.board.vectors(self.id)
    }

    /// All claims about `object` in this scope, sorted by author id.
    pub fn claims(&self, object: u32) -> Vec<(u32, bool)> {
        self.board.claims(self.id, object)
    }

    /// Every claim in this scope, sorted by `(object, author)`.
    pub fn all_claims(&self) -> Vec<(u32, u32, bool)> {
        self.board.scope_claims(self.id)
    }

    /// Release every post in this scope and unregister it.
    pub fn retire(self) {
        self.board.retire_scope(self.id);
    }
}

impl Board {
    /// Empty board.
    pub fn new() -> Self {
        Board {
            vectors: (0..SHARD_COUNT)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            claims: (0..SHARD_COUNT)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            vector_posts: AtomicU64::new(0),
            claim_posts: AtomicU64::new(0),
            live_vector_slots: AtomicU64::new(0),
            live_claim_slots: AtomicU64::new(0),
            peak_vector_slots: AtomicU64::new(0),
            peak_claim_slots: AtomicU64::new(0),
            retired_scopes: AtomicU64::new(0),
            registry: Mutex::new(HashMap::new()),
        }
    }

    #[inline]
    fn shard_of(scope: u64, salt: u32) -> usize {
        // Cheap mix; shard only needs to spread load.
        let h = scope ^ u64::from(salt).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        (h as usize >> 3) % SHARD_COUNT
    }

    /// New-slot accounting: bump a live counter and fold it into its peak.
    ///
    /// Within a posting phase slots only grow and retirement happens in the
    /// single-threaded driver between phases, so the observed peak is the
    /// same under any thread schedule — determinism the experiment artifacts
    /// rely on.
    #[inline]
    fn bump_live(live: &AtomicU64, peak: &AtomicU64, added: u64) {
        let now = live.fetch_add(added, Ordering::Relaxed) + added;
        peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Open (and register) the scope named by `path`; see [`scope_id`] for
    /// the id derivation. Re-opening a path returns an equivalent handle.
    pub fn scope(&self, path: &[u64]) -> ScopeHandle<'_> {
        let id = scope_id(path);
        self.registry
            .lock()
            .entry(id)
            .or_insert_with(|| path.to_vec());
        ScopeHandle { board: self, id }
    }

    /// Post (or overwrite) `author`'s vector in `scope`'s slot.
    pub fn post_vector(&self, scope: u64, author: u32, v: BitVec) {
        self.vector_posts.fetch_add(1, Ordering::Relaxed);
        let fresh = self.vectors[Self::shard_of(scope, author)]
            .lock()
            .insert((scope, author), v)
            .is_none();
        if fresh {
            Self::bump_live(&self.live_vector_slots, &self.peak_vector_slots, 1);
        }
    }

    /// All vectors posted in `scope`, sorted by author id.
    pub fn vectors(&self, scope: u64) -> Vec<(u32, BitVec)> {
        let mut out: Vec<(u32, BitVec)> = Vec::new();
        for shard in &self.vectors {
            let guard = shard.lock();
            out.extend(
                guard
                    .iter()
                    .filter(|((s, _), _)| *s == scope)
                    .map(|(&(_, a), v)| (a, v.clone())),
            );
        }
        out.sort_unstable_by_key(|&(a, _)| a);
        out
    }

    /// `author`'s vector in `scope`, if posted.
    pub fn vector_of(&self, scope: u64, author: u32) -> Option<BitVec> {
        self.vectors[Self::shard_of(scope, author)]
            .lock()
            .get(&(scope, author))
            .cloned()
    }

    /// Post `author`'s bit claim about `object` in `scope`. One slot per
    /// `(scope, object, author)`: re-posting overwrites.
    pub fn post_claim(&self, scope: u64, author: u32, object: u32, value: bool) {
        self.claim_posts.fetch_add(1, Ordering::Relaxed);
        let fresh = {
            let mut guard = self.claims[Self::shard_of(scope, object)].lock();
            let entries = guard.entry((scope, object)).or_default();
            match entries.iter_mut().find(|(a, _)| *a == author) {
                Some(slot) => {
                    slot.1 = value;
                    false
                }
                None => {
                    entries.push((author, value));
                    true
                }
            }
        };
        if fresh {
            Self::bump_live(&self.live_claim_slots, &self.peak_claim_slots, 1);
        }
    }

    /// All claims about `object` in `scope`, sorted by author id.
    pub fn claims(&self, scope: u64, object: u32) -> Vec<(u32, bool)> {
        let guard = self.claims[Self::shard_of(scope, object)].lock();
        let mut out = guard.get(&(scope, object)).cloned().unwrap_or_default();
        out.sort_unstable_by_key(|&(a, _)| a);
        out
    }

    /// Every claim in `scope` as `(object, author, value)` triples, sorted
    /// by `(object, author)` — the full-scope counterpart of [`Board::claims`],
    /// for audits and state snapshots.
    pub fn scope_claims(&self, scope: u64) -> Vec<(u32, u32, bool)> {
        let mut out: Vec<(u32, u32, bool)> = Vec::new();
        for shard in &self.claims {
            let guard = shard.lock();
            for (&(s, object), slot) in guard.iter() {
                if s == scope {
                    out.extend(slot.iter().map(|&(author, value)| (object, author, value)));
                }
            }
        }
        out.sort_unstable_by_key(|&(object, author, _)| (object, author));
        out
    }

    /// Release every post in `scope` and unregister it.
    ///
    /// Idempotent; counts toward [`BoardStats::retired_scopes`] only when
    /// something (a registration or at least one slot) was actually freed.
    pub fn retire_scope(&self, scope: u64) {
        let registered = self.registry.lock().remove(&scope).is_some();
        let mut freed_vectors = 0u64;
        for shard in &self.vectors {
            let mut guard = shard.lock();
            let before = guard.len();
            guard.retain(|&(s, _), _| s != scope);
            freed_vectors += (before - guard.len()) as u64;
        }
        let mut freed_claims = 0u64;
        for shard in &self.claims {
            let mut guard = shard.lock();
            guard.retain(|&(s, _), slot| {
                if s == scope {
                    freed_claims += slot.len() as u64;
                    false
                } else {
                    true
                }
            });
        }
        self.live_vector_slots
            .fetch_sub(freed_vectors, Ordering::Relaxed);
        self.live_claim_slots
            .fetch_sub(freed_claims, Ordering::Relaxed);
        if registered || freed_vectors + freed_claims > 0 {
            self.retired_scopes.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Retire every *registered* scope whose creation path starts with
    /// `prefix` — how drivers release a whole protocol step (one diameter
    /// guess, one robust repetition) in one call. Batched: one retain pass
    /// over each shard regardless of how many scopes match.
    pub fn retire_prefix(&self, prefix: &[u64]) {
        let ids: HashSet<u64> = {
            let mut registry = self.registry.lock();
            let matched: Vec<u64> = registry
                .iter()
                .filter(|(_, path)| path.len() >= prefix.len() && path[..prefix.len()] == *prefix)
                .map(|(&id, _)| id)
                .collect();
            for id in &matched {
                registry.remove(id);
            }
            matched.into_iter().collect()
        };
        if ids.is_empty() {
            return;
        }
        let mut freed_vectors = 0u64;
        for shard in &self.vectors {
            let mut guard = shard.lock();
            let before = guard.len();
            guard.retain(|&(s, _), _| !ids.contains(&s));
            freed_vectors += (before - guard.len()) as u64;
        }
        let mut freed_claims = 0u64;
        for shard in &self.claims {
            let mut guard = shard.lock();
            guard.retain(|&(s, _), slot| {
                if ids.contains(&s) {
                    freed_claims += slot.len() as u64;
                    false
                } else {
                    true
                }
            });
        }
        self.live_vector_slots
            .fetch_sub(freed_vectors, Ordering::Relaxed);
        self.live_claim_slots
            .fetch_sub(freed_claims, Ordering::Relaxed);
        self.retired_scopes
            .fetch_add(ids.len() as u64, Ordering::Relaxed);
    }

    /// Traffic and memory counters.
    pub fn stats(&self) -> BoardStats {
        BoardStats {
            vector_posts: self.vector_posts.load(Ordering::Relaxed),
            claim_posts: self.claim_posts.load(Ordering::Relaxed),
            live_vector_slots: self.live_vector_slots.load(Ordering::Relaxed),
            live_claim_slots: self.live_claim_slots.load(Ordering::Relaxed),
            peak_vector_slots: self.peak_vector_slots.load(Ordering::Relaxed),
            peak_claim_slots: self.peak_claim_slots.load(Ordering::Relaxed),
            retired_scopes: self.retired_scopes.load(Ordering::Relaxed),
        }
    }
}

impl Default for Board {
    fn default() -> Self {
        Self::new()
    }
}

/// Derive a scope id from a path of step identifiers (protocol step, loop
/// indices, recursion-node ids). Same mixing as seed derivation so distinct
/// paths do not collide in practice.
pub fn scope_id(path: &[u64]) -> u64 {
    let mut h: u64 = 0x243f_6a88_85a3_08d3;
    for &t in path {
        h ^= t.wrapping_add(0x9e37_79b9_7f4a_7c15).rotate_left(23);
        h = h.wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
        h ^= h >> 29;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzscore_bitset::Bits;

    #[test]
    fn vector_slots_overwrite_not_duplicate() {
        let b = Board::new();
        b.post_vector(1, 5, BitVec::zeros(4));
        b.post_vector(1, 5, BitVec::ones(4));
        let vs = b.vectors(1);
        assert_eq!(vs.len(), 1, "one slot per author");
        assert_eq!(vs[0].0, 5);
        assert_eq!(vs[0].1.count_ones(), 4, "last write wins");
        assert_eq!(b.stats().vector_posts, 2);
        assert_eq!(b.stats().live_vector_slots, 1, "overwrite is not a slot");
        assert_eq!(b.stats().peak_vector_slots, 1);
    }

    #[test]
    fn vectors_sorted_by_author() {
        let b = Board::new();
        for &a in &[9u32, 2, 7, 0] {
            b.post_vector(3, a, BitVec::zeros(2));
        }
        let authors: Vec<u32> = b.vectors(3).into_iter().map(|(a, _)| a).collect();
        assert_eq!(authors, vec![0, 2, 7, 9]);
    }

    #[test]
    fn scopes_are_isolated() {
        let b = Board::new();
        b.post_vector(1, 0, BitVec::zeros(2));
        b.post_vector(2, 1, BitVec::ones(2));
        assert_eq!(b.vectors(1).len(), 1);
        assert_eq!(b.vectors(2).len(), 1);
        assert!(b.vector_of(1, 1).is_none());
        assert!(b.vector_of(2, 1).is_some());
    }

    #[test]
    fn claim_slots_overwrite() {
        let b = Board::new();
        b.post_claim(1, 3, 10, true);
        b.post_claim(1, 3, 10, false);
        b.post_claim(1, 4, 10, true);
        let cs = b.claims(1, 10);
        assert_eq!(cs, vec![(3, false), (4, true)]);
        assert!(b.claims(1, 11).is_empty());
        assert!(b.claims(2, 10).is_empty());
        assert_eq!(b.stats().claim_posts, 3);
        assert_eq!(b.stats().live_claim_slots, 2);
    }

    #[test]
    fn scope_claims_enumerates_sorted_and_isolated() {
        let b = Board::new();
        b.post_claim(1, 4, 10, true);
        b.post_claim(1, 3, 10, false);
        b.post_claim(1, 0, 2, true);
        b.post_claim(1, 0, 2, false); // overwrite, not a second triple
        b.post_claim(2, 9, 9, true); // other scope
        assert_eq!(
            b.scope_claims(1),
            vec![(2, 0, false), (10, 3, false), (10, 4, true)],
            "sorted by (object, author), last write wins, scopes isolated"
        );
        assert_eq!(b.scope_claims(3), vec![]);
        let scope = b.scope(&[1, 2]);
        scope.post_claim(5, 7, true);
        assert_eq!(scope.all_claims(), vec![(7, 5, true)]);
    }

    #[test]
    fn scope_handle_posts_and_retires() {
        let b = Board::new();
        let scope = b.scope(&[1, 2]);
        scope.post_vector(0, BitVec::zeros(4));
        scope.post_claim(0, 9, true);
        assert_eq!(scope.id(), scope_id(&[1, 2]));
        assert_eq!(scope.vectors().len(), 1);
        assert_eq!(scope.claims(9).len(), 1);
        scope.retire();
        assert!(b.vectors(scope_id(&[1, 2])).is_empty());
        assert!(b.claims(scope_id(&[1, 2]), 9).is_empty());
        let s = b.stats();
        assert_eq!(s.live_vector_slots, 0);
        assert_eq!(s.live_claim_slots, 0);
        assert_eq!(s.peak_vector_slots, 1, "peak survives retirement");
        assert_eq!(s.peak_claim_slots, 1);
        assert_eq!(s.retired_scopes, 1);
        assert_eq!(s.live_slots(), 0, "live_slots sums both slot kinds");
    }

    #[test]
    fn retirement_tracks_peak_not_total() {
        let b = Board::new();
        for step in 0..10u64 {
            let scope = b.scope(&[7, step]);
            for a in 0..4u32 {
                scope.post_vector(a, BitVec::zeros(2));
                scope.post_claim(a, 0, true);
            }
            scope.retire();
        }
        let s = b.stats();
        assert_eq!(s.vector_posts, 40, "posts are cumulative");
        assert_eq!(s.peak_vector_slots, 4, "peak is the per-step working set");
        assert_eq!(s.peak_claim_slots, 4);
        assert_eq!(s.live_vector_slots, 0);
        assert_eq!(s.retired_scopes, 10);
    }

    #[test]
    fn retire_prefix_releases_subtree_only() {
        let b = Board::new();
        b.scope(&[5, 0, 1]).post_vector(0, BitVec::zeros(1));
        b.scope(&[5, 0, 2]).post_claim(1, 3, false);
        b.scope(&[5, 1]).post_vector(2, BitVec::zeros(1));
        b.retire_prefix(&[5, 0]);
        let s = b.stats();
        assert_eq!(s.live_vector_slots, 1, "sibling subtree untouched");
        assert_eq!(s.live_claim_slots, 0);
        assert_eq!(s.retired_scopes, 2);
        assert_eq!(b.vectors(scope_id(&[5, 1])).len(), 1);
        // Idempotent.
        b.retire_prefix(&[5, 0]);
        assert_eq!(b.stats().retired_scopes, 2);
    }

    #[test]
    fn retiring_unregistered_scope_frees_raw_posts() {
        let b = Board::new();
        b.post_vector(77, 0, BitVec::zeros(1));
        b.retire_scope(77);
        assert_eq!(b.stats().live_vector_slots, 0);
        assert_eq!(b.stats().retired_scopes, 1);
        // Nothing there: no-op, not another retirement.
        b.retire_scope(77);
        assert_eq!(b.stats().retired_scopes, 1);
    }

    #[test]
    fn concurrent_posts_all_land() {
        let b = Board::new();
        std::thread::scope(|s| {
            for t in 0..8u32 {
                let b = &b;
                s.spawn(move || {
                    for i in 0..50u32 {
                        b.post_vector(7, t * 50 + i, BitVec::zeros(1));
                        b.post_claim(8, t * 50 + i, i % 5, true);
                    }
                });
            }
        });
        assert_eq!(b.vectors(7).len(), 400);
        let total_claims: usize = (0..5).map(|o| b.claims(8, o).len()).sum();
        assert_eq!(total_claims, 400);
        let s = b.stats();
        assert_eq!(s.live_vector_slots, 400);
        assert_eq!(s.peak_vector_slots, 400);
        assert_eq!(s.live_claim_slots, 400);
    }

    #[test]
    fn scope_id_distinguishes_paths() {
        assert_eq!(scope_id(&[1, 2, 3]), scope_id(&[1, 2, 3]));
        assert_ne!(scope_id(&[1, 2, 3]), scope_id(&[3, 2, 1]));
        assert_ne!(scope_id(&[1]), scope_id(&[1, 0]));
        assert_ne!(scope_id(&[]), scope_id(&[0]));
    }
}
