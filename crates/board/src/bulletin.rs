//! Authenticated-slot bulletin board.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use byzscore_bitset::BitVec;
use parking_lot::Mutex;

const SHARD_COUNT: usize = 64;

/// Claims about one object in one scope: `(author, claimed bit)` pairs.
type ClaimSlot = Vec<(u32, bool)>;

/// A public bulletin board with authenticated single-writer slots.
///
/// The paper's model: "Players have access to a public bulletin board…
/// A dishonest player cannot modify the data written by honest players."
/// We realize this with *slots*: a vector slot is keyed by
/// `(scope, author)`, a claim slot by `(scope, object, author)`. The runtime
/// passes the author id on behalf of the executing player, so impersonation
/// is impossible by construction, and one-slot-per-author means a Byzantine
/// player can lie but cannot vote twice in any tally.
///
/// Writes from concurrently executing players land in sharded hash maps;
/// reads return snapshots sorted by author id so every consumer is
/// deterministic regardless of scheduling.
///
/// `scope` values identify a protocol step instance (e.g. one `ZeroRadius`
/// recursion node in one diameter iteration); producers derive them with
/// [`scope_id`].
pub struct Board {
    vectors: Vec<Mutex<HashMap<(u64, u32), BitVec>>>,
    claims: Vec<Mutex<HashMap<(u64, u32), ClaimSlot>>>,
    vector_posts: AtomicU64,
    claim_posts: AtomicU64,
}

/// Counters describing board traffic (communication-cost reporting, §8's
/// open question about communication complexity).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BoardStats {
    /// Total vector posts accepted (including slot overwrites).
    pub vector_posts: u64,
    /// Total claim posts accepted.
    pub claim_posts: u64,
}

impl Board {
    /// Empty board.
    pub fn new() -> Self {
        Board {
            vectors: (0..SHARD_COUNT)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            claims: (0..SHARD_COUNT)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            vector_posts: AtomicU64::new(0),
            claim_posts: AtomicU64::new(0),
        }
    }

    #[inline]
    fn shard_of(scope: u64, salt: u32) -> usize {
        // Cheap mix; shard only needs to spread load.
        let h = scope ^ u64::from(salt).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        (h as usize >> 3) % SHARD_COUNT
    }

    /// Post (or overwrite) `author`'s vector in `scope`'s slot.
    pub fn post_vector(&self, scope: u64, author: u32, v: BitVec) {
        self.vector_posts.fetch_add(1, Ordering::Relaxed);
        self.vectors[Self::shard_of(scope, author)]
            .lock()
            .insert((scope, author), v);
    }

    /// All vectors posted in `scope`, sorted by author id.
    pub fn vectors(&self, scope: u64) -> Vec<(u32, BitVec)> {
        let mut out: Vec<(u32, BitVec)> = Vec::new();
        for shard in &self.vectors {
            let guard = shard.lock();
            out.extend(
                guard
                    .iter()
                    .filter(|((s, _), _)| *s == scope)
                    .map(|(&(_, a), v)| (a, v.clone())),
            );
        }
        out.sort_unstable_by_key(|&(a, _)| a);
        out
    }

    /// `author`'s vector in `scope`, if posted.
    pub fn vector_of(&self, scope: u64, author: u32) -> Option<BitVec> {
        self.vectors[Self::shard_of(scope, author)]
            .lock()
            .get(&(scope, author))
            .cloned()
    }

    /// Post `author`'s bit claim about `object` in `scope`. One slot per
    /// `(scope, object, author)`: re-posting overwrites.
    pub fn post_claim(&self, scope: u64, author: u32, object: u32, value: bool) {
        self.claim_posts.fetch_add(1, Ordering::Relaxed);
        let mut guard = self.claims[Self::shard_of(scope, object)].lock();
        let entries = guard.entry((scope, object)).or_default();
        match entries.iter_mut().find(|(a, _)| *a == author) {
            Some(slot) => slot.1 = value,
            None => entries.push((author, value)),
        }
    }

    /// All claims about `object` in `scope`, sorted by author id.
    pub fn claims(&self, scope: u64, object: u32) -> Vec<(u32, bool)> {
        let guard = self.claims[Self::shard_of(scope, object)].lock();
        let mut out = guard.get(&(scope, object)).cloned().unwrap_or_default();
        out.sort_unstable_by_key(|&(a, _)| a);
        out
    }

    /// Traffic counters.
    pub fn stats(&self) -> BoardStats {
        BoardStats {
            vector_posts: self.vector_posts.load(Ordering::Relaxed),
            claim_posts: self.claim_posts.load(Ordering::Relaxed),
        }
    }
}

impl Default for Board {
    fn default() -> Self {
        Self::new()
    }
}

/// Derive a scope id from a path of step identifiers (protocol step, loop
/// indices, recursion-node ids). Same mixing as seed derivation so distinct
/// paths do not collide in practice.
pub fn scope_id(path: &[u64]) -> u64 {
    let mut h: u64 = 0x243f_6a88_85a3_08d3;
    for &t in path {
        h ^= t.wrapping_add(0x9e37_79b9_7f4a_7c15).rotate_left(23);
        h = h.wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
        h ^= h >> 29;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzscore_bitset::Bits;

    #[test]
    fn vector_slots_overwrite_not_duplicate() {
        let b = Board::new();
        b.post_vector(1, 5, BitVec::zeros(4));
        b.post_vector(1, 5, BitVec::ones(4));
        let vs = b.vectors(1);
        assert_eq!(vs.len(), 1, "one slot per author");
        assert_eq!(vs[0].0, 5);
        assert_eq!(vs[0].1.count_ones(), 4, "last write wins");
        assert_eq!(b.stats().vector_posts, 2);
    }

    #[test]
    fn vectors_sorted_by_author() {
        let b = Board::new();
        for &a in &[9u32, 2, 7, 0] {
            b.post_vector(3, a, BitVec::zeros(2));
        }
        let authors: Vec<u32> = b.vectors(3).into_iter().map(|(a, _)| a).collect();
        assert_eq!(authors, vec![0, 2, 7, 9]);
    }

    #[test]
    fn scopes_are_isolated() {
        let b = Board::new();
        b.post_vector(1, 0, BitVec::zeros(2));
        b.post_vector(2, 1, BitVec::ones(2));
        assert_eq!(b.vectors(1).len(), 1);
        assert_eq!(b.vectors(2).len(), 1);
        assert!(b.vector_of(1, 1).is_none());
        assert!(b.vector_of(2, 1).is_some());
    }

    #[test]
    fn claim_slots_overwrite() {
        let b = Board::new();
        b.post_claim(1, 3, 10, true);
        b.post_claim(1, 3, 10, false);
        b.post_claim(1, 4, 10, true);
        let cs = b.claims(1, 10);
        assert_eq!(cs, vec![(3, false), (4, true)]);
        assert!(b.claims(1, 11).is_empty());
        assert!(b.claims(2, 10).is_empty());
    }

    #[test]
    fn concurrent_posts_all_land() {
        let b = Board::new();
        std::thread::scope(|s| {
            for t in 0..8u32 {
                let b = &b;
                s.spawn(move || {
                    for i in 0..50u32 {
                        b.post_vector(7, t * 50 + i, BitVec::zeros(1));
                        b.post_claim(8, t * 50 + i, i % 5, true);
                    }
                });
            }
        });
        assert_eq!(b.vectors(7).len(), 400);
        let total_claims: usize = (0..5).map(|o| b.claims(8, o).len()).sum();
        assert_eq!(total_claims, 400);
    }

    #[test]
    fn scope_id_distinguishes_paths() {
        assert_eq!(scope_id(&[1, 2, 3]), scope_id(&[1, 2, 3]));
        assert_ne!(scope_id(&[1, 2, 3]), scope_id(&[3, 2, 1]));
        assert_ne!(scope_id(&[1]), scope_id(&[1, 0]));
        assert_ne!(scope_id(&[]), scope_id(&[0]));
    }
}
