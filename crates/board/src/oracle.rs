//! The probe oracle: metered access to hidden preferences.

use std::sync::atomic::{AtomicU64, Ordering};

use byzscore_bitset::BitMatrix;

use crate::{LedgerSnapshot, ProbeLedger};

/// The only sanctioned path from protocol code to the hidden truth matrix.
///
/// "Every time a player probes an object, it learns its preference for that
/// object" (§2). Each call to [`Oracle::probe`] returns `v(player)[object]`
/// and charges the probe to `player` in the ledger. Protocol honesty about
/// budgets is then checkable after the fact: experiments assert
/// `ledger.max() ≤ c · B · polylog(n)`.
///
/// # Memoization
///
/// By default the oracle is *memoized*: a player re-probing an object it
/// has already evaluated is not charged again — players remember their own
/// opinions, so only *first* evaluations cost anything. This matches what a
/// real deployment pays (a reviewer reads each paper at most once) and only
/// tightens the paper's upper bounds, which are proved without dedup.
/// [`Oracle::new_uncached`] restores raw per-call accounting for analyses
/// that want the paper's literal counting.
pub struct Oracle<'a> {
    truth: &'a BitMatrix,
    ledger: ProbeLedger,
    /// One bit per (player, object): probed before? `None` = uncached mode.
    seen: Option<Vec<AtomicU64>>,
    cols: usize,
}

impl<'a> Oracle<'a> {
    /// Memoized oracle over `truth` with a fresh ledger (the default).
    pub fn new(truth: &'a BitMatrix) -> Self {
        let bits = truth.rows() * truth.cols();
        Oracle {
            ledger: ProbeLedger::new(truth.rows()),
            seen: Some((0..bits.div_ceil(64)).map(|_| AtomicU64::new(0)).collect()),
            cols: truth.cols(),
            truth,
        }
    }

    /// Oracle charging every probe call, including repeats (the paper's
    /// literal accounting).
    pub fn new_uncached(truth: &'a BitMatrix) -> Self {
        Oracle {
            ledger: ProbeLedger::new(truth.rows()),
            seen: None,
            cols: truth.cols(),
            truth,
        }
    }

    /// Number of players.
    pub fn players(&self) -> usize {
        self.truth.rows()
    }

    /// Number of objects.
    pub fn objects(&self) -> usize {
        self.truth.cols()
    }

    /// Player `player` probes `object`, learning its own true preference.
    /// Charged to the ledger (first evaluation only, in memoized mode).
    #[inline]
    pub fn probe(&self, player: u32, object: u32) -> bool {
        let charge = match &self.seen {
            None => true,
            Some(seen) => {
                let bit = player as usize * self.cols + object as usize;
                let mask = 1u64 << (bit % 64);
                let prev = seen[bit / 64].fetch_or(mask, Ordering::Relaxed);
                prev & mask == 0
            }
        };
        if charge {
            self.ledger.record(player);
        }
        self.truth.get(player as usize, object as usize)
    }

    /// Probe accounting.
    pub fn ledger(&self) -> &ProbeLedger {
        &self.ledger
    }

    /// Convenience: snapshot of the ledger.
    pub fn snapshot(&self) -> LedgerSnapshot {
        self.ledger.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzscore_bitset::BitVec;

    #[test]
    fn probe_returns_truth_and_counts() {
        let truth = BitMatrix::from_rows(&[
            BitVec::from_bools(&[true, false]),
            BitVec::from_bools(&[false, true]),
        ]);
        let o = Oracle::new(&truth);
        assert!(o.probe(0, 0));
        assert!(!o.probe(0, 1));
        assert!(!o.probe(1, 0));
        assert!(o.probe(1, 1));
        assert_eq!(o.ledger().count(0), 2);
        assert_eq!(o.ledger().count(1), 2);
        assert_eq!(o.players(), 2);
        assert_eq!(o.objects(), 2);
    }

    #[test]
    fn memoized_probes_charge_once() {
        let truth = BitMatrix::zeros(2, 3);
        let o = Oracle::new(&truth);
        for _ in 0..10 {
            assert!(!o.probe(0, 1));
        }
        assert_eq!(o.ledger().count(0), 1, "repeat evaluations are free");
        // Distinct objects still charge.
        o.probe(0, 0);
        o.probe(0, 2);
        assert_eq!(o.ledger().count(0), 3);
        // Other players are independent.
        o.probe(1, 1);
        assert_eq!(o.ledger().count(1), 1);
    }

    #[test]
    fn uncached_probes_keep_charging() {
        let truth = BitMatrix::zeros(1, 1);
        let o = Oracle::new_uncached(&truth);
        for _ in 0..10 {
            assert!(!o.probe(0, 0));
        }
        assert_eq!(o.ledger().count(0), 10);
    }

    #[test]
    fn memoized_concurrent_charging_is_exact() {
        let truth = BitMatrix::zeros(4, 256);
        let o = Oracle::new(&truth);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let o = &o;
                s.spawn(move || {
                    for rep in 0..3 {
                        let _ = rep;
                        for obj in 0..256u32 {
                            o.probe(t, obj);
                        }
                    }
                });
            }
        });
        // Each player touched 256 distinct objects, three times each.
        for p in 0..4 {
            assert_eq!(o.ledger().count(p), 256);
        }
    }
}
