//! The probe oracle: metered access to hidden preferences.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::{IntoTruthSource, LedgerSnapshot, ProbeLedger, TruthSource};

/// Memoization bitmap cap: above this many `players × objects` bits the
/// dense "seen" bitmap would itself become the memory wall the streaming
/// truth backends exist to avoid, so [`Oracle::new`] degrades to raw
/// per-call accounting (2²⁸ bits = 32 MB).
const MEMO_LIMIT_BITS: usize = 1 << 28;

/// The only sanctioned path from protocol code to the hidden truth.
///
/// "Every time a player probes an object, it learns its preference for that
/// object" (§2). Each call to [`Oracle::probe`] returns `v(player)[object]`
/// and charges the probe to `player` in the ledger. Protocol honesty about
/// budgets is then checkable after the fact: experiments assert
/// `ledger.max() ≤ c · B · polylog(n)`.
///
/// The oracle *owns* its [`TruthSource`] (shared via `Arc`), so it carries
/// no borrow of the instance: substrates plug in behind the trait —
/// [`crate::DenseTruth`] for materialized matrices,
/// [`crate::ProceduralTruth`] for `O(1)`-memory planted-cluster worlds.
///
/// # Memoization
///
/// By default the oracle is *memoized*: a player re-probing an object it
/// has already evaluated is not charged again — players remember their own
/// opinions, so only *first* evaluations cost anything. This matches what a
/// real deployment pays (a reviewer reads each paper at most once) and only
/// tightens the paper's upper bounds, which are proved without dedup.
/// The memo bitmap is dense (`players × objects` bits); beyond
/// 2²⁸ bits [`Oracle::new`] automatically falls back to uncached
/// accounting so giant streaming worlds stay `O(n)`-memory.
/// [`Oracle::new_uncached`] forces raw per-call accounting for analyses
/// that want the paper's literal counting.
pub struct Oracle {
    truth: Arc<dyn TruthSource>,
    ledger: ProbeLedger,
    /// One bit per (player, object): probed before? `None` = uncached mode.
    seen: Option<Vec<AtomicU64>>,
    cols: usize,
}

impl Oracle {
    /// Memoized oracle over `truth` with a fresh ledger (the default; falls
    /// back to uncached accounting past the memo bitmap cap, see type docs).
    pub fn new(truth: impl IntoTruthSource) -> Self {
        let truth = truth.into_truth_source();
        let bits = truth.players() * truth.objects();
        let seen = (bits <= MEMO_LIMIT_BITS)
            .then(|| (0..bits.div_ceil(64)).map(|_| AtomicU64::new(0)).collect());
        Oracle {
            ledger: ProbeLedger::new(truth.players()),
            seen,
            cols: truth.objects(),
            truth,
        }
    }

    /// Oracle charging every probe call, including repeats (the paper's
    /// literal accounting).
    pub fn new_uncached(truth: impl IntoTruthSource) -> Self {
        let truth = truth.into_truth_source();
        Oracle {
            ledger: ProbeLedger::new(truth.players()),
            seen: None,
            cols: truth.objects(),
            truth,
        }
    }

    /// Number of players.
    pub fn players(&self) -> usize {
        self.truth.players()
    }

    /// Number of objects.
    pub fn objects(&self) -> usize {
        self.truth.objects()
    }

    /// The underlying truth source (for *metrics*, never for protocol code —
    /// reading it does not charge the ledger).
    pub fn truth(&self) -> &Arc<dyn TruthSource> {
        &self.truth
    }

    /// Player `player` probes `object`, learning its own true preference.
    /// Charged to the ledger (first evaluation only, in memoized mode).
    #[inline]
    pub fn probe(&self, player: u32, object: u32) -> bool {
        let charge = match &self.seen {
            None => true,
            Some(seen) => {
                let bit = player as usize * self.cols + object as usize;
                let mask = 1u64 << (bit % 64);
                let prev = seen[bit / 64].fetch_or(mask, Ordering::Relaxed);
                prev & mask == 0
            }
        };
        if charge {
            self.ledger.record(player);
        }
        self.truth.value(player, object)
    }

    /// Whether repeat probes are deduplicated (memoized mode) or charged
    /// per call (literal accounting). [`Oracle::new`] picks memoized while
    /// the seen-bitmap fits; consumers comparing probe counts across world
    /// sizes should check this so a mode switch is never mistaken for a
    /// probe-complexity knee.
    pub fn is_memoized(&self) -> bool {
        self.seen.is_some()
    }

    /// Probe accounting.
    pub fn ledger(&self) -> &ProbeLedger {
        &self.ledger
    }

    /// Convenience: snapshot of the ledger.
    pub fn snapshot(&self) -> LedgerSnapshot {
        self.ledger.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byzscore_bitset::{BitMatrix, BitVec};

    #[test]
    fn probe_returns_truth_and_counts() {
        let truth = BitMatrix::from_rows(&[
            BitVec::from_bools(&[true, false]),
            BitVec::from_bools(&[false, true]),
        ]);
        let o = Oracle::new(&truth);
        assert!(o.probe(0, 0));
        assert!(!o.probe(0, 1));
        assert!(!o.probe(1, 0));
        assert!(o.probe(1, 1));
        assert_eq!(o.ledger().count(0), 2);
        assert_eq!(o.ledger().count(1), 2);
        assert_eq!(o.players(), 2);
        assert_eq!(o.objects(), 2);
    }

    #[test]
    fn memoized_probes_charge_once() {
        let truth = BitMatrix::zeros(2, 3);
        let o = Oracle::new(&truth);
        for _ in 0..10 {
            assert!(!o.probe(0, 1));
        }
        assert_eq!(o.ledger().count(0), 1, "repeat evaluations are free");
        // Distinct objects still charge.
        o.probe(0, 0);
        o.probe(0, 2);
        assert_eq!(o.ledger().count(0), 3);
        // Other players are independent.
        o.probe(1, 1);
        assert_eq!(o.ledger().count(1), 1);
    }

    #[test]
    fn uncached_probes_keep_charging() {
        let truth = BitMatrix::zeros(1, 1);
        let o = Oracle::new_uncached(&truth);
        for _ in 0..10 {
            assert!(!o.probe(0, 0));
        }
        assert_eq!(o.ledger().count(0), 10);
    }

    #[test]
    fn procedural_backend_probes_without_matrix() {
        let spec = crate::ClusterSpec {
            players: 16,
            objects: 32,
            clusters: 2,
            diameter: 4,
            seed: 5,
        };
        let dense = Oracle::new(spec.materialize());
        let streaming = Oracle::new(crate::ProceduralTruth::new(spec));
        for p in 0..16u32 {
            for o in 0..32u32 {
                assert_eq!(dense.probe(p, o), streaming.probe(p, o), "({p},{o})");
            }
        }
        assert_eq!(dense.snapshot(), streaming.snapshot());
    }

    #[test]
    fn memoized_concurrent_charging_is_exact() {
        let truth = BitMatrix::zeros(4, 256);
        let o = Oracle::new(&truth);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let o = &o;
                s.spawn(move || {
                    for rep in 0..3 {
                        let _ = rep;
                        for obj in 0..256u32 {
                            o.probe(t, obj);
                        }
                    }
                });
            }
        });
        // Each player touched 256 distinct objects, three times each.
        for p in 0..4 {
            assert_eq!(o.ledger().count(p), 256);
        }
    }
}
