//! Deterministic phase-parallelism over players, under one hierarchical
//! work budget.
//!
//! Every step of Figures 1–2 has the shape "all players do X"; the
//! simulator executes such phases with scoped threads over player ranges.
//! Outputs are collected *by player index*, so results are bit-identical
//! regardless of the number of worker threads — reproducibility is a
//! property the experiments rely on (see `tests/determinism.rs`).
//!
//! # The permit pool
//!
//! Parallel regions nest: the engine fans out over experiments, an
//! experiment over sweep points, a sweep point over protocol phases. A
//! per-level worker cap would multiply across levels (engine × sweep ×
//! phase workers); instead every region — coarse or fine — draws *extra*
//! workers from one process-wide pool of `budget − 1` permits (the
//! region's own calling thread is always free, because it is either the
//! root thread or a worker that already holds a permit). A region takes
//! what is available without waiting, runs with `1 + taken` workers, and
//! each worker returns its permit the moment it runs out of chunks, so
//! permits flow down the hierarchy to whatever has runnable work. Total
//! live workers never exceed the budget, at any nesting depth, and no
//! acquisition blocks — the pool cannot deadlock.
//!
//! # Chunk-level work stealing
//!
//! Within a region, work is not pre-assigned: items are cut into chunks
//! (oversplit ~4× relative to the budget) and workers *claim* chunks from
//! a shared atomic cursor. Two consequences: a straggler chunk no longer
//! serializes the tail of the phase, and — because every worker re-checks
//! the permit pool after each chunk — a phase that started while the pool
//! was drained recruits extra workers the moment permits free up
//! mid-phase, instead of staying sequential to the end. Outputs are still
//! collected *by item index*, so the claim order never affects results.
//!
//! The budget defaults to all available cores and can be capped
//! process-wide with [`set_thread_limit`] (plumbed from the bench CLI's
//! `--threads` flag); the cap affects only speed, never results.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide cap on total workers; 0 means "no cap" (use all
/// available cores).
static THREAD_LIMIT: AtomicUsize = AtomicUsize::new(0);

/// Cap the total number of worker threads across every nested parallel
/// region (`None` restores the default of all available cores).
///
/// The cap is global and takes effect for subsequently started phases;
/// results are identical under any cap by construction. `Some(0)` is
/// clamped to `Some(1)` (fully sequential) — zero is the internal
/// "uncapped" sentinel and must not invert a caller's request for
/// minimal parallelism.
pub fn set_thread_limit(limit: Option<usize>) {
    THREAD_LIMIT.store(limit.map_or(0, |n| n.max(1)), Ordering::Relaxed);
}

/// The current cap set by [`set_thread_limit`], if any.
pub fn thread_limit() -> Option<usize> {
    match THREAD_LIMIT.load(Ordering::Relaxed) {
        0 => None,
        n => Some(n),
    }
}

/// Extra workers currently live across every level of the region
/// hierarchy (beyond each region's own calling thread).
static EXTRA_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// The effective worker budget: the cap, or all available cores.
fn budget() -> usize {
    thread_limit().unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |v| v.get()))
}

/// Phases below this many items run sequentially — thread spawn costs more
/// than the work.
const SEQ_CUTOFF: usize = 32;

/// A batch of extra-worker permits drawn from the global pool. Dropping
/// returns the remaining permits; [`Permits::split_one`] peels a single
/// permit off so each worker can release its own as soon as it finishes.
struct Permits(usize);

impl Permits {
    /// Take up to `want` permits without waiting (possibly zero).
    fn acquire(want: usize) -> Permits {
        if want == 0 {
            return Permits(0);
        }
        let pool = budget().saturating_sub(1);
        let mut cur = EXTRA_WORKERS.load(Ordering::Relaxed);
        loop {
            let take = want.min(pool.saturating_sub(cur));
            if take == 0 {
                return Permits(0);
            }
            match EXTRA_WORKERS.compare_exchange_weak(
                cur,
                cur + take,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Permits(take),
                Err(now) => cur = now,
            }
        }
    }

    /// Move one held permit into its own batch.
    fn split_one(&mut self) -> Permits {
        debug_assert!(self.0 > 0, "no permit left to split");
        self.0 -= 1;
        Permits(1)
    }
}

impl Drop for Permits {
    fn drop(&mut self) {
        if self.0 > 0 {
            EXTRA_WORKERS.fetch_sub(self.0, Ordering::Relaxed);
        }
    }
}

/// Chunk oversplit factor: fine phases are cut into roughly
/// `budget × OVERSPLIT` chunks so late-joining workers have something to
/// steal and stragglers do not serialize the tail.
const OVERSPLIT: usize = 4;

/// Smallest fine-phase chunk worth its claim overhead.
const MIN_CHUNK: usize = 16;

/// Shared state of one stealing region: a claim cursor over `n_chunks`
/// chunks plus the per-chunk work closure. Chunks are claimed with a
/// `fetch_add`, so each is processed exactly once, by whichever worker
/// gets there first.
struct Steal<'a> {
    work: &'a (dyn Fn(usize) + Sync),
    next: AtomicUsize,
    n_chunks: usize,
}

/// One worker: claim chunks until the cursor runs out. After finishing a
/// chunk, if unclaimed chunks remain, try to recruit extra workers from
/// the permit pool — permits freed by other regions *mid-phase* (the old
/// fixed-assignment fork only looked at the pool once, at region start)
/// are picked up here, so a phase that began while the pool was drained
/// regains parallelism as soon as permits return.
fn steal_worker<'scope, 'env>(
    scope: &'scope std::thread::Scope<'scope, 'env>,
    st: &'env Steal<'env>,
) {
    loop {
        let c = st.next.fetch_add(1, Ordering::Relaxed);
        if c >= st.n_chunks {
            return;
        }
        (st.work)(c);
        let claimed = st.next.load(Ordering::Relaxed);
        if claimed < st.n_chunks {
            let mut extra = Permits::acquire(st.n_chunks - claimed);
            while extra.0 > 0 {
                let permit = extra.split_one();
                scope.spawn(move || {
                    let _permit = permit;
                    steal_worker(scope, st);
                });
            }
        }
    }
}

/// Run `work(c)` for every chunk `c ∈ 0..n_chunks` under the permit pool,
/// with chunk-level stealing and mid-phase worker recruitment.
fn run_stealing(n_chunks: usize, work: &(dyn Fn(usize) + Sync)) {
    let shared = Steal {
        work,
        next: AtomicUsize::new(0),
        n_chunks,
    };
    let mut permits = Permits::acquire(n_chunks.saturating_sub(1));
    std::thread::scope(|scope| {
        // Each worker carries its own permit and frees it on exit, so
        // siblings (or nested phases) can pick it up before the whole
        // region joins.
        while permits.0 > 0 {
            let permit = permits.split_one();
            let shared = &shared;
            scope.spawn(move || {
                let _permit = permit;
                steal_worker(scope, shared);
            });
        }
        // The calling thread is always a worker (it holds no permit).
        steal_worker(scope, &shared);
    });
}

/// Chunk size for a fine region of `n` items: oversplit relative to the
/// whole budget so work can migrate, but never below [`MIN_CHUNK`].
fn fine_chunk(n: usize) -> usize {
    n.div_ceil(budget() * OVERSPLIT).max(MIN_CHUNK)
}

/// Shared fork: run `f` over `0..n`, order-collected. `coarse` regions
/// skip the tiny-phase sequential cutoff (whole protocol runs are worth a
/// thread each even at 2 items) and use single-item chunks.
fn par_run<T, F>(n: usize, coarse: bool, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    if !coarse && n < SEQ_CUTOFF {
        return (0..n).map(f).collect();
    }
    let chunk = if coarse { 1 } else { fine_chunk(n) };
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    // Chunks are claimed uniquely via the cursor, so each Mutex is locked
    // exactly once and never contended — it exists to hand the disjoint
    // output slices across threads safely.
    let slots: Vec<Mutex<&mut [Option<T>]>> = out.chunks_mut(chunk).map(Mutex::new).collect();
    let work = |c: usize| {
        let start = c * chunk;
        let mut slice = slots[c].lock().expect("chunk mutex");
        for (i, slot) in slice.iter_mut().enumerate() {
            *slot = Some(f(start + i));
        }
    };
    run_stealing(slots.len(), &work);
    drop(slots);
    out.into_iter()
        .map(|s| s.expect("worker filled slot"))
        .collect()
}

/// Mutate every item of `items` in place, in parallel: `f(i, &mut
/// items[i])`, called exactly once per item. The in-place sibling of
/// [`par_map_items`] for phases that advance per-player state (the fused
/// `RSelect` tournaments) instead of producing fresh vectors. Same
/// determinism contract: items are partitioned by index, so results never
/// depend on the worker count.
pub fn par_update_items<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = items.len();
    if n == 0 {
        return;
    }
    if n < SEQ_CUTOFF {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let chunk = fine_chunk(n);
    let slots: Vec<Mutex<&mut [T]>> = items.chunks_mut(chunk).map(Mutex::new).collect();
    let work = |c: usize| {
        let start = c * chunk;
        let mut slice = slots[c].lock().expect("chunk mutex");
        for (i, item) in slice.iter_mut().enumerate() {
            f(start + i, item);
        }
    };
    run_stealing(slots.len(), &work);
}

/// Apply `f` to every player index in `0..n`, in parallel, returning results
/// in player order.
///
/// `f` must be `Sync` (players share read-only state plus the internally
/// synchronized board/ledger) and is called exactly once per player.
pub fn par_map_players<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_run(n, false, f)
}

/// Apply `f` to each item of `items` in parallel, preserving order.
pub fn par_map_items<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    par_run(items.len(), false, |i| f(&items[i]))
}

/// Apply `f` to each item in parallel like [`par_map_items`], but without
/// the tiny-phase sequential cutoff: intended for *coarse* work items
/// (whole experiments, protocol runs, sweep points) where even 2–8 items
/// are worth a thread each. Coarse and fine regions share the one permit
/// pool (module docs), so nesting coarse maps never multiplies worker
/// counts. Results are order-preserving, so output is bit-identical under
/// any thread count.
pub fn par_map_coarse<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    par_run(items.len(), true, |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_in_player_order() {
        let out = par_map_players(1000, |p| p * 2);
        assert_eq!(out.len(), 1000);
        for (p, v) in out.iter().enumerate() {
            assert_eq!(*v, p * 2);
        }
    }

    #[test]
    fn each_player_called_once() {
        let calls = AtomicUsize::new(0);
        let out = par_map_players(257, |p| {
            calls.fetch_add(1, Ordering::Relaxed);
            p
        });
        assert_eq!(calls.load(Ordering::Relaxed), 257);
        assert_eq!(out.len(), 257);
    }

    #[test]
    fn empty_and_tiny() {
        assert!(par_map_players(0, |p| p).is_empty());
        assert_eq!(par_map_players(1, |p| p + 1), vec![1]);
    }

    #[test]
    fn par_map_items_preserves_order() {
        let items: Vec<u64> = (0..500).collect();
        let out = par_map_items(&items, |&x| x * x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i * i) as u64);
        }
    }

    #[test]
    fn matches_sequential_results() {
        let seq: Vec<usize> = (0..300usize).map(|p| p.wrapping_mul(31) ^ 7).collect();
        let par = par_map_players(300, |p: usize| p.wrapping_mul(31) ^ 7);
        assert_eq!(seq, par);
    }

    #[test]
    fn nested_regions_share_one_pool() {
        // A coarse fan-out whose items run fine phases: results must be
        // identical to the sequential composition at whatever worker
        // counts the pool hands out.
        let items: Vec<usize> = (0..6).collect();
        let nested = par_map_coarse(&items, |&i| {
            par_map_players(100, move |p| p * i)
                .into_iter()
                .sum::<usize>()
        });
        let flat: Vec<usize> = items
            .iter()
            .map(|&i| (0..100).map(|p| p * i).sum::<usize>())
            .collect();
        assert_eq!(nested, flat);
    }

    #[test]
    fn par_update_items_mutates_in_place_once_each() {
        let mut items: Vec<usize> = (0..1000).collect();
        let calls = AtomicUsize::new(0);
        par_update_items(&mut items, |i, v| {
            calls.fetch_add(1, Ordering::Relaxed);
            *v += i;
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1000);
        for (i, v) in items.iter().enumerate() {
            assert_eq!(*v, 2 * i);
        }
        // Tiny inputs take the sequential path.
        let mut small = vec![7usize; 3];
        par_update_items(&mut small, |i, v| *v += i);
        assert_eq!(small, vec![7, 8, 9]);
        par_update_items(&mut [] as &mut [usize], |_, _: &mut usize| {});
    }

    #[test]
    fn stealing_covers_every_chunk_exactly_once() {
        // More chunks than any plausible worker count: the claim cursor
        // must hand out each chunk once no matter who processes it.
        let n = 10_000;
        let out = par_map_players(n, |p| p ^ 0x5a);
        for (p, v) in out.iter().enumerate() {
            assert_eq!(*v, p ^ 0x5a);
        }
    }

    #[test]
    fn permits_respect_the_pool_bound() {
        // Two batches held at once can never exceed the pool (other tests
        // may hold permits concurrently — the bound still applies).
        let pool = budget().saturating_sub(1);
        let a = Permits::acquire(usize::MAX);
        let b = Permits::acquire(usize::MAX);
        assert!(a.0 + b.0 <= pool, "over-acquired: {} + {}", a.0, b.0);
        drop(a);
        drop(b);
        // A split permit releases independently of its parent batch.
        let mut c = Permits::acquire(2);
        if c.0 > 0 {
            let held = c.0;
            let one = c.split_one();
            assert_eq!(one.0 + c.0, held);
            drop(one);
        }
        drop(c);
    }
}
