//! Deterministic phase-parallelism over players.
//!
//! Every step of Figures 1–2 has the shape "all players do X"; the
//! simulator executes such phases with scoped threads over player ranges.
//! Outputs are collected *by player index*, so results are bit-identical
//! regardless of the number of worker threads — reproducibility is a
//! property the experiments rely on (see `tests/determinism.rs`).
//!
//! The worker count defaults to all available cores and can be capped
//! process-wide with [`set_thread_limit`] (plumbed from the bench CLI's
//! `--threads` flag); the cap affects only speed, never results.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide cap on workers per phase; 0 means "no cap" (use all
/// available cores).
static THREAD_LIMIT: AtomicUsize = AtomicUsize::new(0);

/// Cap the number of worker threads used per parallel phase (`None`
/// restores the default of all available cores).
///
/// The cap is global and takes effect for subsequently started phases;
/// results are identical under any cap by construction. `Some(0)` is
/// clamped to `Some(1)` (fully sequential) — zero is the internal
/// "uncapped" sentinel and must not invert a caller's request for
/// minimal parallelism.
pub fn set_thread_limit(limit: Option<usize>) {
    THREAD_LIMIT.store(limit.map_or(0, |n| n.max(1)), Ordering::Relaxed);
}

/// The current cap set by [`set_thread_limit`], if any.
pub fn thread_limit() -> Option<usize> {
    match THREAD_LIMIT.load(Ordering::Relaxed) {
        0 => None,
        n => Some(n),
    }
}

/// Apply `f` to every player index in `0..n`, in parallel, returning results
/// in player order.
///
/// `f` must be `Sync` (players share read-only state plus the internally
/// synchronized board/ledger) and is called exactly once per player.
pub fn par_map_players<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads_for(n);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (t, slot_chunk) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            let start = t * chunk;
            scope.spawn(move || {
                for (i, slot) in slot_chunk.iter_mut().enumerate() {
                    *slot = Some(f(start + i));
                }
            });
        }
    });
    out.into_iter()
        .map(|s| s.expect("worker filled slot"))
        .collect()
}

/// Apply `f` to each item of `items` in parallel, preserving order.
pub fn par_map_items<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let n = items.len();
    let threads = threads_for(n);
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (t, slot_chunk) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            let start = t * chunk;
            scope.spawn(move || {
                for (i, slot) in slot_chunk.iter_mut().enumerate() {
                    *slot = Some(f(&items[start + i]));
                }
            });
        }
    });
    out.into_iter()
        .map(|s| s.expect("worker filled slot"))
        .collect()
}

/// Coarse workers currently fanned out by [`par_map_coarse`] calls.
/// Inner phases divide the thread budget by this, so a sweep of S points
/// whose runs each parallelize over players stays at ≈ budget total
/// workers instead of S × budget.
static COARSE_FANOUT: AtomicUsize = AtomicUsize::new(1);

/// Apply `f` to each item in parallel like [`par_map_items`], but without
/// the tiny-phase sequential cutoff: intended for *coarse* work items
/// (whole protocol runs, sweep points) where even 2–8 items are worth a
/// thread each. While the coarse workers run, *inner* phase parallelism
/// ([`par_map_players`]/[`par_map_items`] called from `f`) shares the
/// process-wide budget: each inner phase gets `budget / fanout` workers,
/// so the total stays within the [`set_thread_limit`] cap. Results are
/// order-preserving, so output is bit-identical under any thread count.
pub fn par_map_coarse<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let n = items.len();
    let cap = thread_limit()
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |v| v.get()));
    let threads = cap.min(n).max(1);
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    // Drop guard so a panicking worker (propagated by thread::scope)
    // cannot leave the fan-out inflated and throttle the whole process.
    struct FanoutGuard(usize);
    impl Drop for FanoutGuard {
        fn drop(&mut self) {
            COARSE_FANOUT.fetch_sub(self.0, Ordering::Relaxed);
        }
    }
    COARSE_FANOUT.fetch_add(threads - 1, Ordering::Relaxed);
    let _guard = FanoutGuard(threads - 1);

    let chunk = n.div_ceil(threads);
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (t, slot_chunk) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            let start = t * chunk;
            scope.spawn(move || {
                for (i, slot) in slot_chunk.iter_mut().enumerate() {
                    *slot = Some(f(&items[start + i]));
                }
            });
        }
    });
    out.into_iter()
        .map(|s| s.expect("worker filled slot"))
        .collect()
}

fn threads_for(n: usize) -> usize {
    if n < 32 {
        // Tiny phases are faster sequentially than through thread spawn.
        return 1;
    }
    let cap = thread_limit()
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |v| v.get()));
    // Share the budget with any coarse fan-out in flight (never affects
    // results, only worker counts).
    let fanout = COARSE_FANOUT.load(Ordering::Relaxed).max(1);
    (cap / fanout).min(n).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_in_player_order() {
        let out = par_map_players(1000, |p| p * 2);
        assert_eq!(out.len(), 1000);
        for (p, v) in out.iter().enumerate() {
            assert_eq!(*v, p * 2);
        }
    }

    #[test]
    fn each_player_called_once() {
        let calls = AtomicUsize::new(0);
        let out = par_map_players(257, |p| {
            calls.fetch_add(1, Ordering::Relaxed);
            p
        });
        assert_eq!(calls.load(Ordering::Relaxed), 257);
        assert_eq!(out.len(), 257);
    }

    #[test]
    fn empty_and_tiny() {
        assert!(par_map_players(0, |p| p).is_empty());
        assert_eq!(par_map_players(1, |p| p + 1), vec![1]);
    }

    #[test]
    fn par_map_items_preserves_order() {
        let items: Vec<u64> = (0..500).collect();
        let out = par_map_items(&items, |&x| x * x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i * i) as u64);
        }
    }

    #[test]
    fn matches_sequential_results() {
        let seq: Vec<usize> = (0..300usize).map(|p| p.wrapping_mul(31) ^ 7).collect();
        let par = par_map_players(300, |p: usize| p.wrapping_mul(31) ^ 7);
        assert_eq!(seq, par);
    }
}
