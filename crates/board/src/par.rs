//! Deterministic phase-parallelism over players, under one hierarchical
//! work budget.
//!
//! Every step of Figures 1–2 has the shape "all players do X"; the
//! simulator executes such phases with scoped threads over player ranges.
//! Outputs are collected *by player index*, so results are bit-identical
//! regardless of the number of worker threads — reproducibility is a
//! property the experiments rely on (see `tests/determinism.rs`).
//!
//! # The permit pool
//!
//! Parallel regions nest: the engine fans out over experiments, an
//! experiment over sweep points, a sweep point over protocol phases. A
//! per-level worker cap would multiply across levels (engine × sweep ×
//! phase workers); instead every region — coarse or fine — draws *extra*
//! workers from one process-wide pool of `budget − 1` permits (the
//! region's own calling thread is always free, because it is either the
//! root thread or a worker that already holds a permit). A region takes
//! what is available without waiting, runs with `1 + taken` workers, and
//! each worker returns its permit the moment its chunk completes, so
//! permits flow down the hierarchy to whatever has runnable work. Total
//! live workers never exceed the budget, at any nesting depth, and no
//! acquisition blocks — the pool cannot deadlock.
//!
//! The budget defaults to all available cores and can be capped
//! process-wide with [`set_thread_limit`] (plumbed from the bench CLI's
//! `--threads` flag); the cap affects only speed, never results.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide cap on total workers; 0 means "no cap" (use all
/// available cores).
static THREAD_LIMIT: AtomicUsize = AtomicUsize::new(0);

/// Cap the total number of worker threads across every nested parallel
/// region (`None` restores the default of all available cores).
///
/// The cap is global and takes effect for subsequently started phases;
/// results are identical under any cap by construction. `Some(0)` is
/// clamped to `Some(1)` (fully sequential) — zero is the internal
/// "uncapped" sentinel and must not invert a caller's request for
/// minimal parallelism.
pub fn set_thread_limit(limit: Option<usize>) {
    THREAD_LIMIT.store(limit.map_or(0, |n| n.max(1)), Ordering::Relaxed);
}

/// The current cap set by [`set_thread_limit`], if any.
pub fn thread_limit() -> Option<usize> {
    match THREAD_LIMIT.load(Ordering::Relaxed) {
        0 => None,
        n => Some(n),
    }
}

/// Extra workers currently live across every level of the region
/// hierarchy (beyond each region's own calling thread).
static EXTRA_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// The effective worker budget: the cap, or all available cores.
fn budget() -> usize {
    thread_limit().unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |v| v.get()))
}

/// Phases below this many items run sequentially — thread spawn costs more
/// than the work.
const SEQ_CUTOFF: usize = 32;

/// A batch of extra-worker permits drawn from the global pool. Dropping
/// returns the remaining permits; [`Permits::split_one`] peels a single
/// permit off so each worker can release its own as soon as it finishes.
struct Permits(usize);

impl Permits {
    /// Take up to `want` permits without waiting (possibly zero).
    fn acquire(want: usize) -> Permits {
        if want == 0 {
            return Permits(0);
        }
        let pool = budget().saturating_sub(1);
        let mut cur = EXTRA_WORKERS.load(Ordering::Relaxed);
        loop {
            let take = want.min(pool.saturating_sub(cur));
            if take == 0 {
                return Permits(0);
            }
            match EXTRA_WORKERS.compare_exchange_weak(
                cur,
                cur + take,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Permits(take),
                Err(now) => cur = now,
            }
        }
    }

    /// Move one held permit into its own batch.
    fn split_one(&mut self) -> Permits {
        debug_assert!(self.0 > 0, "no permit left to split");
        self.0 -= 1;
        Permits(1)
    }

    /// Return every permit above `keep` to the pool immediately.
    fn release_down_to(&mut self, keep: usize) {
        if self.0 > keep {
            EXTRA_WORKERS.fetch_sub(self.0 - keep, Ordering::Relaxed);
            self.0 = keep;
        }
    }
}

impl Drop for Permits {
    fn drop(&mut self) {
        if self.0 > 0 {
            EXTRA_WORKERS.fetch_sub(self.0, Ordering::Relaxed);
        }
    }
}

/// Shared fork: run `f` over `0..n`, order-collected. `coarse` regions
/// skip the tiny-phase sequential cutoff (whole protocol runs are worth a
/// thread each even at 2 items).
fn par_run<T, F>(n: usize, coarse: bool, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    if !coarse && n < SEQ_CUTOFF {
        return (0..n).map(f).collect();
    }
    let mut permits = Permits::acquire(n - 1);
    let threads = permits.0 + 1;
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    // Chunk rounding can leave fewer chunks than acquired workers
    // (e.g. n=100, threads=32 ⇒ chunk=4 ⇒ 25 chunks): hand the surplus
    // permits back now rather than hold them idle for the whole region.
    permits.release_down_to(n.div_ceil(chunk) - 1);
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let (first, rest) = out.split_at_mut(chunk.min(n));
        for (t, slot_chunk) in rest.chunks_mut(chunk).enumerate() {
            let f = &f;
            let start = (t + 1) * chunk;
            // Each worker carries its own permit and frees it on exit, so
            // siblings (or nested phases) can pick it up before the whole
            // region joins.
            let permit = permits.split_one();
            scope.spawn(move || {
                let _permit = permit;
                for (i, slot) in slot_chunk.iter_mut().enumerate() {
                    *slot = Some(f(start + i));
                }
            });
        }
        // The calling thread works the first chunk itself.
        for (i, slot) in first.iter_mut().enumerate() {
            *slot = Some(f(i));
        }
    });
    out.into_iter()
        .map(|s| s.expect("worker filled slot"))
        .collect()
}

/// Apply `f` to every player index in `0..n`, in parallel, returning results
/// in player order.
///
/// `f` must be `Sync` (players share read-only state plus the internally
/// synchronized board/ledger) and is called exactly once per player.
pub fn par_map_players<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_run(n, false, f)
}

/// Apply `f` to each item of `items` in parallel, preserving order.
pub fn par_map_items<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    par_run(items.len(), false, |i| f(&items[i]))
}

/// Apply `f` to each item in parallel like [`par_map_items`], but without
/// the tiny-phase sequential cutoff: intended for *coarse* work items
/// (whole experiments, protocol runs, sweep points) where even 2–8 items
/// are worth a thread each. Coarse and fine regions share the one permit
/// pool (module docs), so nesting coarse maps never multiplies worker
/// counts. Results are order-preserving, so output is bit-identical under
/// any thread count.
pub fn par_map_coarse<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    par_run(items.len(), true, |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_in_player_order() {
        let out = par_map_players(1000, |p| p * 2);
        assert_eq!(out.len(), 1000);
        for (p, v) in out.iter().enumerate() {
            assert_eq!(*v, p * 2);
        }
    }

    #[test]
    fn each_player_called_once() {
        let calls = AtomicUsize::new(0);
        let out = par_map_players(257, |p| {
            calls.fetch_add(1, Ordering::Relaxed);
            p
        });
        assert_eq!(calls.load(Ordering::Relaxed), 257);
        assert_eq!(out.len(), 257);
    }

    #[test]
    fn empty_and_tiny() {
        assert!(par_map_players(0, |p| p).is_empty());
        assert_eq!(par_map_players(1, |p| p + 1), vec![1]);
    }

    #[test]
    fn par_map_items_preserves_order() {
        let items: Vec<u64> = (0..500).collect();
        let out = par_map_items(&items, |&x| x * x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i * i) as u64);
        }
    }

    #[test]
    fn matches_sequential_results() {
        let seq: Vec<usize> = (0..300usize).map(|p| p.wrapping_mul(31) ^ 7).collect();
        let par = par_map_players(300, |p: usize| p.wrapping_mul(31) ^ 7);
        assert_eq!(seq, par);
    }

    #[test]
    fn nested_regions_share_one_pool() {
        // A coarse fan-out whose items run fine phases: results must be
        // identical to the sequential composition at whatever worker
        // counts the pool hands out.
        let items: Vec<usize> = (0..6).collect();
        let nested = par_map_coarse(&items, |&i| {
            par_map_players(100, move |p| p * i)
                .into_iter()
                .sum::<usize>()
        });
        let flat: Vec<usize> = items
            .iter()
            .map(|&i| (0..100).map(|p| p * i).sum::<usize>())
            .collect();
        assert_eq!(nested, flat);
    }

    #[test]
    fn permits_respect_the_pool_bound() {
        // Two batches held at once can never exceed the pool (other tests
        // may hold permits concurrently — the bound still applies).
        let pool = budget().saturating_sub(1);
        let a = Permits::acquire(usize::MAX);
        let b = Permits::acquire(usize::MAX);
        assert!(a.0 + b.0 <= pool, "over-acquired: {} + {}", a.0, b.0);
        drop(a);
        drop(b);
        // A split permit releases independently of its parent batch.
        let mut c = Permits::acquire(2);
        if c.0 > 0 {
            let held = c.0;
            let one = c.split_one();
            assert_eq!(one.0 + c.0, held);
            drop(one);
        }
        drop(c);
    }
}
